//! The motivating application (§I): matching as a *preprocessing step for
//! distributed sparse solvers*.
//!
//! Direct solvers need a structurally nonsingular pivot sequence — a
//! zero-free diagonal. A perfect matching of the bipartite rows-vs-columns
//! graph of a square matrix *is* a row permutation that places a nonzero on
//! every diagonal position. This example builds a KKT saddle-point matrix
//! (whose (2,2) block is structurally zero, so the natural diagonal is
//! deficient), computes an MCM with the distributed algorithm, and applies
//! the induced row permutation.
//!
//! ```text
//! cargo run --release --example solver_preprocess
//! ```

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::kkt::kkt_stencil;
use mcm_sparse::permute::{permute_triples, Permutation};
use mcm_sparse::{Triples, Vidx};

/// Counts structurally nonzero diagonal entries.
fn diagonal_nonzeros(t: &Triples) -> usize {
    let c = t.to_csc();
    (0..t.ncols().min(t.nrows())).filter(|&j| c.contains(j as Vidx, j)).count()
}

fn main() {
    // A KKT system: 12^3 = 1728 Hessian nodes + 600 constraint rows whose
    // diagonal block is structurally zero.
    let a = kkt_stencil(12, 600, 3, 42);
    let n = a.nrows();
    println!("KKT matrix: {n} x {n}, {} nonzeros", a.len());
    println!("diagonal nonzeros before permutation: {}/{}", diagonal_nonzeros(&a), n);

    // Distributed MCM on a simulated 4x4 grid of 12-thread processes.
    let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 12));
    let result = maximum_matching(&mut ctx, &a, &McmOptions::default());
    let m = &result.matching;
    println!(
        "maximum matching: {} of {} columns matched ({} phases, {} iterations)",
        m.cardinality(),
        n,
        result.stats.phases,
        result.stats.iterations
    );

    // Row permutation from the matching: row mate_c[j] moves to position j.
    // (A perfect matching gives a complete permutation; KKT stencils are
    // structurally nonsingular, so expect one.)
    assert_eq!(m.cardinality(), n, "KKT stencil should have a perfect matching");
    let forward = {
        // mate_r[i] = j means row i must land at position j.
        let f: Vec<Vidx> = (0..n).map(|i| m.mate_r.get(i as Vidx)).collect();
        Permutation::from_forward(f)
    };
    let permuted = permute_triples(&a, &forward, &Permutation::identity(n));
    println!("diagonal nonzeros after permutation:  {}/{}", diagonal_nonzeros(&permuted), n);
    assert_eq!(diagonal_nonzeros(&permuted), n);

    println!(
        "\nmodeled distributed time: {:.3} ms on {} cores ({} processes x {} threads)",
        ctx.timers.total() * 1e3,
        ctx.machine.cores(),
        ctx.p(),
        ctx.threads()
    );
    println!("\nthe solver can now factorize without structural pivoting.");
}
