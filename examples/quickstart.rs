//! Quickstart: build a small bipartite graph, run distributed MCM, verify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify::assert_maximum;
use mcm_core::{maximum_matching, McmOptions};
use mcm_sparse::Triples;

fn main() {
    // The worked example of the paper's Fig. 2: 4 row vertices (r1..r4),
    // 5 column vertices (c1..c5), 9 edges.
    let g = Triples::from_edges(
        4,
        5,
        vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
    );

    // Simulate a 2x2 process grid with 2 threads per process (8 cores).
    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 2));
    let result = maximum_matching(&mut ctx, &g, &McmOptions::default());

    println!("graph: {} rows x {} cols, {} edges", g.nrows(), g.ncols(), g.len());
    println!("maximum matching cardinality: {}", result.matching.cardinality());
    println!(
        "phases: {}, BFS iterations: {}, augmenting paths: {} (init contributed {})",
        result.stats.phases,
        result.stats.iterations,
        result.stats.augmentations,
        result.stats.init_cardinality
    );
    println!("\nmatched pairs (row -> column):");
    for r in 0..g.nrows() as u32 {
        let c = result.matching.mate_r.get(r);
        if c != mcm_sparse::NIL {
            println!("  r{} -> c{}", r + 1, c + 1);
        }
    }

    // Verify against the independent certificate and the serial oracle.
    let a = g.to_csc();
    assert_maximum(&a, &result.matching);
    assert_eq!(result.matching.cardinality(), hopcroft_karp(&a, None).cardinality());
    println!("\nverified: no augmenting path exists (Berge) and cardinality matches Hopcroft-Karp");

    println!("\nmodeled kernel breakdown on the simulated machine:\n{}", ctx.timers);
}
