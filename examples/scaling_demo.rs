//! Strong-scaling demo: one graph, a sweep of simulated machine sizes.
//!
//! Reproduces in miniature what Figs. 4 and 6 of the paper measure: modeled
//! MCM-DIST time as the core count grows from one node (24 cores) upward,
//! with the paper's hybrid layout (square process grid, 12 threads per
//! process).
//!
//! ```text
//! cargo run --release --example scaling_demo
//! ```

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::rmat::{rmat, RmatParams};

fn main() {
    // A scale-14 G500 matrix (16384^2, ~380k edges after dedup): small
    // enough to sweep quickly, skewed like the paper's G500 inputs.
    let scale = 14;
    let g = rmat(RmatParams::g500(scale), 2016);
    println!("G500 scale {}: {} x {} with {} edges\n", scale, g.nrows(), g.ncols(), g.len());

    println!(
        "{:>7} {:>9} {:>12} {:>9} {:>10} {:>10}",
        "cores", "grid", "modeled(ms)", "speedup", "|M|", "phases"
    );
    // Each stand-in edge represents `work_scale` edges of the paper's
    // scale-26 G500 runs (see DistCtx::work_scale).
    let paper_edges = 32.0 * (1u64 << 26) as f64;
    let work_scale = paper_edges / g.len() as f64;
    let mut base: Option<f64> = None;
    for cfg in MachineConfig::paper_sweep(2028) {
        let mut ctx = DistCtx::new(cfg).with_work_scale(work_scale);
        let result = maximum_matching(&mut ctx, &g, &McmOptions::default());
        let secs = ctx.timers.total();
        let speedup = base.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
        println!(
            "{:>7} {:>9} {:>12.3} {:>9.2} {:>10} {:>10}",
            cfg.cores(),
            format!("{}x{}x{}", cfg.grid.pr, cfg.grid.pc, cfg.threads_per_process),
            secs * 1e3,
            speedup,
            result.matching.cardinality(),
            result.stats.phases
        );
    }
    println!("\n(speedups are modeled; the cardinality must be identical on every grid)");
}
