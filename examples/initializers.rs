//! Compare the three maximal-matching initializers (§VI-A, Fig. 3).
//!
//! For each initializer: its approximation quality (fraction of the maximum
//! cardinality delivered before any augmentation), its modeled init time,
//! and the modeled MCM time needed to finish the job.
//!
//! ```text
//! cargo run --release --example initializers
//! ```

use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::maximal::Initializer;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::mesh::triangulated_grid;

fn main() {
    let g = triangulated_grid(96, 96, 7);
    println!("delaunay-like mesh: {} x {} with {} edges\n", g.nrows(), g.ncols(), g.len());

    let cfg = MachineConfig::hybrid(4, 12); // 192 cores
    println!(
        "{:<20} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "initializer", "init |M|", "final |M|", "init(ms)", "mcm(ms)", "total(ms)"
    );
    for init in [
        Initializer::None,
        Initializer::Greedy,
        Initializer::KarpSipser,
        Initializer::DynamicMindegree,
    ] {
        // Charge the mesh as if it were delaunay_n24-sized (~100M nonzeros).
        let mut ctx = DistCtx::new(cfg).with_work_scale(1.0e8 / g.len() as f64);
        let opts = McmOptions { init, ..Default::default() };
        let result = maximum_matching(&mut ctx, &g, &opts);
        let init_s = ctx.timers.seconds(Kernel::Init);
        let total_s = ctx.timers.total();
        println!(
            "{:<20} {:>8} {:>9} {:>12.3} {:>12.3} {:>12.3}",
            init.name(),
            result.stats.init_cardinality,
            result.matching.cardinality(),
            init_s * 1e3,
            (total_s - init_s) * 1e3,
            total_s * 1e3
        );
    }
    println!("\n(the paper's conclusion: dynamic mindegree gives the best total time —");
    println!(" Karp-Sipser matches slightly more but pays for its synchronization cascade)");
}
