//! Structural analysis of a sparse matrix via matching — the full
//! sparse-solver preprocessing pipeline the paper's introduction motivates:
//!
//! 1. maximum cardinality matching (distributed MCM-DIST),
//! 2. König minimum vertex cover (an optimality certificate),
//! 3. coarse Dulmage–Mendelsohn decomposition (structural rank / singularity),
//! 4. fine decomposition: block triangular form for the factorization.
//!
//! ```text
//! cargo run --release --example structural_analysis
//! ```

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::btf::block_triangular_form;
use mcm_core::cover::{cover_certifies, koenig_cover};
use mcm_core::dm::{dulmage_mendelsohn, DmBlock};
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::kkt::kkt_stencil;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::Triples;

fn analyze(name: &str, t: &Triples) {
    println!("== {name}: {} x {}, {} nonzeros", t.nrows(), t.ncols(), t.len());

    // 1. Maximum matching on a simulated 4x4 x 12 allocation.
    let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 12));
    let result = maximum_matching(&mut ctx, t, &McmOptions::default());
    let m = &result.matching;
    let a = t.to_csc();
    println!(
        "   structural rank {} of {} (modeled {:.2} ms on {} cores)",
        m.cardinality(),
        t.nrows().min(t.ncols()),
        ctx.timers.total() * 1e3,
        ctx.machine.cores()
    );

    // 2. König certificate.
    let cover = koenig_cover(&a, m);
    assert!(cover_certifies(&a, m));
    println!(
        "   König cover: {} rows + {} cols = {} (= |M|, certifies optimality)",
        cover.rows.len(),
        cover.cols.len(),
        cover.size()
    );

    // 3. Coarse DM.
    let dm = dulmage_mendelsohn(&a, m);
    for b in [DmBlock::Horizontal, DmBlock::Square, DmBlock::Vertical] {
        println!(
            "   DM {:<10} {:>7} rows {:>7} cols",
            format!("{b:?}"),
            dm.rows_in(b).len(),
            dm.cols_in(b).len()
        );
    }

    // 4. Fine decomposition (square nonsingular matrices only).
    if t.nrows() == t.ncols() && dm.is_structurally_nonsingular() {
        let btf = block_triangular_form(&a, m);
        println!(
            "   BTF: {} diagonal blocks, largest {} ({}% of n)",
            btf.num_blocks(),
            btf.max_block(),
            100 * btf.max_block() / t.nrows()
        );
    } else {
        println!("   structurally singular or rectangular: no BTF");
    }
    println!();
}

fn weighted_step(t: &Triples) {
    use mcm_core::weighted::auction_mwm;
    use mcm_sparse::permute::SplitMix64;
    use mcm_sparse::WCsc;
    // 5. The MC64-style follow-up: put numerically large entries on the
    //    diagonal by maximizing total weight (here: synthetic magnitudes).
    let mut rng = SplitMix64::new(2);
    let entries = t.entries().iter().map(|&(i, j)| (i, j, 1.0 + rng.below(1000) as f64)).collect();
    let w = WCsc::from_weighted_triples(t.nrows(), t.ncols(), entries);
    let n = t.nrows().max(t.ncols());
    let r = auction_mwm(&w, 0.5 / (n as f64 + 1.0));
    println!(
        "   weighted (MC64-style): |M| {} with total weight {:.0} ({} auction bids)",
        r.matching.cardinality(),
        r.weight,
        r.bids
    );
    println!();
}

fn main() {
    // A structurally nonsingular KKT system: full analysis incl. BTF.
    let kkt = kkt_stencil(10, 300, 3, 7);
    analyze("nlpkkt-like", &kkt);
    weighted_step(&kkt);
    // A skewed RMAT graph: structurally singular, DM splits it.
    analyze("G500 scale 11", &rmat(RmatParams::g500(11), 13));
}
