//! Dynamic matching: keep a maximum matching live while edges churn.
//!
//! ```text
//! cargo run --release --example dynamic_service
//! ```
//!
//! Builds a random bipartite graph, solves it once, then streams update
//! batches through `mcm_dyn::DynMatching` — the engine behind the `mcmd`
//! service binary — printing the per-batch repair report and checking
//! each repaired matching against a from-scratch Hopcroft–Karp solve.

use mcm_core::serial::hopcroft_karp;
use mcm_dyn::{DynMatching, DynOptions, Update};
use mcm_gen::er::gnm_bipartite;
use mcm_gen::{update_trace, TraceOp, TraceParams};
use mcm_sparse::NIL;

fn main() {
    // A 64 + 64 vertex random graph, solved statically first.
    let t = gnm_bipartite(64, 64, 300, 7);
    let mut dm = DynMatching::from_triples(&t, DynOptions::default());
    println!(
        "initial graph: 64x64, {} edges, maximum matching {}",
        dm.graph().nnz(),
        dm.cardinality()
    );

    // Hand-rolled batch 1: retire a matched edge, wire in a replacement.
    let (r, c) = (0..64)
        .find_map(|r| {
            let c = dm.matching().mate_r.get(r);
            (c != NIL).then_some((r, c))
        })
        .expect("nonempty matching");
    let rep = dm.apply_batch(&[Update::Delete(r, c), Update::Insert(r, (c + 1) % 64)]);
    println!(
        "\nbatch 1: deleted matched ({r}, {c}), inserted ({r}, {}) -> \
         dirty {}, repaired {}, cardinality {}",
        (c + 1) % 64,
        rep.dirty,
        rep.repaired,
        rep.cardinality
    );

    // Then a generated churn trace, batch boundaries at each Query.
    let ops = update_trace(&TraceParams::churn(64, 64, 42));
    let mut staged: Vec<Update> = Vec::new();
    let mut batch = 2;
    for op in &ops {
        match *op {
            TraceOp::Insert(r, c) => staged.push(Update::Insert(r, c)),
            TraceOp::Delete(r, c) => staged.push(Update::Delete(r, c)),
            TraceOp::Query => {
                let rep = dm.apply_batch(&staged);
                staged.clear();
                // The differential check the oracle tests run at scale.
                let want = hopcroft_karp(&dm.graph().to_csc(), None).cardinality();
                assert_eq!(rep.cardinality, want, "incremental diverged from HK");
                println!(
                    "batch {batch}: applied {:>2}, dirty {:>2}, repaired {}, \
                     sweeps {}, cert {:?}, cardinality {} (HK agrees)",
                    rep.applied,
                    rep.dirty,
                    rep.repaired,
                    rep.global_sweeps,
                    rep.cert_scope,
                    rep.cardinality
                );
                batch += 1;
            }
        }
    }

    let s = dm.stats();
    println!(
        "\ntotals: {} batches, {} updates, {} matched deletes, {} immediate matches,\n\
         {} local searches, {} paths (longest {}), {} sweeps, {} fallbacks",
        s.batches,
        s.updates,
        s.matched_deletes,
        s.immediate_matches,
        s.local_searches,
        s.repaired,
        s.max_repair_path,
        s.global_sweeps,
        s.fallbacks
    );
    println!("try the service: printf 'insert 0 0\\nquery\\n' | mcmd --rows 8 --cols 8");
}
