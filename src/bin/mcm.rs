//! `mcm` — command-line front end for the matching library.
//!
//! ```text
//! mcm stats   <file.mtx>                     structural statistics
//! mcm match   <file.mtx> [options]           maximum cardinality matching
//! mcm permute <file.mtx> --out <out.mtx>     zero-free diagonal permutation
//! mcm dm      <file.mtx>                     Dulmage–Mendelsohn block sizes
//! mcm gen     <family> --scale <s> --out <f> generate a test matrix
//!
//! match options:
//!   --algo dist|hk|pf|pr|msbfs|graft|ppf|auction|auto
//!                                      algorithm (default dist); `ppf` is
//!                                      parallel Pothen–Fan, `auction` the
//!                                      ε-scaled auction, `auto` measures
//!                                      the graph and picks an engine
//!   --backend sim|engine|shared        cost-model simulator (default), real
//!                                      thread-per-rank mesh, or fused
//!                                      shared-memory arena (dist only)
//!   --grid <d>                         simulated d×d process grid (sim)
//!   --ranks <p>                        engine/shared rank count, a perfect square
//!   --threads <t>                      threads per process/rank (dist)
//!   --breakdown                        print the measured wall-clock
//!                                      per-kernel breakdown next to the
//!                                      modeled α–β–γ one (dist)
//!   --trace-out <file>                 write a chrome://tracing JSON trace
//!   --out <file>                       write "row col" pairs
//! gen families: g500, ssca, er (RMAT presets); road, mesh (2D meshes)
//! ```
//!
//! Matrices are Matrix Market files; values are ignored (pattern matching).

use mcm_bsp::{Communicator, DistCtx, EngineComm, MachineConfig, SharedComm};
use mcm_core::dm::{dulmage_mendelsohn, DmBlock};
// btf used via full path in cmd_btf
use mcm_core::serial::{hopcroft_karp, ms_bfs_graft, ms_bfs_serial, pothen_fan, push_relabel};
use mcm_core::verify::is_maximum;
use mcm_core::{
    maximum_matching, Matching, MatchingAlgo, McmOptions, PortfolioBackend, PortfolioOptions,
};
use mcm_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use mcm_sparse::permute::{permute_triples, Permutation};
use mcm_sparse::stats::MatrixStats;
use mcm_sparse::{Triples, Vidx, NIL};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Piping into `head` closes stdout early; exit like a Unix tool instead
    // of letting std's print machinery panic on the broken pipe.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(141); // 128 + SIGPIPE
        }
        eprintln!("{info}");
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mcm help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("permute") => cmd_permute(&args[1..]),
        Some("dm") => cmd_dm(&args[1..]),
        Some("btf") => cmd_btf(&args[1..]),
        Some("mwm") => cmd_mwm(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}")),
    }
}

const USAGE: &str = "\
mcm — maximum cardinality matching in bipartite graphs (Azad & Buluc, IPDPS 2016)

usage:
  mcm stats   <file.mtx>
  mcm match   <file.mtx> [--algo dist|hk|pf|pr|msbfs|graft|ppf|auction|auto]
              [--backend sim|engine|shared]
              [--grid d] [--ranks p] [--threads t] [--breakdown] [--trace-out file] [--out file]
              [--weighted]                 maximum weight matching (values used,
                                           parallel eps-scaled auction, eps-CS certified)
  mcm permute <file.mtx> --out <out.mtx>
  mcm dm      <file.mtx>
  mcm btf     <file.mtx>
  mcm mwm     <file.mtx> [--eps e]     maximum weight matching (values used)
  mcm gen     <g500|ssca|er|road|mesh> --scale <s> --out <file.mtx> [--seed n]
";

/// Pulls `--flag value` out of an argument list.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn positional(args: &[String]) -> Option<&str> {
    // First token that is not a flag and not a flag's value.
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

fn load(args: &[String]) -> Result<Triples, String> {
    let path = positional(args).ok_or("missing input file")?;
    read_matrix_market_file(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    let s = MatrixStats::from_triples(&t);
    println!("rows:            {}", s.nrows);
    println!("cols:            {}", s.ncols);
    println!("nonzeros:        {}", s.nnz);
    println!("avg row degree:  {:.2}", s.avg_row_degree);
    println!("avg col degree:  {:.2}", s.avg_col_degree);
    println!("max row degree:  {}", s.max_row_degree);
    println!("max col degree:  {}", s.max_col_degree);
    println!("empty rows:      {}", s.empty_rows);
    println!("empty cols:      {}", s.empty_cols);
    Ok(())
}

/// The distributed driver's choice of backend plus the modeled per-kernel
/// rows it leaves behind (for `--breakdown`).
struct DistRun {
    matching: Matching,
    /// `(kernel name, modeled seconds, modeled calls)` per kernel.
    modeled: Vec<(&'static str, f64, u64)>,
    /// Engine that actually ran (reported in the stats line).
    algo: &'static str,
    /// Whether `--algo auto` picked the engine.
    auto: bool,
}

fn compute_dist(
    t: &Triples,
    backend: &str,
    grid: usize,
    ranks: usize,
    threads: usize,
) -> Result<DistRun, String> {
    let rows = |ctx: &DistCtx| {
        ctx.timers.breakdown().into_iter().map(|(k, s, c)| (k.name(), s, c)).collect()
    };
    match backend {
        "sim" => {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(grid, threads));
            let r = maximum_matching(&mut ctx, t, &McmOptions::default());
            eprintln!(
                "simulated {} cores ({}x{} grid, {} threads/process); modeled time {:.3} ms",
                ctx.machine.cores(),
                grid,
                grid,
                threads,
                ctx.timers.total() * 1e3
            );
            Ok(DistRun { matching: r.matching, modeled: rows(&ctx), algo: "msbfs", auto: false })
        }
        "engine" => {
            let dim = (ranks as f64).sqrt().round() as usize;
            if ranks == 0 || dim * dim != ranks {
                return Err(format!("--ranks must be a positive perfect square, got {ranks}"));
            }
            let mut comm = EngineComm::new(ranks, threads);
            let r = maximum_matching(&mut comm, t, &McmOptions::default());
            eprintln!(
                "engine: {} ranks x {} threads; modeled time {:.3} ms",
                ranks,
                threads,
                comm.ctx().timers.total() * 1e3
            );
            Ok(DistRun {
                matching: r.matching,
                modeled: rows(comm.ctx()),
                algo: "msbfs",
                auto: false,
            })
        }
        "shared" => {
            let dim = (ranks as f64).sqrt().round() as usize;
            if ranks == 0 || dim * dim != ranks {
                return Err(format!("--ranks must be a positive perfect square, got {ranks}"));
            }
            let mut comm = SharedComm::new(ranks, threads);
            let r = maximum_matching(&mut comm, t, &McmOptions::default());
            eprintln!(
                "shared: {} logical ranks x {} threads (fused arena); modeled time {:.3} ms",
                ranks,
                threads,
                comm.ctx().timers.total() * 1e3
            );
            Ok(DistRun {
                matching: r.matching,
                modeled: rows(comm.ctx()),
                algo: "msbfs",
                auto: false,
            })
        }
        other => Err(format!("bad --backend value: {other} (want sim|engine|shared)")),
    }
}

fn compute(
    t: &Triples,
    algo: &str,
    backend: &str,
    grid: usize,
    ranks: usize,
    threads: usize,
) -> Result<DistRun, String> {
    if let "ppf" | "auction" | "auto" = algo {
        let palgo: MatchingAlgo = algo.parse()?;
        let pbackend = match backend {
            "sim" => PortfolioBackend::Sim { grid, threads },
            "engine" => PortfolioBackend::Engine { p: ranks, threads },
            "shared" => PortfolioBackend::Shared { p: ranks, threads },
            other => return Err(format!("bad --backend value: {other} (want sim|engine|shared)")),
        };
        let opts =
            PortfolioOptions { algo: palgo, backend: pbackend, threads, ..Default::default() };
        let r = mcm_core::portfolio::solve(t, &opts);
        return Ok(DistRun {
            matching: r.matching,
            modeled: Vec::new(),
            algo: r.stats.algo,
            auto: r.stats.algo_auto,
        });
    }
    let a = t.to_csc();
    let matching = match algo {
        "dist" => return compute_dist(t, backend, grid, ranks, threads),
        "hk" => hopcroft_karp(&a, None),
        "pf" => pothen_fan(&a, None),
        "pr" => push_relabel(&a),
        "msbfs" => ms_bfs_serial(&a, None).0,
        "graft" => ms_bfs_graft(&a, None).0,
        other => return Err(format!("unknown algorithm: {other}")),
    };
    let label = match algo {
        "hk" => "hk",
        "pf" => "pf",
        "pr" => "pr",
        "msbfs" => "msbfs-serial",
        _ => "graft",
    };
    Ok(DistRun { matching, modeled: Vec::new(), algo: label, auto: false })
}

/// `mcm match --weighted`: maximum *weight* matching through the
/// portfolio's parallel eps-scaled auction, with the eps-complementary-
/// slackness certificate checked before anything is printed.
fn cmd_match_weighted(args: &[String]) -> Result<(), String> {
    // `--weighted` takes no value; drop it so `positional` does not skip
    // the path that follows it.
    let args: Vec<String> = args.iter().filter(|a| *a != "--weighted").cloned().collect();
    let args = &args[..];
    let path = positional(args).ok_or("missing input file")?;
    let a = mcm_sparse::io::read_matrix_market_weighted_file(path)
        .map_err(|e| format!("{path}: {e}"))?;
    let threads: usize =
        opt(args, "--threads").unwrap_or("4").parse().map_err(|_| "bad --threads")?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let opts = PortfolioOptions { threads, ..PortfolioOptions::default() };
    let r = mcm_core::portfolio::solve_weighted(&a, &opts);
    r.matching
        .validate(a.pattern())
        .map_err(|e| format!("internal error, invalid matching: {e}"))?;
    mcm_core::verify::verify_eps_cs(&a, &r.matching, &r.prices, r.eps)
        .map_err(|e| format!("internal error, eps-CS certificate failed: {e}"))?;
    println!(
        "maximum weight matching: |M| = {} of {} columns, total weight {:.6}",
        r.matching.cardinality(),
        a.ncols(),
        r.weight,
    );
    println!("algo: wauction ({threads} threads, {} bids, eps {:.2e})", r.bids, r.eps);
    if let Some(out) = opt(args, "--out") {
        let mut body = String::new();
        for c in 0..a.ncols() as Vidx {
            let row = r.matching.mate_c.get(c);
            if row != NIL {
                let w = a.weight(row, c as usize).unwrap_or(0.0);
                body.push_str(&format!("{} {} {w}\n", row + 1, c + 1));
            }
        }
        std::fs::write(out, body).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote 1-based (row, col, weight) triples to {out}");
    }
    Ok(())
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--weighted") {
        return cmd_match_weighted(args);
    }
    let t = load(args)?;
    let algo = opt(args, "--algo").unwrap_or("dist");
    let backend = opt(args, "--backend").unwrap_or("sim");
    let grid: usize = opt(args, "--grid").unwrap_or("2").parse().map_err(|_| "bad --grid")?;
    let ranks: usize = opt(args, "--ranks").unwrap_or("4").parse().map_err(|_| "bad --ranks")?;
    let threads: usize =
        opt(args, "--threads").unwrap_or("4").parse().map_err(|_| "bad --threads")?;
    if grid == 0 || threads == 0 {
        return Err("--grid and --threads must be at least 1".into());
    }
    let breakdown = args.iter().any(|a| a == "--breakdown");
    let trace_out = opt(args, "--trace-out");
    if (breakdown || trace_out.is_some()) && algo != "dist" {
        return Err("--breakdown and --trace-out need --algo dist".into());
    }
    if breakdown || trace_out.is_some() {
        mcm_obs::enable_tracing(true);
        drop(mcm_obs::take_trace()); // start the run from an empty sink
    }
    let DistRun { matching: m, modeled, algo: ran, auto } =
        compute(&t, algo, backend, grid, ranks, threads)?;
    if breakdown || trace_out.is_some() {
        mcm_obs::enable_tracing(false);
        let trace = mcm_obs::take_trace();
        if breakdown {
            let measured = mcm_obs::WallBreakdown::from_trace(&trace);
            eprintln!("per-kernel breakdown (measured wall clock vs modeled alpha-beta-gamma):");
            eprint!("{}", mcm_obs::side_by_side(&measured, &modeled));
        }
        if let Some(path) = trace_out {
            std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote chrome://tracing JSON ({} events) to {path}", trace.events.len());
        }
    }
    let a = t.to_csc();
    m.validate(&a).map_err(|e| format!("internal error, invalid matching: {e}"))?;
    assert!(is_maximum(&a, &m), "internal error: matching not maximum");
    println!(
        "maximum matching: {} of {} columns ({} rows) matched",
        m.cardinality(),
        t.ncols(),
        t.nrows()
    );
    println!("algo: {ran}{}", if auto { " (selected by auto)" } else { "" });
    if let Some(out) = opt(args, "--out") {
        let mut body = String::new();
        for c in 0..t.ncols() as Vidx {
            let r = m.mate_c.get(c);
            if r != NIL {
                body.push_str(&format!("{} {}\n", r + 1, c + 1));
            }
        }
        std::fs::write(out, body).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote 1-based (row, col) pairs to {out}");
    }
    Ok(())
}

fn cmd_permute(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    if t.nrows() != t.ncols() {
        return Err("permute requires a square matrix".into());
    }
    let out = opt(args, "--out").ok_or("missing --out")?;
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    if m.cardinality() != t.ncols() {
        return Err(format!(
            "matrix is structurally singular: maximum matching covers only {} of {} columns",
            m.cardinality(),
            t.ncols()
        ));
    }
    let forward: Vec<Vidx> = (0..t.nrows() as Vidx).map(|i| m.mate_r.get(i)).collect();
    let perm = Permutation::from_forward(forward);
    let pt = permute_triples(&t, &perm, &Permutation::identity(t.ncols()));
    write_matrix_market_file(&pt, out).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote row-permuted matrix with zero-free diagonal to {out}");
    Ok(())
}

fn cmd_dm(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    let dm = dulmage_mendelsohn(&a, &m);
    println!("maximum matching: {}", m.cardinality());
    for block in [DmBlock::Horizontal, DmBlock::Square, DmBlock::Vertical] {
        println!(
            "{:<12} {:>8} rows {:>8} cols",
            format!("{block:?}"),
            dm.rows_in(block).len(),
            dm.cols_in(block).len()
        );
    }
    if dm.is_structurally_nonsingular() {
        println!("matrix is structurally nonsingular");
    }
    Ok(())
}

fn cmd_btf(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    if t.nrows() != t.ncols() {
        return Err("btf requires a square matrix".into());
    }
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    if m.cardinality() != t.ncols() {
        return Err(format!(
            "structurally singular: rank {} of {} (try `mcm dm`)",
            m.cardinality(),
            t.ncols()
        ));
    }
    let btf = mcm_core::btf::block_triangular_form(&a, &m);
    println!("diagonal blocks: {}", btf.num_blocks());
    println!("largest block:   {}", btf.max_block());
    let singletons =
        (0..btf.num_blocks()).filter(|&b| btf.block_ptr[b + 1] - btf.block_ptr[b] == 1).count();
    println!("singleton blocks: {singletons}");
    Ok(())
}

fn cmd_mwm(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("missing input file")?;
    let a = mcm_sparse::io::read_matrix_market_weighted_file(path)
        .map_err(|e| format!("{path}: {e}"))?;
    let n = a.nrows().max(a.ncols()).max(1);
    let default_eps = 0.5 / (n as f64 + 1.0);
    let eps: f64 = match opt(args, "--eps") {
        Some(s) => s.parse().map_err(|_| "bad --eps")?,
        None => default_eps,
    };
    if eps.is_nan() || eps <= 0.0 {
        return Err("--eps must be a positive number".into());
    }
    let r = mcm_core::weighted::auction_mwm(&a, eps);
    r.matching
        .validate(a.pattern())
        .map_err(|e| format!("internal error, invalid matching: {e}"))?;
    println!(
        "maximum weight matching: |M| = {} of {} columns, total weight {:.6} ({} bids, eps {:.2e})",
        r.matching.cardinality(),
        a.ncols(),
        r.weight,
        r.bids,
        eps
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = positional(args).ok_or("missing family")?;
    let scale: u32 = opt(args, "--scale").unwrap_or("10").parse().map_err(|_| "bad --scale")?;
    let seed: u64 = opt(args, "--seed").unwrap_or("1").parse().map_err(|_| "bad --seed")?;
    let out = opt(args, "--out").ok_or("missing --out")?;
    let t = match family {
        "g500" => mcm_gen::rmat::rmat(mcm_gen::rmat::RmatParams::g500(scale), seed),
        "ssca" => mcm_gen::rmat::rmat(mcm_gen::rmat::RmatParams::ssca(scale), seed),
        "er" => mcm_gen::rmat::rmat(mcm_gen::rmat::RmatParams::er(scale), seed),
        "road" => {
            let side = 1usize << (scale / 2);
            mcm_gen::mesh::road_grid(side, side, 0.12, seed)
        }
        "mesh" => {
            let side = 1usize << (scale / 2);
            mcm_gen::mesh::triangulated_grid(side, side, seed)
        }
        other => return Err(format!("unknown family: {other}")),
    };
    write_matrix_market_file(&t, out).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {} x {} matrix with {} nonzeros to {out}", t.nrows(), t.ncols(), t.len());
    Ok(())
}
