//! `mcm` — command-line front end for the matching library.
//!
//! ```text
//! mcm stats   <file.mtx>                     structural statistics
//! mcm match   <file.mtx> [options]           maximum cardinality matching
//! mcm permute <file.mtx> --out <out.mtx>     zero-free diagonal permutation
//! mcm dm      <file.mtx>                     Dulmage–Mendelsohn block sizes
//! mcm gen     <family> --scale <s> --out <f> generate a test matrix
//!
//! match options:
//!   --algo dist|hk|pf|pr|msbfs|graft|ppf|auction|auto
//!                                      algorithm (default dist); `ppf` is
//!                                      parallel Pothen–Fan, `auction` the
//!                                      ε-scaled auction, `auto` measures
//!                                      the graph and picks an engine
//!   --backend sim|engine|shared        cost-model simulator (default), real
//!                                      thread-per-rank mesh, or fused
//!                                      shared-memory arena (dist only)
//!   --grid <d>                         simulated d×d process grid (sim)
//!   --ranks <p>                        engine/shared rank count, a perfect square
//!   --threads <t>                      threads per process/rank (dist)
//!   --breakdown                        print the measured wall-clock
//!                                      per-kernel breakdown next to the
//!                                      modeled α–β–γ one (dist)
//!   --trace-out <file>                 write a chrome://tracing JSON trace
//!   --out <file>                       write "row col" pairs
//! gen families: g500, ssca, er (RMAT presets); road, mesh (2D meshes)
//! ```
//!
//! Matrices are Matrix Market files; values are ignored (pattern matching).

use mcm_bsp::{Communicator, DistCtx, EngineComm, MachineConfig, SharedComm};
use mcm_core::dm::{dulmage_mendelsohn, DmBlock};
// btf used via full path in cmd_btf
use mcm_core::serial::{hopcroft_karp, ms_bfs_graft, ms_bfs_serial, pothen_fan, push_relabel};
use mcm_core::verify::{is_maximum, verify_view};
use mcm_core::{
    maximum_matching, maximum_matching_view, Matching, MatchingAlgo, McmOptions, PortfolioBackend,
    PortfolioOptions,
};
use mcm_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use mcm_sparse::permute::{permute_triples, Permutation};
use mcm_sparse::stats::MatrixStats;
use mcm_sparse::{CscView, Triples, Vidx, NIL};
use mcm_store::{GraphFormat, McsbFile, McsbStreamWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Piping into `head` closes stdout early; exit like a Unix tool instead
    // of letting std's print machinery panic on the broken pipe.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(141); // 128 + SIGPIPE
        }
        eprintln!("{info}");
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mcm help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("permute") => cmd_permute(&args[1..]),
        Some("dm") => cmd_dm(&args[1..]),
        Some("btf") => cmd_btf(&args[1..]),
        Some("mwm") => cmd_mwm(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}")),
    }
}

const USAGE: &str = "\
mcm — maximum cardinality matching in bipartite graphs (Azad & Buluc, IPDPS 2016)

usage:
  mcm stats   <file.mtx>
  mcm match   <file.mtx> [--algo dist|hk|pf|pr|msbfs|graft|ppf|auction|auto]
              [--backend sim|engine|shared]
              [--grid d] [--ranks p] [--threads t] [--breakdown] [--trace-out file] [--out file]
              [--weighted]                 maximum weight matching (values used,
                                           parallel eps-scaled auction, eps-CS certified)
  mcm permute <file.mtx> --out <out.mtx>
  mcm dm      <file.mtx>
  mcm btf     <file.mtx>
  mcm mwm     <file.mtx> [--eps e]     maximum weight matching (values used)
  mcm gen     <g500|ssca|er|road|mesh> --scale <s> --out <file> [--seed n]
              [--format mtx|mcsb]      mcsb streams RMAT edges straight to the
                                       binary store (bounded memory at any scale)
  mcm convert <in.mtx> --out <out.mcsb>  stream a Matrix Market file into MCSB

Graph inputs are sniffed by content: Matrix Market text or the MCSB binary
store (mcm-store). MCSB files are mmap'ed and matched zero-copy with
--algo dist; other algorithms materialize an in-RAM copy.
";

/// Pulls `--flag value` out of an argument list.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn positional(args: &[String]) -> Option<&str> {
    // First token that is not a flag and not a flag's value.
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

/// A loaded graph: Matrix Market text parsed to triples, or an MCSB file
/// whose CSC arrays stay on their mmap'ed pages (the zero-copy path).
enum Input {
    Mtx(Triples),
    Mcsb(McsbFile),
}

/// A borrowed graph handed to the solvers: owned triples or a CSC view into
/// an open [`McsbFile`].
enum Graph<'a> {
    Triples(&'a Triples),
    View(CscView<'a>),
}

impl Graph<'_> {
    fn nrows(&self) -> usize {
        match self {
            Graph::Triples(t) => t.nrows(),
            Graph::View(v) => v.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        match self {
            Graph::Triples(t) => t.ncols(),
            Graph::View(v) => v.ncols(),
        }
    }
}

/// Sniffs `path` by content (MCSB magic vs `%%MatrixMarket`) and opens it.
/// Corrupt or truncated MCSB files surface as structured errors here, not
/// panics deeper in the pipeline.
fn load_input(path: &str) -> Result<Input, String> {
    match mcm_store::sniff_format(path).map_err(|e| format!("{path}: {e}"))? {
        GraphFormat::MatrixMarket => {
            read_matrix_market_file(path).map(Input::Mtx).map_err(|e| format!("{path}: {e}"))
        }
        GraphFormat::Mcsb => {
            McsbFile::open(path).map(Input::Mcsb).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn load(args: &[String]) -> Result<Triples, String> {
    let path = positional(args).ok_or("missing input file")?;
    match load_input(path)? {
        Input::Mtx(t) => Ok(t),
        // Commands that need triples (stats, permute, dm, btf) materialize
        // the edge list; only `match --algo dist` runs zero-copy.
        Input::Mcsb(f) => {
            let v = f.view();
            Ok(Triples::from_edges(v.nrows(), v.ncols(), v.iter().collect()))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    let s = MatrixStats::from_triples(&t);
    println!("rows:            {}", s.nrows);
    println!("cols:            {}", s.ncols);
    println!("nonzeros:        {}", s.nnz);
    println!("avg row degree:  {:.2}", s.avg_row_degree);
    println!("avg col degree:  {:.2}", s.avg_col_degree);
    println!("max row degree:  {}", s.max_row_degree);
    println!("max col degree:  {}", s.max_col_degree);
    println!("empty rows:      {}", s.empty_rows);
    println!("empty cols:      {}", s.empty_cols);
    Ok(())
}

/// The distributed driver's choice of backend plus the modeled per-kernel
/// rows it leaves behind (for `--breakdown`).
struct DistRun {
    matching: Matching,
    /// `(kernel name, modeled seconds, modeled calls)` per kernel.
    modeled: Vec<(&'static str, f64, u64)>,
    /// Engine that actually ran (reported in the stats line).
    algo: &'static str,
    /// Whether `--algo auto` picked the engine.
    auto: bool,
}

fn compute_dist(
    g: &Graph<'_>,
    backend: &str,
    grid: usize,
    ranks: usize,
    threads: usize,
) -> Result<DistRun, String> {
    let rows = |ctx: &DistCtx| {
        ctx.timers.breakdown().into_iter().map(|(k, s, c)| (k.name(), s, c)).collect()
    };
    // Dispatches to the owned-triples or zero-copy view entry point; the
    // two produce identical matchings (asserted by `tests/store.rs`).
    fn solve<C: Communicator>(comm: &mut C, g: &Graph<'_>) -> mcm_core::McmResult {
        match g {
            Graph::Triples(t) => maximum_matching(comm, t, &McmOptions::default()),
            Graph::View(v) => maximum_matching_view(comm, v, &McmOptions::default()),
        }
    }
    match backend {
        "sim" => {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(grid, threads));
            let r = solve(&mut ctx, g);
            eprintln!(
                "simulated {} cores ({}x{} grid, {} threads/process); modeled time {:.3} ms",
                ctx.machine.cores(),
                grid,
                grid,
                threads,
                ctx.timers.total() * 1e3
            );
            Ok(DistRun { matching: r.matching, modeled: rows(&ctx), algo: "msbfs", auto: false })
        }
        "engine" => {
            let dim = (ranks as f64).sqrt().round() as usize;
            if ranks == 0 || dim * dim != ranks {
                return Err(format!("--ranks must be a positive perfect square, got {ranks}"));
            }
            let mut comm = EngineComm::new(ranks, threads);
            let r = solve(&mut comm, g);
            eprintln!(
                "engine: {} ranks x {} threads; modeled time {:.3} ms",
                ranks,
                threads,
                comm.ctx().timers.total() * 1e3
            );
            Ok(DistRun {
                matching: r.matching,
                modeled: rows(comm.ctx()),
                algo: "msbfs",
                auto: false,
            })
        }
        "shared" => {
            let dim = (ranks as f64).sqrt().round() as usize;
            if ranks == 0 || dim * dim != ranks {
                return Err(format!("--ranks must be a positive perfect square, got {ranks}"));
            }
            let mut comm = SharedComm::new(ranks, threads);
            let r = solve(&mut comm, g);
            eprintln!(
                "shared: {} logical ranks x {} threads (fused arena); modeled time {:.3} ms",
                ranks,
                threads,
                comm.ctx().timers.total() * 1e3
            );
            Ok(DistRun {
                matching: r.matching,
                modeled: rows(comm.ctx()),
                algo: "msbfs",
                auto: false,
            })
        }
        other => Err(format!("bad --backend value: {other} (want sim|engine|shared)")),
    }
}

fn compute(
    g: &Graph<'_>,
    algo: &str,
    backend: &str,
    grid: usize,
    ranks: usize,
    threads: usize,
) -> Result<DistRun, String> {
    if let "ppf" | "auction" | "auto" = algo {
        let palgo: MatchingAlgo = algo.parse()?;
        let pbackend = match backend {
            "sim" => PortfolioBackend::Sim { grid, threads },
            "engine" => PortfolioBackend::Engine { p: ranks, threads },
            "shared" => PortfolioBackend::Shared { p: ranks, threads },
            other => return Err(format!("bad --backend value: {other} (want sim|engine|shared)")),
        };
        let opts =
            PortfolioOptions { algo: palgo, backend: pbackend, threads, ..Default::default() };
        // The portfolio measures the graph before picking an engine, which
        // needs an owned edge list either way.
        let owned;
        let t = match g {
            Graph::Triples(t) => *t,
            Graph::View(v) => {
                owned = Triples::from_edges(v.nrows(), v.ncols(), v.iter().collect());
                &owned
            }
        };
        let r = mcm_core::portfolio::solve(t, &opts);
        return Ok(DistRun {
            matching: r.matching,
            modeled: Vec::new(),
            algo: r.stats.algo,
            auto: r.stats.algo_auto,
        });
    }
    if algo == "dist" {
        return compute_dist(g, backend, grid, ranks, threads);
    }
    let a = match g {
        Graph::Triples(t) => t.to_csc(),
        Graph::View(v) => v.to_csc(),
    };
    let matching = match algo {
        "hk" => hopcroft_karp(&a, None),
        "pf" => pothen_fan(&a, None),
        "pr" => push_relabel(&a),
        "msbfs" => ms_bfs_serial(&a, None).0,
        "graft" => ms_bfs_graft(&a, None).0,
        other => return Err(format!("unknown algorithm: {other}")),
    };
    let label = match algo {
        "hk" => "hk",
        "pf" => "pf",
        "pr" => "pr",
        "msbfs" => "msbfs-serial",
        _ => "graft",
    };
    Ok(DistRun { matching, modeled: Vec::new(), algo: label, auto: false })
}

/// `mcm match --weighted`: maximum *weight* matching through the
/// portfolio's parallel eps-scaled auction, with the eps-complementary-
/// slackness certificate checked before anything is printed.
fn cmd_match_weighted(args: &[String]) -> Result<(), String> {
    // `--weighted` takes no value; drop it so `positional` does not skip
    // the path that follows it.
    let args: Vec<String> = args.iter().filter(|a| *a != "--weighted").cloned().collect();
    let args = &args[..];
    let path = positional(args).ok_or("missing input file")?;
    let a = load_weighted(path)?;
    let threads: usize =
        opt(args, "--threads").unwrap_or("4").parse().map_err(|_| "bad --threads")?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let opts = PortfolioOptions { threads, ..PortfolioOptions::default() };
    let r = mcm_core::portfolio::solve_weighted(&a, &opts);
    r.matching
        .validate(a.pattern())
        .map_err(|e| format!("internal error, invalid matching: {e}"))?;
    mcm_core::verify::verify_eps_cs(&a, &r.matching, &r.prices, r.eps)
        .map_err(|e| format!("internal error, eps-CS certificate failed: {e}"))?;
    println!(
        "maximum weight matching: |M| = {} of {} columns, total weight {:.6}",
        r.matching.cardinality(),
        a.ncols(),
        r.weight,
    );
    println!("algo: wauction ({threads} threads, {} bids, eps {:.2e})", r.bids, r.eps);
    if let Some(out) = opt(args, "--out") {
        let mut body = String::new();
        for c in 0..a.ncols() as Vidx {
            let row = r.matching.mate_c.get(c);
            if row != NIL {
                let w = a.weight(row, c as usize).unwrap_or(0.0);
                body.push_str(&format!("{} {} {w}\n", row + 1, c + 1));
            }
        }
        std::fs::write(out, body).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote 1-based (row, col, weight) triples to {out}");
    }
    Ok(())
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--weighted") {
        return cmd_match_weighted(args);
    }
    let path = positional(args).ok_or("missing input file")?;
    let input = load_input(path)?;
    let g = match &input {
        Input::Mtx(t) => Graph::Triples(t),
        Input::Mcsb(f) => Graph::View(f.view()),
    };
    let algo = opt(args, "--algo").unwrap_or("dist");
    let backend = opt(args, "--backend").unwrap_or("sim");
    let grid: usize = opt(args, "--grid").unwrap_or("2").parse().map_err(|_| "bad --grid")?;
    let ranks: usize = opt(args, "--ranks").unwrap_or("4").parse().map_err(|_| "bad --ranks")?;
    let threads: usize =
        opt(args, "--threads").unwrap_or("4").parse().map_err(|_| "bad --threads")?;
    if grid == 0 || threads == 0 {
        return Err("--grid and --threads must be at least 1".into());
    }
    let breakdown = args.iter().any(|a| a == "--breakdown");
    let trace_out = opt(args, "--trace-out");
    if (breakdown || trace_out.is_some()) && algo != "dist" {
        return Err("--breakdown and --trace-out need --algo dist".into());
    }
    if breakdown || trace_out.is_some() {
        mcm_obs::enable_tracing(true);
        drop(mcm_obs::take_trace()); // start the run from an empty sink
    }
    let DistRun { matching: m, modeled, algo: ran, auto } =
        compute(&g, algo, backend, grid, ranks, threads)?;
    if breakdown || trace_out.is_some() {
        mcm_obs::enable_tracing(false);
        let trace = mcm_obs::take_trace();
        if breakdown {
            let measured = mcm_obs::WallBreakdown::from_trace(&trace);
            eprintln!("per-kernel breakdown (measured wall clock vs modeled alpha-beta-gamma):");
            eprint!("{}", mcm_obs::side_by_side(&measured, &modeled));
        }
        if let Some(path) = trace_out {
            std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote chrome://tracing JSON ({} events) to {path}", trace.events.len());
        }
    }
    // Berge-certify the result against the graph as loaded — for MCSB that
    // means against the mapped pages themselves, no owned copy.
    match &g {
        Graph::Triples(t) => {
            let a = t.to_csc();
            m.validate(&a).map_err(|e| format!("internal error, invalid matching: {e}"))?;
            assert!(is_maximum(&a, &m), "internal error: matching not maximum");
        }
        Graph::View(v) => {
            verify_view(v, &m).map_err(|e| format!("internal error: {e}"))?;
        }
    }
    println!(
        "maximum matching: {} of {} columns ({} rows) matched",
        m.cardinality(),
        g.ncols(),
        g.nrows()
    );
    println!("algo: {ran}{}", if auto { " (selected by auto)" } else { "" });
    if let Some(out) = opt(args, "--out") {
        let mut body = String::new();
        for c in 0..g.ncols() as Vidx {
            let r = m.mate_c.get(c);
            if r != NIL {
                body.push_str(&format!("{} {}\n", r + 1, c + 1));
            }
        }
        std::fs::write(out, body).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote 1-based (row, col) pairs to {out}");
    }
    Ok(())
}

fn cmd_permute(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    if t.nrows() != t.ncols() {
        return Err("permute requires a square matrix".into());
    }
    let out = opt(args, "--out").ok_or("missing --out")?;
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    if m.cardinality() != t.ncols() {
        return Err(format!(
            "matrix is structurally singular: maximum matching covers only {} of {} columns",
            m.cardinality(),
            t.ncols()
        ));
    }
    let forward: Vec<Vidx> = (0..t.nrows() as Vidx).map(|i| m.mate_r.get(i)).collect();
    let perm = Permutation::from_forward(forward);
    let pt = permute_triples(&t, &perm, &Permutation::identity(t.ncols()));
    write_matrix_market_file(&pt, out).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote row-permuted matrix with zero-free diagonal to {out}");
    Ok(())
}

fn cmd_dm(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    let dm = dulmage_mendelsohn(&a, &m);
    println!("maximum matching: {}", m.cardinality());
    for block in [DmBlock::Horizontal, DmBlock::Square, DmBlock::Vertical] {
        println!(
            "{:<12} {:>8} rows {:>8} cols",
            format!("{block:?}"),
            dm.rows_in(block).len(),
            dm.cols_in(block).len()
        );
    }
    if dm.is_structurally_nonsingular() {
        println!("matrix is structurally nonsingular");
    }
    Ok(())
}

fn cmd_btf(args: &[String]) -> Result<(), String> {
    let t = load(args)?;
    if t.nrows() != t.ncols() {
        return Err("btf requires a square matrix".into());
    }
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    if m.cardinality() != t.ncols() {
        return Err(format!(
            "structurally singular: rank {} of {} (try `mcm dm`)",
            m.cardinality(),
            t.ncols()
        ));
    }
    let btf = mcm_core::btf::block_triangular_form(&a, &m);
    println!("diagonal blocks: {}", btf.num_blocks());
    println!("largest block:   {}", btf.max_block());
    let singletons =
        (0..btf.num_blocks()).filter(|&b| btf.block_ptr[b + 1] - btf.block_ptr[b] == 1).count();
    println!("singleton blocks: {singletons}");
    Ok(())
}

/// Loads a weighted graph (`WCsc`): Matrix Market with values, or a
/// weighted MCSB file (decoded on the heap; the auction engines mutate
/// prices next to the weights, so there is no zero-copy weighted path).
fn load_weighted(path: &str) -> Result<mcm_sparse::WCsc, String> {
    match mcm_store::sniff_format(path).map_err(|e| format!("{path}: {e}"))? {
        GraphFormat::MatrixMarket => mcm_sparse::io::read_matrix_market_weighted_file(path)
            .map_err(|e| format!("{path}: {e}")),
        GraphFormat::Mcsb => {
            let f = McsbFile::open_heap(path).map_err(|e| format!("{path}: {e}"))?;
            f.to_wcsc().ok_or_else(|| {
                format!("{path}: MCSB file has no values (unweighted); use `mcm match`")
            })
        }
    }
}

fn cmd_mwm(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("missing input file")?;
    let a = load_weighted(path)?;
    let n = a.nrows().max(a.ncols()).max(1);
    let default_eps = 0.5 / (n as f64 + 1.0);
    let eps: f64 = match opt(args, "--eps") {
        Some(s) => s.parse().map_err(|_| "bad --eps")?,
        None => default_eps,
    };
    if eps.is_nan() || eps <= 0.0 {
        return Err("--eps must be a positive number".into());
    }
    let r = mcm_core::weighted::auction_mwm(&a, eps);
    r.matching
        .validate(a.pattern())
        .map_err(|e| format!("internal error, invalid matching: {e}"))?;
    println!(
        "maximum weight matching: |M| = {} of {} columns, total weight {:.6} ({} bids, eps {:.2e})",
        r.matching.cardinality(),
        a.ncols(),
        r.weight,
        r.bids,
        eps
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = positional(args).ok_or("missing family")?;
    let scale: u32 = opt(args, "--scale").unwrap_or("10").parse().map_err(|_| "bad --scale")?;
    let seed: u64 = opt(args, "--seed").unwrap_or("1").parse().map_err(|_| "bad --seed")?;
    let out = opt(args, "--out").ok_or("missing --out")?;
    let format = opt(args, "--format").unwrap_or("mtx");
    if !matches!(format, "mtx" | "mcsb") {
        return Err(format!("bad --format value: {format} (want mtx|mcsb)"));
    }
    let rmat_params = match family {
        "g500" => Some(mcm_gen::rmat::RmatParams::g500(scale)),
        "ssca" => Some(mcm_gen::rmat::RmatParams::ssca(scale)),
        "er" => Some(mcm_gen::rmat::RmatParams::er(scale)),
        _ => None,
    };
    if format == "mcsb" {
        // Stream straight into the store: for RMAT families the edge list is
        // never materialized, so scale is bounded by disk, not RAM.
        let p = rmat_params
            .ok_or_else(|| format!("--format mcsb streams RMAT families only, not {family}"))?;
        let n = p.n();
        let mut w =
            McsbStreamWriter::create(out, n, n, false).map_err(|e| format!("{out}: {e}"))?;
        let mut push_err = None;
        mcm_gen::stream_edges(&p, seed, |chunk| {
            if push_err.is_none() {
                push_err = w.push_edges(chunk).err();
            }
        });
        if let Some(e) = push_err {
            return Err(format!("{out}: {e}"));
        }
        let s = w.finish(mcm_par::max_threads()).map_err(|e| format!("{out}: {e}"))?;
        println!(
            "wrote {n} x {n} matrix with {} nonzeros to {out} ({} bytes, MCSB)",
            s.nnz, s.bytes
        );
        return Ok(());
    }
    let t = match family {
        "g500" | "ssca" | "er" => mcm_gen::rmat::rmat(rmat_params.unwrap(), seed),
        "road" => {
            let side = 1usize << (scale / 2);
            mcm_gen::mesh::road_grid(side, side, 0.12, seed)
        }
        "mesh" => {
            let side = 1usize << (scale / 2);
            mcm_gen::mesh::triangulated_grid(side, side, seed)
        }
        other => return Err(format!("unknown family: {other}")),
    };
    write_matrix_market_file(&t, out).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {} x {} matrix with {} nonzeros to {out}", t.nrows(), t.ncols(), t.len());
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let src = positional(args).ok_or("missing input file")?;
    let out = opt(args, "--out").ok_or("missing --out")?;
    let s = mcm_store::convert_matrix_market(src, out).map_err(|e| format!("{src}: {e}"))?;
    println!(
        "converted {} x {} matrix, {} nonzeros{} -> {out} ({} bytes, MCSB)",
        s.nrows,
        s.ncols,
        s.nnz,
        if s.weighted { " (weighted)" } else { "" },
        s.bytes
    );
    Ok(())
}
