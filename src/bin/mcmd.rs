//! `mcmd` — streaming update service for dynamic maximum matching.
//!
//! Two modes share one protocol (`mcm_serve::proto`, plain text or
//! JSONL):
//!
//! * **stdin** (default, also `--input <file>`): the classic serial
//!   loop. Updates are *batched*: nothing is repaired until a `query`,
//!   `state`, `sync`, `stats`, `snapshot`, or `quit` forces a flush, so
//!   a burst of inserts costs one repair pass. Each flush prints a
//!   `batch ...` line with the per-batch repair report — the running
//!   Berge certificate described in DESIGN.md §11.
//! * **socket** (`--listen <addr>`): the concurrent daemon from
//!   `mcm-serve` (DESIGN.md §16). A worker thread per connection admits
//!   updates through a bounded queue (`busy` backpressure) into a single
//!   writer thread that batches at size/latency watermarks, while
//!   `query`/`state`/`stats`/`snapshot` answer from an epoch-published
//!   snapshot and never block behind a repair. `quit` closes one
//!   connection; `shutdown` drains and stops the daemon.
//!
//! ```text
//! insert <row> <col>      stage (stdin) / admit (socket) an edge insertion
//! delete <row> <col>      stage / admit an edge deletion
//! query                   print "matching <card>"
//! state                   print "state seq <s> epoch <e> cardinality <c> nnz <z>"
//! sync                    barrier; print "synced seq <s> cardinality <c>"
//! stats                   print cumulative engine counters
//! metrics                 dump the Prometheus registry ("# EOF" ends it)
//! snapshot <path>         write the graph as Matrix Market
//! quit                    end the session (stdin: exit; socket: this connection)
//! shutdown                stop the daemon after draining admitted updates
//! ```
//!
//! With `--backend engine`, large-dirty-set fallback recomputes run on
//! the real thread-per-rank `EngineComm` mesh (`--ranks × --threads`
//! cores) instead of the serial cost-model simulator — warm-started
//! recomputes actually use all cores. `--backend shared` routes them
//! through the fused shared-memory arena instead: same logical-rank
//! accounting, lowest wall-clock cost per recompute.
//!
//! The `mcm-obs` metrics registry is always live in `mcmd`: per-request
//! latency histograms (`mcmd_request_seconds{verb}`), per-batch repair
//! metrics and the incremental-vs-warm-start strategy counters
//! (`mcm_dyn_batches_total{strategy}`) are all served by the `metrics`
//! command. `--trace-out` additionally records spans for the whole
//! session and writes a `chrome://tracing` JSON file at exit.

use mcm_core::MatchingAlgo;
use mcm_dyn::{DynMatching, DynOptions, FallbackBackend, WDynMatching, WDynOptions, WUpdate};
use mcm_serve::proto::{parse_command, verb_of, Command, LineFramer};
use mcm_serve::{format_stats_line, format_wstats_line, Server, ServerConfig};
use mcm_sparse::io::{
    read_matrix_market_file, read_matrix_market_weighted_file, write_matrix_market_file,
    write_matrix_market_weighted_file,
};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
mcmd — streaming update service for dynamic maximum matching

usage:
  mcmd [--weighted] [--rows n] [--cols n] [--load file.mtx] [--input file]
       [--listen addr] [--max-batch n] [--max-delay-ms ms] [--queue-cap n]
       [--fallback f] [--algo msbfs|ppf|auction|auto]
       [--backend sim|engine|shared] [--ranks p] [--threads t]
       [--trace-out file] [--full-verify] [--quiet]

  --weighted            serve maximum *weight* matching: `insert u v [w]`
                        (missing weight = 1.0), `query` answers
                        \"matching <n> weight <w>\", repairs re-auction only
                        the eps-CS-violated columns from persistent prices
  --rows n / --cols n   vertex counts of an initially empty graph (default 1024)
  --load file           start from a graph file instead (solves it first; the
                        format — Matrix Market text or MCSB binary — is sniffed
                        by content; with --weighted, entry values / MCSB values
                        become edge weights)
  --input file          read commands from a file instead of stdin
  --listen addr         serve concurrent TCP clients at addr (e.g. 127.0.0.1:7171;
                        port 0 picks a free port, printed as \"listening <addr>\").
                        Runs until a client sends `shutdown`.
  --max-batch n         socket mode: close an update batch at n updates (default 512)
  --max-delay-ms ms     socket mode: ... or this many ms after it opened (default 1)
  --queue-cap n         socket mode: admission queue bound; a full queue answers
                        `busy` (default 4096)
  --fallback f          dirty fraction of n1+n2 above which repair falls back to
                        the warm-started MS-BFS driver (default 0.25)
  --algo a              engine servicing fallback solves: warm-started MS-BFS
                        (msbfs, default), parallel Pothen-Fan (ppf), the
                        eps-scaled auction (auction), or a per-fallback
                        measured pick (auto)
  --backend b           run fallback recomputes on the serial cost-model
                        simulator (sim, default), the real thread-per-rank
                        mesh (engine), or the shared-memory arena (shared)
  --ranks p             engine/shared: rank count, a perfect square (default 4)
  --threads t           engine/shared: worker threads per rank (default 1)
  --trace-out file      record spans; write chrome://tracing JSON at exit
  --full-verify         re-verify the full matching after every batch
  --quiet               suppress per-batch report lines (stdin mode)

commands (one per line, plain text or JSONL {\"op\":..,\"u\":..,\"v\":..}):
  insert <row> <col> [w] | delete <row> <col> | query | state | sync | stats |
  metrics | snapshot <path> | quit | shutdown
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mcmd --help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// `--load` for the cardinality engine: sniffs MCSB magic vs Matrix Market
/// text by content. MCSB decodes straight to a CSC frozen base (no triple
/// list); corrupt or truncated files surface as structured errors here.
fn load_card(path: &str, opts: DynOptions) -> Result<DynMatching, String> {
    match mcm_store::sniff_format(path).map_err(|e| format!("{path}: {e}"))? {
        mcm_store::GraphFormat::MatrixMarket => {
            let t = read_matrix_market_file(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(DynMatching::from_triples(&t, opts))
        }
        mcm_store::GraphFormat::Mcsb => {
            let f = mcm_store::McsbFile::open_heap(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(DynMatching::from_csc(f.to_csc(), opts))
        }
    }
}

/// `--load` for the weighted engine: Matrix Market values or a weighted
/// MCSB file become edge weights.
fn load_weighted(path: &str) -> Result<mcm_sparse::WCsc, String> {
    match mcm_store::sniff_format(path).map_err(|e| format!("{path}: {e}"))? {
        mcm_store::GraphFormat::MatrixMarket => {
            read_matrix_market_weighted_file(path).map_err(|e| format!("{path}: {e}"))
        }
        mcm_store::GraphFormat::Mcsb => {
            let f = mcm_store::McsbFile::open_heap(path).map_err(|e| format!("{path}: {e}"))?;
            f.to_wcsc().ok_or_else(|| {
                format!("{path}: MCSB file has no values (unweighted); drop --weighted")
            })
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let fallback = match opt(args, "--fallback") {
        Some(f) => f.parse::<f64>().map_err(|_| format!("bad --fallback value: {f}"))?,
        None => 0.25,
    };
    let parse_usize = |v: Option<&str>, what: &str, default: usize| -> Result<usize, String> {
        match v {
            Some(s) => s.parse().map_err(|_| format!("bad {what} value: {s}")),
            None => Ok(default),
        }
    };
    let backend = match opt(args, "--backend") {
        None | Some("sim") => FallbackBackend::Simulator,
        Some(kind @ ("engine" | "shared")) => {
            let p = parse_usize(opt(args, "--ranks"), "--ranks", 4)?;
            let dim = (p as f64).sqrt().round() as usize;
            if p == 0 || dim * dim != p {
                return Err(format!("--ranks must be a positive perfect square, got {p}"));
            }
            let threads = parse_usize(opt(args, "--threads"), "--threads", 1)?;
            if threads == 0 {
                return Err("--threads must be positive".to_string());
            }
            if kind == "engine" {
                FallbackBackend::Engine { p, threads }
            } else {
                FallbackBackend::Shared { p, threads }
            }
        }
        Some(other) => {
            return Err(format!("bad --backend value: {other} (want sim|engine|shared)"))
        }
    };
    let algo: MatchingAlgo = match opt(args, "--algo") {
        Some(s) => s.parse()?,
        None => MatchingAlgo::MsBfs,
    };
    let opts = DynOptions {
        fallback_threshold: fallback,
        full_verify: args.iter().any(|a| a == "--full-verify"),
        backend,
        algo,
        ..DynOptions::default()
    };
    let quiet = args.iter().any(|a| a == "--quiet");

    // The registry is the service's own telemetry (request latencies,
    // per-batch repair counters, strategy decisions); the `metrics`
    // command serves it, so it is always live.
    mcm_obs::enable_metrics(true);
    let trace_out = opt(args, "--trace-out").map(str::to_string);
    if trace_out.is_some() {
        mcm_obs::enable_tracing(true);
        drop(mcm_obs::take_trace()); // start the session from an empty sink
    }

    let listen_cfg = |addr: &str| -> Result<ServerConfig, String> {
        Ok(ServerConfig {
            addr: addr.to_string(),
            max_batch: parse_usize(opt(args, "--max-batch"), "--max-batch", 512)?,
            max_delay: Duration::from_millis(parse_usize(
                opt(args, "--max-delay-ms"),
                "--max-delay-ms",
                1,
            )? as u64),
            queue_cap: parse_usize(opt(args, "--queue-cap"), "--queue-cap", 4096)?,
            on_apply: None,
        })
    };

    let served = if args.iter().any(|a| a == "--weighted") {
        let wopts = WDynOptions {
            fallback_threshold: fallback,
            threads: parse_usize(opt(args, "--threads"), "--threads", 1)?,
            full_verify: args.iter().any(|a| a == "--full-verify"),
            ..WDynOptions::default()
        };
        let mut wm = match opt(args, "--load") {
            Some(path) => {
                let a = load_weighted(path)?;
                let (n1, n2) = (a.nrows(), a.ncols());
                let wm = WDynMatching::from_wcsc(a, wopts);
                println!(
                    "loaded {} {}x{} nnz {} matching {} weight {}",
                    path,
                    n1,
                    n2,
                    wm.nnz(),
                    wm.cardinality(),
                    wm.weight()
                );
                wm
            }
            None => {
                let n1 = parse_usize(opt(args, "--rows"), "--rows", 1024)?;
                let n2 = parse_usize(opt(args, "--cols"), "--cols", 1024)?;
                WDynMatching::new(n1, n2, wopts)
            }
        };
        match opt(args, "--listen") {
            Some(addr) => {
                let server = Server::start_weighted(wm, listen_cfg(addr)?)
                    .map_err(|e| format!("{addr}: {e}"))?;
                println!("listening {}", server.local_addr());
                std::io::stdout().flush().ok();
                let wm = server.join().expect_weighted();
                println!(
                    "shutdown cardinality {} weight {} nnz {}",
                    wm.cardinality(),
                    wm.weight(),
                    wm.nnz()
                );
                Ok(())
            }
            None => match opt(args, "--input") {
                Some(path) => {
                    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                    serve_weighted(&mut wm, std::io::BufReader::new(f), quiet)
                }
                None => serve_weighted(&mut wm, std::io::stdin().lock(), quiet),
            },
        }
    } else {
        let mut dm = match opt(args, "--load") {
            Some(path) => {
                let dm = load_card(path, opts)?;
                println!(
                    "loaded {} {}x{} nnz {} matching {}",
                    path,
                    dm.graph().n1(),
                    dm.graph().n2(),
                    dm.graph().nnz(),
                    dm.cardinality()
                );
                dm
            }
            None => {
                let n1 = parse_usize(opt(args, "--rows"), "--rows", 1024)?;
                let n2 = parse_usize(opt(args, "--cols"), "--cols", 1024)?;
                DynMatching::new(n1, n2, opts)
            }
        };
        match opt(args, "--listen") {
            Some(addr) => {
                let server =
                    Server::start(dm, listen_cfg(addr)?).map_err(|e| format!("{addr}: {e}"))?;
                println!("listening {}", server.local_addr());
                std::io::stdout().flush().ok();
                // Blocks until a client sends `shutdown`; admitted updates
                // are drained before the engine comes back.
                let dm = server.join().expect_card();
                println!("shutdown cardinality {} nnz {}", dm.cardinality(), dm.graph().nnz());
                Ok(())
            }
            None => match opt(args, "--input") {
                Some(path) => {
                    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                    serve(&mut dm, std::io::BufReader::new(f), quiet)
                }
                None => serve(&mut dm, std::io::stdin().lock(), quiet),
            },
        }
    };
    if let Some(path) = trace_out {
        mcm_obs::enable_tracing(false);
        let trace = mcm_obs::take_trace();
        std::fs::write(&path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote chrome://tracing JSON ({} events) to {path}", trace.events.len());
    }
    served
}

fn serve(dm: &mut DynMatching, mut input: impl BufRead, quiet: bool) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut staged: Vec<mcm_dyn::Update> = Vec::new();
    let (n1, n2) = (dm.graph().n1(), dm.graph().n2());
    let mut framer = LineFramer::new();

    'session: loop {
        let chunk = input.fill_buf().map_err(|e| format!("read error: {e}"))?;
        if chunk.is_empty() {
            // EOF. A half-received final command is reported, never run.
            if let Err(e) = framer.finish() {
                writeln!(out, "error line {}: {e}", framer.lines_seen() + 1).ok();
            }
            break;
        }
        let n = chunk.len();
        let lines = framer.push(chunk);
        input.consume(n);
        let mut lineno = framer.lines_seen() - lines.len() as u64;
        for line in lines {
            lineno += 1;
            if handle_stdin_line(dm, &line, lineno, &mut staged, &mut out, quiet, n1, n2) {
                break 'session;
            }
            out.flush().ok();
        }
    }
    // EOF flushes too, so piped traces that end in updates still repair.
    flush(dm, &mut staged, &mut out, quiet);
    out.flush().ok();
    Ok(())
}

/// Handles one stdin-mode line; returns `true` when the session ends.
#[allow(clippy::too_many_arguments)]
fn handle_stdin_line(
    dm: &mut DynMatching,
    line: &str,
    lineno: u64,
    staged: &mut Vec<mcm_dyn::Update>,
    out: &mut impl Write,
    quiet: bool,
    n1: usize,
    n2: usize,
) -> bool {
    let cmd = match parse_command(line) {
        Ok(Some(cmd)) => cmd,
        Ok(None) => return false,
        Err(e) => {
            writeln!(out, "error line {lineno}: {e}").ok();
            return false;
        }
    };
    let sw = mcm_obs::Stopwatch::new();
    let verb = verb_of(&cmd);
    // Range-check updates here so the engine can keep dense scratch.
    if let Command::Insert(r, c, w) = cmd {
        if r as usize >= n1 || c as usize >= n2 {
            writeln!(out, "error line {lineno}: vertex out of range ({r}, {c})").ok();
        } else if w.is_some_and(|w| w != 1.0) {
            writeln!(out, "error line {lineno}: weighted insert needs a --weighted daemon").ok();
        } else {
            staged.push(mcm_dyn::Update::Insert(r, c));
        }
        mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
        return false;
    }
    if let Command::Delete(r, c) = cmd {
        if r as usize >= n1 || c as usize >= n2 {
            writeln!(out, "error line {lineno}: vertex out of range ({r}, {c})").ok();
        } else {
            staged.push(mcm_dyn::Update::Delete(r, c));
        }
        mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
        return false;
    }
    flush(dm, staged, out, quiet);
    let ends = matches!(cmd, Command::Quit | Command::Shutdown);
    match cmd {
        Command::Query => {
            writeln!(out, "matching {}", dm.cardinality()).ok();
        }
        Command::State => {
            // The stdin loop is serial, so the batch counter doubles as
            // the writer sequence number of the socket mode.
            writeln!(
                out,
                "state seq {} epoch {} cardinality {} nnz {}",
                dm.stats().batches,
                dm.graph().epoch(),
                dm.cardinality(),
                dm.graph().nnz()
            )
            .ok();
        }
        Command::Sync => {
            writeln!(out, "synced seq {} cardinality {}", dm.stats().batches, dm.cardinality())
                .ok();
        }
        Command::Stats => {
            let line = format_stats_line(
                dm.stats(),
                dm.cardinality(),
                dm.graph().nnz(),
                dm.graph().epoch(),
                dm.opts().algo.name(),
            );
            writeln!(out, "{line}").ok();
        }
        Command::Metrics => {
            out.write_all(mcm_obs::prom::expose(mcm_obs::registry()).as_bytes()).ok();
            writeln!(out, "# EOF").ok();
        }
        Command::Snapshot(path) => {
            match write_matrix_market_file(&dm.graph().to_triples(), &path) {
                Ok(()) => {
                    writeln!(out, "snapshot {} nnz {}", path, dm.graph().nnz()).ok();
                }
                Err(e) => {
                    writeln!(out, "error line {lineno}: {path}: {e}").ok();
                }
            }
        }
        Command::Quit | Command::Shutdown => {}
        Command::Insert(..) | Command::Delete(..) => unreachable!("staged above"),
    }
    mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
    ends
}

fn flush(
    dm: &mut DynMatching,
    staged: &mut Vec<mcm_dyn::Update>,
    out: &mut impl Write,
    quiet: bool,
) {
    if staged.is_empty() {
        return;
    }
    let rep = dm.apply_batch(staged);
    staged.clear();
    if !quiet {
        writeln!(
            out,
            "batch applied {} dirty {} repaired {} path_edges {} sweeps {} fallback {} \
             cert {:?} seeds {} cardinality {}",
            rep.applied,
            rep.dirty,
            rep.repaired,
            rep.repair_path_edges,
            rep.global_sweeps,
            rep.fallback,
            rep.cert_scope,
            rep.cert_seeds,
            rep.cardinality,
        )
        .ok();
    }
}

/// The stdin loop of `mcmd --weighted`: same batching discipline as
/// [`serve`], repairs via the price-carrying weighted engine.
fn serve_weighted(
    wm: &mut WDynMatching,
    mut input: impl BufRead,
    quiet: bool,
) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut staged: Vec<WUpdate> = Vec::new();
    let (n1, n2) = (wm.graph().nrows(), wm.graph().ncols());
    let mut framer = LineFramer::new();

    'session: loop {
        let chunk = input.fill_buf().map_err(|e| format!("read error: {e}"))?;
        if chunk.is_empty() {
            if let Err(e) = framer.finish() {
                writeln!(out, "error line {}: {e}", framer.lines_seen() + 1).ok();
            }
            break;
        }
        let n = chunk.len();
        let lines = framer.push(chunk);
        input.consume(n);
        let mut lineno = framer.lines_seen() - lines.len() as u64;
        for line in lines {
            lineno += 1;
            if handle_weighted_line(wm, &line, lineno, &mut staged, &mut out, quiet, n1, n2) {
                break 'session;
            }
            out.flush().ok();
        }
    }
    flush_weighted(wm, &mut staged, &mut out, quiet);
    out.flush().ok();
    Ok(())
}

/// Handles one weighted stdin-mode line; returns `true` at session end.
#[allow(clippy::too_many_arguments)]
fn handle_weighted_line(
    wm: &mut WDynMatching,
    line: &str,
    lineno: u64,
    staged: &mut Vec<WUpdate>,
    out: &mut impl Write,
    quiet: bool,
    n1: usize,
    n2: usize,
) -> bool {
    let cmd = match parse_command(line) {
        Ok(Some(cmd)) => cmd,
        Ok(None) => return false,
        Err(e) => {
            writeln!(out, "error line {lineno}: {e}").ok();
            return false;
        }
    };
    let sw = mcm_obs::Stopwatch::new();
    let verb = verb_of(&cmd);
    match cmd {
        Command::Insert(r, c, w) => {
            if r as usize >= n1 || c as usize >= n2 {
                writeln!(out, "error line {lineno}: vertex out of range ({r}, {c})").ok();
            } else {
                staged.push(WUpdate::Insert(r, c, w.unwrap_or(1.0)));
            }
            mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
            return false;
        }
        Command::Delete(r, c) => {
            if r as usize >= n1 || c as usize >= n2 {
                writeln!(out, "error line {lineno}: vertex out of range ({r}, {c})").ok();
            } else {
                staged.push(WUpdate::Delete(r, c));
            }
            mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
            return false;
        }
        _ => {}
    }
    flush_weighted(wm, staged, out, quiet);
    let ends = matches!(cmd, Command::Quit | Command::Shutdown);
    match cmd {
        Command::Query => {
            writeln!(out, "matching {} weight {}", wm.cardinality(), wm.weight()).ok();
        }
        Command::State => {
            writeln!(
                out,
                "state seq {} epoch {} cardinality {} nnz {} weight {}",
                wm.stats().batches,
                wm.epoch(),
                wm.cardinality(),
                wm.nnz(),
                wm.weight()
            )
            .ok();
        }
        Command::Sync => {
            writeln!(out, "synced seq {} cardinality {}", wm.stats().batches, wm.cardinality())
                .ok();
        }
        Command::Stats => {
            let line =
                format_wstats_line(wm.stats(), wm.cardinality(), wm.weight(), wm.nnz(), wm.epoch());
            writeln!(out, "{line}").ok();
        }
        Command::Metrics => {
            out.write_all(mcm_obs::prom::expose(mcm_obs::registry()).as_bytes()).ok();
            writeln!(out, "# EOF").ok();
        }
        Command::Snapshot(path) => {
            let written =
                write_matrix_market_weighted_file(n1, n2, &wm.graph().to_weighted_triples(), &path);
            match written {
                Ok(()) => {
                    writeln!(out, "snapshot {} nnz {}", path, wm.nnz()).ok();
                }
                Err(e) => {
                    writeln!(out, "error line {lineno}: {path}: {e}").ok();
                }
            }
        }
        Command::Quit | Command::Shutdown => {}
        Command::Insert(..) | Command::Delete(..) => unreachable!("staged above"),
    }
    mcm_obs::observe_ns("mcmd_request_seconds", &[("verb", verb)], sw.elapsed_ns());
    ends
}

fn flush_weighted(
    wm: &mut WDynMatching,
    staged: &mut Vec<WUpdate>,
    out: &mut impl Write,
    quiet: bool,
) {
    if staged.is_empty() {
        return;
    }
    let rep = wm.apply_batch(staged);
    staged.clear();
    if !quiet {
        writeln!(
            out,
            "batch applied {} dirty {} repaired {} rebids {} cold {} weight_delta {} \
             weight {} cardinality {}",
            rep.applied,
            rep.dirty,
            rep.repaired,
            rep.rebids,
            rep.cold,
            rep.weight_delta,
            rep.weight,
            rep.cardinality,
        )
        .ok();
    }
}
