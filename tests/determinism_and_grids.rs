//! Determinism and grid-shape independence: the distributed algorithm must
//! compute *identical* matchings (not just identical cardinalities) on
//! every process grid when the semiring is deterministic, and identical
//! results run-to-run for fixed seeds.

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::semirings::SemiringKind;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::mesh::triangulated_grid;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_gen::smallworld::watts_strogatz;
use mcm_sparse::Triples;

fn inputs() -> Vec<(&'static str, Triples)> {
    vec![
        ("rmat_g500_s8", rmat(RmatParams::g500(8), 11)),
        ("mesh_12x12", triangulated_grid(12, 12, 4)),
        ("smallworld", watts_strogatz(150, 2, 0.2, 5)),
    ]
}

#[test]
fn matchings_are_identical_across_grid_shapes() {
    for (name, t) in inputs() {
        let run = |dim: usize, threads: usize| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, threads));
            maximum_matching(&mut ctx, &t, &McmOptions::default()).matching
        };
        let base = run(1, 1);
        for (dim, threads) in [(2, 1), (3, 2), (4, 12), (5, 1)] {
            assert_eq!(
                run(dim, threads),
                base,
                "{name}: grid {dim}x{dim} t={threads} diverged from serial"
            );
        }
    }
}

#[test]
fn randomized_semirings_are_seed_deterministic() {
    for (name, t) in inputs() {
        for seed in [0u64, 7, 1234] {
            let run = || {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
                let opts =
                    McmOptions { semiring: SemiringKind::RandRoot(seed), ..Default::default() };
                maximum_matching(&mut ctx, &t, &opts).matching
            };
            assert_eq!(run(), run(), "{name}: seed {seed} not reproducible");
        }
    }
}

#[test]
fn randomized_semirings_are_grid_independent() {
    // Hash-based tie-breaking (not RNG state) means even the randomized
    // semirings must agree across grid shapes.
    for (name, t) in inputs() {
        let run = |dim: usize| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let opts = McmOptions { semiring: SemiringKind::RandRoot(99), ..Default::default() };
            maximum_matching(&mut ctx, &t, &opts).matching
        };
        assert_eq!(run(1), run(3), "{name}");
    }
}

#[test]
fn generators_are_platform_stable() {
    // Spot-check known prefixes so a silent RNG change cannot slip by:
    // these values pin the SplitMix64-based streams.
    let g = rmat(RmatParams::g500(6), 42);
    assert_eq!(g.nrows(), 64);
    assert!(!g.is_empty());
    let first = g.entries()[0];
    let again = rmat(RmatParams::g500(6), 42);
    assert_eq!(again.entries()[0], first);

    let m1 = triangulated_grid(8, 8, 3);
    let m2 = triangulated_grid(8, 8, 3);
    assert_eq!(m1, m2);
}

#[test]
fn modeled_time_is_deterministic() {
    let t = rmat(RmatParams::g500(8), 3);
    let run = || {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(3, 12));
        let _ = maximum_matching(&mut ctx, &t, &McmOptions::default());
        ctx.timers.total()
    };
    assert_eq!(run(), run());
}

#[test]
fn stats_are_grid_independent_for_deterministic_semiring() {
    let t = triangulated_grid(10, 10, 7);
    let run = |dim: usize| {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let r = maximum_matching(&mut ctx, &t, &McmOptions::default());
        (r.stats.phases, r.stats.iterations, r.stats.augmentations)
    };
    let base = run(1);
    for dim in [2, 4] {
        assert_eq!(run(dim), base, "phase/iteration counts must not depend on the grid");
    }
}
