//! Validates the cost-model simulator against the real message-passing
//! engine: the same distributed kernels run on `p` actual ranks (threads
//! holding only their shard, exchanging through channels) must produce
//! identical results, and the data volumes that really crossed the wire
//! must match what the simulator charged.

use mcm_bsp::collectives::{balanced_owner, max_count, per_rank_counts};
use mcm_bsp::engine::run_ranks;
use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_core::primitives::invert;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::triples::block_offsets;
use mcm_sparse::{Dcsc, SpVec, Triples, Vidx};

/// Distributed SpMSpV executed on real ranks of a `pr × pc` grid:
/// rank `(i, j)` holds only block `(i, j)`; the frontier slice for block
/// column `j` starts at rank `(0, j)` and is broadcast down the column;
/// partials are folded onto rank `(i, 0)` per row. Returns the assembled
/// result.
fn rank_parallel_spmspv(t: &Triples, x: &SpVec<Vidx>, pr: usize, pc: usize) -> SpVec<Vidx> {
    let row_off = block_offsets(t.nrows(), pr);
    let col_off = block_offsets(t.ncols(), pc);
    let blocks: Vec<Dcsc> = t.split_blocks(pr, pc).iter().map(Dcsc::from_triples).collect();

    // Pre-slice the frontier per block column (this is rank (0, j)'s data).
    let xs = x.entries();
    let slices: Vec<Vec<(Vidx, Vidx)>> = (0..pc)
        .map(|bj| {
            let lo = xs.partition_point(|&(j, _)| (j as usize) < col_off[bj]);
            let hi = xs.partition_point(|&(j, _)| (j as usize) < col_off[bj + 1]);
            xs[lo..hi].to_vec() // global indices
        })
        .collect();

    let p = pr * pc;
    let outputs = run_ranks::<(Vidx, Vidx), _, _>(p, |mut comm| {
        let rank = comm.rank();
        let (bi, bj) = (rank / pc, rank % pc);
        let block = &blocks[rank];

        // --- Expand: rank (0, bj) broadcasts its slice down the column. ---
        let col_group: Vec<usize> = (0..pr).map(|i| i * pc + bj).collect();
        let contribution = if bi == 0 { slices[bj].clone() } else { Vec::new() };
        let gathered = comm.allgatherv(&col_group, contribution);
        // allgatherv moves (not clones) the self-copy, but sent_elems must
        // still count all `pr` copies — the cost model's allgather volume
        // includes the local one.
        let expected_sent = if bi == 0 { (pr * slices[bj].len()) as u64 } else { 0 };
        assert_eq!(comm.sent_elems(), expected_sent, "allgatherv send accounting");
        let my_x: Vec<(Vidx, Vidx)> = gathered.into_iter().flatten().collect();

        // --- Local multiply on this rank's block only. ---------------------
        let coff = col_off[bj] as Vidx;
        let local_x = SpVec::from_sorted_pairs(
            col_off[bj + 1] - col_off[bj],
            my_x.iter().map(|&(j, v)| (j - coff, v)).collect(),
        );
        let part = mcm_sparse::spmspv(
            block,
            &local_x,
            |lj, _v| lj + coff, // record the global parent column
            |acc: &Vidx, inc| inc < acc,
        );

        // --- Fold: gather partials (global rows) onto rank (bi, 0). --------
        let roff = row_off[bi] as Vidx;
        let mine: Vec<(Vidx, Vidx)> = part.y.iter().map(|(li, &v)| (li + roff, v)).collect();
        let row_group: Vec<usize> = (0..pc).map(|j| bi * pc + j).collect();
        let collected = comm.gather(&row_group, mine);

        if bj != 0 {
            return Vec::new();
        }
        // Merge with the same semiring "addition" (minParent), preserving
        // ascending block-column arrival via stable sort.
        let mut merged: Vec<(Vidx, Vidx)> = collected.into_iter().flatten().collect();
        merged.sort_by_key(|&(i, _)| i);
        let mut out: Vec<(Vidx, Vidx)> = Vec::new();
        for (i, v) in merged {
            match out.last_mut() {
                Some((last, acc)) if *last == i => {
                    if v < *acc {
                        *acc = v;
                    }
                }
                _ => out.push((i, v)),
            }
        }
        out
    });

    let mut entries: Vec<(Vidx, Vidx)> = outputs.into_iter().flatten().collect();
    entries.sort_unstable_by_key(|&(i, _)| i);
    SpVec::from_sorted_pairs(t.nrows(), entries)
}

#[test]
fn rank_parallel_spmspv_matches_simulator() {
    let t = rmat(RmatParams::g500(9), 17);
    let n = t.ncols();
    let x: SpVec<Vidx> =
        SpVec::from_sorted_pairs(n, (0..n).step_by(3).map(|j| (j as Vidx, j as Vidx)).collect());

    for (pr, pc) in [(1, 1), (2, 2), (3, 3), (4, 4)] {
        let real = rank_parallel_spmspv(&t, &x, pr, pc);

        let mut ctx = DistCtx::new(MachineConfig::hybrid(pr, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let simulated = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
        assert_eq!(real, simulated, "grid {pr}x{pc}");
    }
}

/// INVERT on real ranks: every rank owns a balanced block of the vector and
/// routes each of its pairs to the owner of the pair's value.
fn rank_parallel_invert(
    x: &SpVec<Vidx>,
    result_len: usize,
    p: usize,
) -> (SpVec<Vidx>, Vec<u64>, Vec<u64>) {
    let n = x.len();
    let per_rank_pairs: Vec<Vec<(Vidx, Vidx)>> = {
        let mut v: Vec<Vec<(Vidx, Vidx)>> = (0..p).map(|_| Vec::new()).collect();
        for (i, &val) in x.iter() {
            v[balanced_owner(n, p, i as usize)].push((i, val));
        }
        v
    };

    let results = run_ranks::<(Vidx, Vidx), _, _>(p, |mut comm| {
        let rank = comm.rank();
        let group: Vec<usize> = (0..p).collect();
        // Route (value → destination owner), carrying (new_index, new_value).
        let mut sends: Vec<Vec<(Vidx, Vidx)>> = (0..p).map(|_| Vec::new()).collect();
        for &(i, val) in &per_rank_pairs[rank] {
            let dst = balanced_owner(result_len, p, val as usize);
            sends[dst].push((val, i));
        }
        let received = comm.alltoallv(&group, sends);
        let recv_count: u64 = received.iter().map(|m| m.len() as u64).sum();
        // Keep-first-original-index on duplicates, like the simulator: sort
        // by (new_index, new_value) — new_value is the original index.
        let mut mine: Vec<(Vidx, Vidx)> = received.into_iter().flatten().collect();
        mine.sort_unstable();
        mine.dedup_by_key(|&mut (k, _)| k);
        (mine, comm.sent_elems(), recv_count)
    });

    let mut entries = Vec::new();
    let mut sent = Vec::new();
    let mut recvd = Vec::new();
    for (mine, s, r) in results {
        entries.extend(mine);
        sent.push(s);
        recvd.push(r);
    }
    entries.sort_unstable_by_key(|&(i, _)| i);
    (SpVec::from_sorted_pairs(result_len, entries), sent, recvd)
}

#[test]
fn rank_parallel_invert_matches_simulator_and_charged_volumes() {
    use mcm_sparse::permute::SplitMix64;
    let mut rng = SplitMix64::new(33);
    let n = 256;
    // An injective sparse vector (as the matching algorithms produce).
    let mut vals: Vec<Vidx> = (0..n as Vidx).collect();
    for k in (1..n).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        vals.swap(k, j);
    }
    let x = SpVec::from_sorted_pairs(n, (0..n).step_by(2).map(|i| (i as Vidx, vals[i])).collect());

    for p_dim in [2usize, 3, 4] {
        let p = p_dim * p_dim;
        let (real, sent, recvd) = rank_parallel_invert(&x, n, p);

        let mut ctx = DistCtx::new(MachineConfig::hybrid(p_dim, 1));
        let simulated = invert(&mut ctx, Kernel::Invert, &x, n);
        assert_eq!(real, simulated, "p = {p}");

        // Volume validation: the simulator charges the bottleneck from
        // per-rank send/recv pair counts; the engine counted what really
        // moved. (Engine elements are pairs; the model's "words" are
        // 2 × pairs.)
        let model_send = per_rank_counts(&x, p);
        let model_recv =
            mcm_bsp::collectives::per_rank_index_counts(n, p, x.iter().map(|(_, &v)| v));
        assert_eq!(sent, model_send, "sent pairs diverge at p = {p}");
        assert_eq!(recvd, model_recv, "received pairs diverge at p = {p}");
        let modeled_bottleneck = 2 * max_count(&model_send).max(max_count(&model_recv));
        let real_bottleneck = 2 * sent.iter().chain(recvd.iter()).copied().max().unwrap_or(0);
        assert_eq!(modeled_bottleneck, real_bottleneck);
    }
}
