//! End-to-end tests of the `mcm` command-line tool via the real binary.

use std::path::PathBuf;
use std::process::Command;

fn mcm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcm"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mcm-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_stats_match_roundtrip() {
    let file = tmp("roundtrip.mtx");
    let out = mcm()
        .args(["gen", "er", "--scale", "8", "--seed", "3", "--out"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = mcm().arg("stats").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rows:            256"), "{text}");

    // Every algorithm agrees on the cardinality.
    let mut cards = std::collections::BTreeSet::new();
    for algo in ["dist", "hk", "pf", "pr", "msbfs", "graft"] {
        let out = mcm().args(["match"]).arg(&file).args(["--algo", algo]).output().unwrap();
        assert!(out.status.success(), "algo {algo}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        let card: usize = text
            .split("maximum matching: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no cardinality in output: {text}"));
        cards.insert(card);
    }
    assert_eq!(cards.len(), 1, "algorithms disagree: {cards:?}");
}

#[test]
fn match_writes_pairs_file() {
    let file = tmp("pairs.mtx");
    assert!(mcm()
        .args(["gen", "mesh", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let pairs = tmp("pairs.txt");
    assert!(mcm()
        .args(["match"])
        .arg(&file)
        .args(["--algo", "hk", "--out"])
        .arg(&pairs)
        .status()
        .unwrap()
        .success());
    let body = std::fs::read_to_string(&pairs).unwrap();
    // 1-based "row col" lines, one per matched column.
    assert!(!body.is_empty());
    for line in body.lines() {
        let mut it = line.split(' ');
        let r: usize = it.next().unwrap().parse().unwrap();
        let c: usize = it.next().unwrap().parse().unwrap();
        assert!(r >= 1 && c >= 1);
    }
}

#[test]
fn permute_then_btf() {
    let file = tmp("kkt_like.mtx");
    assert!(mcm()
        .args(["gen", "mesh", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let permuted = tmp("kkt_perm.mtx");
    let out = mcm().arg("permute").arg(&file).arg("--out").arg(&permuted).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = mcm().arg("btf").arg(&permuted).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("diagonal blocks:"));
}

#[test]
fn dm_reports_blocks() {
    let file = tmp("dm.mtx");
    assert!(mcm()
        .args(["gen", "g500", "--scale", "7", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let out = mcm().arg("dm").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Horizontal"));
    assert!(text.contains("Vertical"));
}

#[test]
fn helpful_errors() {
    let out = mcm().arg("match").arg("/nonexistent/file.mtx").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = mcm().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = mcm().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}
