//! End-to-end tests of the `mcm` command-line tool via the real binary.

use std::path::PathBuf;
use std::process::Command;

fn mcm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcm"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mcm-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_stats_match_roundtrip() {
    let file = tmp("roundtrip.mtx");
    let out = mcm()
        .args(["gen", "er", "--scale", "8", "--seed", "3", "--out"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = mcm().arg("stats").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rows:            256"), "{text}");

    // Every algorithm agrees on the cardinality.
    let mut cards = std::collections::BTreeSet::new();
    for algo in ["dist", "hk", "pf", "pr", "msbfs", "graft", "ppf", "auction", "auto"] {
        let out = mcm().args(["match"]).arg(&file).args(["--algo", algo]).output().unwrap();
        assert!(out.status.success(), "algo {algo}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        let card: usize = text
            .split("maximum matching: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no cardinality in output: {text}"));
        cards.insert(card);
    }
    assert_eq!(cards.len(), 1, "algorithms disagree: {cards:?}");
}

#[test]
fn match_writes_pairs_file() {
    let file = tmp("pairs.mtx");
    assert!(mcm()
        .args(["gen", "mesh", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let pairs = tmp("pairs.txt");
    assert!(mcm()
        .args(["match"])
        .arg(&file)
        .args(["--algo", "hk", "--out"])
        .arg(&pairs)
        .status()
        .unwrap()
        .success());
    let body = std::fs::read_to_string(&pairs).unwrap();
    // 1-based "row col" lines, one per matched column.
    assert!(!body.is_empty());
    for line in body.lines() {
        let mut it = line.split(' ');
        let r: usize = it.next().unwrap().parse().unwrap();
        let c: usize = it.next().unwrap().parse().unwrap();
        assert!(r >= 1 && c >= 1);
    }
}

#[test]
fn permute_then_btf() {
    let file = tmp("kkt_like.mtx");
    assert!(mcm()
        .args(["gen", "mesh", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let permuted = tmp("kkt_perm.mtx");
    let out = mcm().arg("permute").arg(&file).arg("--out").arg(&permuted).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = mcm().arg("btf").arg(&permuted).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("diagonal blocks:"));
}

#[test]
fn dm_reports_blocks() {
    let file = tmp("dm.mtx");
    assert!(mcm()
        .args(["gen", "g500", "--scale", "7", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let out = mcm().arg("dm").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Horizontal"));
    assert!(text.contains("Vertical"));
}

#[test]
fn helpful_errors() {
    let out = mcm().arg("match").arg("/nonexistent/file.mtx").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = mcm().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = mcm().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

fn mcmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcmd"))
}

/// Drives `mcmd` over stdin and returns its stdout.
fn mcmd_session(args: &[&str], script: &str) -> String {
    use std::io::Write;
    let mut child = mcmd()
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(script.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn mcmd_streams_updates_and_answers_queries() {
    let text = mcmd_session(
        &["--rows", "8", "--cols", "8", "--quiet", "--full-verify"],
        "insert 0 0\ninsert 1 1\nquery\n\
         # deleting the matched edge must shrink the matching\n\
         delete 0 0\nquery\n\
         {\"op\": \"insert\", \"u\": 0, \"v\": 1}\n{\"v\": 0, \"u\": 1, \"op\": \"insert\"}\nquery\n\
         stats\nquit\n",
    );
    let cards: Vec<&str> = text.lines().filter(|l| l.starts_with("matching ")).collect();
    assert_eq!(cards, ["matching 2", "matching 1", "matching 2"], "{text}");
    let stats = text.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{text}"));
    assert!(stats.contains("matched_deletes 1"), "{stats}");
    assert!(stats.contains("batches 3"), "{stats}");
}

#[test]
fn mcmd_snapshot_roundtrips_through_mcm() {
    let snap = tmp("mcmd_snap.mtx");
    let script = format!("insert 0 0\ninsert 0 1\ninsert 1 0\nsnapshot {}\nquit\n", snap.display());
    let text = mcmd_session(&["--rows", "4", "--cols", "4", "--quiet"], &script);
    assert!(text.contains("snapshot"), "{text}");
    // The snapshot is a valid Matrix Market file the static CLI can read,
    // and the dynamic and static answers agree.
    let out = mcm().args(["match"]).arg(&snap).args(["--algo", "hk"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("maximum matching: 2"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn mcmd_weighted_streams_reweights_and_snapshots() {
    // Weighted stdin round-trip: plain and JSONL weighted inserts, a
    // reweight that reroutes the optimum, a matched-edge delete, the
    // weighted stats shape, and a weighted snapshot the static
    // `mcm match --weighted` CLI re-reads to the same weight.
    let snap = tmp("mcmd_wsnap.mtx");
    let script = format!(
        "insert 0 0 10\ninsert 0 1 1\ninsert 1 1 10\nquery\n\
         {{\"op\": \"insert\", \"u\": 2, \"v\": 2, \"w\": 7}}\nquery\n\
         # reweighting the matched diagonal down reroutes the optimum\n\
         insert 0 0 2\nquery\n\
         delete 1 1\nquery\n\
         stats\nsnapshot {}\nquit\n",
        snap.display()
    );
    let text = mcmd_session(
        &["--weighted", "--rows", "8", "--cols", "8", "--quiet", "--full-verify"],
        &script,
    );
    let answers: Vec<&str> = text.lines().filter(|l| l.starts_with("matching ")).collect();
    assert_eq!(
        answers,
        [
            "matching 2 weight 20",
            "matching 3 weight 27",
            "matching 3 weight 19",
            "matching 2 weight 9"
        ],
        "{text}"
    );
    let stats = text.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{text}"));
    assert!(stats.ends_with("algo wauction"), "{stats}");
    assert!(stats.contains(" weight 9 "), "{stats}");
    assert!(stats.contains("matched_deletes 1"), "{stats}");

    let out = mcm().args(["match", "--weighted"]).arg(&snap).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total weight 9.000000"), "{text}");
    assert!(text.contains("algo: wauction"), "{text}");
}

#[test]
fn mcmd_without_weighted_rejects_weighted_inserts() {
    // A cardinality daemon must refuse to silently drop weights; the
    // weight-1.0 spelling is cardinality semantics and stays accepted.
    let text = mcmd_session(
        &["--rows", "4", "--cols", "4", "--quiet"],
        "insert 0 0 5\ninsert 1 1 1\nquery\nquit\n",
    );
    assert!(text.contains("error line 1: weighted insert needs a --weighted daemon"), "{text}");
    assert!(text.contains("matching 1"), "{text}");
}

#[test]
fn mcmd_reports_errors_without_dying() {
    let text = mcmd_session(
        &["--rows", "4", "--cols", "4", "--quiet"],
        "insert 0 0\nfrobnicate\ninsert 99 0\nquery\nquit\n",
    );
    assert!(text.contains("error line 2"), "{text}");
    assert!(text.contains("error line 3"), "{text}");
    assert!(text.contains("matching 1"), "{text}");
}

#[test]
fn mcmd_engine_backend_agrees_with_simulator() {
    // Same trace, forced fallbacks (--fallback 0), both backends: query
    // answers must be identical, and the engine run must really fall back.
    let script = "insert 0 0\ninsert 0 1\ninsert 1 0\ninsert 2 2\nquery\n\
                  delete 0 0\ninsert 3 2\ninsert 2 3\nquery\nstats\nquit\n";
    let sim = mcmd_session(
        &["--rows", "6", "--cols", "6", "--fallback", "0", "--full-verify", "--quiet"],
        script,
    );
    let eng = mcmd_session(
        &[
            "--rows",
            "6",
            "--cols",
            "6",
            "--fallback",
            "0",
            "--full-verify",
            "--quiet",
            "--backend",
            "engine",
            "--ranks",
            "4",
            "--threads",
            "2",
        ],
        script,
    );
    let cards = |t: &str| -> Vec<String> {
        t.lines().filter(|l| l.starts_with("matching ")).map(str::to_owned).collect()
    };
    assert_eq!(cards(&sim), cards(&eng), "sim:\n{sim}\nengine:\n{eng}");
    let stats = eng.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{eng}"));
    assert!(!stats.contains("fallbacks 0"), "engine run never fell back: {stats}");
}

#[test]
fn mcmd_shared_backend_agrees_with_simulator() {
    // Same forced-fallback trace on the fused shared-memory arena: query
    // answers must match the simulator's, and fallbacks must really run.
    let script = "insert 0 0\ninsert 0 1\ninsert 1 0\ninsert 2 2\nquery\n\
                  delete 0 0\ninsert 3 2\ninsert 2 3\nquery\nstats\nquit\n";
    let sim = mcmd_session(
        &["--rows", "6", "--cols", "6", "--fallback", "0", "--full-verify", "--quiet"],
        script,
    );
    let shr = mcmd_session(
        &[
            "--rows",
            "6",
            "--cols",
            "6",
            "--fallback",
            "0",
            "--full-verify",
            "--quiet",
            "--backend",
            "shared",
            "--ranks",
            "4",
            "--threads",
            "2",
        ],
        script,
    );
    let cards = |t: &str| -> Vec<String> {
        t.lines().filter(|l| l.starts_with("matching ")).map(str::to_owned).collect()
    };
    assert_eq!(cards(&sim), cards(&shr), "sim:\n{sim}\nshared:\n{shr}");
    let stats = shr.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{shr}"));
    assert!(!stats.contains("fallbacks 0"), "shared run never fell back: {stats}");
}

#[test]
fn mcmd_rejects_bad_backend_flags() {
    for args in [
        &["--backend", "frob"][..],
        &["--backend", "engine", "--ranks", "3"][..],
        &["--backend", "engine", "--threads", "0"][..],
        &["--backend", "shared", "--ranks", "3"][..],
        &["--backend", "shared", "--threads", "0"][..],
    ] {
        let out = mcmd().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(String::from_utf8_lossy(&out.stderr).contains("error"), "{args:?}");
    }
}

#[test]
fn match_breakdown_prints_measured_vs_modeled() {
    let file = tmp("breakdown.mtx");
    assert!(mcm()
        .args(["gen", "g500", "--scale", "7", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let trace = tmp("breakdown_trace.json");
    let out = mcm()
        .args(["match"])
        .arg(&file)
        .args(["--backend", "engine", "--ranks", "4", "--threads", "2", "--breakdown"])
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    // The side-by-side table: header plus measured seconds for the
    // kernels every run exercises.
    assert!(err.contains("measured_s"), "{err}");
    assert!(err.contains("modeled_s"), "{err}");
    assert!(err.contains("SpMV"), "{err}");
    assert!(err.contains("total"), "{err}");
    // And a loadable Chrome trace next to it.
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
}

#[test]
fn match_breakdown_requires_dist() {
    let file = tmp("breakdown_hk.mtx");
    assert!(mcm()
        .args(["gen", "er", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let out =
        mcm().args(["match"]).arg(&file).args(["--algo", "hk", "--breakdown"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--algo dist"));
}

#[test]
fn match_algo_line_reports_which_engine_ran() {
    let file = tmp("algo_line.mtx");
    assert!(mcm()
        .args(["gen", "er", "--scale", "7", "--seed", "5", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    for (algo, want) in
        [("dist", "algo: msbfs"), ("ppf", "algo: ppf"), ("auction", "algo: auction")]
    {
        let out = mcm().args(["match"]).arg(&file).args(["--algo", algo]).output().unwrap();
        assert!(out.status.success(), "algo {algo}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(want), "algo {algo}: {text}");
        assert!(!text.contains("selected by auto"), "algo {algo} is explicit: {text}");
    }
    // `auto` must name the concrete engine it picked and say the selector
    // chose it.
    let out = mcm().args(["match"]).arg(&file).args(["--algo", "auto"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("algo: "))
        .unwrap_or_else(|| panic!("no algo line: {text}"));
    assert!(line.contains("(selected by auto)"), "{line}");
    assert!(
        ["msbfs", "ppf", "auction"].iter().any(|name| line.contains(name)),
        "auto must resolve to a concrete engine: {line}"
    );
}

#[test]
fn match_rejects_unknown_algo_names() {
    let file = tmp("bad_algo.mtx");
    assert!(mcm()
        .args(["gen", "er", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let out = mcm().args(["match"]).arg(&file).args(["--algo", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn mcmd_algo_flag_routes_fallbacks_and_reports_the_engine() {
    // Same forced-fallback trace under every portfolio engine: the query
    // answers must agree (all engines are maximum, full_verify certifies
    // each batch) and the stats line must report the engine that ran.
    let script = "insert 0 0\ninsert 0 1\ninsert 1 0\ninsert 2 2\nquery\n\
                  delete 0 0\ninsert 3 2\ninsert 2 3\nquery\nstats\nquit\n";
    let base = ["--rows", "6", "--cols", "6", "--fallback", "0", "--full-verify", "--quiet"];
    let sim = mcmd_session(&base, script);
    let cards = |t: &str| -> Vec<String> {
        t.lines().filter(|l| l.starts_with("matching ")).map(str::to_owned).collect()
    };
    for algo in ["ppf", "auction"] {
        let mut args = base.to_vec();
        args.extend(["--algo", algo]);
        let text = mcmd_session(&args, script);
        assert_eq!(cards(&sim), cards(&text), "--algo {algo} diverged:\n{sim}\n{text}");
        let stats =
            text.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{text}"));
        assert!(!stats.contains("fallbacks 0"), "--algo {algo} never fell back: {stats}");
        assert!(stats.contains(&format!("algo {algo}")), "--algo {algo}: {stats}");
    }
}

#[test]
fn mcmd_algo_auto_resolves_to_a_concrete_engine() {
    // With `--fallback 0` every batch is a fallback solve, so auto must
    // have measured the graph and the stats line names its concrete pick,
    // never the literal "auto".
    let text = mcmd_session(
        &[
            "--rows",
            "6",
            "--cols",
            "6",
            "--fallback",
            "0",
            "--full-verify",
            "--quiet",
            "--algo",
            "auto",
        ],
        "insert 0 0\ninsert 0 1\ninsert 1 0\nquery\nstats\nquit\n",
    );
    assert!(text.contains("matching 2"), "{text}");
    let stats = text.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{text}"));
    assert!(!stats.contains("fallbacks 0"), "auto run never fell back: {stats}");
    let algo = stats
        .split(" algo ")
        .nth(1)
        .map(str::trim)
        .unwrap_or_else(|| panic!("no algo token: {stats}"));
    assert!(["msbfs", "ppf", "auction"].contains(&algo), "auto leaked through: {stats}");
}

#[test]
fn mcmd_rejects_unknown_algo_names() {
    let out = mcmd().args(["--algo", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown algorithm"), "{err}");
}

#[test]
fn mcmd_metrics_command_serves_prometheus_text() {
    let text = mcmd_session(
        &["--rows", "8", "--cols", "8", "--quiet"],
        "insert 0 0\ninsert 1 1\nquery\nmetrics\nquit\n",
    );
    // Strategy counters (satellite: per-batch fallback decisions), batch
    // latency histogram, per-request latencies, and the EOF terminator.
    assert!(text.contains("# TYPE mcm_dyn_batches_total counter"), "{text}");
    assert!(text.contains("mcm_dyn_batches_total{strategy=\"incremental\"} 1"), "{text}");
    assert!(text.contains("mcm_dyn_batch_seconds_count{strategy=\"incremental\"} 1"), "{text}");
    assert!(text.contains("mcmd_request_seconds_count{verb=\"insert\"} 2"), "{text}");
    assert!(text.contains("mcmd_request_seconds_count{verb=\"query\"} 1"), "{text}");
    assert!(text.lines().any(|l| l == "# EOF"), "{text}");
}

#[test]
fn mcmd_metrics_labels_warm_start_fallbacks() {
    let text = mcmd_session(
        &["--rows", "6", "--cols", "6", "--fallback", "0", "--quiet"],
        "insert 0 0\ninsert 0 1\ninsert 1 0\nquery\nmetrics\nquit\n",
    );
    assert!(text.contains("mcm_dyn_batches_total{strategy=\"warm_start\"} 1"), "{text}");
    let stats = mcmd_session(
        &["--rows", "6", "--cols", "6", "--fallback", "0", "--quiet"],
        "insert 0 0\ninsert 0 1\ninsert 1 0\nstats\nquit\n",
    );
    let line = stats.lines().find(|l| l.starts_with("stats ")).unwrap_or_else(|| panic!("{stats}"));
    assert!(line.contains("incremental 0"), "{line}");
    assert!(line.contains("warm_start 1"), "{line}");
}

#[test]
fn mcmd_trace_out_writes_chrome_json() {
    use std::io::Write;
    let trace = tmp("mcmd_trace.json");
    let mut child = mcmd()
        .args(["--rows", "8", "--cols", "8", "--quiet", "--trace-out"])
        .arg(&trace)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"insert 0 0\ninsert 1 1\nquery\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"name\":\"apply_batch\""), "{json}");
}

#[test]
fn mcmd_loads_a_matrix_and_repairs_on_top() {
    let file = tmp("mcmd_load.mtx");
    assert!(mcm()
        .args(["gen", "mesh", "--scale", "6", "--out"])
        .arg(&file)
        .status()
        .unwrap()
        .success());
    let text = mcmd_session(&["--load", file.to_str().unwrap(), "--quiet"], "query\nquit\n");
    let loaded =
        text.lines().find(|l| l.starts_with("loaded ")).unwrap_or_else(|| panic!("{text}"));
    // "loaded <path> <n1>x<n2> nnz <z> matching <card>"
    let card: usize = loaded.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(card > 0, "{loaded}");
    assert!(text.contains(&format!("matching {card}")), "{text}");
}
