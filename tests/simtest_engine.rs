//! Channel-engine collectives under schedule perturbation, plus the
//! edge cases the PR-1 self-send-by-move path introduced: p = 1 groups,
//! empty payloads, and exact `sent_elems` accounting (no element may be
//! counted twice however the schedule reorders, stalls, or retries).

use mcm_bsp::engine::{run_ranks, run_ranks_sched, RankComm};
use mcm_bsp::Schedule;

// ---------------------------------------------------------------------------
// Edge cases on the friendly schedule.
// ---------------------------------------------------------------------------

#[test]
fn p1_alltoallv_and_allgatherv_loop_back() {
    let results = run_ranks::<u32, _, _>(1, |mut comm| {
        let a2a = comm.alltoallv(&[0], vec![vec![7, 8]]);
        let ag = comm.allgatherv(&[0], vec![9]);
        let g = comm.gather(&[0], vec![10]);
        (a2a, ag, g, comm.sent_elems())
    });
    let (a2a, ag, g, sent) = &results[0];
    assert_eq!(*a2a, vec![vec![7, 8]]);
    assert_eq!(*ag, vec![vec![9]]);
    assert_eq!(*g, vec![vec![10]]);
    // 2 (alltoallv) + 1 (allgatherv self-copy) + 1 (gather): each element
    // exactly once — the self-send-by-move path must not double-count.
    assert_eq!(*sent, 4);
}

#[test]
fn empty_payloads_cost_nothing_and_deliver_empty() {
    let results = run_ranks::<u32, _, _>(3, |mut comm| {
        let group: Vec<usize> = (0..3).collect();
        let a2a = comm.alltoallv(&group, vec![Vec::new(), Vec::new(), Vec::new()]);
        let ag = comm.allgatherv(&group, Vec::new());
        (a2a, ag, comm.sent_elems())
    });
    for (a2a, ag, sent) in results {
        assert_eq!(sent, 0, "empty payloads must charge zero sent elements");
        assert_eq!(a2a, vec![Vec::new(), Vec::new(), Vec::new()]);
        assert_eq!(ag, vec![Vec::new(), Vec::new(), Vec::new()]);
    }
}

#[test]
fn allgatherv_self_send_by_move_counts_exactly_once_per_member() {
    // The self-copy is moved (not cloned), but accounting must equal the
    // cost model's allgather volume: |group| copies of `mine`, no more.
    for p in [1usize, 2, 4] {
        let results = run_ranks::<u64, _, _>(p, |mut comm| {
            let group: Vec<usize> = (0..p).collect();
            let mine = vec![comm.rank() as u64; 5];
            let gathered = comm.allgatherv(&group, mine);
            (gathered, comm.sent_elems())
        });
        for (gathered, sent) in results {
            assert_eq!(sent, (p * 5) as u64, "p = {p}");
            for (src, msg) in gathered.into_iter().enumerate() {
                assert_eq!(msg, vec![src as u64; 5], "p = {p}");
            }
        }
    }
}

#[test]
fn mixed_empty_and_nonempty_sends_route_exactly() {
    // Rank r sends r elements to each even destination, nothing to odd
    // ones: asymmetric payloads exercise the stash under reordering.
    let p = 4;
    let results = run_ranks::<u32, _, _>(p, |mut comm| {
        let group: Vec<usize> = (0..p).collect();
        let me = comm.rank() as u32;
        let sends = (0..p)
            .map(|dst| if dst % 2 == 0 { vec![me; comm.rank()] } else { Vec::new() })
            .collect();
        (comm.alltoallv(&group, sends), comm.sent_elems())
    });
    for (dst, (recvd, sent)) in results.into_iter().enumerate() {
        // Rank r sends r elements to each of the two even destinations.
        assert_eq!(sent, 2 * dst as u64, "rank {dst} charged the wrong volume");
        for (src, msg) in recvd.into_iter().enumerate() {
            let want = if dst % 2 == 0 { vec![src as u32; src] } else { Vec::new() };
            assert_eq!(msg, want, "src {src} dst {dst}");
        }
    }
}

// ---------------------------------------------------------------------------
// The same collectives under adversarial schedules.
// ---------------------------------------------------------------------------

/// Per-rank outcome of [`workload`]: last alltoallv, allgatherv, gather,
/// and the charged element count.
type WorkloadResult = (Vec<Vec<u32>>, Vec<Vec<u32>>, Vec<Vec<u32>>, u64);

/// A multi-round mixed-collective body whose results and accounting must
/// be schedule-oblivious.
fn workload(mut comm: RankComm<u32>) -> WorkloadResult {
    let p = comm.p();
    let group: Vec<usize> = (0..p).collect();
    let me = comm.rank() as u32;
    let mut last_a2a = Vec::new();
    for round in 0..4u32 {
        let sends = (0..p).map(|dst| vec![me * 100 + dst as u32 + round; (dst + 1) % 3]).collect();
        last_a2a = comm.alltoallv(&group, sends);
    }
    let ag = comm.allgatherv(&group, vec![me; 2]);
    let g = comm.gather(&group, vec![me + 50]);
    (last_a2a, ag, g, comm.sent_elems())
}

#[test]
fn perturbed_collectives_match_friendly_schedule_exactly() {
    for p in [2usize, 4, 6] {
        let friendly = run_ranks::<u32, _, _>(p, workload);
        for seed in [0u64, 1, 7, 0x5EED] {
            let perturbed = run_ranks_sched::<u32, _, _>(p, &Schedule::new(seed), workload);
            assert_eq!(perturbed, friendly, "p = {p} seed {seed}");
        }
    }
}

#[test]
fn perturbed_subgroup_collectives_do_not_interfere() {
    // Disjoint column groups run concurrently under stalls and reordering
    // (the 2D-grid SpMSpV expand/fold communication shape).
    let body = |mut comm: RankComm<u32>| {
        let base = (comm.rank() / 2) * 2;
        let group = vec![base, base + 1];
        let sends = group.iter().map(|&d| vec![(comm.rank() * 4 + d) as u32]).collect();
        let a2a = comm.alltoallv(&group, sends);
        let ag = comm.allgatherv(&group, vec![comm.rank() as u32]);
        (a2a, ag)
    };
    let friendly = run_ranks::<u32, _, _>(4, body);
    for seed in 0..8u64 {
        let perturbed = run_ranks_sched::<u32, _, _>(4, &Schedule::new(seed), body);
        assert_eq!(perturbed, friendly, "seed {seed}");
    }
}

#[test]
fn stalls_and_retries_are_observable_but_never_change_accounting() {
    let body = |mut comm: RankComm<u32>| {
        let p = comm.p();
        let group: Vec<usize> = (0..p).collect();
        for _ in 0..6 {
            let sends = (0..p).map(|d| vec![comm.rank() as u32; d + 1]).collect();
            let _ = comm.alltoallv(&group, sends);
        }
        (comm.sent_elems(), comm.sched_stats().expect("sched stats must exist"))
    };
    let mut any_stall = false;
    for seed in 0..6u64 {
        let results = run_ranks_sched::<u32, _, _>(4, &Schedule::new(seed), body);
        for (rank, (sent, (stalls, _retries))) in results.into_iter().enumerate() {
            // 6 rounds × Σ(d+1 for d in 0..4) = 6 × 10 elements per rank.
            assert_eq!(sent, 60, "seed {seed} rank {rank}");
            any_stall |= stalls > 0;
        }
    }
    assert!(any_stall, "the default schedule config should inject at least one stall");
}

#[test]
fn perturbed_runs_replay_their_decision_streams() {
    let body = |mut comm: RankComm<u32>| {
        let group: Vec<usize> = (0..comm.p()).collect();
        for _ in 0..3 {
            let sends = (0..comm.p()).map(|_| vec![comm.rank() as u32]).collect();
            let _ = comm.alltoallv(&group, sends);
        }
        comm.sched_trace().expect("trace must exist under a schedule")
    };
    let a = run_ranks_sched::<u32, _, _>(3, &Schedule::new(123), body);
    let b = run_ranks_sched::<u32, _, _>(3, &Schedule::new(123), body);
    let c = run_ranks_sched::<u32, _, _>(3, &Schedule::new(124), body);
    assert_eq!(a, b, "same seed must replay identical per-rank schedules");
    assert_ne!(a, c, "different seeds must perturb differently");
}
