//! Full verification sweep over every Table II stand-in: the distributed
//! algorithm must reach the Hopcroft–Karp cardinality and pass the Berge
//! certificate on all 13 matrices.
//!
//! These are the heaviest tests in the suite (~200K-edge graphs each);
//! they are `#[ignore]`d so `cargo test` in debug mode stays fast. Run
//! them with:
//!
//! ```text
//! cargo test --release --test standin_verification -- --ignored
//! ```

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify::is_maximum;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::table2;

#[test]
#[ignore = "heavy: run with --release -- --ignored"]
fn all_standins_reach_the_maximum() {
    for s in table2() {
        let t = s.generate();
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None);
        assert!(is_maximum(&a, &want), "{}: HK oracle not maximum?!", s.name);

        let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 4));
        let r = maximum_matching(&mut ctx, &t, &McmOptions::default());
        r.matching.validate(&a).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert_eq!(
            r.matching.cardinality(),
            want.cardinality(),
            "{}: distributed cardinality diverges from Hopcroft-Karp",
            s.name
        );
        assert!(is_maximum(&a, &r.matching), "{}: Berge certificate failed", s.name);
    }
}

#[test]
#[ignore = "heavy: run with --release -- --ignored"]
fn serial_family_agrees_on_standins() {
    use mcm_core::serial::{ms_bfs_graft, pothen_fan, push_relabel};
    for s in table2().into_iter().take(4) {
        let t = s.generate();
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        assert_eq!(pothen_fan(&a, None).cardinality(), want, "{} (PF)", s.name);
        assert_eq!(push_relabel(&a).cardinality(), want, "{} (PR)", s.name);
        assert_eq!(ms_bfs_graft(&a, None).0.cardinality(), want, "{} (graft)", s.name);
    }
}
