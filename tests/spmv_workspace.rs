//! Equivalence and zero-allocation tests for the SpMSpV workspace layer.
//!
//! The `*_into` kernels and the intra-block parallel path must be
//! **bit-identical** to the seed kernels — same output entries, same flops —
//! across semirings (MinParent, RandParent, counting monoid) on random
//! R-MAT and Erdős–Rényi blocks. On top of that, the workspace must reach a
//! zero-allocation steady state: after the first (cold) call, the output
//! vector's buffer pointer and capacity stay put and the workspace reports
//! reuse hits. All randomness is seeded SplitMix64 — deterministic runs.

use mcm_core::semirings::SemiringKind;
use mcm_core::vertex::Vertex;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::workspace::SpmvWorkspace;
use mcm_sparse::{spmspv, spmspv_monoid, Dcsc, SpVec, Vidx};

/// A frontier over `ncols` columns containing roughly `ncols / every`
/// entries, each carrying a seed Vertex.
fn frontier(ncols: usize, every: usize, rng: &mut SplitMix64) -> SpVec<Vertex> {
    let pairs = (0..ncols as Vidx)
        .filter(|_| rng.below(every as u64) == 0)
        .map(|j| (j, Vertex::seed(j)))
        .collect();
    SpVec::from_sorted_pairs(ncols, pairs)
}

fn test_blocks() -> Vec<Dcsc> {
    vec![
        Dcsc::from_triples(&rmat(RmatParams::g500(9), 42)),
        Dcsc::from_triples(&rmat(RmatParams::er(9), 7)),
        Dcsc::from_triples(&rmat(RmatParams::ssca(8), 11)),
    ]
}

#[test]
fn workspace_and_parallel_match_seed_kernel_across_semirings() {
    let blocks = test_blocks();
    let mut rng = SplitMix64::new(0xD0C5);
    for (bi, a) in blocks.iter().enumerate() {
        for semiring in
            [SemiringKind::MinParent, SemiringKind::RandParent(3), SemiringKind::RandRoot(17)]
        {
            for every in [1usize, 4, 64] {
                let x = frontier(a.ncols(), every, &mut rng);
                let seed = spmspv(
                    a,
                    &x,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| semiring.take_incoming(acc, inc),
                );

                let mut ws = SpmvWorkspace::new();
                let mut y = SpVec::new(0);
                let flops = ws.spmspv_into(
                    a,
                    &x,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| semiring.take_incoming(acc, inc),
                    &mut y,
                );
                assert_eq!(y, seed.y, "block {bi} {semiring:?} every {every}: into");
                assert_eq!(flops, seed.flops, "block {bi} {semiring:?}: into flops");

                for threads in [2usize, 3, 8] {
                    let mut wsp = SpmvWorkspace::new();
                    let mut yp = SpVec::new(0);
                    let pflops = wsp.spmspv_parallel_into(
                        a,
                        &x,
                        threads,
                        |j, v: &Vertex| Vertex::new(j, v.root),
                        |acc, inc| semiring.take_incoming(acc, inc),
                        &mut yp,
                    );
                    assert_eq!(
                        yp, seed.y,
                        "block {bi} {semiring:?} every {every} threads {threads}: parallel"
                    );
                    assert_eq!(
                        pflops, seed.flops,
                        "block {bi} {semiring:?} threads {threads}: parallel flops"
                    );
                }
            }
        }
    }
}

#[test]
fn monoid_workspace_matches_seed_kernel() {
    let blocks = test_blocks();
    let mut rng = SplitMix64::new(0xC027);
    for (bi, a) in blocks.iter().enumerate() {
        for every in [1usize, 8] {
            let pairs = (0..a.ncols() as Vidx)
                .filter(|_| rng.below(every as u64) == 0)
                .map(|j| (j, ()))
                .collect();
            let x: SpVec<()> = SpVec::from_sorted_pairs(a.ncols(), pairs);
            let seed = spmspv_monoid(a, &x, |_, _| 1u32, |acc, inc| *acc += inc);
            let mut ws = SpmvWorkspace::new();
            let mut y = SpVec::new(0);
            let flops = ws.spmspv_monoid_into(a, &x, |_, _| 1u32, |acc, inc| *acc += inc, &mut y);
            assert_eq!(y, seed.y, "block {bi} every {every}");
            assert_eq!(flops, seed.flops, "block {bi} every {every}");
        }
    }
}

#[test]
fn steady_state_performs_zero_heap_allocation() {
    // After the first (cold) call, repeated products with the same shapes
    // must not move or grow any buffer: the output SpVec keeps its pointer
    // and capacity, and the workspace records every later call as a reuse
    // hit. Three-plus iterations make the steady state observable.
    let a = Dcsc::from_triples(&rmat(RmatParams::g500(9), 42));
    let mut rng = SplitMix64::new(0xA110C);
    let x = frontier(a.ncols(), 4, &mut rng);

    let mut ws: SpmvWorkspace<Vertex> = SpmvWorkspace::new();
    let mut y = SpVec::new(0);
    let run = |ws: &mut SpmvWorkspace<Vertex>, y: &mut SpVec<Vertex>| {
        ws.spmspv_into(
            &a,
            &x,
            |j, v: &Vertex| Vertex::new(j, v.root),
            |acc, inc| inc.parent < acc.parent,
            y,
        )
    };

    let cold_flops = run(&mut ws, &mut y);
    let ptr = y.as_entries_ptr();
    let cap = y.capacity();
    assert!(cap > 0);

    for iter in 0..4 {
        let flops = run(&mut ws, &mut y);
        assert_eq!(flops, cold_flops, "iteration {iter}");
        assert_eq!(y.as_entries_ptr(), ptr, "iteration {iter}: buffer moved");
        assert_eq!(y.capacity(), cap, "iteration {iter}: buffer grew");
    }
    assert_eq!(ws.stats.calls, 5);
    assert_eq!(ws.stats.reuse_hits, 4, "all warm calls must be hits");
    assert!(ws.stats.bytes_reused > 0);
}

#[test]
fn steady_state_zero_allocation_holds_for_parallel_path() {
    let a = Dcsc::from_triples(&rmat(RmatParams::g500(10), 5));
    let mut rng = SplitMix64::new(0xA110D);
    let x = frontier(a.ncols(), 2, &mut rng);

    let mut ws: SpmvWorkspace<Vertex> = SpmvWorkspace::new();
    let mut y = SpVec::new(0);
    let run = |ws: &mut SpmvWorkspace<Vertex>, y: &mut SpVec<Vertex>| {
        ws.spmspv_parallel_into(
            &a,
            &x,
            4,
            |j, v: &Vertex| Vertex::new(j, v.root),
            |acc, inc| inc.parent < acc.parent,
            y,
        )
    };

    let cold_flops = run(&mut ws, &mut y);
    let ptr = y.as_entries_ptr();
    let cap = y.capacity();
    for iter in 0..3 {
        let flops = run(&mut ws, &mut y);
        assert_eq!(flops, cold_flops, "iteration {iter}");
        assert_eq!(y.as_entries_ptr(), ptr, "iteration {iter}: buffer moved");
        assert_eq!(y.capacity(), cap, "iteration {iter}: buffer grew");
    }
}

#[test]
fn generation_bump_does_not_leak_across_calls() {
    // Regression for the epoch-stamped SPA: rows touched by a large
    // frontier must not reappear when a later call uses a small frontier —
    // the epoch bump, not an O(nrows) sweep, is what isolates calls.
    let a = Dcsc::from_triples(&rmat(RmatParams::er(8), 3));
    let mut rng = SplitMix64::new(0x1EAF);
    let big = frontier(a.ncols(), 1, &mut rng);
    let small = frontier(a.ncols(), 32, &mut rng);

    let mut ws: SpmvWorkspace<Vertex> = SpmvWorkspace::new();
    let mut y = SpVec::new(0);
    for round in 0..3 {
        for x in [&big, &small] {
            let seed = spmspv(
                &a,
                x,
                |j, v: &Vertex| Vertex::new(j, v.root),
                |acc, inc| inc.parent < acc.parent,
            );
            let flops = ws.spmspv_into(
                &a,
                x,
                |j, v: &Vertex| Vertex::new(j, v.root),
                |acc, inc| inc.parent < acc.parent,
                &mut y,
            );
            assert_eq!(y, seed.y, "round {round}: stale SPA state leaked");
            assert_eq!(flops, seed.flops, "round {round}");
        }
    }
}
