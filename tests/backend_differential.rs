//! Backend differential: full MCM-DIST on the cost-model simulator vs the
//! real thread-per-rank mesh engine vs the fused shared-memory arena,
//! across the `mcm-gen` suite — all initializers × both augmentation
//! kernels × p ∈ {1, 4, 9}.
//!
//! The comm trait layer (`mcm_bsp::comm`, DESIGN.md §12) promises that one
//! generic pipeline runs identically on every backend: same cardinality,
//! and in fact the *identical matching*, since every collective is
//! deterministic, the engine's RMA epochs service vertex-disjoint paths,
//! and SharedComm replays the simulator's decision stream (DESIGN.md
//! §14). All sides are additionally Berge-certified and checked maximum
//! against serial Hopcroft–Karp.
//!
//! `MCM_TEST_SEED=<seed>` (decimal or `0x` hex) replays a sweep exactly;
//! `MCM_ENGINE_TEST_THREADS=<t>` sets the engine's per-rank thread count
//! (CI runs t ∈ {1, 2}); `MCM_TEST_ALGOS=<a,b>` restricts the
//! cross-algorithm matrix to a comma-separated subset (the CI algo
//! dimension).

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::mcm::{
    maximum_matching, maximum_matching_engine, maximum_matching_shared, McmOptions,
};
use mcm_core::portfolio::{solve, MatchingAlgo, PortfolioBackend, PortfolioOptions};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify;
use mcm_gen::simtest_suite;

/// Default suite seed, overridable via `MCM_TEST_SEED`.
fn seed(default: u64) -> u64 {
    let Ok(raw) = std::env::var("MCM_TEST_SEED") else { return default };
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MCM_TEST_SEED={raw} is not a u64"))
}

/// Engine worker threads per rank, overridable via `MCM_ENGINE_TEST_THREADS`.
fn engine_threads() -> usize {
    std::env::var("MCM_ENGINE_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

#[test]
fn all_three_backends_produce_identical_matchings_across_the_suite() {
    let cases = simtest_suite(seed(0xD1FF_BACC));
    let threads = engine_threads();
    let inits = [
        Initializer::None,
        Initializer::Greedy,
        Initializer::KarpSipser,
        Initializer::DynamicMindegree,
    ];
    let augments = [AugmentMode::LevelParallel, AugmentMode::PathParallel];
    let mut runs = 0usize;
    for (name, t) in &cases {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        for dim in [1usize, 2, 3] {
            let p = dim * dim;
            for init in inits {
                for augment in augments {
                    let opts = McmOptions { init, augment, ..McmOptions::default() };
                    let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
                    let sim = maximum_matching(&mut ctx, t, &opts);
                    let eng = maximum_matching_engine(p, threads, t, &opts);
                    let shr = maximum_matching_shared(p, threads, t, &opts);
                    let tag =
                        format!("{name} p={p} threads={threads} init={init:?} augment={augment:?}");
                    assert_eq!(
                        sim.matching.cardinality(),
                        eng.matching.cardinality(),
                        "cardinality diverged: {tag}"
                    );
                    assert_eq!(sim.matching, eng.matching, "sim/engine matching diverged: {tag}");
                    assert_eq!(sim.matching, shr.matching, "sim/shared matching diverged: {tag}");
                    assert_eq!(eng.matching.cardinality(), want, "not maximum: {tag}");
                    verify::verify(&a, &sim.matching)
                        .unwrap_or_else(|e| panic!("simulator Berge failed: {tag}: {e}"));
                    verify::verify(&a, &eng.matching)
                        .unwrap_or_else(|e| panic!("engine Berge failed: {tag}: {e}"));
                    verify::verify(&a, &shr.matching)
                        .unwrap_or_else(|e| panic!("shared Berge failed: {tag}: {e}"));
                    runs += 1;
                }
            }
        }
    }
    // 9 cases × 3 grids × 4 initializers × 2 kernels, each run three times.
    assert_eq!(runs, cases.len() * 3 * inits.len() * augments.len());
}

/// Algorithms the cross-algorithm matrix sweeps, overridable via
/// `MCM_TEST_ALGOS=msbfs,ppf` (the CI matrix's algo dimension).
fn matrix_algos() -> Vec<MatchingAlgo> {
    match std::env::var("MCM_TEST_ALGOS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|e| panic!("MCM_TEST_ALGOS={raw} is invalid: {e}"))
            })
            .collect(),
        Err(_) => MatchingAlgo::CONCRETE.to_vec(),
    }
}

#[test]
fn cross_algorithm_matrix_agrees_with_the_oracle() {
    // The full algo × backend × p matrix of the portfolio (DESIGN.md §15):
    //
    //  - `msbfs` runs on all three comm backends (sim | engine | shared);
    //    the trait-layer contract says all three produce the *identical*
    //    matching, which the sim row certifies against.
    //  - `ppf` and `auction` are shared-memory engines, so the backend
    //    dimension maps to their worker-thread count: t ∈ {1, p}. The
    //    auction resolves ties in a deterministic resolution order, so its
    //    matching must be identical across thread counts; PPF commits
    //    vertex-disjoint paths whose *set* may differ per interleaving, so
    //    only cardinality is compared.
    //
    // Every cell is checked against serial Hopcroft–Karp and
    // Berge-certified. Failures print the suite seed for exact replay.
    let suite_seed = seed(0xD1FF_BACC);
    let cases = simtest_suite(suite_seed);
    let algos = matrix_algos();
    let mut runs = 0usize;
    for (name, t) in &cases {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        for dim in [1usize, 2, 3] {
            let p = dim * dim;
            for &algo in &algos {
                let tag = format!(
                    "{name} algo={algo} p={p} (replay: MCM_TEST_SEED={suite_seed:#x}, \
                     see EXPERIMENTS.md)"
                );
                match algo {
                    MatchingAlgo::MsBfs => {
                        let backends = [
                            PortfolioBackend::Sim { grid: dim, threads: 1 },
                            PortfolioBackend::Engine { p, threads: 1 },
                            PortfolioBackend::Shared { p, threads: 1 },
                        ];
                        let results: Vec<_> = backends
                            .iter()
                            .map(|&backend| {
                                let opts = PortfolioOptions {
                                    algo,
                                    backend,
                                    ..PortfolioOptions::default()
                                };
                                solve(t, &opts)
                            })
                            .collect();
                        for (r, backend) in results.iter().zip(backends) {
                            assert_eq!(r.stats.algo, "msbfs", "{tag}");
                            assert_eq!(
                                r.matching.cardinality(),
                                want,
                                "not maximum on {backend:?}: {tag}"
                            );
                            assert_eq!(
                                r.matching, results[0].matching,
                                "{backend:?} diverged from sim: {tag}"
                            );
                            verify::verify(&a, &r.matching).unwrap_or_else(|e| {
                                panic!("Berge failed on {backend:?}: {tag}: {e}")
                            });
                            runs += 1;
                        }
                    }
                    MatchingAlgo::Ppf | MatchingAlgo::Auction => {
                        let results: Vec<_> = [1usize, p]
                            .iter()
                            .map(|&threads| {
                                let opts = PortfolioOptions {
                                    algo,
                                    threads,
                                    seed: suite_seed ^ p as u64,
                                    ..PortfolioOptions::default()
                                };
                                solve(t, &opts)
                            })
                            .collect();
                        for (r, threads) in results.iter().zip([1usize, p]) {
                            assert_eq!(r.stats.algo, algo.name(), "{tag}");
                            assert_eq!(
                                r.matching.cardinality(),
                                want,
                                "not maximum at threads={threads}: {tag}"
                            );
                            verify::verify(&a, &r.matching).unwrap_or_else(|e| {
                                panic!("Berge failed at threads={threads}: {tag}: {e}")
                            });
                            runs += 1;
                        }
                        if algo == MatchingAlgo::Auction {
                            // Deterministic resolution order ⇒ the matching
                            // itself is thread-count invariant.
                            assert_eq!(
                                results[0].matching, results[1].matching,
                                "auction matching changed with thread count: {tag}"
                            );
                        }
                    }
                    MatchingAlgo::Auto => unreachable!("matrix sweeps concrete engines"),
                }
            }
        }
    }
    let per_algo_cells: usize =
        algos.iter().map(|a| if *a == MatchingAlgo::MsBfs { 3 } else { 2 }).sum();
    assert_eq!(runs, cases.len() * 3 * per_algo_cells);
}

#[test]
fn engine_backend_warm_start_matches_simulator() {
    // The dyn fallback path hands a *stale* matching to either backend:
    // warm starts must agree too.
    let cases = simtest_suite(seed(0xD1FF_BACC));
    let threads = engine_threads();
    let (name, t) = &cases[0];
    let a = t.to_csc();
    let opts = McmOptions { permute_seed: None, ..McmOptions::default() };

    // A deliberately suboptimal warm start: greedy on the serial sim.
    let stale = {
        let mut ctx = DistCtx::serial();
        let am = mcm_bsp::DistMatrix::from_triples(&ctx, t);
        mcm_core::maximal::greedy(&mut ctx, &am)
    };

    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
    let sim = mcm_core::mcm::maximum_matching_from(&mut ctx, t, stale.clone(), &opts);
    let mut comm = mcm_bsp::EngineComm::new(4, threads);
    let eng = mcm_core::mcm::maximum_matching_from(&mut comm, t, stale.clone(), &opts);
    let mut shc = mcm_bsp::SharedComm::new(4, threads);
    let shr = mcm_core::mcm::maximum_matching_from(&mut shc, t, stale, &opts);
    assert_eq!(sim.matching, eng.matching, "warm-started {name} diverged (engine)");
    assert_eq!(sim.matching, shr.matching, "warm-started {name} diverged (shared)");
    verify::verify(&a, &eng.matching).unwrap();
    verify::verify(&a, &shr.matching).unwrap();
    assert_eq!(eng.matching.cardinality(), hopcroft_karp(&a, None).cardinality());
}
