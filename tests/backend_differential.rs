//! Backend differential: full MCM-DIST on the cost-model simulator vs the
//! real thread-per-rank mesh engine vs the fused shared-memory arena,
//! across the `mcm-gen` suite — all initializers × both augmentation
//! kernels × p ∈ {1, 4, 9}.
//!
//! The comm trait layer (`mcm_bsp::comm`, DESIGN.md §12) promises that one
//! generic pipeline runs identically on every backend: same cardinality,
//! and in fact the *identical matching*, since every collective is
//! deterministic, the engine's RMA epochs service vertex-disjoint paths,
//! and SharedComm replays the simulator's decision stream (DESIGN.md
//! §14). All sides are additionally Berge-certified and checked maximum
//! against serial Hopcroft–Karp.
//!
//! `MCM_TEST_SEED=<seed>` (decimal or `0x` hex) replays a sweep exactly;
//! `MCM_ENGINE_TEST_THREADS=<t>` sets the engine's per-rank thread count
//! (CI runs t ∈ {1, 2}).

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::mcm::{
    maximum_matching, maximum_matching_engine, maximum_matching_shared, McmOptions,
};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify;
use mcm_gen::simtest_suite;

/// Default suite seed, overridable via `MCM_TEST_SEED`.
fn seed(default: u64) -> u64 {
    let Ok(raw) = std::env::var("MCM_TEST_SEED") else { return default };
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MCM_TEST_SEED={raw} is not a u64"))
}

/// Engine worker threads per rank, overridable via `MCM_ENGINE_TEST_THREADS`.
fn engine_threads() -> usize {
    std::env::var("MCM_ENGINE_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

#[test]
fn all_three_backends_produce_identical_matchings_across_the_suite() {
    let cases = simtest_suite(seed(0xD1FF_BACC));
    let threads = engine_threads();
    let inits = [
        Initializer::None,
        Initializer::Greedy,
        Initializer::KarpSipser,
        Initializer::DynamicMindegree,
    ];
    let augments = [AugmentMode::LevelParallel, AugmentMode::PathParallel];
    let mut runs = 0usize;
    for (name, t) in &cases {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        for dim in [1usize, 2, 3] {
            let p = dim * dim;
            for init in inits {
                for augment in augments {
                    let opts = McmOptions { init, augment, ..McmOptions::default() };
                    let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
                    let sim = maximum_matching(&mut ctx, t, &opts);
                    let eng = maximum_matching_engine(p, threads, t, &opts);
                    let shr = maximum_matching_shared(p, threads, t, &opts);
                    let tag =
                        format!("{name} p={p} threads={threads} init={init:?} augment={augment:?}");
                    assert_eq!(
                        sim.matching.cardinality(),
                        eng.matching.cardinality(),
                        "cardinality diverged: {tag}"
                    );
                    assert_eq!(sim.matching, eng.matching, "sim/engine matching diverged: {tag}");
                    assert_eq!(sim.matching, shr.matching, "sim/shared matching diverged: {tag}");
                    assert_eq!(eng.matching.cardinality(), want, "not maximum: {tag}");
                    verify::verify(&a, &sim.matching)
                        .unwrap_or_else(|e| panic!("simulator Berge failed: {tag}: {e}"));
                    verify::verify(&a, &eng.matching)
                        .unwrap_or_else(|e| panic!("engine Berge failed: {tag}: {e}"));
                    verify::verify(&a, &shr.matching)
                        .unwrap_or_else(|e| panic!("shared Berge failed: {tag}: {e}"));
                    runs += 1;
                }
            }
        }
    }
    // 9 cases × 3 grids × 4 initializers × 2 kernels, each run three times.
    assert_eq!(runs, cases.len() * 3 * inits.len() * augments.len());
}

#[test]
fn engine_backend_warm_start_matches_simulator() {
    // The dyn fallback path hands a *stale* matching to either backend:
    // warm starts must agree too.
    let cases = simtest_suite(seed(0xD1FF_BACC));
    let threads = engine_threads();
    let (name, t) = &cases[0];
    let a = t.to_csc();
    let opts = McmOptions { permute_seed: None, ..McmOptions::default() };

    // A deliberately suboptimal warm start: greedy on the serial sim.
    let stale = {
        let mut ctx = DistCtx::serial();
        let am = mcm_bsp::DistMatrix::from_triples(&ctx, t);
        mcm_core::maximal::greedy(&mut ctx, &am)
    };

    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
    let sim = mcm_core::mcm::maximum_matching_from(&mut ctx, t, stale.clone(), &opts);
    let mut comm = mcm_bsp::EngineComm::new(4, threads);
    let eng = mcm_core::mcm::maximum_matching_from(&mut comm, t, stale.clone(), &opts);
    let mut shc = mcm_bsp::SharedComm::new(4, threads);
    let shr = mcm_core::mcm::maximum_matching_from(&mut shc, t, stale, &opts);
    assert_eq!(sim.matching, eng.matching, "warm-started {name} diverged (engine)");
    assert_eq!(sim.matching, shr.matching, "warm-started {name} diverged (shared)");
    verify::verify(&a, &eng.matching).unwrap();
    verify::verify(&a, &shr.matching).unwrap();
    assert_eq!(eng.matching.cardinality(), hopcroft_karp(&a, None).cardinality());
}
