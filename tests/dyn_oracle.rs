//! Differential oracle for the incremental engine (`mcm-dyn`): replay
//! every update trace in the `mcm-gen` suite through [`DynMatching`] and,
//! after **every** batch, demand that the incrementally repaired matching
//! (a) is structurally valid, (b) has the same cardinality Hopcroft–Karp
//! computes from scratch on the materialized graph, and (c) passes the
//! full Berge certificate. The sweep crosses trace seeds with batch
//! granularity and the fallback threshold, so the single-path repair
//! path, the warm-started MS-BFS fallback, and the mixed regime all face
//! the same oracle.
//!
//! Failures print the trace name, seed, batch index, and threshold;
//! `MCM_TEST_SEED=<seed>` (decimal or `0x` hex) replays a sweep exactly.

use mcm_core::serial::hopcroft_karp;
use mcm_dyn::{DynMatching, DynOptions, Update};
use mcm_gen::{update_trace, update_trace_suite, TraceOp};

/// Default seed, overridable via `MCM_TEST_SEED` (decimal or `0x` hex) —
/// the same convention as `tests/stress.rs` and the simtest sweeps.
fn sweep_seed(default: u64) -> u64 {
    let Ok(raw) = std::env::var("MCM_TEST_SEED") else { return default };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MCM_TEST_SEED={raw} is not a u64"))
}

/// The fallback-threshold axis: always fall back (every batch runs the
/// warm-started MS-BFS driver), the default-ish mixed regime, and never
/// fall back (pure single-path repair + sweeps).
const THRESHOLDS: [f64; 3] = [0.0, 0.08, 1e9];

/// Replays one trace under one threshold, checking the oracle at every
/// batch boundary. Returns (batches, fallbacks) for regime assertions.
fn replay_against_hk(
    name: &str,
    seed: u64,
    ops: &[TraceOp],
    n1: usize,
    n2: usize,
    threshold: f64,
) -> (usize, usize) {
    let opts = DynOptions { fallback_threshold: threshold, ..DynOptions::default() };
    let mut dm = DynMatching::new(n1, n2, opts);
    let mut staged: Vec<Update> = Vec::new();
    let mut batch_idx = 0usize;
    for op in ops {
        match *op {
            TraceOp::Insert(r, c) => staged.push(Update::Insert(r, c)),
            TraceOp::Delete(r, c) => staged.push(Update::Delete(r, c)),
            TraceOp::Query => {
                let rep = dm.apply_batch(&staged);
                staged.clear();
                let ctx =
                    format!("trace {name} seed {seed:#x} batch {batch_idx} threshold {threshold}");
                let a = dm.graph().to_csc();
                dm.matching()
                    .validate(&a)
                    .unwrap_or_else(|e| panic!("{ctx}: invalid matching: {e}"));
                let want = hopcroft_karp(&a, None).cardinality();
                assert_eq!(
                    dm.cardinality(),
                    want,
                    "{ctx}: incremental cardinality {} != HK recompute {want} (report {rep:?})",
                    dm.cardinality()
                );
                assert!(
                    mcm_core::verify::is_maximum(&a, dm.matching()),
                    "{ctx}: Berge certificate found an augmenting path after repair"
                );
                batch_idx += 1;
            }
        }
    }
    (batch_idx, dm.stats().fallbacks)
}

#[test]
fn incremental_matches_hk_across_trace_and_threshold_sweep() {
    let seed = sweep_seed(0xD11A);
    let mut total_batches = 0usize;
    for (name, params) in update_trace_suite(seed) {
        let ops = update_trace(&params);
        assert!(
            ops.iter().any(|op| matches!(op, TraceOp::Query)),
            "trace {name} has no batch boundaries"
        );
        for threshold in THRESHOLDS {
            let (batches, fallbacks) =
                replay_against_hk(&name, seed, &ops, params.n1, params.n2, threshold);
            total_batches += batches;
            if threshold >= 1e9 {
                assert_eq!(
                    fallbacks, 0,
                    "trace {name} seed {seed:#x}: threshold {threshold} must never fall back"
                );
            }
        }
    }
    assert!(total_batches >= 36, "sweep too small to mean anything: {total_batches} batches");
}

#[test]
fn always_fallback_regime_actually_falls_back() {
    // Under threshold 0 every batch with a non-empty dirty set must take
    // the warm-started MS-BFS path; the churn trace guarantees matched
    // deletions, so at least one such batch exists.
    let seed = sweep_seed(0xD11A);
    let suite = update_trace_suite(seed);
    let (name, params) = &suite[0];
    let ops = update_trace(params);
    let (_, fallbacks) = replay_against_hk(name, seed, &ops, params.n1, params.n2, 0.0);
    assert!(fallbacks > 0, "trace {name} seed {seed:#x}: threshold 0 never exercised the fallback");
}

#[test]
fn decay_trace_exercises_matched_edge_deletions() {
    // The bias knob must actually dirty both sides: replay the
    // delete-heavy trace and check the engine saw matched deletions and
    // repaired through local searches.
    let seed = sweep_seed(0xD11A);
    let suite = update_trace_suite(seed);
    let (name, params) =
        suite.iter().find(|(n, _)| n.starts_with("decay")).expect("suite lost its decay trace");
    let ops = update_trace(params);
    let opts = DynOptions { fallback_threshold: 1e9, ..DynOptions::default() };
    let mut dm = DynMatching::new(params.n1, params.n2, opts);
    let mut staged: Vec<Update> = Vec::new();
    for op in &ops {
        match *op {
            TraceOp::Insert(r, c) => staged.push(Update::Insert(r, c)),
            TraceOp::Delete(r, c) => staged.push(Update::Delete(r, c)),
            TraceOp::Query => {
                dm.apply_batch(&staged);
                staged.clear();
            }
        }
    }
    let s = dm.stats();
    assert!(
        s.matched_deletes > 0,
        "trace {name} seed {seed:#x}: matched-bias 1.0 never deleted a matched edge"
    );
    assert!(
        s.local_searches > 0,
        "trace {name} seed {seed:#x}: matched deletions must trigger local repairs"
    );
}
