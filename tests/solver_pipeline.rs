//! End-to-end solver preprocessing pipeline across crates: distributed
//! matching → König certificate → Dulmage–Mendelsohn → block triangular
//! form, on the generator families — the consumer workflow of §I.

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::btf::block_triangular_form;
use mcm_core::cover::{cover_certifies, koenig_cover};
use mcm_core::dm::{dulmage_mendelsohn, DmBlock};
use mcm_core::serial::hopcroft_karp;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::hard::{chain, crown, parallel_chains, staircase};
use mcm_gen::kkt::kkt_stencil;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::Triples;

fn pipeline(t: &Triples) {
    let a = t.to_csc();
    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 2));
    let m = maximum_matching(&mut ctx, t, &McmOptions::default()).matching;
    m.validate(&a).unwrap();

    // Certificate: a König cover of exactly |M| vertices.
    let cover = koenig_cover(&a, &m);
    assert!(cover.covers(&a));
    assert_eq!(cover.size(), m.cardinality());
    assert!(cover_certifies(&a, &m));

    // Coarse DM: blocks are consistent and the square part matches
    // perfectly within itself.
    let dm = dulmage_mendelsohn(&a, &m);
    let sr = dm.rows_in(DmBlock::Square);
    let sc = dm.cols_in(DmBlock::Square);
    assert_eq!(sr.len(), sc.len());
    for &r in &sr {
        let c = m.mate_r.get(r);
        assert_eq!(dm.col_block[c as usize], DmBlock::Square);
    }

    // Fine DM: BTF only for square structurally nonsingular inputs.
    if t.nrows() == t.ncols() && m.cardinality() == t.ncols() {
        let btf = block_triangular_form(&a, &m);
        assert_eq!(*btf.block_ptr.last().unwrap(), t.ncols());
        // Diagonal stays zero-free under the BTF permutation.
        for k in 0..t.ncols() {
            assert!(a.contains(btf.row_order[k], btf.col_order[k] as usize));
        }
    }
}

#[test]
fn kkt_pipeline_is_nonsingular() {
    let t = kkt_stencil(6, 60, 3, 5);
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    assert_eq!(m.cardinality(), t.ncols(), "KKT stencils must be nonsingular");
    let dm = dulmage_mendelsohn(&a, &m);
    assert!(dm.is_structurally_nonsingular());
    pipeline(&t);
}

#[test]
fn rmat_pipeline_is_deficient_but_certified() {
    let t = rmat(RmatParams::g500(10), 3);
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    assert!(m.cardinality() < t.ncols(), "G500 should be structurally singular");
    pipeline(&t);
    let dm = dulmage_mendelsohn(&a, &m);
    assert!(!dm.rows_in(DmBlock::Horizontal).is_empty());
    assert!(!dm.rows_in(DmBlock::Vertical).is_empty());
}

#[test]
fn hard_instances_pipeline() {
    pipeline(&chain(50));
    pipeline(&parallel_chains(8, 12));
    pipeline(&staircase(40));
    pipeline(&crown(12));
}

#[test]
fn hard_instances_have_their_designed_shapes() {
    // chain: perfect matching exists; greedy from column order is fooled.
    let c = chain(30).to_csc();
    assert_eq!(hopcroft_karp(&c, None).cardinality(), 30);

    // staircase: perfect.
    let s = staircase(30).to_csc();
    assert_eq!(hopcroft_karp(&s, None).cardinality(), 30);

    // crown: perfect via derangement.
    let k = crown(9).to_csc();
    assert_eq!(hopcroft_karp(&k, None).cardinality(), 9);
}

#[test]
fn long_chain_exercises_long_augmenting_paths() {
    // Seed the chain with the adversarial off-diagonal matching
    // (r_i, c_{i+1}): the only augmenting path ripples the entire chain, so
    // both augmentation kernels must process a maximal-length path.
    use mcm_bsp::DistMatrix;
    use mcm_core::augment::AugmentMode;
    use mcm_core::mcm::run_phases;
    use mcm_core::Matching;
    let k = 64usize;
    let t = chain(k);
    let a_csc = t.to_csc();
    for mode in [AugmentMode::LevelParallel, AugmentMode::PathParallel] {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let mut m = Matching::empty(k, k);
        for i in 0..(k - 1) as u32 {
            m.add(i, i + 1);
        }
        let opts = McmOptions { augment: mode, permute_seed: None, ..Default::default() };
        let mut stats = mcm_core::McmStats::default();
        run_phases(&mut ctx, &a, None, &mut m, &opts, &mut stats);
        assert_eq!(m.cardinality(), k, "{mode:?}");
        m.validate(&a_csc).unwrap();
        // One path of 2k-1 edges: ⌈h/2⌉ = k level-iterations (§IV-B).
        let max_levels = stats.augment_reports.iter().map(|r| r.levels).max().unwrap();
        assert_eq!(max_levels, k, "{mode:?}");
    }
}
