//! The §IV-A load-balancing claim: *"To balance load across processors, we
//! randomly permute the input matrix A before running the matching
//! algorithms."* The simulator charges compute at the bottleneck rank, so
//! an adversarially clustered matrix must model slower than its randomly
//! relabeled twin — and the permutation must never change the result.

use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::{maximum_matching, McmOptions};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// A matrix whose nonzeros all live in the top-left corner: on a 2D grid
/// without relabeling, one process owns nearly all the work.
fn clustered(n: usize, dense_frac: usize, seed: u64) -> Triples {
    let mut rng = SplitMix64::new(seed);
    let k = n / dense_frac;
    let mut t = Triples::new(n, n);
    // Dense-ish corner block…
    for _ in 0..8 * k {
        t.push(rng.below(k as u64) as Vidx, rng.below(k as u64) as Vidx);
    }
    // …plus a sparse diagonal so every vertex is matchable.
    for i in 0..n as Vidx {
        t.push(i, i);
    }
    t
}

#[test]
fn random_relabeling_reduces_bottleneck_time() {
    let t = clustered(4096, 8, 42);
    let run = |permute: Option<u64>| {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
        let opts = McmOptions { permute_seed: permute, ..Default::default() };
        let r = maximum_matching(&mut ctx, &t, &opts);
        (ctx.timers.seconds(Kernel::SpMV) + ctx.timers.seconds(Kernel::Init), r.matching)
    };
    let (unbalanced, m1) = run(None);
    let (balanced, m2) = run(Some(7));
    assert_eq!(m1.cardinality(), m2.cardinality());
    assert!(
        balanced < unbalanced,
        "random relabeling should lower the modeled bottleneck: {balanced} vs {unbalanced}"
    );
}

#[test]
fn permutation_never_changes_cardinality() {
    let t = clustered(512, 4, 9);
    let mut cards = std::collections::BTreeSet::new();
    for seed in [None, Some(1), Some(2), Some(999)] {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(3, 1));
        let opts = McmOptions { permute_seed: seed, ..Default::default() };
        let r = maximum_matching(&mut ctx, &t, &opts);
        r.matching.validate(&t.to_csc()).unwrap();
        cards.insert(r.matching.cardinality());
    }
    assert_eq!(cards.len(), 1, "cardinality must be permutation-invariant");
}

#[test]
fn bottleneck_accounting_sees_imbalance() {
    // Direct check on the SpMV kernel: a frontier hitting only one block
    // charges the same modeled compute as a one-process run would for that
    // block (max over ranks, not average).
    use mcm_bsp::DistMatrix;
    use mcm_sparse::SpVec;
    let n = 1024;
    let mut t = Triples::new(n, n);
    // All edges in the top-left block of a 2x2 grid.
    for i in 0..(n / 2) as Vidx {
        t.push(i, i);
        t.push(i, (i + 1) % (n as Vidx / 2));
    }
    let gamma = mcm_bsp::CostModel::edison().gamma;
    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
    let a = DistMatrix::from_triples(&ctx, &t);
    let x: SpVec<Vidx> =
        SpVec::from_sorted_pairs(n, (0..(n / 2) as Vidx).map(|j| (j, j)).collect());
    let before = ctx.timers.seconds(Kernel::SpMV);
    let _ = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
    let compute_part = ctx.timers.seconds(Kernel::SpMV) - before;
    // The bottleneck block processed all n edges: modeled compute must be
    // at least gamma * n (not gamma * n / p).
    assert!(
        compute_part >= gamma * n as f64,
        "imbalanced block must be charged at the bottleneck: {compute_part} < {}",
        gamma * n as f64
    );
}
