//! Integration tests for the `mcm-obs` observability subsystem wired
//! through the real engine backend (DESIGN.md §13):
//!
//! * the Chrome trace exported from a multi-threaded `EngineComm` run is
//!   syntactically valid JSON with well-formed "X" events;
//! * spans recorded on one thread nest properly (disjoint or contained,
//!   never partially overlapping);
//! * the Prometheus exposition format is locked by a golden test;
//! * the disabled-recorder overhead stays under the 2% gate.
//!
//! The obs globals (two flags, one trace sink, one registry) are shared
//! by every test in this binary, so each test serializes on [`GUARD`].

use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::rmat::{rmat, RmatParams};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

/// Runs MCM-DIST on the thread-per-rank engine with tracing enabled and
/// returns the collected trace.
fn traced_engine_run(p: usize, threads: usize) -> mcm_obs::Trace {
    let t = rmat(RmatParams::g500(8), 7);
    mcm_obs::enable_tracing(true);
    drop(mcm_obs::take_trace());
    let mut comm = mcm_bsp::EngineComm::new(p, threads);
    let r = maximum_matching(&mut comm, &t, &McmOptions::default());
    assert!(r.matching.cardinality() > 0);
    mcm_obs::enable_tracing(false);
    mcm_obs::take_trace()
}

#[test]
fn chrome_trace_from_engine_run_is_valid_json() {
    let _g = GUARD.lock().unwrap();
    let trace = traced_engine_run(4, 2);
    assert!(!trace.events.is_empty(), "engine run recorded no spans");
    assert_eq!(trace.dropped, 0);
    // Rank threads must have stamped their rank ids: a 4-rank run records
    // spans under more than one pid.
    let ranks: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.rank).collect();
    assert!(ranks.len() > 1, "all spans on one rank: {ranks:?}");

    let json = trace.to_chrome_json();
    let v = json::parse(&json).unwrap_or_else(|e| panic!("invalid JSON at byte {e}:\n{json}"));
    let json::Value::Object(top) = v else { panic!("top level is not an object") };
    let Some(json::Value::Array(events)) = top.get("traceEvents") else {
        panic!("no traceEvents array")
    };
    assert_eq!(events.len(), trace.events.len());
    for ev in events {
        let json::Value::Object(ev) = ev else { panic!("event is not an object") };
        assert_eq!(ev.get("ph"), Some(&json::Value::String("X".into())));
        for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(ev.contains_key(key), "event missing {key}");
        }
        let Some(json::Value::Number(dur)) = ev.get("dur") else { panic!("dur not a number") };
        assert!(*dur >= 0.0);
    }
}

#[test]
fn spans_nest_per_thread_under_the_engine_backend() {
    let _g = GUARD.lock().unwrap();
    let trace = traced_engine_run(4, 2);
    // Group by recording thread; within one thread, any two spans must be
    // disjoint or properly contained — scopes cannot partially overlap.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
    for e in &trace.events {
        by_tid.entry(e.tid).or_default().push((e.start_ns, e.start_ns + e.dur_ns));
    }
    for (tid, mut spans) in by_tid {
        // Outermost-first: by start ascending, then longest first.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (start, end) in spans {
            while let Some(&(_, top_end)) = stack.last() {
                if start >= top_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end)) = stack.last() {
                assert!(
                    top_start <= start && end <= top_end,
                    "thread {tid}: span [{start}, {end}) partially overlaps [{top_start}, {top_end})"
                );
            }
            stack.push((start, end));
        }
    }
    // The nested-kernel marker is self-consistent: some comm-level spans
    // run inside pipeline-level kernel spans.
    assert!(trace.events.iter().any(|e| e.nested_kernel), "no nested kernel spans recorded");
    // And the measured breakdown counts only outermost kernel spans, so
    // the per-kernel seconds can never exceed the trace's total extent.
    let bd = mcm_obs::WallBreakdown::from_trace(&trace);
    let extent_ns = trace.events.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap();
    let ranks = trace.events.iter().map(|e| e.rank).collect::<std::collections::BTreeSet<_>>();
    assert!(
        bd.total_seconds() <= (ranks.len() as f64) * extent_ns as f64 * 1e-9,
        "breakdown double-counts nested spans"
    );
}

#[test]
fn prometheus_exposition_golden() {
    let _g = GUARD.lock().unwrap();
    mcm_obs::enable_metrics(true);
    let reg = mcm_obs::registry();
    reg.clear();
    reg.counter("golden_requests_total", &[("verb", "query")]).add(3);
    reg.counter("golden_requests_total", &[("verb", "insert")]).add(5);
    reg.gauge("golden_live_edges", &[]).set(12.5);
    let h = reg.histogram("golden_latency_seconds", &[("op", "batch")]);
    h.observe_ns(900); // le 1024ns bucket
    h.observe_ns(900);
    h.observe_ns(70_000); // le 131072ns bucket
    let text = mcm_obs::prom::expose(reg);
    reg.clear();
    mcm_obs::enable_metrics(false);
    let expect = "\
# TYPE golden_requests_total counter
golden_requests_total{verb=\"insert\"} 5
golden_requests_total{verb=\"query\"} 3
# TYPE golden_live_edges gauge
golden_live_edges 12.5
# TYPE golden_latency_seconds histogram
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000001\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000002\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000004\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000008\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000016\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000032\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000064\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000128\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000256\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000000512\"} 0
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000001024\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000002048\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000004096\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000008192\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000016384\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000032768\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000065536\"} 2
golden_latency_seconds_bucket{op=\"batch\",le=\"0.000131072\"} 3
golden_latency_seconds_bucket{op=\"batch\",le=\"+Inf\"} 3
golden_latency_seconds_sum{op=\"batch\"} 0.0000718
golden_latency_seconds_count{op=\"batch\"} 3
";
    assert_eq!(text, expect, "exposition drifted:\n{text}");
}

/// The <2% disabled-recorder gate (CI runs this under `--release`).
///
/// The instrumented baseline *is* the shipped code, so compiled-in-but-off
/// overhead cannot be measured differentially. Model it instead: count
/// the instrumentation sites a real engine run passes (event count of an
/// enabled run; metrics helpers guard identically, cheaper), microbench
/// the disabled per-site cost (one `Relaxed` load), and compare their
/// product against the run's disabled wall time.
#[test]
fn disabled_recorder_overhead_is_under_two_percent() {
    let _g = GUARD.lock().unwrap();
    let t = rmat(RmatParams::g500(8), 7);
    let opts = McmOptions::default();
    let run = |t: &mcm_sparse::Triples| {
        let mut comm = mcm_bsp::EngineComm::new(4, 2);
        maximum_matching(&mut comm, t, &opts).matching.cardinality()
    };

    // Sites per run, from an enabled run's trace (span sites; each is one
    // guard-load when disabled). Double it to cover the metrics helpers.
    mcm_obs::enable_tracing(true);
    drop(mcm_obs::take_trace());
    run(&t);
    mcm_obs::enable_tracing(false);
    let sites = 2 * mcm_obs::take_trace().events.len() as u64;
    assert!(sites > 0);

    // Disabled per-site cost, amortized over a big loop.
    let reps: u64 = 1_000_000;
    let sw = mcm_obs::Stopwatch::new();
    for i in 0..reps {
        drop(std::hint::black_box(mcm_obs::span(std::hint::black_box("gate_site"))));
        mcm_obs::counter_add(std::hint::black_box("gate_site_total"), &[], i);
    }
    let ns_per_site = sw.elapsed_ns() as f64 / (2 * reps) as f64;

    // Disabled wall time of the same run (best of 3 to shed scheduler
    // noise; the modeled overhead is compared against real run time).
    let mut best = u64::MAX;
    for _ in 0..3 {
        let sw = mcm_obs::Stopwatch::new();
        std::hint::black_box(run(&t));
        best = best.min(sw.elapsed_ns());
    }

    let overhead = sites as f64 * ns_per_site / best as f64;
    assert!(
        overhead < 0.02,
        "disabled-recorder overhead {:.4}% over the 2% gate \
         ({sites} sites x {ns_per_site:.2} ns vs {best} ns run)",
        overhead * 100.0
    );
}

/// A minimal validating JSON parser — just enough to check the Chrome
/// export is real JSON without pulling a serde dependency into the
/// workspace. Returns the byte offset of the first error.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    pub fn parse(s: &str) -> Result<Value, usize> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(v)
        } else {
            Err(i)
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, usize> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::String(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(*i),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, usize> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(*i)
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, usize> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or(start)
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, usize> {
        if b.get(*i) != Some(&b'"') {
            return Err(*i);
        }
        *i += 1;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b.get(*i + 1..*i + 5).ok_or(*i)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| *i)?, 16)
                                    .map_err(|_| *i)?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(*i),
                    }
                    *i += 1;
                }
                c if c < 0x20 => return Err(*i),
                _ => {
                    let ch_start = *i;
                    while *i < b.len() && !matches!(b[*i], b'"' | b'\\') && b[*i] >= 0x20 {
                        *i += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[ch_start..*i]).map_err(|_| ch_start)?);
                }
            }
        }
        Err(*i)
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, usize> {
        *i += 1; // [
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(*i),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, usize> {
        *i += 1; // {
        let mut map = BTreeMap::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(*i);
            }
            *i += 1;
            map.insert(k, value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(*i),
            }
        }
    }
}
