//! Sanity properties of the performance model that the figure harnesses
//! depend on: the claims the paper's evaluation narrative makes must hold
//! *structurally* in the simulator, not just for one lucky configuration.

use mcm_bench::{run_mcm_scaled, share};
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::gather::centralized_cost;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::mesh::road_grid;
use mcm_gen::rmat::{rmat, RmatParams};

#[test]
fn strong_scaling_has_the_paper_shape() {
    // On a paper-scaled input, modeled time must drop substantially from 1
    // node to ~1000 cores, and monotonically-ish (allow the tail to bend).
    let t = rmat(RmatParams::g500(12), 1);
    let ws = 1.0e9 / t.len() as f64;
    let t24 = run_mcm_scaled(MachineConfig::hybrid(2, 6), &t, &McmOptions::default(), ws).modeled_s;
    let t192 =
        run_mcm_scaled(MachineConfig::hybrid(4, 12), &t, &McmOptions::default(), ws).modeled_s;
    let t972 =
        run_mcm_scaled(MachineConfig::hybrid(9, 12), &t, &McmOptions::default(), ws).modeled_s;
    assert!(t192 < t24 * 0.6, "192 cores must beat 24 by >1.6x: {t24} vs {t192}");
    assert!(t972 < t192, "972 cores must beat 192: {t192} vs {t972}");
    assert!(t24 / t972 > 4.0, "speedup at 972 must exceed 4x, got {}", t24 / t972);
}

#[test]
fn spmv_dominates_at_low_concurrency_invert_grows() {
    // Fig. 5's two claims.
    let t = road_grid(100, 100, 0.12, 3);
    let ws = 5.0e8 / t.len() as f64;
    let low = run_mcm_scaled(MachineConfig::hybrid(2, 6), &t, &McmOptions::default(), ws);
    let high = run_mcm_scaled(MachineConfig::hybrid(13, 12), &t, &McmOptions::default(), ws);
    assert!(
        share(&low.timers, Kernel::SpMV) > share(&high.timers, Kernel::SpMV),
        "SpMV share must fall with core count"
    );
    assert!(
        share(&low.timers, Kernel::Invert) < share(&high.timers, Kernel::Invert),
        "Invert share must rise with core count"
    );
}

#[test]
fn hybrid_beats_flat_at_matched_cores() {
    // Fig. 7's claim, as a structural property.
    let t = rmat(RmatParams::g500(11), 9);
    let ws = 2.0e8 / t.len() as f64;
    let hybrid = run_mcm_scaled(MachineConfig::hybrid(6, 12), &t, &McmOptions::default(), ws);
    let flat = run_mcm_scaled(MachineConfig::flat(21), &t, &McmOptions::default(), ws); // 441 ≈ 432
    assert_eq!(hybrid.cardinality, flat.cardinality);
    assert!(
        flat.modeled_s > 1.5 * hybrid.modeled_s,
        "flat {} must be well above hybrid {}",
        flat.modeled_s,
        hybrid.modeled_s
    );
}

#[test]
fn pruning_reduces_modeled_time_and_iterations_on_meshes() {
    // Fig. 8's claim.
    let t = road_grid(80, 80, 0.12, 7);
    let ws = 5.0e8 / t.len() as f64;
    let on = run_mcm_scaled(
        MachineConfig::hybrid(9, 12),
        &t,
        &McmOptions { prune: true, ..Default::default() },
        ws,
    );
    let off = run_mcm_scaled(
        MachineConfig::hybrid(9, 12),
        &t,
        &McmOptions { prune: false, ..Default::default() },
        ws,
    );
    assert_eq!(on.cardinality, off.cardinality, "pruning must not change the matching size");
    assert!(on.stats.iterations < off.stats.iterations);
    assert!(on.modeled_s < off.modeled_s);
}

#[test]
fn centralization_cost_scales_linearly_and_rivals_mcm() {
    // Fig. 9's two claims.
    let mut ctx = DistCtx::new(MachineConfig::flat(45));
    let c1 = centralized_cost(&mut ctx, 1 << 27, 1 << 23, 1 << 23);
    let c2 = centralized_cost(&mut ctx, 1 << 29, 1 << 23, 1 << 23);
    let ratio = c2.gather_s / c1.gather_s;
    assert!((ratio - 4.0).abs() < 0.5, "4x edges must cost ~4x gather: {ratio}");

    // The paper's headline comparison: at nlpkkt200-like volume the gather
    // alone (~900M nonzeros) costs on the order of 20 s on 2048 ranks.
    let mut ctx = DistCtx::new(MachineConfig::flat(45));
    let c = centralized_cost(&mut ctx, 900_000_000, 16_000_000, 16_000_000);
    assert!(
        c.total() > 10.0 && c.total() < 40.0,
        "nlpkkt200-scale centralization should be ~20s, got {}",
        c.total()
    );
}

#[test]
fn work_scale_leaves_results_untouched() {
    let t = rmat(RmatParams::er(8), 5);
    let base = run_mcm_scaled(MachineConfig::hybrid(3, 2), &t, &McmOptions::default(), 1.0);
    let scaled = run_mcm_scaled(MachineConfig::hybrid(3, 2), &t, &McmOptions::default(), 500.0);
    assert_eq!(base.cardinality, scaled.cardinality);
    assert_eq!(base.stats.iterations, scaled.stats.iterations);
    assert!(scaled.modeled_s > base.modeled_s);
}

#[test]
fn timer_breakdown_sums_to_total() {
    let t = rmat(RmatParams::g500(9), 2);
    let mut ctx = DistCtx::new(MachineConfig::hybrid(3, 4));
    let _ = maximum_matching(&mut ctx, &t, &McmOptions::default());
    let sum: f64 = ctx.timers.breakdown().iter().map(|(_, s, _)| s).sum();
    assert!((sum - ctx.timers.total()).abs() < 1e-12 * sum.max(1.0));
}

#[test]
fn auto_augment_is_never_much_worse_than_either_fixed_mode() {
    use mcm_core::augment::AugmentMode;
    let t = road_grid(40, 40, 0.15, 3);
    let run = |mode| {
        let opts = McmOptions { augment: mode, ..Default::default() };
        run_mcm_scaled(MachineConfig::hybrid(4, 12), &t, &opts, 1000.0)
    };
    let auto = run(AugmentMode::Auto);
    let level = run(AugmentMode::LevelParallel);
    let path = run(AugmentMode::PathParallel);
    let aug = |o: &mcm_bench::RunOutcome| o.timers.seconds(Kernel::Augment);
    let best = aug(&level).min(aug(&path));
    assert!(
        aug(&auto) <= best * 2.0 + 1e-9,
        "auto ({}) should track the better fixed mode ({})",
        aug(&auto),
        best
    );
}
