//! Randomized oracle tests: every algorithm in the crate must agree with
//! Hopcroft–Karp on the maximum cardinality, on arbitrary bipartite graphs,
//! arbitrary process grids, and arbitrary option combinations.
//!
//! Randomized inputs come from seeded [`SplitMix64`] streams (deterministic,
//! no external property-testing dependency).

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::semirings::SemiringKind;
use mcm_core::serial::{hopcroft_karp, ms_bfs_serial, pothen_fan};
use mcm_core::verify::{is_maximal, is_maximum};
use mcm_core::{maximum_matching, McmOptions};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// An arbitrary bipartite graph: dimensions in 1..=24, up to 3·n edges.
fn random_graph(rng: &mut SplitMix64) -> Triples {
    let n1 = 1 + rng.below(24) as usize;
    let n2 = 1 + rng.below(24) as usize;
    let max_edges = 3 * n1.max(n2);
    let m = rng.below(max_edges as u64 + 1) as usize;
    let edges =
        (0..m).map(|_| (rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx)).collect();
    Triples::from_edges(n1, n2, edges)
}

const CASES: u64 = 64;

#[test]
fn distributed_mcm_matches_hopcroft_karp() {
    let mut rng = SplitMix64::new(0x0E01);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let dim = 1 + rng.below(3) as usize;
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let r = maximum_matching(&mut ctx, &t, &McmOptions::default());
        assert_eq!(r.matching.cardinality(), want, "trial {trial} dim {dim}");
        assert!(r.matching.validate(&a).is_ok(), "trial {trial}");
        assert!(is_maximum(&a, &r.matching), "trial {trial}");
    }
}

#[test]
fn all_option_combinations_agree() {
    let mut rng = SplitMix64::new(0x0E02);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let prune = rng.below(2) == 1;
        let diropt = rng.below(2) == 1;
        let seed = rng.below(1000);
        let semiring_pick = rng.below(3);
        let augment_pick = rng.below(3);
        let init_pick = rng.below(4);
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let opts = McmOptions {
            direction_optimizing: diropt,
            semiring: match semiring_pick {
                0 => SemiringKind::MinParent,
                1 => SemiringKind::RandParent(seed),
                _ => SemiringKind::RandRoot(seed),
            },
            prune,
            augment: match augment_pick {
                0 => AugmentMode::Auto,
                1 => AugmentMode::LevelParallel,
                _ => AugmentMode::PathParallel,
            },
            init: match init_pick {
                0 => Initializer::None,
                1 => Initializer::Greedy,
                2 => Initializer::KarpSipser,
                _ => Initializer::DynamicMindegree,
            },
            permute_seed: if seed.is_multiple_of(2) { Some(seed) } else { None },
            seed,
        };
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let r = maximum_matching(&mut ctx, &t, &opts);
        assert_eq!(r.matching.cardinality(), want, "trial {trial} opts {opts:?}");
        assert!(r.matching.validate(&a).is_ok(), "trial {trial} opts {opts:?}");
    }
}

#[test]
fn serial_algorithms_agree() {
    let mut rng = SplitMix64::new(0x0E03);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let a = t.to_csc();
        let hk = hopcroft_karp(&a, None);
        let pf = pothen_fan(&a, None);
        let (bfs, _) = ms_bfs_serial(&a, None);
        assert_eq!(pf.cardinality(), hk.cardinality(), "trial {trial}");
        assert_eq!(bfs.cardinality(), hk.cardinality(), "trial {trial}");
        assert!(hk.validate(&a).is_ok(), "trial {trial}");
        assert!(pf.validate(&a).is_ok(), "trial {trial}");
        assert!(bfs.validate(&a).is_ok(), "trial {trial}");
    }
}

#[test]
fn initializers_produce_valid_maximal_matchings() {
    let mut rng = SplitMix64::new(0x0E04);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let seed = rng.below(100);
        let a = t.to_csc();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let da = mcm_bsp::DistMatrix::from_triples(&ctx, &t);
        let dat = mcm_bsp::DistMatrix::from_triples(&ctx, &t.transposed());
        for init in [Initializer::Greedy, Initializer::KarpSipser, Initializer::DynamicMindegree] {
            let m = init.run(&mut ctx, &da, &dat, seed);
            assert!(m.validate(&a).is_ok(), "trial {trial} {init:?}");
            assert!(is_maximal(&a, &m), "trial {trial} {init:?} not maximal");
            // ≥ 1/2-approximation guarantee of any maximal matching.
            let maximum = hopcroft_karp(&a, None).cardinality();
            assert!(2 * m.cardinality() >= maximum, "trial {trial} {init:?} below 1/2-approx");
        }
    }
}

#[test]
fn warm_start_preserves_the_maximum() {
    let mut rng = SplitMix64::new(0x0E05);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let seed = rng.below(100);
        // Starting HK from any maximal matching must not change the result.
        let a = t.to_csc();
        let cold = hopcroft_karp(&a, None).cardinality();
        let maximal = mcm_core::serial::karp_sipser_serial(&a, seed);
        let warm = hopcroft_karp(&a, Some(maximal)).cardinality();
        assert_eq!(cold, warm, "trial {trial}");
    }
}
