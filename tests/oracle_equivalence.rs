//! Property-based oracle tests: every algorithm in the crate must agree
//! with Hopcroft–Karp on the maximum cardinality, on arbitrary bipartite
//! graphs, arbitrary process grids, and arbitrary option combinations.

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::semirings::SemiringKind;
use mcm_core::serial::{hopcroft_karp, ms_bfs_serial, pothen_fan};
use mcm_core::verify::{is_maximal, is_maximum};
use mcm_core::{maximum_matching, McmOptions};
use mcm_sparse::{Triples, Vidx};
use proptest::prelude::*;

/// An arbitrary bipartite graph: dimensions in 1..=24, up to 3·n edges.
fn arb_graph() -> impl Strategy<Value = Triples> {
    (1usize..=24, 1usize..=24).prop_flat_map(|(n1, n2)| {
        let max_edges = 3 * n1.max(n2);
        proptest::collection::vec((0..n1 as Vidx, 0..n2 as Vidx), 0..=max_edges)
            .prop_map(move |edges| Triples::from_edges(n1, n2, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distributed_mcm_matches_hopcroft_karp(t in arb_graph(), dim in 1usize..=3) {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let r = maximum_matching(&mut ctx, &t, &McmOptions::default());
        prop_assert_eq!(r.matching.cardinality(), want);
        prop_assert!(r.matching.validate(&a).is_ok());
        prop_assert!(is_maximum(&a, &r.matching));
    }

    #[test]
    fn all_option_combinations_agree(
        t in arb_graph(),
        prune in any::<bool>(),
        diropt in any::<bool>(),
        seed in 0u64..1000,
        semiring_pick in 0u8..3,
        augment_pick in 0u8..3,
        init_pick in 0u8..4,
    ) {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let opts = McmOptions {
            direction_optimizing: diropt,
            semiring: match semiring_pick {
                0 => SemiringKind::MinParent,
                1 => SemiringKind::RandParent(seed),
                _ => SemiringKind::RandRoot(seed),
            },
            prune,
            augment: match augment_pick {
                0 => AugmentMode::Auto,
                1 => AugmentMode::LevelParallel,
                _ => AugmentMode::PathParallel,
            },
            init: match init_pick {
                0 => Initializer::None,
                1 => Initializer::Greedy,
                2 => Initializer::KarpSipser,
                _ => Initializer::DynamicMindegree,
            },
            permute_seed: if seed % 2 == 0 { Some(seed) } else { None },
            seed,
        };
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let r = maximum_matching(&mut ctx, &t, &opts);
        prop_assert_eq!(r.matching.cardinality(), want);
        prop_assert!(r.matching.validate(&a).is_ok());
    }

    #[test]
    fn serial_algorithms_agree(t in arb_graph()) {
        let a = t.to_csc();
        let hk = hopcroft_karp(&a, None);
        let pf = pothen_fan(&a, None);
        let (bfs, _) = ms_bfs_serial(&a, None);
        prop_assert_eq!(pf.cardinality(), hk.cardinality());
        prop_assert_eq!(bfs.cardinality(), hk.cardinality());
        prop_assert!(hk.validate(&a).is_ok());
        prop_assert!(pf.validate(&a).is_ok());
        prop_assert!(bfs.validate(&a).is_ok());
    }

    #[test]
    fn initializers_produce_valid_maximal_matchings(t in arb_graph(), seed in 0u64..100) {
        let a = t.to_csc();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let da = mcm_bsp::DistMatrix::from_triples(&ctx, &t);
        let dat = mcm_bsp::DistMatrix::from_triples(&ctx, &t.transposed());
        for init in [Initializer::Greedy, Initializer::KarpSipser, Initializer::DynamicMindegree] {
            let m = init.run(&mut ctx, &da, &dat, seed);
            prop_assert!(m.validate(&a).is_ok(), "{:?}", init);
            prop_assert!(is_maximal(&a, &m), "{:?} not maximal", init);
            // ≥ 1/2-approximation guarantee of any maximal matching.
            let maximum = hopcroft_karp(&a, None).cardinality();
            prop_assert!(2 * m.cardinality() >= maximum, "{:?} below 1/2-approx", init);
        }
    }

    #[test]
    fn warm_start_preserves_the_maximum(t in arb_graph(), seed in 0u64..100) {
        // Starting HK from any maximal matching must not change the result.
        let a = t.to_csc();
        let cold = hopcroft_karp(&a, None).cardinality();
        let maximal = mcm_core::serial::karp_sipser_serial(&a, seed);
        let warm = hopcroft_karp(&a, Some(maximal)).cardinality();
        prop_assert_eq!(cold, warm);
    }
}
