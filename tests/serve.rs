//! Integration tests for the `mcm-serve` socket daemon: concurrency
//! equivalence, snapshot isolation, backpressure, framing at the edges,
//! and graceful shutdown. All sockets are loopback; every wait is a
//! timed channel or a bounded poll — no bare sleeps as assertions.

use mcm_dyn::{DynMatching, DynOptions, Update, WDynMatching, WDynOptions, WUpdate};
use mcm_serve::{ApplyHook, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deterministic interleaving seed; override with `MCM_TEST_SEED`.
fn test_seed() -> u64 {
    std::env::var("MCM_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xD15C0)
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Sends one line, returns the one response line (trimmed).
    fn roundtrip(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read");
        assert!(!resp.is_empty(), "daemon closed connection after {line:?}");
        resp.trim_end().to_string()
    }

    /// Sends an update, retrying while the daemon answers `busy`.
    fn update_retrying(&mut self, line: &str) -> String {
        for _ in 0..10_000 {
            let resp = self.roundtrip(line);
            if resp != "busy" {
                return resp;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        panic!("daemon answered busy 10k times for {line:?}");
    }
}

fn start(n: usize, cfg: ServerConfig) -> Server {
    let dm = DynMatching::new(n, n, DynOptions::default());
    Server::start(dm, cfg).expect("server start")
}

/// N interleaved clients inserting disjoint row ranges must leave the
/// daemon in exactly the state a serialized replay of the same update
/// stream reaches: same cardinality, same nnz, same overlay epoch, and
/// a Berge-certified maximum matching.
#[test]
fn interleaved_clients_match_serialized_replay() {
    let seed = test_seed();
    let (n, clients, per_client) = (64usize, 8usize, 60usize);
    let rows_per = n / clients;
    // Pre-generate each client's stream so the replay sees the same one.
    let streams: Vec<Vec<Update>> = (0..clients)
        .map(|k| {
            let mut rng = SplitMix64(seed ^ (k as u64).wrapping_mul(0x9E37));
            (0..per_client)
                .map(|_| {
                    let r = (k * rows_per) as u32 + rng.below(rows_per as u64) as u32;
                    let c = rng.below(n as u64) as u32;
                    Update::Insert(r, c)
                })
                .collect()
        })
        .collect();

    let server = start(n, ServerConfig::default());
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for stream in &streams {
            s.spawn(move || {
                let mut c = Client::connect(addr);
                for u in stream {
                    let Update::Insert(r, col) = u else { unreachable!() };
                    let resp = c.update_retrying(&format!("insert {r} {col}"));
                    assert_eq!(resp, "ok");
                }
                let resp = c.roundtrip("sync");
                assert!(resp.starts_with("synced seq "), "{resp}");
                assert_eq!(c.roundtrip("quit"), "bye");
            });
        }
    });
    assert_eq!(Client::connect(addr).roundtrip("shutdown"), "bye");
    let dm = server.join().expect_card();

    // Serialized replay: same per-client streams, applied client by
    // client on a fresh engine.
    let mut serial = DynMatching::new(n, n, DynOptions::default());
    for stream in &streams {
        serial.apply_batch(stream);
    }
    assert_eq!(dm.cardinality(), serial.cardinality(), "cardinality diverged (seed {seed})");
    assert_eq!(dm.graph().nnz(), serial.graph().nnz(), "nnz diverged (seed {seed})");
    assert_eq!(dm.graph().epoch(), serial.graph().epoch(), "epoch diverged (seed {seed})");
    dm.verify_full().expect("interleaved result must be Berge-certified");
    serial.verify_full().expect("replay result must be Berge-certified");
}

/// A `query` issued while a repair batch is held mid-apply must answer
/// from the pre-batch snapshot — and answer at all (timed channel, not a
/// sleep, proves it did not block behind the writer).
#[test]
fn query_mid_batch_is_snapshot_isolated_and_nonblocking() {
    let (applying_tx, applying_rx) = mpsc::channel::<usize>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let applying_tx = Mutex::new(applying_tx);
    let gate_rx = Mutex::new(gate_rx);
    let hook: ApplyHook = Arc::new(move |batch: &[WUpdate]| {
        applying_tx.lock().unwrap().send(batch.len()).ok();
        // Held until the test releases (or drops) the gate.
        gate_rx.lock().unwrap().recv().ok();
    });
    let cfg = ServerConfig { on_apply: Some(hook), ..ServerConfig::default() };
    let server = start(16, cfg);
    let addr = server.local_addr();

    let mut writer_conn = Client::connect(addr);
    assert_eq!(writer_conn.roundtrip("insert 0 0"), "ok");
    let held =
        applying_rx.recv_timeout(Duration::from_secs(5)).expect("writer never opened the batch");
    assert_eq!(held, 1);

    // The batch is now mid-apply (held by the gate). A reader on a
    // second connection must answer promptly from the pre-batch state.
    let (res_tx, res_rx) = mpsc::channel::<(String, String)>();
    std::thread::spawn(move || {
        let mut reader_conn = Client::connect(addr);
        let q = reader_conn.roundtrip("query");
        let st = reader_conn.roundtrip("state");
        res_tx.send((q, st)).ok();
    });
    let (q, st) = res_rx
        .recv_timeout(Duration::from_secs(2))
        .expect("query blocked behind the held repair batch");
    assert_eq!(q, "matching 0", "mid-batch query must see the pre-batch snapshot");
    assert!(st.starts_with("state seq 0 "), "pre-batch snapshot is seq 0: {st}");

    // Release the writer; the barrier then observes the new state.
    drop(gate_tx);
    let resp = writer_conn.roundtrip("sync");
    assert!(resp.starts_with("synced seq 1 cardinality 1"), "{resp}");
    assert_eq!(writer_conn.roundtrip("query"), "matching 1");
    server.shutdown();
}

/// With a held writer and a 1-slot admission queue the daemon must
/// answer `busy` (bounded backpressure), then recover and apply every
/// acknowledged update once released.
#[test]
fn full_queue_answers_busy_then_recovers() {
    let (applying_tx, applying_rx) = mpsc::channel::<usize>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let applying_tx = Mutex::new(applying_tx);
    let gate_rx = Mutex::new(gate_rx);
    let hook: ApplyHook = Arc::new(move |batch: &[WUpdate]| {
        applying_tx.lock().unwrap().send(batch.len()).ok();
        gate_rx.lock().unwrap().recv().ok();
    });
    let cfg = ServerConfig {
        queue_cap: 1,
        max_batch: 1,
        max_delay: Duration::from_millis(1),
        on_apply: Some(hook),
        ..ServerConfig::default()
    };
    let server = start(64, cfg);
    let mut c = Client::connect(server.local_addr());

    // First insert is absorbed by the (now held) writer; the queue and
    // then the client keep filling until `busy` appears.
    let mut acked: Vec<(u32, u32)> = Vec::new();
    let mut saw_busy = false;
    for i in 0..64u32 {
        let resp = c.roundtrip(&format!("insert {i} {i}"));
        match resp.as_str() {
            "ok" => acked.push((i, i)),
            "busy" => {
                saw_busy = true;
                break;
            }
            other => panic!("unexpected response: {other}"),
        }
    }
    assert!(saw_busy, "a 1-slot queue under a held writer must answer busy");
    applying_rx.recv_timeout(Duration::from_secs(5)).expect("writer never started");

    // Release everything; the barrier proves the acked updates landed.
    // (`sync` rides the same bounded queue, so it too can be told busy
    // until the writer drains — retry like any client would.)
    drop(gate_tx);
    let resp = c.update_retrying("sync");
    assert!(resp.starts_with("synced "), "{resp}");
    let dm = server.shutdown().expect_card();
    assert_eq!(dm.graph().nnz(), acked.len(), "every acked insert must be applied");
    for (r, col) in acked {
        assert!(dm.graph().contains(r, col), "acked insert ({r},{col}) missing");
    }
    dm.verify_full().expect("post-recovery matching must verify");
}

/// A connection that dies mid-line must have its complete lines executed
/// and its unterminated tail reported (counted), never executed.
#[test]
fn truncated_tail_is_counted_not_executed() {
    let server = start(16, ServerConfig::default());
    let addr = server.local_addr();
    let truncated = mcm_obs::registry().counter("mcmd_truncated_lines_total", &[]);
    let before = truncated.get();

    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // One complete command, one half command, then EOF.
        stream.write_all(b"insert 1 1\ninsert 2").expect("write");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        assert_eq!(resp.trim_end(), "ok");
        stream.shutdown(std::net::Shutdown::Write).ok();
        // Wait (bounded) for the worker to see EOF and report the tail.
        let deadline = Instant::now() + Duration::from_secs(5);
        while truncated.get() == before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert_eq!(truncated.get(), before + 1, "the truncated tail must be counted");

    let mut c = Client::connect(addr);
    let resp = c.roundtrip("sync");
    assert!(resp.starts_with("synced "), "{resp}");
    let st = c.roundtrip("state");
    assert!(st.contains("nnz 1"), "only the complete line may execute: {st}");
    let dm = server.shutdown().expect_card();
    assert!(dm.graph().contains(1, 1));
    assert_eq!(dm.graph().nnz(), 1, "the half-received insert must not run");
}

/// A client that pipelines updates and vanishes without reading anything
/// must not hurt the daemon or other connections.
#[test]
fn abrupt_disconnect_is_tolerated() {
    let server = start(32, ServerConfig::default());
    let addr = server.local_addr();
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut burst = String::new();
        for i in 0..16 {
            burst.push_str(&format!("insert {i} {i}\n"));
        }
        stream.write_all(burst.as_bytes()).expect("write");
        // Drop without reading a single response.
    }
    let mut c = Client::connect(addr);
    // The vanished connection's worker drains its 16 buffered inserts
    // concurrently with us; `sync` only barriers updates admitted so
    // far, so poll (bounded) until the burst has landed.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = c.roundtrip("sync");
        assert!(resp.starts_with("synced "), "{resp}");
        let q = c.roundtrip("query");
        if q == "matching 16" {
            break;
        }
        assert!(Instant::now() < deadline, "dropped connection's burst never fully applied: {q}");
        std::thread::sleep(Duration::from_millis(2));
    }
    let dm = server.shutdown().expect_card();
    assert_eq!(dm.cardinality(), 16);
}

/// Responses to a pipelined burst come back in request order, and a
/// `sync` inside the burst is a true barrier for the `query` behind it.
#[test]
fn pipelined_burst_answers_in_order() {
    let server = start(8, ServerConfig::default());
    let mut c = Client::connect(server.local_addr());
    c.stream.write_all(b"insert 0 0\ninsert 1 1\nsync\nquery\n").expect("write");
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut l = String::new();
        c.reader.read_line(&mut l).expect("read");
        lines.push(l.trim_end().to_string());
    }
    assert_eq!(lines[0], "ok");
    assert_eq!(lines[1], "ok");
    assert!(lines[2].starts_with("synced "), "{}", lines[2]);
    assert_eq!(lines[3], "matching 2");
    server.shutdown();
}

/// `shutdown` must drain every acknowledged update before the daemon
/// stops — admitted work is never dropped.
#[test]
fn shutdown_drains_admitted_updates() {
    let server = start(64, ServerConfig::default());
    let mut c = Client::connect(server.local_addr());
    for i in 0..48u32 {
        assert_eq!(c.update_retrying(&format!("insert {i} {}", 63 - i)), "ok");
    }
    assert_eq!(c.roundtrip("shutdown"), "bye");
    let dm = server.join().expect_card();
    assert_eq!(dm.graph().nnz(), 48, "shutdown dropped admitted updates");
    assert_eq!(dm.cardinality(), 48);
    dm.verify_full().expect("drained state must verify");
}

/// Weighted daemon round-trip: weighted inserts (both spellings), a
/// reweight that reroutes the matching, a matched-edge delete, weighted
/// `query`/`state`/`stats` shapes, and a certified final engine.
#[test]
fn weighted_daemon_round_trips_weights() {
    let wm = WDynMatching::new(8, 8, WDynOptions::default());
    let server = Server::start_weighted(wm, ServerConfig::default()).expect("server start");
    let mut c = Client::connect(server.local_addr());

    // A 2x2 block where the heavy diagonal wins.
    assert_eq!(c.update_retrying("insert 0 0 10"), "ok");
    assert_eq!(c.update_retrying("insert 0 1 1"), "ok");
    assert_eq!(c.update_retrying("insert 1 1 10"), "ok");
    // A bare insert defaults to weight 1.0 — still legal when weighted.
    assert_eq!(c.update_retrying("insert 2 2"), "ok");
    let resp = c.roundtrip("sync");
    assert!(resp.starts_with("synced seq "), "{resp}");
    assert_eq!(c.roundtrip("query"), "matching 3 weight 21");

    let st = c.roundtrip("state");
    assert!(st.contains(" cardinality 3 "), "{st}");
    assert!(st.contains(" weight 21"), "weighted state must carry the weight: {st}");
    let stats = c.roundtrip("stats");
    assert!(stats.starts_with("stats batches "), "{stats}");
    assert!(stats.ends_with("algo wauction"), "{stats}");
    assert!(stats.contains(" weight 21 "), "{stats}");

    // Reweighting the matched diagonal edge down reroutes through the
    // cross pairing: (0,1)+(1,1) is impossible, so optimal keeps the
    // heavier of the two diagonals plus the cross edge.
    assert_eq!(c.update_retrying("insert 0 0 2"), "ok");
    let resp = c.update_retrying("sync");
    assert!(resp.starts_with("synced "), "{resp}");
    assert_eq!(c.roundtrip("query"), "matching 3 weight 13");

    // Deleting the heavy edge leaves column 1 isolated: the optimum is
    // (0,0) at its reduced weight 2 plus (2,2) at 1.
    assert_eq!(c.update_retrying("delete 1 1"), "ok");
    let resp = c.update_retrying("sync");
    assert!(resp.starts_with("synced "), "{resp}");
    assert_eq!(c.roundtrip("query"), "matching 2 weight 3");

    assert_eq!(c.roundtrip("shutdown"), "bye");
    let wm = server.join().expect_weighted();
    assert_eq!(wm.cardinality(), 2);
    assert!((wm.weight() - 3.0).abs() < 1e-9, "weight {}", wm.weight());
    wm.verify_full().expect("final weighted state must be eps-CS certified");
}

/// A cardinality daemon must reject weight-carrying inserts (except the
/// no-op weight 1.0) instead of silently dropping the weight.
#[test]
fn card_daemon_rejects_weighted_inserts() {
    let server = start(8, ServerConfig::default());
    let mut c = Client::connect(server.local_addr());
    assert_eq!(c.roundtrip("insert 0 0 5"), "error weighted insert needs a --weighted daemon");
    // Weight 1.0 is the cardinality semantics — accepted.
    assert_eq!(c.update_retrying("insert 0 0 1"), "ok");
    let resp = c.roundtrip("sync");
    assert!(resp.starts_with("synced "), "{resp}");
    assert_eq!(c.roundtrip("query"), "matching 1");
    server.shutdown();
}
