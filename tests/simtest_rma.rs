//! RMA atomicity under adversarial service orders (DESIGN.md §10): the
//! property tests behind Algorithm 4's correctness argument. Concurrent
//! `fetch_and_put` streams racing on one slot must produce exactly one
//! winner under *every* permuted service order; vertex-disjoint streams
//! must commute; and the full path-parallel matching kernel must be
//! schedule-oblivious end to end — while a deliberately broken window
//! (fetch dropped) is reliably detected.

use mcm_bsp::sched::{run_interleaved, OriginTask};
use mcm_bsp::{
    Communicator, DistCtx, EngineComm, FaultPlan, Kernel, MachineConfig, RmaTask, RmaWin,
    SchedConfig, Schedule, SimWindow,
};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::serial::hopcroft_karp;
use mcm_core::{maximum_matching, verify, McmOptions};
use mcm_gen::hard::{chain, parallel_chains};
use mcm_sparse::{DenseVec, Vidx, NIL};

/// One simulated origin issuing a single `fetch_and_put` on a shared slot.
struct Racer {
    id: Vidx,
    slot: Vidx,
    saw: Option<Vidx>,
}

impl OriginTask for Racer {
    fn step(&mut self, win: &mut SimWindow<'_>) -> bool {
        self.saw = Some(win.fetch_and_put(0, self.slot, self.id));
        false
    }
}

// The same racer through the backend-agnostic window surface, so the
// trait-routed `Communicator::rma_epoch` path can drive it too.
impl RmaTask for Racer {
    fn step(&mut self, win: &mut dyn RmaWin) -> bool {
        self.saw = Some(win.fetch_and_put(0, self.slot, self.id));
        false
    }
}

#[test]
fn n_rank_fetch_and_put_race_has_one_winner_under_every_service_order() {
    // 8 origins on one slot across a wide seed range: the service order is
    // a schedule-chosen permutation, and in every one of them exactly one
    // origin must observe the initial NIL (it "won" the slot) while the
    // others each observe a distinct predecessor — the atomic swap chain.
    for n in [2 as Vidx, 3, 8] {
        for seed in 0..256u64 {
            let mut slot = DenseVec::nil(1);
            let mut win = SimWindow::new(vec![&mut slot], FaultPlan::default());
            let mut racers: Vec<Racer> =
                (0..n).map(|id| Racer { id, slot: 0, saw: None }).collect();
            let mut sched = Schedule::new(seed);
            let steps = run_interleaved(&mut win, &mut sched, &mut racers);
            assert_eq!(steps, n as u64, "each origin issues exactly one call");

            let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
            assert_eq!(winners, 1, "n = {n} seed {seed}: atomicity violated");
            let mut seen: Vec<Vidx> = racers.iter().map(|r| r.saw.unwrap()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), n as usize, "n = {n} seed {seed}: lost update");
            // The final occupant is the one nobody fetched back out.
            let last = slot.get(0);
            assert!(
                racers.iter().all(|r| r.saw != Some(last)),
                "n = {n} seed {seed}: final occupant was also swapped out"
            );
        }
    }
}

#[test]
fn broken_window_collapses_the_swap_chain_under_every_schedule() {
    // With the injected `drop_fetch` bug armed, the put lands but every
    // fetch returns NIL — so every origin believes it won. This is the
    // signal the differential sweeps key on; it must appear under every
    // seed, not just a lucky one.
    for seed in 0..32u64 {
        let mut slot = DenseVec::nil(1);
        let mut win = SimWindow::new(vec![&mut slot], FaultPlan::broken_fetch_and_put());
        let mut racers: Vec<Racer> = (0..5).map(|id| Racer { id, slot: 0, saw: None }).collect();
        let mut sched = Schedule::new(seed);
        run_interleaved(&mut win, &mut sched, &mut racers);
        let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
        assert!(winners > 1, "seed {seed}: the injected bug must be observable");
    }
}

/// An origin that walks its own private slot: get, bump, put, repeat.
/// Disjoint origins must commute under any interleaving.
struct DisjointWalker {
    slot: Vidx,
    rounds: u32,
}

impl OriginTask for DisjointWalker {
    fn step(&mut self, win: &mut SimWindow<'_>) -> bool {
        if self.rounds == 0 {
            return false;
        }
        let cur = win.fetch_and_put(0, self.slot, self.slot * 100 + self.rounds as Vidx);
        let _ = cur;
        self.rounds -= 1;
        self.rounds > 0
    }
}

#[test]
fn vertex_disjoint_streams_commute_under_every_interleaving() {
    // The disjointness invariant of Algorithm 4: origins touching disjoint
    // slots must leave the window in the same final state no matter how
    // the schedule interleaves their calls.
    let reference = {
        let mut v = DenseVec::nil(8);
        let mut win = SimWindow::new(vec![&mut v], FaultPlan::default());
        let mut tasks: Vec<DisjointWalker> =
            (0..8).map(|slot| DisjointWalker { slot, rounds: 4 }).collect();
        let mut sched = Schedule::new(0);
        run_interleaved(&mut win, &mut sched, &mut tasks);
        (0..8).map(|i| v.get(i)).collect::<Vec<_>>()
    };
    for seed in 1..64u64 {
        let mut v = DenseVec::nil(8);
        let mut win = SimWindow::new(vec![&mut v], FaultPlan::default());
        let mut tasks: Vec<DisjointWalker> =
            (0..8).map(|slot| DisjointWalker { slot, rounds: 4 }).collect();
        let mut sched = Schedule::new(seed);
        run_interleaved(&mut win, &mut sched, &mut tasks);
        let state: Vec<Vidx> = (0..8).map(|i| v.get(i)).collect();
        assert_eq!(state, reference, "seed {seed}: disjoint streams failed to commute");
    }
}

// ---------------------------------------------------------------------------
// End to end: the path-parallel kernel through MCM-DIST.
// ---------------------------------------------------------------------------

fn path_parallel_opts() -> McmOptions {
    McmOptions {
        augment: AugmentMode::PathParallel,
        init: Initializer::Greedy,
        ..McmOptions::default()
    }
}

#[test]
fn path_parallel_matching_is_schedule_oblivious_end_to_end() {
    let graphs = [("chain_10", chain(10)), ("parallel_chains_4x3", parallel_chains(4, 3))];
    let opts = path_parallel_opts();
    for (name, g) in &graphs {
        let a = g.to_csc();
        let oracle = hopcroft_karp(&a, None).cardinality();
        let friendly = {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            maximum_matching(&mut ctx, g, &opts)
        };
        assert_eq!(friendly.matching.cardinality(), oracle, "{name}: friendly run wrong");
        for seed in 0..24u64 {
            let mut ctx =
                DistCtx::new(MachineConfig::hybrid(2, 1)).with_schedule(Schedule::new(seed));
            let result = maximum_matching(&mut ctx, g, &opts);
            assert_eq!(
                result.matching, friendly.matching,
                "{name} seed {seed}: schedule changed the matching"
            );
            verify::verify(&a, &result.matching)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_eq!(result.stats.sched_seed, Some(seed), "{name}: seed not recorded");
            assert!(
                result.stats.sched_interleave_steps > 0,
                "{name} seed {seed}: the interleaver never ran"
            );
        }
    }
}

#[test]
fn broken_window_corrupts_real_matchings_and_replays_from_its_seed() {
    // Arm the injected bug through a real MCM-DIST run: dropped fetches
    // truncate augmenting-path walks, leaving a wrong (smaller or invalid)
    // matching. At least one seed in a small budget must expose it, and
    // that seed must reproduce the identical wrong outcome on replay.
    let g = chain(8);
    let a = g.to_csc();
    let oracle = hopcroft_karp(&a, None).cardinality();
    let opts = path_parallel_opts();
    let cfg = SchedConfig { fault: FaultPlan::broken_fetch_and_put(), ..SchedConfig::default() };

    let run = |seed: u64| {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(1, 1))
            .with_schedule(Schedule::with_config(seed, cfg));
        maximum_matching(&mut ctx, &g, &opts)
    };

    let caught = (0..8u64).find(|&seed| {
        let r = run(seed);
        r.matching.cardinality() != oracle || verify::verify(&a, &r.matching).is_err()
    });
    let seed = caught.expect("broken fetch_and_put survived every schedule in the budget");

    let first = run(seed);
    let again = run(seed);
    assert_eq!(first.matching, again.matching, "seed {seed} did not replay deterministically");
}

// ---------------------------------------------------------------------------
// The trait-routed path: `Communicator::rma_epoch` on both backends.
// ---------------------------------------------------------------------------

#[test]
fn trait_routed_epoch_consumes_the_same_pick_stream_as_the_legacy_interleaver() {
    // `DistCtx::rma_epoch` must service concurrent origins in the exact
    // order `run_interleaved` picks for the same schedule seed — replay
    // seeds recorded before the comm-trait refactor must stay valid.
    for n in [2 as Vidx, 5, 8] {
        for seed in 0..64u64 {
            let legacy = {
                let mut slot = DenseVec::nil(1);
                let mut win = SimWindow::new(vec![&mut slot], FaultPlan::default());
                let mut racers: Vec<Racer> =
                    (0..n).map(|id| Racer { id, slot: 0, saw: None }).collect();
                let mut sched = Schedule::new(seed);
                run_interleaved(&mut win, &mut sched, &mut racers);
                (racers.iter().map(|r| r.saw).collect::<Vec<_>>(), slot.get(0))
            };
            let routed = {
                let mut ctx =
                    DistCtx::new(MachineConfig::hybrid(1, 1)).with_schedule(Schedule::new(seed));
                let mut slot = DenseVec::nil(1);
                let mut racers: Vec<Racer> =
                    (0..n).map(|id| Racer { id, slot: 0, saw: None }).collect();
                let steps = ctx.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
                assert_eq!(steps, n as u64, "each origin issues exactly one call");
                (racers.iter().map(|r| r.saw).collect::<Vec<_>>(), slot.get(0))
            };
            assert_eq!(routed, legacy, "n = {n} seed {seed}: pick streams diverged");
        }
    }
}

#[test]
fn engine_epoch_swap_chain_holds_under_run_ranks_sched_perturbation() {
    // The engine services its RMA epochs on real atomics while
    // `run_ranks_sched` perturbs every rank's progress; the per-source
    // FIFO stash behind the closing fence must keep the swap chain exact
    // under every seed.
    for n in [2 as Vidx, 6, 9] {
        for seed in 0..24u64 {
            let mut eng = EngineComm::new(4, 1).with_schedule(Schedule::new(seed));
            let mut slot = DenseVec::nil(1);
            let mut racers: Vec<Racer> =
                (0..n).map(|id| Racer { id, slot: 0, saw: None }).collect();
            let steps = eng.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
            assert!(steps > 0, "n = {n} seed {seed}: the perturbed epoch never stalled anyone");

            let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
            assert_eq!(winners, 1, "n = {n} seed {seed}: engine atomicity violated");
            let mut seen: Vec<Vidx> = racers.iter().map(|r| r.saw.unwrap()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), n as usize, "n = {n} seed {seed}: engine lost an update");
            let last = slot.get(0);
            assert!(
                racers.iter().all(|r| r.saw != Some(last)),
                "n = {n} seed {seed}: final occupant was also swapped out"
            );
        }
    }
}

#[test]
fn engine_path_parallel_matching_is_schedule_oblivious_end_to_end() {
    // MCM-DIST through the trait-routed engine backend: the matching must
    // not depend on how run_ranks_sched perturbs collectives or on how
    // the atomic window services the walkers — and must equal the
    // simulator's answer for the same options.
    let graphs = [("chain_10", chain(10)), ("parallel_chains_4x3", parallel_chains(4, 3))];
    let opts = path_parallel_opts();
    for (name, g) in &graphs {
        let a = g.to_csc();
        let oracle = hopcroft_karp(&a, None).cardinality();
        let sim = {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            maximum_matching(&mut ctx, g, &opts)
        };
        let friendly = {
            let mut eng = EngineComm::new(4, 1);
            maximum_matching(&mut eng, g, &opts)
        };
        assert_eq!(friendly.matching.cardinality(), oracle, "{name}: friendly engine run wrong");
        assert_eq!(friendly.matching, sim.matching, "{name}: engine diverged from simulator");
        for seed in 0..12u64 {
            let mut eng = EngineComm::new(4, 1).with_schedule(Schedule::new(seed));
            let result = maximum_matching(&mut eng, g, &opts);
            assert_eq!(
                result.matching, friendly.matching,
                "{name} seed {seed}: schedule changed the engine matching"
            );
            verify::verify(&a, &result.matching)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_eq!(result.stats.sched_seed, Some(seed), "{name}: seed not recorded");
        }
    }
}

#[test]
fn engine_broken_window_is_caught_by_the_same_checks() {
    // Arming the injected drop-fetch bug on the engine's atomic window
    // must corrupt real matchings within the same small seed budget the
    // simulator harness uses.
    let g = chain(8);
    let a = g.to_csc();
    let oracle = hopcroft_karp(&a, None).cardinality();
    let opts = path_parallel_opts();
    let cfg = SchedConfig { fault: FaultPlan::broken_fetch_and_put(), ..SchedConfig::default() };

    let caught = (0..8u64).any(|seed| {
        let mut eng = EngineComm::new(4, 1).with_schedule(Schedule::with_config(seed, cfg));
        let r = maximum_matching(&mut eng, &g, &opts);
        r.matching.cardinality() != oracle || verify::verify(&a, &r.matching).is_err()
    });
    assert!(caught, "broken fetch_and_put survived every engine schedule in the budget");
}

// ---------------------------------------------------------------------------
// SharedComm: epoch barriers under adversarial arrival orders.
// ---------------------------------------------------------------------------

#[test]
fn shared_epoch_swap_chain_holds_under_adversarial_arrival_orders() {
    // SharedComm's collectives synchronize on an epoch stamp instead of a
    // channel mesh; the schedule perturbs the order origins arrive at the
    // epoch. The swap chain must stay exact under every arrival order.
    for n in [2 as Vidx, 6, 9] {
        for seed in 0..24u64 {
            let mut shc = mcm_bsp::SharedComm::new(4, 1).with_schedule(Schedule::new(seed));
            let mut slot = DenseVec::nil(1);
            let mut racers: Vec<Racer> =
                (0..n).map(|id| Racer { id, slot: 0, saw: None }).collect();
            let steps = shc.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
            assert_eq!(steps, n as u64, "each origin issues exactly one call");

            let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
            assert_eq!(winners, 1, "n = {n} seed {seed}: shared atomicity violated");
            let mut seen: Vec<Vidx> = racers.iter().map(|r| r.saw.unwrap()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), n as usize, "n = {n} seed {seed}: shared lost an update");
            let last = slot.get(0);
            assert!(
                racers.iter().all(|r| r.saw != Some(last)),
                "n = {n} seed {seed}: final occupant was also swapped out"
            );
        }
    }
}

#[test]
fn shared_matching_and_trace_hash_are_stable_under_epoch_perturbation() {
    // End to end through MCM-DIST on SharedComm: adversarial arrival
    // orders at the epoch barrier must not change the matching, and the
    // schedule's trace-hash certificate must replay exactly — the same
    // seed yields the same decision stream, byte for byte.
    let graphs = [("chain_10", chain(10)), ("parallel_chains_4x3", parallel_chains(4, 3))];
    let opts = path_parallel_opts();
    for (name, g) in &graphs {
        let a = g.to_csc();
        let oracle = hopcroft_karp(&a, None).cardinality();
        let friendly = {
            let mut shc = mcm_bsp::SharedComm::new(4, 1);
            maximum_matching(&mut shc, g, &opts)
        };
        assert_eq!(friendly.matching.cardinality(), oracle, "{name}: friendly shared run wrong");
        for seed in 0..12u64 {
            let run = |seed: u64| {
                let mut shc = mcm_bsp::SharedComm::new(4, 1).with_schedule(Schedule::new(seed));
                let r = maximum_matching(&mut shc, g, &opts);
                let cert = shc.ctx().sched.as_ref().map(|s| (s.trace_hash(), s.decisions()));
                (r, cert.expect("schedule must survive the run"))
            };
            let (first, cert) = run(seed);
            assert_eq!(
                first.matching, friendly.matching,
                "{name} seed {seed}: arrival order changed the shared matching"
            );
            verify::verify(&a, &first.matching)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_eq!(first.stats.sched_seed, Some(seed), "{name}: seed not recorded");
            assert!(cert.1 > 0, "{name} seed {seed}: the epoch interleaver never ran");

            let (again, cert2) = run(seed);
            assert_eq!(first.matching, again.matching, "{name} seed {seed}: replay diverged");
            assert_eq!(cert, cert2, "{name} seed {seed}: trace-hash certificate diverged");
        }
    }
}
