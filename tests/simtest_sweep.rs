//! The standing simtest differential sweep (DESIGN.md §10): MCM-DIST
//! end-to-end under seeded adversarial schedules across the full
//! {grid × semiring × initializer × augmentation × generator} matrix,
//! checked against the serial oracles, the Berge certificate, and the
//! channel engine's sent-element accounting.
//!
//! CI runs the default matrix (p ∈ {1, 4, 9}, 3 seeds) on every PR; the
//! manual workflow trigger widens the seed budget via
//! `MCM_SIMTEST_EXTRA_SEEDS` (see .github/workflows/ci.yml and
//! EXPERIMENTS.md, "Reproducing a failing schedule").

use mcm_core::simtest::{detect_injected_fault, differential_sweep, SweepConfig};
use mcm_gen::hard::chain;
use mcm_gen::simtest_suite;

/// Extra schedule seeds requested by the environment (the manual larger
/// matrix); 0 on the default CI path.
fn extra_seeds() -> usize {
    std::env::var("MCM_SIMTEST_EXTRA_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[test]
fn differential_sweep_passes_on_the_generator_suite() {
    let cases = simtest_suite(0x51A7E57);
    let cfg = match extra_seeds() {
        0 => SweepConfig::ci(),
        n => SweepConfig::ci_with_extra_seeds(0xBADC0DE, n),
    };
    let report = differential_sweep(&cases, &cfg).unwrap_or_else(|e| panic!("{e}"));
    // Every cell of the matrix really ran...
    let per_case = cfg.dims.len()
        * cfg.semirings.len()
        * cfg.inits.len()
        * cfg.augments.len()
        * cfg.sched_seeds.len();
    assert_eq!(report.cases, cases.len());
    assert_eq!(report.runs, cases.len() * per_case);
    assert_eq!(report.engine_checks, cases.len() * cfg.dims.len() * cfg.sched_seeds.len());
    // ...including the portfolio engines (PPF + auction under every
    // thread shape and schedule seed, Berge-certified in run_portfolio_one).
    assert_eq!(
        report.portfolio_runs,
        cases.len() * cfg.dims.len() * cfg.algos.len() * cfg.sched_seeds.len()
    );
    // ...and the perturbed RMA interleaver was actually exercised.
    assert!(report.interleave_steps > 0, "no path-parallel epoch ran under a schedule");
}

#[test]
fn injected_interleaving_bug_is_caught_within_the_ci_seed_budget() {
    // Acceptance criterion: arming the deliberate fetch_and_put bug (the
    // fetch is dropped, as if MPI_Put had been used where MPI_Fetch_and_op
    // is required) must be detected within the default CI seed budget, and
    // the reported failure must carry a seed that replays it exactly.
    let budget = SweepConfig::ci().sched_seeds;
    let g = chain(8);
    let (seed, failure) =
        detect_injected_fault(&g, &budget).expect("broken fetch_and_put escaped the seed budget");
    let msg = failure.to_string();
    assert!(msg.contains(&format!("{seed:#x}")), "report must print the replay seed: {msg}");
    assert!(msg.contains("reproduce:"), "report must print a repro recipe: {msg}");

    // Determinism of the replay: the same seed reproduces the identical
    // schedule and therefore the identical diagnostic.
    let (_, again) = detect_injected_fault(&g, &[seed]).expect("replay did not reproduce the bug");
    assert_eq!(again.detail, failure.detail);
}

#[test]
fn sweep_failures_format_machine_findable_seeds() {
    // A failure constructed by the driver (oracle mismatch path) must
    // always surface the seed even for engine-side checks.
    use mcm_core::augment::AugmentMode;
    use mcm_core::maximal::Initializer;
    use mcm_core::semirings::SemiringKind;
    let failure = mcm_core::simtest::SweepFailure {
        case: "example".into(),
        dim: 3,
        semiring: SemiringKind::MinParent,
        init: Initializer::None,
        augment: AugmentMode::PathParallel,
        sched_seed: 0xDEADBEEF,
        algo: "msbfs",
        detail: "cardinality 3 diverged from serial oracles (4)".into(),
    };
    let msg = failure.to_string();
    assert!(msg.contains("0xdeadbeef"));
    assert!(msg.contains("grid 3x3"));
    assert!(msg.contains("algo msbfs"));
    assert!(msg.contains("EXPERIMENTS.md"));
}

#[test]
fn injected_auction_fault_is_caught_within_the_ci_seed_budget() {
    // Same acceptance shape as the fetch_and_put fault, for the portfolio:
    // arming the lost-bidder bug in the auction's eviction path must be
    // detected within the CI seed budget and replay from the printed seed.
    use mcm_core::simtest::detect_injected_auction_fault;
    let budget = SweepConfig::ci().sched_seeds;
    let g = chain(8);
    let (seed, failure) = detect_injected_auction_fault(&g, &budget)
        .expect("broken auction bid update escaped the seed budget");
    assert_eq!(failure.algo, "auction");
    let msg = failure.to_string();
    assert!(msg.contains(&format!("{seed:#x}")), "report must print the replay seed: {msg}");

    let (_, again) = detect_injected_auction_fault(&g, &[seed])
        .expect("replay did not reproduce the auction bug");
    assert_eq!(again.detail, failure.detail);
}
