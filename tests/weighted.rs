//! Weighted-auction lockdown (DESIGN.md §17): across the weight-perturbed
//! mcm-gen suite the parallel ε-scaled auction must
//!
//! 1. reproduce the serial fixed-ε oracle's matching weight **exactly**
//!    (integer weights with ε under the exactness bound `1/(n+1)` make
//!    both provably optimal, so equality is not approximate),
//! 2. hold the ε-complementary-slackness certificate on every run, and
//! 3. return the *identical matching* at p ∈ {1, 4, 9} — thread
//!    invariance as equality of mates, not merely of weights.
//!
//! Failures print the suite seed; replay with `MCM_TEST_SEED=<seed>`.

use mcm_core::auction::AuctionOptions;
use mcm_core::verify::verify_eps_cs;
use mcm_core::weighted::{auction_mwm, auction_mwm_par};
use mcm_dyn::{WDynMatching, WDynOptions, WUpdate};
use mcm_gen::{
    assign_weights, materialize_weighted, simtest_suite, weighted_update_trace, WTraceOp,
    WTraceParams,
};
use mcm_sparse::WCsc;

/// Deterministic sweep seed; override with `MCM_TEST_SEED`.
fn test_seed() -> u64 {
    std::env::var("MCM_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x3E16)
}

/// Integer weights 1..=50 for every instance in the simtest suite, each
/// instance perturbed by its own weight stream.
fn weighted_suite(seed: u64) -> Vec<(String, WCsc)> {
    simtest_suite(seed)
        .into_iter()
        .enumerate()
        .map(|(i, (name, t))| {
            let wseed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
            let entries = assign_weights(t.entries(), wseed, 50);
            (name, WCsc::from_weighted_triples(t.nrows(), t.ncols(), entries))
        })
        .collect()
}

#[test]
fn parallel_auction_matches_the_serial_oracle_across_the_suite() {
    let seed = test_seed();
    for (name, a) in weighted_suite(seed) {
        let eps = 0.5 / (a.nrows() as f64 + 1.0);
        let oracle = auction_mwm(&a, eps);
        verify_eps_cs(&a, &oracle.matching, &oracle.prices, oracle.eps)
            .unwrap_or_else(|e| panic!("{name} (seed {seed:#x}): serial cert failed: {e}"));

        let runs: Vec<_> = [1usize, 4, 9]
            .into_iter()
            .map(|threads| {
                let r =
                    auction_mwm_par(&a, &AuctionOptions { threads, ..AuctionOptions::default() });
                r.matching.validate(a.pattern()).unwrap_or_else(|e| {
                    panic!("{name} (seed {seed:#x}, p={threads}): invalid matching: {e}")
                });
                verify_eps_cs(&a, &r.matching, &r.prices, r.eps).unwrap_or_else(|e| {
                    panic!("{name} (seed {seed:#x}, p={threads}): eps-CS cert failed: {e}")
                });
                (threads, r)
            })
            .collect();

        // Integer weights + eps under the exactness bound: both solvers
        // are optimal, so the weights must agree exactly, not within tol.
        for (threads, r) in &runs {
            assert_eq!(
                r.weight, oracle.weight,
                "{name} (seed {seed:#x}, p={threads}): parallel weight diverged from the oracle"
            );
        }
        // Thread invariance is equality of the matching itself.
        for (threads, r) in &runs[1..] {
            assert_eq!(
                r.matching, runs[0].1.matching,
                "{name} (seed {seed:#x}): matching changed between p=1 and p={threads}"
            );
        }
    }
}

#[test]
fn weighted_trace_checkpoints_agree_with_the_cold_oracle() {
    // End-to-end over the new weighted trace generator: feed each batch
    // (inserts, reweights, deletes) to the incremental engine, and at
    // every Query checkpoint demand exact weight agreement with a cold
    // eps-scaled solve of the materialized prefix.
    let seed = test_seed();
    let p =
        WTraceParams { max_weight: 20, reweight_frac: 0.3, ..WTraceParams::churn(14, 12, seed) };
    let ops = weighted_update_trace(&p);
    let mut wm = WDynMatching::new(p.base.n1, p.base.n2, WDynOptions::default());
    let mut batch: Vec<WUpdate> = Vec::new();
    let mut checkpoints = 0usize;
    for (at, op) in ops.iter().enumerate() {
        match *op {
            WTraceOp::Insert(r, c, w) => batch.push(WUpdate::Insert(r, c, w)),
            WTraceOp::Delete(r, c) => batch.push(WUpdate::Delete(r, c)),
            WTraceOp::Query => {
                wm.apply_batch(&batch);
                batch.clear();
                wm.verify_full().unwrap_or_else(|e| {
                    panic!("checkpoint {checkpoints} (seed {seed:#x}): cert failed: {e}")
                });
                let entries = materialize_weighted(p.base.n1, p.base.n2, &ops[..=at]);
                let a = WCsc::from_weighted_triples(p.base.n1, p.base.n2, entries);
                let cold = auction_mwm_par(
                    &a,
                    &AuctionOptions { eps_final: Some(wm.eps()), ..AuctionOptions::default() },
                );
                assert_eq!(
                    wm.weight(),
                    cold.weight,
                    "checkpoint {checkpoints} (seed {seed:#x}): incremental weight diverged"
                );
                checkpoints += 1;
            }
        }
    }
    assert_eq!(checkpoints, p.base.batches + 1, "trace structure changed");
    assert!(wm.stats().incremental_batches > 0, "sweep never exercised incremental repair");
}
