//! Replays the paper's worked example (Figs. 1 and 2) step by step and
//! checks every intermediate vector against the figures.
//!
//! The graph (Fig. 2): rows r1..r4, columns c1..c5 (0-based r0..r3 /
//! c0..c4 here), edges r1{c1,c3}, r2{c1,c2,c4}, r3{c3,c5}, r4{c4,c5}.
//! The initial matching has c3, c4 matched (to r1, r2), so the first
//! column frontier is the unmatched {c1, c2, c5} carrying (parent, root) =
//! (self, self) — exactly the sparse vector `[(1,1), (2,2), −, −, (5,5)]`
//! the paper prints in §III-B.

use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_core::augment::{augment, AugmentMode};
use mcm_core::primitives::{invert_by, prune, select, set_dense};
use mcm_core::semirings::SemiringKind;
use mcm_core::vertex::Vertex;
use mcm_core::{maximum_matching, Matching, McmOptions};
use mcm_sparse::{DenseVec, SpVec, Triples, NIL};

fn fig2_graph() -> Triples {
    Triples::from_edges(
        4,
        5,
        vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
    )
}

fn initial_matching() -> Matching {
    let mut m = Matching::empty(4, 5);
    m.add(0, 2); // r1 — c3
    m.add(1, 3); // r2 — c4
    m
}

#[test]
fn first_iteration_reproduces_fig1_step_by_step() {
    let g = fig2_graph();
    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
    let a = DistMatrix::from_triples(&ctx, &g);
    let m = initial_matching();

    // Initial column frontier: unmatched columns c1, c2, c5.
    let f_c: SpVec<Vertex> = SpVec::from_sorted_pairs(
        5,
        m.unmatched_cols().into_iter().map(|c| (c, Vertex::seed(c))).collect(),
    );
    assert_eq!(
        f_c.entries(),
        &[(0, Vertex::new(0, 0)), (1, Vertex::new(1, 1)), (4, Vertex::new(4, 4))],
        "paper: f_c = [(1,1), (2,2), −, −, (5,5)]"
    );

    // Step 1: SpMV over (select2nd, minParent) — Fig. 2's result.
    let semiring = SemiringKind::MinParent;
    let f_r = a.spmspv(
        &mut ctx,
        Kernel::SpMV,
        &f_c,
        |j, v: &Vertex| Vertex::new(j, v.root),
        |acc, inc| semiring.take_incoming(acc, inc),
    );
    assert_eq!(
        f_r.entries(),
        &[
            (0, Vertex::new(0, 0)), // r1 ← c1
            (1, Vertex::new(0, 0)), // r2 ← min(c1, c2, ...) = c1
            (2, Vertex::new(4, 4)), // r3 ← c5
            (3, Vertex::new(4, 4)), // r4 ← c5
        ],
        "Fig. 2: A ⊗ f_c over (select2nd, minParent)"
    );

    // Step 2: all rows are unvisited in the first iteration.
    let mut parent_r = DenseVec::nil(4);
    let f_r = select(&mut ctx, Kernel::Select, &f_r, &parent_r, |p| p == NIL);
    assert_eq!(f_r.nnz(), 4);

    // Step 3: record parents — π_r = [c1, c1, c5, c5].
    set_dense(&mut ctx, Kernel::Select, &mut parent_r, &f_r, |v| v.parent);
    assert_eq!(parent_r.as_slice(), &[0, 0, 4, 4]);

    // Step 4: split by matching status — r3, r4 are unmatched endpoints.
    let uf_r = select(&mut ctx, Kernel::Select, &f_r, &m.mate_r, |v| v == NIL);
    let f_r = select(&mut ctx, Kernel::Select, &f_r, &m.mate_r, |v| v != NIL);
    assert_eq!(uf_r.ind(), vec![2, 3], "unmatched rows r3, r4");
    assert_eq!(f_r.ind(), vec![0, 1], "matched rows r1, r2");

    // Step 5: both endpoints share root c5 — INVERT keeps the first (r3),
    // exactly the paper's "if more than one augmenting path is discovered
    // starting from the same root, we keep only one of them".
    let t_c = invert_by(&mut ctx, Kernel::Invert, &uf_r, 5, |v| v.root, |i, _| i);
    assert_eq!(t_c.entries(), &[(4, 2)], "path_c[c5] = r3");
    let mut path_c = DenseVec::nil(5);
    set_dense(&mut ctx, Kernel::Select, &mut path_c, &t_c, |&r| r);

    // Step 6: prune rows whose tree (root c5) found a path — none of the
    // matched rows r1, r2 belong to it.
    let f_r = prune(&mut ctx, Kernel::Prune, &f_r, &t_c.ind(), |v| v.root);
    assert_eq!(f_r.ind(), vec![0, 1]);

    // Step 7: next frontier = mates of r1, r2 = {c3, c4}, roots inherited.
    let stepped = SpVec::from_sorted_pairs(
        4,
        f_r.iter().map(|(i, v)| (i, Vertex::new(m.mate_r.get(i), v.root))).collect(),
    );
    let f_c2 = invert_by(
        &mut ctx,
        Kernel::Invert,
        &stepped,
        5,
        |v| v.parent,
        |i, v| Vertex::new(i, v.root),
    );
    assert_eq!(
        f_c2.entries(),
        &[(2, Vertex::new(0, 0)), (3, Vertex::new(1, 0))],
        "next f_c = mates {{c3, c4}} with root c1"
    );

    // The one recorded path augments r3 — c5 (a length-1 path).
    let mut m = m;
    let rep = augment(&mut ctx, AugmentMode::LevelParallel, &path_c, &parent_r, &mut m);
    assert_eq!(rep.paths, 1);
    assert_eq!(m.mate_r.get(2), 4, "r3 matched to c5");
    assert_eq!(m.cardinality(), 3);
}

#[test]
fn full_run_reaches_the_maximum_of_four() {
    let g = fig2_graph();
    for dim in 1..=3 {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let r = maximum_matching(&mut ctx, &g, &McmOptions::default());
        assert_eq!(r.matching.cardinality(), 4, "grid {dim}x{dim}");
        r.matching.validate(&g.to_csc()).unwrap();
        mcm_core::verify::assert_maximum(&g.to_csc(), &r.matching);
    }
}

#[test]
fn rand_root_semiring_balances_trees_on_fig2() {
    // With (select2nd, randRoot) the two endpoint rows r3/r4 may land in
    // different trees depending on the seed, but the maximum is invariant.
    let g = fig2_graph();
    for seed in 0..8 {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let opts = McmOptions { semiring: SemiringKind::RandRoot(seed), ..Default::default() };
        let r = maximum_matching(&mut ctx, &g, &opts);
        assert_eq!(r.matching.cardinality(), 4, "seed {seed}");
    }
}
