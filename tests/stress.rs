//! Adversarial stress tests: exhaustive option-matrix sweeps and
//! high-trial randomized oracles (originating from a review pass; kept
//! because they cover combinations the targeted suites do not).

use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::augment::AugmentMode;
use mcm_core::maximal::Initializer;
use mcm_core::semirings::SemiringKind;
use mcm_core::serial::{hopcroft_karp, ms_bfs_graft, pothen_fan, push_relabel};
use mcm_core::{maximum_matching, McmOptions};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// Resolves a stress case's RNG seed: the case default, unless
/// `MCM_TEST_SEED` overrides it (decimal or `0x`-prefixed hex). Every
/// assertion message below carries the resolved seed, so any failure
/// replays exactly with `MCM_TEST_SEED=<seed> cargo test --test stress`
/// (see EXPERIMENTS.md, "Reproducing a failing schedule").
fn stress_seed(default: u64) -> u64 {
    let Ok(raw) = std::env::var("MCM_TEST_SEED") else { return default };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MCM_TEST_SEED={raw} is not a u64"))
}

fn random_graph(rng: &mut SplitMix64, n1: usize, n2: usize, edges: usize) -> Triples {
    let mut t = Triples::new(n1, n2);
    for _ in 0..edges {
        t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
    }
    t
}

#[test]
fn dist_matches_hk_exhaustive_options() {
    let seed = stress_seed(0xDEAD);
    let mut rng = SplitMix64::new(seed);
    for trial in 0..60 {
        let n1 = 1 + (rng.next_u64() % 30) as usize;
        let n2 = 1 + (rng.next_u64() % 30) as usize;
        let e = (rng.next_u64() % (3 * n1.max(n2) as u64 + 1)) as usize;
        let t = random_graph(&mut rng, n1, n2, e);
        let want = hopcroft_karp(&t.to_csc(), None).cardinality();
        for dim in [1usize, 2, 3] {
            for semiring in
                [SemiringKind::MinParent, SemiringKind::RandParent(3), SemiringKind::RandRoot(4)]
            {
                for prune in [true, false] {
                    for diropt in [false, true] {
                        for init in [Initializer::None, Initializer::KarpSipser] {
                            for aug in [
                                AugmentMode::Auto,
                                AugmentMode::LevelParallel,
                                AugmentMode::PathParallel,
                            ] {
                                let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 2));
                                let opts = McmOptions {
                                    semiring,
                                    prune,
                                    augment: aug,
                                    init,
                                    direction_optimizing: diropt,
                                    permute_seed: if trial % 2 == 0 { Some(trial) } else { None },
                                    seed: trial,
                                };
                                let r = maximum_matching(&mut ctx, &t, &opts);
                                r.matching.validate(&t.to_csc()).unwrap_or_else(|e| {
                                    panic!("seed {seed:#x} trial {trial} dim {dim}: {e}")
                                });
                                assert_eq!(
                                    r.matching.cardinality(),
                                    want,
                                    "seed {seed:#x} trial {trial} dim {dim} {semiring:?} prune {prune} diropt {diropt} init {init:?} aug {aug:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn serial_algorithms_match_hk_adversarial() {
    let seed = stress_seed(77777);
    let mut rng = SplitMix64::new(seed);
    for trial in 0..300 {
        // Skewed shapes, including very tall / very wide.
        let n1 = 1 + (rng.next_u64() % 50) as usize;
        let n2 = 1 + (rng.next_u64() % 50) as usize;
        let e = (rng.next_u64() % (4 * (n1 * n2) as u64 / 3 + 1)) as usize;
        let t = random_graph(&mut rng, n1, n2, e.min(n1 * n2 * 2));
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let pf = pothen_fan(&a, None);
        pf.validate(&a).unwrap_or_else(|e| panic!("pf seed {seed:#x} trial {trial}: {e}"));
        assert_eq!(pf.cardinality(), want, "pf seed {seed:#x} trial {trial} {n1}x{n2}");
        let pr = push_relabel(&a);
        pr.validate(&a).unwrap_or_else(|e| panic!("pr seed {seed:#x} trial {trial}: {e}"));
        assert_eq!(pr.cardinality(), want, "pr seed {seed:#x} trial {trial} {n1}x{n2}");
        let (g, _) = ms_bfs_graft(&a, None);
        g.validate(&a).unwrap_or_else(|e| panic!("graft seed {seed:#x} trial {trial}: {e}"));
        assert_eq!(g.cardinality(), want, "graft seed {seed:#x} trial {trial} {n1}x{n2}");
    }
}

#[test]
fn grid_determinism_min_parent() {
    // Deterministic semiring: identical matchings across grid shapes.
    let seed = stress_seed(31415);
    let mut rng = SplitMix64::new(seed);
    for trial in 0..30 {
        let n1 = 2 + (rng.next_u64() % 40) as usize;
        let n2 = 2 + (rng.next_u64() % 40) as usize;
        let t = random_graph(&mut rng, n1, n2, 3 * n1.max(n2));
        let run = |dim: usize| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let opts = McmOptions { augment: AugmentMode::LevelParallel, ..Default::default() };
            maximum_matching(&mut ctx, &t, &opts).matching
        };
        let base = run(1);
        for dim in 2..=4 {
            assert_eq!(run(dim), base, "seed {seed:#x} trial {trial} dim {dim}");
        }
    }
}

#[test]
fn grid_determinism_rand_semirings() {
    let seed = stress_seed(999);
    let mut rng = SplitMix64::new(seed);
    for trial in 0..20 {
        let n = 2 + (rng.next_u64() % 30) as usize;
        let t = random_graph(&mut rng, n, n, 3 * n);
        for semiring in [SemiringKind::RandParent(11), SemiringKind::RandRoot(12)] {
            let run = |dim: usize| {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
                let opts = McmOptions {
                    semiring,
                    augment: AugmentMode::LevelParallel,
                    ..Default::default()
                };
                maximum_matching(&mut ctx, &t, &opts).matching
            };
            let base = run(1);
            for dim in 2..=3 {
                assert_eq!(run(dim), base, "seed {seed:#x} trial {trial} dim {dim} {semiring:?}");
            }
        }
    }
}

#[test]
fn auction_doc_eps_is_exact_for_integer_weights() {
    use mcm_core::weighted::auction_mwm;
    use mcm_sparse::WCsc;
    // Brute force oracle.
    fn brute(a: &WCsc) -> f64 {
        fn go(a: &WCsc, c: usize, used: &mut Vec<bool>) -> f64 {
            if c == a.ncols() {
                return 0.0;
            }
            let mut best = go(a, c + 1, used);
            let entries: Vec<(Vidx, f64)> = a.col_entries(c).collect();
            for (r, w) in entries {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(w + go(a, c + 1, used));
                    used[r as usize] = false;
                }
            }
            best
        }
        go(a, 0, &mut vec![false; a.nrows()])
    }
    let seed = stress_seed(4242);
    let mut rng = SplitMix64::new(seed);
    for trial in 0..300 {
        let n1 = 2 + (rng.next_u64() % 5) as usize;
        let n2 = 2 + (rng.next_u64() % 5) as usize;
        let mut entries = Vec::new();
        for _ in 0..2 * n1.max(n2) {
            entries.push((
                rng.below(n1 as u64) as Vidx,
                rng.below(n2 as u64) as Vidx,
                rng.below(20) as f64,
            ));
        }
        let a = WCsc::from_weighted_triples(n1, n2, entries);
        let want = brute(&a);
        // The documented bound: eps < 1/(n+1) for exactness.
        let n = n1.max(n2);
        let eps = 0.999 / (n as f64 + 1.0);
        let got = auction_mwm(&a, eps);
        assert!(
            (got.weight - want).abs() < 1e-9,
            "seed {seed:#x} trial {trial}: doc-eps auction {} vs brute {want}",
            got.weight
        );
    }
}
