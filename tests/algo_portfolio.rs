//! Portfolio lockdown (DESIGN.md §15): the `auto` selector's measured
//! stats are deterministic and relabeling-invariant, its pick is exactly
//! one concrete engine's result, the ε-scaled auction converges on the
//! price-war adversaries, and every engine is Berge-certified through
//! `verify::is_maximum_from`.

use mcm_core::auction::{auction, AuctionOptions};
use mcm_core::portfolio::{resolve_algo, solve, MatchingAlgo, PortfolioOptions, SelectorStats};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify;
use mcm_gen::hard::{chain, star};
use mcm_gen::simtest_suite;
use mcm_sparse::permute::{random_relabel, SplitMix64};
use mcm_sparse::{Triples, Vidx};

fn random_bipartite(n1: usize, n2: usize, edges: usize, seed: u64) -> Triples {
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n1, n2, edges);
    for _ in 0..edges {
        t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
    }
    t
}

#[test]
fn selector_stats_are_deterministic_and_permutation_invariant() {
    // The selector decides from degree multisets and dimensions only, so
    // re-measuring must be bit-identical and relabeling rows/columns must
    // change nothing — the auto pick cannot depend on vertex order.
    let mut rng = SplitMix64::new(0x005E_1EC7);
    for case in 0..8 {
        let n1 = 4 + rng.below(40) as usize;
        let n2 = 4 + rng.below(40) as usize;
        let t = random_bipartite(n1, n2, 3 * (n1 + n2), rng.next_u64());
        let s = SelectorStats::measure(&t);
        assert_eq!(s, SelectorStats::measure(&t), "case {case}: re-measure diverged");
        for perm_seed in [1u64, 0xFEED, 0xABCDEF] {
            let (pt, _, _) = random_relabel(&t, perm_seed);
            let ps = SelectorStats::measure(&pt);
            assert_eq!(s, ps, "case {case} seed {perm_seed:#x}: stats moved under relabeling");
            assert_eq!(s.choose(), ps.choose(), "case {case}: pick moved under relabeling");
        }
    }
}

/// A dense square band (uniform degrees) plus one hub column touching
/// every row: density ≈ 0.24, degree skew ≈ 4 — dense and genuinely
/// skewed, the shape the density rule still sends to the auction.
fn banded_hub(n: usize) -> Triples {
    let mut t = Triples::new(n, n);
    for i in 0..n {
        for d in 0..5 {
            t.push(i as Vidx, ((i + d) % n) as Vidx);
        }
        if i % n != 0 && !(n - 4..n).contains(&i) {
            t.push(i as Vidx, 0); // hub column
        }
    }
    t
}

#[test]
fn auto_pick_is_exactly_one_concrete_engines_result() {
    // `auto` must not blend engines: its matching is identical to running
    // the resolved concrete engine directly with the same options.
    let cases = [
        random_bipartite(24, 24, 60, 0xA0), // balanced sparse → msbfs
        star(4, 64),                        // skew/rectangular → ppf
        banded_hub(24),                     // dense + skewed → auction
        mcm_gen::hard::crown(16),           // dense + uniform → ppf (crown guard)
    ];
    for (i, t) in cases.iter().enumerate() {
        let (picked, stats) = resolve_algo(t, MatchingAlgo::Auto);
        assert!(stats.is_some(), "auto must measure");
        let auto_r = solve(t, &PortfolioOptions::default());
        let conc_r = solve(t, &PortfolioOptions { algo: picked, ..PortfolioOptions::default() });
        assert_eq!(auto_r.stats.algo, picked.name(), "case {i}: label mismatch");
        assert!(auto_r.stats.algo_auto, "case {i}: auto flag missing");
        assert!(!conc_r.stats.algo_auto, "case {i}: explicit run flagged auto");
        assert_eq!(auto_r.matching, conc_r.matching, "case {i}: auto != {picked}");
    }
}

#[test]
fn crown_blind_spot_stays_fixed() {
    // Regression for the selector's crown blind spot: crowns are dense
    // *and* degree-uniform, so the plain density rule routed them to the
    // auction, whose price wars lost ~40x wall clock on crown_256
    // (BENCH_algo.json). The uniformity guard must send every crown to
    // PPF while leaving genuinely skewed dense instances on the auction.
    for n in [8, 16, 64, 128] {
        let t = mcm_gen::hard::crown(n);
        let (picked, stats) = resolve_algo(&t, MatchingAlgo::Auto);
        let s = stats.expect("auto must measure");
        assert!(s.density >= SelectorStats::DENSE, "crown({n}) density {}", s.density);
        assert!(s.degree_skew <= SelectorStats::UNIFORM, "crown({n}) skew {}", s.degree_skew);
        assert_eq!(picked, MatchingAlgo::Ppf, "crown({n}) fell back into the auction price war");
    }
    let (picked, stats) = resolve_algo(&banded_hub(24), MatchingAlgo::Auto);
    let s = stats.expect("auto must measure");
    assert!(
        s.degree_skew > SelectorStats::UNIFORM && s.degree_skew < SelectorStats::SKEWED,
        "banded_hub skew {} left the guarded band — rebuild the fixture",
        s.degree_skew
    );
    assert_eq!(picked, MatchingAlgo::Auction, "dense + skewed must still use the auction");
}

#[test]
fn eps_scaling_converges_on_price_war_instances() {
    // The auction's adversaries: stars make every alternative equally
    // good (price wars), long alternating chains make eviction cascades
    // ripple end to end. Scaled ε must still land on the HK cardinality
    // with a Berge certificate, and must beat a fixed fine ε on rounds.
    for (name, t) in [
        ("star(1,16)", star(1, 16)),
        ("star(4,32)", star(4, 32)),
        ("chain(32)", chain(32)),
        ("crown(12)", mcm_gen::hard::crown(12)),
    ] {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let r = auction(&a, &AuctionOptions::default());
        assert_eq!(r.matching.cardinality(), want, "{name}: auction not maximum");
        verify::verify(&a, &r.matching).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            verify::is_maximum_from(&a, &r.matching, &r.matching.unmatched_cols()),
            "{name}: Berge certificate failed"
        );
    }

    // The crowded star is the Θ(1/ε) war: fixed fine ε creeps one bid
    // per round, scaling resolves the war coarsely first.
    let a = star(4, 32).to_csc();
    let scaled = auction(&a, &AuctionOptions::default());
    let fine = 1.0 / 128.0;
    let fixed = auction(
        &a,
        &AuctionOptions { eps_start: fine, eps_final: Some(fine), ..AuctionOptions::default() },
    );
    assert_eq!(scaled.matching.cardinality(), fixed.matching.cardinality());
    assert!(scaled.stats.scales > 1, "scaling never engaged");
    assert!(
        scaled.stats.rounds < fixed.stats.rounds,
        "scaling did not beat fixed ε: {} >= {}",
        scaled.stats.rounds,
        fixed.stats.rounds
    );
}

#[test]
fn every_engine_is_berge_certified_from_its_unmatched_columns() {
    // `is_maximum_from` is the cheap certificate (alternating BFS from
    // the free columns): it must accept every engine's output on the
    // curated suite and reject a deliberately truncated matching.
    let cases = simtest_suite(0xBE49E);
    for (name, t) in &cases {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        for algo in MatchingAlgo::CONCRETE {
            let r = solve(t, &PortfolioOptions { algo, ..PortfolioOptions::default() });
            assert_eq!(r.matching.cardinality(), want, "{name}/{algo} not maximum");
            assert!(
                verify::is_maximum_from(&a, &r.matching, &r.matching.unmatched_cols()),
                "{name}/{algo}: certificate rejected a maximum matching"
            );
        }
        if want > 0 {
            // Negative control: the empty matching on a matchable graph
            // must be rejected from its (all-free) columns.
            let empty = mcm_core::Matching::empty(t.nrows(), t.ncols());
            assert!(
                !verify::is_maximum_from(&a, &empty, &empty.unmatched_cols()),
                "{name}: certificate accepted the empty matching"
            );
        }
    }
}

#[test]
fn broken_auction_bid_update_loses_cardinality() {
    // The injected fault drops evicted bidders (a lost wakeup in the bid
    // update). On the alternating chain the eviction cascade is load-
    // bearing, so the fault must strand the tail — and the clean engine
    // must not. `detect_injected_auction_fault` in simtest_sweep.rs
    // drives the same fault through the seeded-schedule harness.
    let a = chain(8).to_csc();
    let clean = auction(&a, &AuctionOptions::default());
    assert_eq!(clean.matching.cardinality(), 8);
    assert!(clean.stats.evictions > 0, "chain must exercise the eviction path");
    let broken =
        auction(&a, &AuctionOptions { fault_lost_bidder: true, ..AuctionOptions::default() });
    assert!(
        broken.matching.cardinality() < 8,
        "lost-bidder fault was not observable on the eviction cascade"
    );
}
