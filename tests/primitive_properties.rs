//! Property tests for the Table I primitives and the sparse substrate:
//! the algebraic identities the matching algorithm silently relies on.
//!
//! Randomized inputs come from seeded [`SplitMix64`] streams (deterministic,
//! no external property-testing dependency): each property runs across many
//! generated cases and reports the failing case's trial number.

use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_core::primitives::{invert, prune, select, set_dense, set_sparse};
use mcm_sparse::permute::{Permutation, SplitMix64};
use mcm_sparse::{Dcsc, DenseVec, SpVec, Triples, Vidx, NIL};

/// Sparse vector with unique values (a partial injection), as INVERT
/// consumers like the matching produce.
fn random_injective_spvec(len: usize, rng: &mut SplitMix64) -> SpVec<Vidx> {
    let n = rng.below(len as u64 + 1) as usize;
    let mut seen_idx = std::collections::BTreeSet::new();
    let mut seen_val = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    for _ in 0..n {
        let i = rng.below(len as u64) as Vidx;
        let v = rng.below(len as u64) as Vidx;
        if seen_idx.insert(i) && seen_val.insert(v) {
            pairs.push((i, v));
        }
    }
    SpVec::from_pairs(len, pairs)
}

fn random_graph(rng: &mut SplitMix64) -> Triples {
    let n1 = 1 + rng.below(20) as usize;
    let n2 = 1 + rng.below(20) as usize;
    let m = rng.below(3 * n1.max(n2) as u64 + 1) as usize;
    let edges =
        (0..m).map(|_| (rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx)).collect();
    Triples::from_edges(n1, n2, edges)
}

const CASES: u64 = 128;

#[test]
fn invert_is_an_involution_on_injections() {
    let mut rng = SplitMix64::new(0x1A01);
    for trial in 0..CASES {
        let x = random_injective_spvec(16, &mut rng);
        let mut ctx = DistCtx::serial();
        let z = invert(&mut ctx, Kernel::Invert, &x, 16);
        let back = invert(&mut ctx, Kernel::Invert, &z, 16);
        assert_eq!(back, x, "trial {trial}");
    }
}

#[test]
fn invert_preserves_pairs() {
    let mut rng = SplitMix64::new(0x1A02);
    for trial in 0..CASES {
        let x = random_injective_spvec(16, &mut rng);
        let mut ctx = DistCtx::serial();
        let z = invert(&mut ctx, Kernel::Invert, &x, 16);
        assert_eq!(z.nnz(), x.nnz(), "trial {trial}");
        for (i, &v) in x.iter() {
            assert_eq!(z.get(v), Some(&i), "trial {trial}");
        }
    }
}

#[test]
fn select_partitions() {
    let mut rng = SplitMix64::new(0x1A03);
    for trial in 0..CASES {
        let x = random_injective_spvec(16, &mut rng);
        let mask: Vec<bool> = (0..16).map(|_| rng.below(2) == 1).collect();
        let mut ctx = DistCtx::serial();
        let y = DenseVec::from_vec(mask.iter().map(|&b| if b { 1 } else { NIL }).collect());
        let yes = select(&mut ctx, Kernel::Select, &x, &y, |v| v != NIL);
        let no = select(&mut ctx, Kernel::Select, &x, &y, |v| v == NIL);
        assert_eq!(yes.nnz() + no.nnz(), x.nnz(), "trial {trial}");
        // Disjoint index sets, and union reconstructs x.
        let mut all: Vec<(Vidx, Vidx)> = yes.entries().to_vec();
        all.extend_from_slice(no.entries());
        all.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(all, x.entries().to_vec(), "trial {trial}");
    }
}

#[test]
fn set_dense_then_sparse_roundtrip() {
    let mut rng = SplitMix64::new(0x1A04);
    for trial in 0..CASES {
        let x = random_injective_spvec(16, &mut rng);
        let mut ctx = DistCtx::serial();
        let mut y = DenseVec::nil(16);
        set_dense(&mut ctx, Kernel::Select, &mut y, &x, |&v| v);
        let z = set_sparse(&mut ctx, Kernel::Select, &x, &y);
        assert_eq!(z, x, "trial {trial}");
    }
}

#[test]
fn prune_complement_identity() {
    let mut rng = SplitMix64::new(0x1A05);
    for trial in 0..CASES {
        let x = random_injective_spvec(16, &mut rng);
        let roots: Vec<u32> = (0..rng.below(8)).map(|_| rng.below(16) as u32).collect();
        let mut ctx = DistCtx::serial();
        let kept = prune(&mut ctx, Kernel::Prune, &x, &roots, |&v| v);
        // Everything kept has a key outside the root set...
        for (_, &v) in kept.iter() {
            assert!(!roots.contains(&v), "trial {trial}");
        }
        // ...and everything dropped has a key inside it.
        let dropped = x.nnz() - kept.nnz();
        let inside = x.iter().filter(|(_, &v)| roots.contains(&v)).count();
        assert_eq!(dropped, inside, "trial {trial}");
    }
}

#[test]
fn distributed_spmspv_equals_serial() {
    let mut rng = SplitMix64::new(0x1A06);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let dim = 1 + rng.below(4) as usize;
        let every = 1 + rng.below(4) as usize;
        let x: SpVec<Vidx> = SpVec::from_sorted_pairs(
            t.ncols(),
            (0..t.ncols()).step_by(every).map(|j| (j as Vidx, j as Vidx)).collect(),
        );
        let serial =
            mcm_sparse::spmspv(&Dcsc::from_triples(&t), &x, |j, _| j, |acc: &Vidx, inc| inc < acc)
                .y;
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let dist = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
        assert_eq!(dist, serial, "trial {trial} dim {dim}");
    }
}

#[test]
fn distributed_monoid_equals_serial() {
    let mut rng = SplitMix64::new(0x1A07);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let dim = 1 + rng.below(4) as usize;
        let x: SpVec<()> =
            SpVec::from_sorted_pairs(t.ncols(), (0..t.ncols() as Vidx).map(|j| (j, ())).collect());
        let serial =
            mcm_sparse::spmspv_monoid(&Dcsc::from_triples(&t), &x, |_, _| 1u32, |a, b| *a += b).y;
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let dist = a.spmspv_monoid(&mut ctx, Kernel::Init, &x, |_, _| 1u32, |a, b| *a += b);
        assert_eq!(dist, serial, "trial {trial} dim {dim}");
    }
}

#[test]
fn transpose_involution() {
    let mut rng = SplitMix64::new(0x1A08);
    for trial in 0..CASES {
        let mut td = random_graph(&mut rng);
        td.sort_dedup();
        let a = td.to_csc();
        assert_eq!(a.transpose().transpose(), a, "trial {trial}");
    }
}

#[test]
fn dcsc_and_csc_agree_structurally() {
    let mut rng = SplitMix64::new(0x1A09);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let a = t.to_csc();
        let d = Dcsc::from_csc(&a);
        assert_eq!(d.nnz(), a.nnz(), "trial {trial}");
        for j in 0..a.ncols() {
            assert_eq!(d.col(j), a.col(j), "trial {trial}");
        }
        assert_eq!(d.to_csc(), a, "trial {trial}");
    }
}

#[test]
fn permutation_roundtrip() {
    let mut rng = SplitMix64::new(0x1A0A);
    for trial in 0..CASES {
        let n = 1 + rng.below(63) as usize;
        let seed = rng.next_u64();
        let p = Permutation::random(n, seed);
        let inv = p.inverse();
        for i in 0..n as Vidx {
            assert_eq!(p.apply(inv.apply(i)), i, "trial {trial}");
            assert_eq!(inv.apply(p.apply(i)), i, "trial {trial}");
        }
    }
}

#[test]
fn matrix_market_roundtrip() {
    let mut rng = SplitMix64::new(0x1A0B);
    for trial in 0..CASES {
        let t = random_graph(&mut rng);
        let mut buf = Vec::new();
        mcm_sparse::io::write_matrix_market(&t, &mut buf).unwrap();
        let back = mcm_sparse::io::read_matrix_market(&buf[..]).unwrap();
        let mut want = t.clone();
        want.sort_dedup();
        assert_eq!(back, want, "trial {trial}");
    }
}
