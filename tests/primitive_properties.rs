//! Property tests for the Table I primitives and the sparse substrate:
//! the algebraic identities the matching algorithm silently relies on.

use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_core::primitives::{invert, prune, select, set_dense, set_sparse};
use mcm_sparse::permute::Permutation;
use mcm_sparse::{Dcsc, DenseVec, SpVec, Triples, Vidx, NIL};
use proptest::prelude::*;

/// Sparse vector with unique values (a partial injection), as INVERT
/// consumers like the matching produce.
fn arb_injective_spvec(len: usize) -> impl Strategy<Value = SpVec<Vidx>> {
    proptest::collection::btree_map(0..len as Vidx, 0..len as Vidx, 0..=len)
        .prop_map(move |m| {
            // Deduplicate values, keeping the first index per value.
            let mut seen = std::collections::BTreeSet::new();
            let pairs: Vec<(Vidx, Vidx)> = m
                .into_iter()
                .filter(|&(_, v)| seen.insert(v))
                .collect();
            SpVec::from_pairs(len, pairs)
        })
}

fn arb_graph() -> impl Strategy<Value = Triples> {
    (1usize..=20, 1usize..=20).prop_flat_map(|(n1, n2)| {
        proptest::collection::vec((0..n1 as Vidx, 0..n2 as Vidx), 0..=3 * n1.max(n2))
            .prop_map(move |edges| Triples::from_edges(n1, n2, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invert_is_an_involution_on_injections(x in arb_injective_spvec(16)) {
        let mut ctx = DistCtx::serial();
        let z = invert(&mut ctx, Kernel::Invert, &x, 16);
        let back = invert(&mut ctx, Kernel::Invert, &z, 16);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn invert_preserves_pairs(x in arb_injective_spvec(16)) {
        let mut ctx = DistCtx::serial();
        let z = invert(&mut ctx, Kernel::Invert, &x, 16);
        prop_assert_eq!(z.nnz(), x.nnz());
        for (i, &v) in x.iter() {
            prop_assert_eq!(z.get(v), Some(&i));
        }
    }

    #[test]
    fn select_partitions(x in arb_injective_spvec(16), mask in proptest::collection::vec(any::<bool>(), 16)) {
        let mut ctx = DistCtx::serial();
        let y = DenseVec::from_vec(mask.iter().map(|&b| if b { 1 } else { NIL }).collect());
        let yes = select(&mut ctx, Kernel::Select, &x, &y, |v| v != NIL);
        let no = select(&mut ctx, Kernel::Select, &x, &y, |v| v == NIL);
        prop_assert_eq!(yes.nnz() + no.nnz(), x.nnz());
        // Disjoint index sets, and union reconstructs x.
        let mut all: Vec<(Vidx, Vidx)> = yes.entries().to_vec();
        all.extend_from_slice(no.entries());
        all.sort_unstable_by_key(|&(i, _)| i);
        prop_assert_eq!(all, x.entries().to_vec());
    }

    #[test]
    fn set_dense_then_sparse_roundtrip(x in arb_injective_spvec(16)) {
        let mut ctx = DistCtx::serial();
        let mut y = DenseVec::nil(16);
        set_dense(&mut ctx, Kernel::Select, &mut y, &x, |&v| v);
        let z = set_sparse(&mut ctx, Kernel::Select, &x, &y);
        prop_assert_eq!(z, x);
    }

    #[test]
    fn prune_complement_identity(x in arb_injective_spvec(16), roots in proptest::collection::vec(0u32..16, 0..8)) {
        let mut ctx = DistCtx::serial();
        let kept = prune(&mut ctx, Kernel::Prune, &x, &roots, |&v| v);
        // Everything kept has a key outside the root set...
        for (_, &v) in kept.iter() {
            prop_assert!(!roots.contains(&v));
        }
        // ...and everything dropped has a key inside it.
        let dropped = x.nnz() - kept.nnz();
        let inside = x.iter().filter(|(_, &v)| roots.contains(&v)).count();
        prop_assert_eq!(dropped, inside);
    }

    #[test]
    fn distributed_spmspv_equals_serial(t in arb_graph(), dim in 1usize..=4, every in 1usize..=4) {
        let x: SpVec<Vidx> = SpVec::from_sorted_pairs(
            t.ncols(),
            (0..t.ncols()).step_by(every).map(|j| (j as Vidx, j as Vidx)).collect(),
        );
        let serial = mcm_sparse::spmspv(
            &Dcsc::from_triples(&t),
            &x,
            |j, _| j,
            |acc: &Vidx, inc| inc < acc,
        ).y;
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let dist = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
        prop_assert_eq!(dist, serial);
    }

    #[test]
    fn distributed_monoid_equals_serial(t in arb_graph(), dim in 1usize..=4) {
        let x: SpVec<()> = SpVec::from_sorted_pairs(
            t.ncols(),
            (0..t.ncols() as Vidx).map(|j| (j, ())).collect(),
        );
        let serial = mcm_sparse::spmspv_monoid(
            &Dcsc::from_triples(&t),
            &x,
            |_, _| 1u32,
            |a, b| *a += b,
        ).y;
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let dist = a.spmspv_monoid(&mut ctx, Kernel::Init, &x, |_, _| 1u32, |a, b| *a += b);
        prop_assert_eq!(dist, serial);
    }

    #[test]
    fn transpose_involution(t in arb_graph()) {
        let mut td = t.clone();
        td.sort_dedup();
        let a = td.to_csc();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn dcsc_and_csc_agree_structurally(t in arb_graph()) {
        let a = t.to_csc();
        let d = Dcsc::from_csc(&a);
        prop_assert_eq!(d.nnz(), a.nnz());
        for j in 0..a.ncols() {
            prop_assert_eq!(d.col(j), a.col(j));
        }
        prop_assert_eq!(d.to_csc(), a);
    }

    #[test]
    fn permutation_roundtrip(n in 1usize..64, seed in any::<u64>()) {
        let p = Permutation::random(n, seed);
        let inv = p.inverse();
        for i in 0..n as Vidx {
            prop_assert_eq!(p.apply(inv.apply(i)), i);
            prop_assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn matrix_market_roundtrip(t in arb_graph()) {
        let mut buf = Vec::new();
        mcm_sparse::io::write_matrix_market(&t, &mut buf).unwrap();
        let back = mcm_sparse::io::read_matrix_market(&buf[..]).unwrap();
        let mut want = t.clone();
        want.sort_dedup();
        prop_assert_eq!(back, want);
    }
}
