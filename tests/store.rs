//! Integration tests for the out-of-core storage subsystem (DESIGN.md §18):
//! MCSB round-trips across both backings, corruption injection at every
//! structural boundary (typed errors, never panics), and the differential
//! guarantee the zero-copy chain advertises — an mmap'ed [`CscView`] fed to
//! `maximum_matching_*_view` produces the *identical* matching the owned
//! triples path produces.

use mcm_core::verify::{is_maximum_view, verify_view};
use mcm_core::McmOptions;
use mcm_gen::{assign_weights, simtest_suite};
use mcm_sparse::{Triples, WCsc};
use mcm_store::{write_csc_file, write_wcsc_file, McsbFile, StoreError};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcm_store_it_{name}_{}", std::process::id()))
}

/// Graphs that stress the layout's edges rather than the solver: the empty
/// matrix, an empty column range, a single dense column, a 1×1 graph.
fn degenerate_cases() -> Vec<(String, Triples)> {
    vec![
        ("empty_0x0".into(), Triples::from_edges(0, 0, vec![])),
        ("no_edges_7x9".into(), Triples::from_edges(7, 9, vec![])),
        ("single_1x1".into(), Triples::from_edges(1, 1, vec![(0, 0)])),
        ("dense_col_16x1".into(), Triples::from_edges(16, 1, (0..16).map(|r| (r, 0)).collect())),
        ("last_col_only_4x6".into(), Triples::from_edges(4, 6, vec![(2, 5), (0, 5)])),
    ]
}

// ---------------------------------------------------------------- round trip

#[test]
fn round_trip_is_bit_identical_across_the_suite_and_degenerate_shapes() {
    let mut cases = simtest_suite(0x5709E);
    cases.extend(degenerate_cases());
    for (name, mut t) in cases {
        t.sort_dedup();
        let a = t.to_csc();
        let p = tmp(&format!("rt_{name}"));
        write_csc_file(&p, &a).unwrap();
        for (backing, file) in
            [("mmap", McsbFile::open(&p).unwrap()), ("heap", McsbFile::open_heap(&p).unwrap())]
        {
            let v = file.view();
            assert_eq!(
                (v.nrows(), v.ncols(), v.nnz()),
                (a.nrows(), a.ncols(), a.nnz()),
                "{name}/{backing}: shape"
            );
            for j in 0..a.ncols() {
                assert_eq!(v.col(j), a.col(j), "{name}/{backing}: column {j}");
            }
            assert!(file.values().is_none(), "{name}/{backing}: unweighted file has no values");
            file.verify_payload().unwrap();
            assert_eq!(file.to_csc(), a, "{name}/{backing}: to_csc");
        }
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn weighted_round_trip_preserves_value_bits_across_the_suite() {
    for (name, mut t) in simtest_suite(0xBEE5) {
        t.sort_dedup();
        let w = assign_weights(t.entries(), 0xD00D ^ t.len() as u64, 50);
        let a = WCsc::from_weighted_triples(t.nrows(), t.ncols(), w);
        let p = tmp(&format!("wrt_{name}"));
        write_wcsc_file(&p, &a).unwrap();
        for (backing, file) in
            [("mmap", McsbFile::open(&p).unwrap()), ("heap", McsbFile::open_heap(&p).unwrap())]
        {
            assert!(file.is_weighted(), "{name}/{backing}");
            file.verify_payload().unwrap();
            let back = file.to_wcsc().unwrap();
            assert_eq!(back.pattern(), a.pattern(), "{name}/{backing}: pattern");
            let bits: Vec<u64> = back.values().iter().map(|x| x.to_bits()).collect();
            let want: Vec<u64> = a.values().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, want, "{name}/{backing}: value bits");
        }
        std::fs::remove_file(p).ok();
    }
}

// ---------------------------------------------------------------- corruption

/// A well-formed weighted reference file (all three sections present) as
/// raw bytes, plus its path prefix for derived corrupted copies.
fn reference_file(tag: &str) -> (Vec<u8>, PathBuf) {
    let t = Triples::from_edges(12, 10, {
        let mut e = Vec::new();
        let mut x = 0x2A2Au64;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            e.push((((x >> 33) % 12) as u32, ((x >> 3) % 10) as u32));
        }
        e
    });
    let w = assign_weights(t.entries(), 0x77, 9);
    let a = WCsc::from_weighted_triples(12, 10, w);
    let p = tmp(&format!("corrupt_{tag}"));
    write_wcsc_file(&p, &a).unwrap();
    let bytes = std::fs::read(&p).unwrap();
    std::fs::remove_file(&p).ok();
    (bytes, p)
}

fn open_both(path: &PathBuf) -> [Result<McsbFile, StoreError>; 2] {
    [McsbFile::open(path), McsbFile::open_heap(path)]
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let (bytes, p) = reference_file("trunc");
    let h = mcm_store::Header::decode(&bytes).unwrap();
    // Cut points: inside the header, at each section start (+1 byte so the
    // section itself is short), and one byte shy of the full file.
    let cuts = [
        1usize,
        mcm_store::format::HEADER_LEN - 1,
        h.colptr_off as usize + 1,
        h.rowind_off as usize + 1,
        h.values_off as usize + 1,
        bytes.len() - 1,
    ];
    for cut in cuts {
        std::fs::write(&p, &bytes[..cut]).unwrap();
        for (i, r) in open_both(&p).into_iter().enumerate() {
            let backing = ["mmap", "heap"][i];
            match r {
                Err(StoreError::Truncated { need, have }) => {
                    assert!(have < need, "cut at {cut} ({backing}): have {have} >= need {need}")
                }
                // A 1-byte file cannot even prove its magic.
                Err(StoreError::NotMcsb) if cut < 4 => {}
                Ok(_) => panic!("cut at {cut} ({backing}): truncated file opened"),
                Err(other) => {
                    panic!("cut at {cut} ({backing}): expected Truncated, got {other:?}")
                }
            }
        }
    }
    std::fs::remove_file(p).ok();
}

#[test]
fn flipped_payload_byte_fails_the_checksum_on_the_heap_path() {
    let (bytes, p) = reference_file("flip");
    let h = mcm_store::Header::decode(&bytes).unwrap();
    // Flip one byte in each section; the eager heap path must report a
    // checksum mismatch, and the mapped path's explicit verify must too.
    for off in [h.colptr_off + 3, h.rowind_off, h.values_off + 5] {
        let mut bad = bytes.clone();
        bad[off as usize] ^= 0x40;
        std::fs::write(&p, &bad).unwrap();
        match McsbFile::open_heap(&p) {
            // Flipping colptr bytes may instead break monotonicity, which
            // the section validator catches first — also a typed error.
            Err(StoreError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed)
            }
            Err(StoreError::HeaderCorrupt(_)) if off < h.rowind_off => {}
            Ok(_) => panic!("flip at {off}: corrupt file opened"),
            Err(other) => panic!("flip at {off}: expected ChecksumMismatch, got {other:?}"),
        }
    }
    // The mapped open defers payload hashing; verify_payload catches it.
    let mut bad = bytes.clone();
    let off = (h.values_off + 5) as usize;
    bad[off] ^= 0x40;
    std::fs::write(&p, &bad).unwrap();
    let f = McsbFile::open(&p).unwrap();
    assert!(matches!(f.verify_payload(), Err(StoreError::ChecksumMismatch { .. })));
    std::fs::remove_file(p).ok();
}

#[test]
fn bad_magic_version_flags_and_header_bytes_are_typed_errors() {
    let (bytes, p) = reference_file("hdr");

    // Wrong magic: not an MCSB file at all.
    let mut bad = bytes.clone();
    bad[0..4].copy_from_slice(b"MCSA");
    std::fs::write(&p, &bad).unwrap();
    for r in open_both(&p) {
        assert!(matches!(r, Err(StoreError::NotMcsb)), "bad magic");
    }

    // Future version (checked before the header checksum, so a reader can
    // say *why* it cannot proceed rather than "corrupt").
    let mut bad = bytes.clone();
    bad[4..8].copy_from_slice(&2u32.to_le_bytes());
    std::fs::write(&p, &bad).unwrap();
    for r in open_both(&p) {
        assert!(matches!(r, Err(StoreError::UnsupportedVersion(2))), "future version");
    }

    // A flipped header byte (here: nrows) breaks the header checksum.
    let mut bad = bytes.clone();
    bad[16] ^= 0xFF;
    std::fs::write(&p, &bad).unwrap();
    for r in open_both(&p) {
        assert!(matches!(r, Err(StoreError::HeaderCorrupt(_))), "flipped header byte");
    }

    // Unknown flag bits, with the header checksum made valid again — the
    // consistency check itself must reject them, not just the checksum.
    let mut bad = bytes.clone();
    bad[8] |= 0x02;
    let hc = mcm_store::format::fnv1a(mcm_store::format::FNV_OFFSET, &bad[0..96]);
    bad[96..104].copy_from_slice(&hc.to_le_bytes());
    std::fs::write(&p, &bad).unwrap();
    for r in open_both(&p) {
        assert!(matches!(r, Err(StoreError::HeaderCorrupt(_))), "unknown flags");
    }
    std::fs::remove_file(p).ok();
}

// ---------------------------------------------- mmap-vs-heap differential

/// The promise `mcm match --load <mcsb>` relies on: solving from a borrowed
/// view (mmap or heap backing) yields the *identical* matching as solving
/// from the owned triples, across the whole simtest generator suite and
/// both view-capable backends.
#[test]
fn view_solves_match_triples_solves_across_the_suite() {
    let opts = McmOptions::default();
    for (name, mut t) in simtest_suite(0xCA11) {
        t.sort_dedup();
        let want = mcm_core::mcm::maximum_matching_shared(4, 2, &t, &opts);
        let p = tmp(&format!("diff_{name}"));
        write_csc_file(&p, &t.to_csc()).unwrap();

        let mapped = McsbFile::open(&p).unwrap();
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "{name}: unix open must map");
        let heap = McsbFile::open_heap(&p).unwrap();
        assert!(!heap.is_mapped());

        for (backing, file) in [("mmap", &mapped), ("heap", &heap)] {
            let v = file.view();
            let shared = mcm_core::mcm::maximum_matching_shared_view(4, 2, &v, &opts);
            assert_eq!(
                shared.matching, want.matching,
                "{name}/{backing}: shared view != owned triples"
            );
            let engine = mcm_core::mcm::maximum_matching_engine_view(4, 2, &v, &opts);
            assert_eq!(
                engine.matching, want.matching,
                "{name}/{backing}: engine view != owned triples"
            );
            verify_view(&v, &shared.matching).unwrap_or_else(|e| panic!("{name}/{backing}: {e}"));
            assert!(is_maximum_view(&v, &shared.matching), "{name}/{backing}: Berge");
        }
        std::fs::remove_file(p).ok();
    }
}
