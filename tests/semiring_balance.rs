//! The §III-B claim behind the `(select2nd, randRoot)` semiring:
//! *"useful to randomly distribute vertices among alternating trees,
//! ensuring better balance of tree sizes."*
//!
//! With `minParent`, every row adjacent to a low-index frontier column
//! joins that column's tree, so low-index roots hoard the forest. The
//! hashed-root selection spreads rows near-uniformly. This test measures
//! exactly that on the first BFS step.

use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_core::semirings::SemiringKind;
use mcm_core::vertex::Vertex;
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{SpVec, Triples, Vidx};

/// One frontier expansion from all columns; returns the largest tree
/// (rows per root) produced by the semiring.
fn max_tree_size(t: &Triples, semiring: SemiringKind) -> usize {
    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
    let a = DistMatrix::from_triples(&ctx, t);
    let f_c: SpVec<Vertex> = SpVec::from_sorted_pairs(
        t.ncols(),
        (0..t.ncols() as Vidx).map(|c| (c, Vertex::seed(c))).collect(),
    );
    let f_r = a.spmspv(
        &mut ctx,
        Kernel::SpMV,
        &f_c,
        |j, v: &Vertex| Vertex::new(j, v.root),
        |acc, inc| semiring.take_incoming(acc, inc),
    );
    let mut per_root = vec![0usize; t.ncols()];
    for (_, v) in f_r.iter() {
        per_root[v.root as usize] += 1;
    }
    per_root.into_iter().max().unwrap_or(0)
}

#[test]
fn rand_root_balances_trees_around_low_index_hubs() {
    // Column 0 is a hub adjacent to every row; each row also has 8 random
    // alternatives. Under minParent the hub *always* wins its conflicts and
    // its tree swallows the whole frontier; under randRoot the hub loses
    // most rows to a random alternative, so trees stay small. (On inputs
    // whose structure correlates with vertex indices — i.e. before the
    // §IV-A random relabeling — this is exactly the imbalance the paper's
    // randRoot semiring is for.)
    let mut rng = SplitMix64::new(5150);
    let (n1, n2, alt) = (4096usize, 1024usize, 8usize);
    let mut t = Triples::new(n1, n2);
    for r in 0..n1 as Vidx {
        t.push(r, 0); // the hub
        for _ in 0..alt {
            t.push(r, rng.below(n2 as u64) as Vidx);
        }
    }

    let skewed = max_tree_size(&t, SemiringKind::MinParent);
    assert_eq!(skewed, n1, "minParent must hand every row to the hub");

    // The hub wins a row iff its hashed priority beats all 8 alternatives;
    // in expectation over seeds that is 1/9 of the rows. A single seed can
    // be (un)lucky — the hub's priority is one global draw — so average.
    let mean_balanced: f64 =
        (0..16u64).map(|seed| max_tree_size(&t, SemiringKind::RandRoot(seed)) as f64).sum::<f64>()
            / 16.0;
    assert!(
        mean_balanced < n1 as f64 / 3.0,
        "randRoot should break the hub's monopoly on average: {mean_balanced} of {n1}"
    );
}

#[test]
fn rand_parent_differs_from_min_parent_but_same_cardinality() {
    use mcm_core::{maximum_matching, McmOptions};
    let mut rng = SplitMix64::new(99);
    let n = 200;
    let mut t = Triples::new(n, n);
    for _ in 0..4 * n {
        t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
    }
    let run = |semiring| {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let opts = McmOptions { semiring, permute_seed: None, ..Default::default() };
        maximum_matching(&mut ctx, &t, &opts).matching
    };
    let a = run(SemiringKind::MinParent);
    let b = run(SemiringKind::RandParent(3));
    assert_eq!(a.cardinality(), b.cardinality());
    // The actual matchings almost surely differ (different parent choices).
    assert_ne!(a, b, "randParent should explore a different forest");
}
