//! Structural statistics for graphs/matrices.
//!
//! Backs Table II of the paper (matrix inventory: dimensions, nonzero
//! counts) and the DESIGN.md claims about the stand-in generators (degree
//! skew, empty rows/columns, average degree).

use crate::{Csc, Triples};

/// Summary statistics of a pattern matrix / bipartite graph.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// Number of row vertices.
    pub nrows: usize,
    /// Number of column vertices.
    pub ncols: usize,
    /// Number of edges (nonzeros).
    pub nnz: usize,
    /// Average nonzeros per row.
    pub avg_row_degree: f64,
    /// Average nonzeros per column.
    pub avg_col_degree: f64,
    /// Largest row degree.
    pub max_row_degree: usize,
    /// Largest column degree.
    pub max_col_degree: usize,
    /// Rows with no nonzeros (structurally unmatchable row vertices).
    pub empty_rows: usize,
    /// Columns with no nonzeros.
    pub empty_cols: usize,
}

impl MatrixStats {
    /// Computes statistics from a CSC matrix.
    pub fn from_csc(a: &Csc) -> Self {
        let rd = a.row_degrees();
        let cd = a.col_degrees();
        let nnz = a.nnz();
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz,
            avg_row_degree: if a.nrows() == 0 { 0.0 } else { nnz as f64 / a.nrows() as f64 },
            avg_col_degree: if a.ncols() == 0 { 0.0 } else { nnz as f64 / a.ncols() as f64 },
            max_row_degree: rd.iter().map(|&d| d as usize).max().unwrap_or(0),
            max_col_degree: cd.iter().map(|&d| d as usize).max().unwrap_or(0),
            empty_rows: rd.iter().filter(|&&d| d == 0).count(),
            empty_cols: cd.iter().filter(|&&d| d == 0).count(),
        }
    }

    /// Computes statistics from a triple list (deduplicating first).
    pub fn from_triples(t: &Triples) -> Self {
        Self::from_csc(&t.to_csc())
    }
}

/// Degree histogram in powers of two: bucket `k` counts vertices of degree
/// in `[2^k, 2^{k+1})`; bucket for degree 0 is separate. Used to sanity-check
/// that G500-style stand-ins are skewed and ER ones are not.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Vertices with degree zero.
    pub zeros: usize,
    /// `buckets[k]` counts vertices with degree in `[2^k, 2^{k+1})`.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram from per-vertex degrees.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        let mut h = DegreeHistogram::default();
        for &d in degrees {
            if d == 0 {
                h.zeros += 1;
            } else {
                let k = (31 - d.leading_zeros()) as usize;
                if h.buckets.len() <= k {
                    h.buckets.resize(k + 1, 0);
                }
                h.buckets[k] += 1;
            }
        }
        h
    }

    /// A crude skewness proxy: max degree divided by mean degree; heavy
    /// tails (G500) yield large values, uniform graphs (ER) small ones.
    pub fn skew(degrees: &[u32]) -> f64 {
        let n = degrees.len();
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
        if sum == 0 {
            return 0.0;
        }
        let mean = sum as f64 / n as f64;
        let max = *degrees.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triples;

    #[test]
    fn stats_basic() {
        let t = Triples::from_edges(3, 4, vec![(0, 0), (0, 1), (1, 0), (1, 1), (1, 2)]);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.max_row_degree, 3);
        assert_eq!(s.max_col_degree, 2);
        assert_eq!(s.empty_rows, 1); // row 2
        assert_eq!(s.empty_cols, 1); // col 3
        assert!((s.avg_row_degree - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let h = DegreeHistogram::from_degrees(&[0, 1, 1, 2, 3, 4, 8, 9]);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.buckets, vec![2, 2, 1, 2]); // [1,2): 2, [2,4): 2, [4,8): 1, [8,16): 2
    }

    #[test]
    fn skew_detects_heavy_tail() {
        let uniform = vec![10u32; 100];
        let mut skewed = vec![1u32; 99];
        skewed.push(1000);
        assert!(DegreeHistogram::skew(&uniform) < 1.5);
        assert!(DegreeHistogram::skew(&skewed) > 50.0);
    }
}
