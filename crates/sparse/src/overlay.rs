//! Insert/delete edge overlay on top of a compressed-sparse-column base.
//!
//! The static pipeline freezes a graph into [`Csc`] once; the dynamic
//! matching engine (`mcm-dyn`) needs cheap point updates *and* the fast
//! merged column scans the repair BFS performs. [`CscOverlay`] keeps the
//! bulk of the graph in an immutable CSC base and stages mutations in two
//! small per-column sorted lists (`inserted`, `deleted`). Scans merge the
//! base column (minus deletions) with the insertions in sorted order, so a
//! column visit stays `O(deg)`; when the overlay grows past a caller-chosen
//! bound, [`CscOverlay::compact`] folds it back into a fresh CSC base and
//! bumps the *epoch* — the handle downstream caches (distributed blocks,
//! SpMSpV plans) use to notice the base changed underneath them.

use crate::{Csc, Triples, Vidx};

/// A mutable sparse pattern: an immutable [`Csc`] base plus sorted
/// per-column insert/delete lists, compacted epoch by epoch.
///
/// # Example
///
/// ```
/// use mcm_sparse::overlay::CscOverlay;
/// use mcm_sparse::Triples;
///
/// let base = Triples::from_edges(3, 3, vec![(0, 0), (1, 1)]).to_csc();
/// let mut g = CscOverlay::new(base);
/// assert!(g.insert(2, 1));
/// assert!(g.delete(0, 0));
/// assert!(!g.contains(0, 0) && g.contains(2, 1));
/// assert_eq!(g.nnz(), 2);
/// let epoch = g.epoch();
/// g.compact();
/// assert_eq!(g.epoch(), epoch + 1);
/// assert_eq!(g.overlay_nnz(), 0);
/// assert_eq!(g.nnz(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CscOverlay {
    base: Csc,
    /// Per-column sorted row indices present in the graph but not the base.
    inserted: Vec<Vec<Vidx>>,
    /// Per-column sorted row indices present in the base but deleted.
    deleted: Vec<Vec<Vidx>>,
    n_inserted: usize,
    n_deleted: usize,
    epoch: u64,
}

impl CscOverlay {
    /// Wraps an existing CSC base with an empty overlay (epoch 0).
    pub fn new(base: Csc) -> Self {
        let ncols = base.ncols();
        Self {
            base,
            inserted: vec![Vec::new(); ncols],
            deleted: vec![Vec::new(); ncols],
            n_inserted: 0,
            n_deleted: 0,
            epoch: 0,
        }
    }

    /// An empty `nrows × ncols` graph (all edges will live in the overlay
    /// until the first compaction).
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self::new(Csc::empty(nrows, ncols))
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.base.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.base.ncols()
    }

    /// Live edge count (base minus deletions plus insertions).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.base.nnz() - self.n_deleted + self.n_inserted
    }

    /// Staged overlay size: inserted plus deleted entries. Callers use this
    /// against [`CscOverlay::nnz`] to decide when to compact.
    #[inline]
    pub fn overlay_nnz(&self) -> usize {
        self.n_inserted + self.n_deleted
    }

    /// Compaction epoch: bumped every time the base is rebuilt, so caches
    /// keyed on the base (distributed blocks, SpMSpV plans) can invalidate.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` when edge `(r, c)` is live.
    pub fn contains(&self, r: Vidx, c: Vidx) -> bool {
        let j = c as usize;
        if self.inserted[j].binary_search(&r).is_ok() {
            return true;
        }
        self.base.contains(r, j) && self.deleted[j].binary_search(&r).is_err()
    }

    /// Inserts edge `(r, c)`; returns `true` when the edge was not already
    /// live. Re-inserting a base edge staged for deletion just un-deletes it.
    ///
    /// # Panics
    /// Debug-panics on out-of-bounds coordinates.
    pub fn insert(&mut self, r: Vidx, c: Vidx) -> bool {
        debug_assert!((r as usize) < self.nrows() && (c as usize) < self.ncols());
        let j = c as usize;
        if let Ok(pos) = self.deleted[j].binary_search(&r) {
            self.deleted[j].remove(pos);
            self.n_deleted -= 1;
            return true;
        }
        if self.base.contains(r, j) {
            return false;
        }
        match self.inserted[j].binary_search(&r) {
            Ok(_) => false,
            Err(pos) => {
                self.inserted[j].insert(pos, r);
                self.n_inserted += 1;
                true
            }
        }
    }

    /// Deletes edge `(r, c)`; returns `true` when the edge was live.
    pub fn delete(&mut self, r: Vidx, c: Vidx) -> bool {
        debug_assert!((r as usize) < self.nrows() && (c as usize) < self.ncols());
        let j = c as usize;
        if let Ok(pos) = self.inserted[j].binary_search(&r) {
            self.inserted[j].remove(pos);
            self.n_inserted -= 1;
            return true;
        }
        if !self.base.contains(r, j) {
            return false;
        }
        match self.deleted[j].binary_search(&r) {
            Ok(_) => false,
            Err(pos) => {
                self.deleted[j].insert(pos, r);
                self.n_deleted += 1;
                true
            }
        }
    }

    /// Live degree of column `c`.
    pub fn col_degree(&self, c: Vidx) -> usize {
        let j = c as usize;
        self.base.col_nnz(j) - self.deleted[j].len() + self.inserted[j].len()
    }

    /// Visits the live row indices of column `c` in sorted order: the base
    /// column minus staged deletions, merged with staged insertions.
    pub fn for_each_in_col(&self, c: Vidx, mut f: impl FnMut(Vidx)) {
        let j = c as usize;
        let ins = &self.inserted[j];
        let del = &self.deleted[j];
        let mut ii = 0; // cursor into ins
        let mut di = 0; // cursor into del
        for &r in self.base.col(j) {
            while ii < ins.len() && ins[ii] < r {
                f(ins[ii]);
                ii += 1;
            }
            if di < del.len() && del[di] == r {
                di += 1;
                continue;
            }
            f(r);
        }
        for &r in &ins[ii..] {
            f(r);
        }
    }

    /// Materializes the live edge set as (sorted, deduplicated) triples.
    pub fn to_triples(&self) -> Triples {
        let mut t = Triples::with_capacity(self.nrows(), self.ncols(), self.nnz());
        for c in 0..self.ncols() as Vidx {
            self.for_each_in_col(c, |r| t.push(r, c));
        }
        t
    }

    /// Materializes the live edge set as a fresh CSC.
    pub fn to_csc(&self) -> Csc {
        Csc::from_sorted_triples(&self.to_triples())
    }

    /// Folds the overlay back into the base (new epoch). No-op overlays
    /// still bump the epoch so callers can force cache invalidation.
    pub fn compact(&mut self) {
        if self.overlay_nnz() > 0 {
            self.base = self.to_csc();
            for v in &mut self.inserted {
                v.clear();
            }
            for v in &mut self.deleted {
                v.clear();
            }
            self.n_inserted = 0;
            self.n_deleted = 0;
        }
        self.epoch += 1;
    }

    /// Read-only view of the current base (valid for the current epoch).
    #[inline]
    pub fn base(&self) -> &Csc {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permute::SplitMix64;

    fn base3() -> Csc {
        Triples::from_edges(3, 3, vec![(0, 0), (2, 0), (1, 1), (0, 2)]).to_csc()
    }

    #[test]
    fn insert_delete_and_contains() {
        let mut g = CscOverlay::new(base3());
        assert_eq!(g.nnz(), 4);
        assert!(g.contains(2, 0));
        assert!(!g.insert(2, 0), "re-inserting a base edge is a no-op");
        assert!(g.insert(1, 0));
        assert!(!g.insert(1, 0), "re-inserting an overlay edge is a no-op");
        assert!(g.delete(0, 0));
        assert!(!g.delete(0, 0), "double delete is a no-op");
        assert!(!g.contains(0, 0));
        assert_eq!(g.nnz(), 4);
        assert_eq!(g.col_degree(0), 2);
    }

    #[test]
    fn delete_then_reinsert_base_edge() {
        let mut g = CscOverlay::new(base3());
        assert!(g.delete(1, 1));
        assert!(!g.contains(1, 1));
        assert!(g.insert(1, 1), "un-deleting restores the base edge");
        assert!(g.contains(1, 1));
        assert_eq!(g.overlay_nnz(), 0, "un-delete must not leave overlay residue");
    }

    #[test]
    fn insert_then_delete_overlay_edge() {
        let mut g = CscOverlay::new(base3());
        assert!(g.insert(2, 2));
        assert!(g.delete(2, 2));
        assert_eq!(g.overlay_nnz(), 0);
        assert!(!g.contains(2, 2));
    }

    #[test]
    fn merged_column_scan_is_sorted_and_complete() {
        let mut g = CscOverlay::new(base3());
        g.insert(1, 0); // between base rows 0 and 2
        g.delete(2, 0);
        let mut seen = Vec::new();
        g.for_each_in_col(0, |r| seen.push(r));
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn compact_preserves_edges_and_bumps_epoch() {
        let mut g = CscOverlay::new(base3());
        g.insert(2, 2);
        g.delete(0, 0);
        let before = g.to_csc();
        assert_eq!(g.epoch(), 0);
        g.compact();
        assert_eq!(g.epoch(), 1);
        assert_eq!(g.overlay_nnz(), 0);
        assert_eq!(g.base(), &before);
        assert_eq!(g.to_csc(), before);
    }

    #[test]
    fn randomized_differential_against_dense_mirror() {
        // Overlay vs a dense boolean mirror under a random op stream with
        // interleaved compactions: membership, nnz, and materialization
        // must agree at every step.
        let (n1, n2) = (13usize, 11usize);
        let mut g = CscOverlay::empty(n1, n2);
        let mut mirror = vec![false; n1 * n2];
        let mut rng = SplitMix64::new(0xD1FF);
        for step in 0..2000 {
            let r = rng.below(n1 as u64) as usize;
            let c = rng.below(n2 as u64) as usize;
            let (rv, cv) = (r as Vidx, c as Vidx);
            match rng.below(3) {
                0 => {
                    let changed = g.insert(rv, cv);
                    assert_eq!(changed, !mirror[r * n2 + c], "step {step} insert ({r},{c})");
                    mirror[r * n2 + c] = true;
                }
                1 => {
                    let changed = g.delete(rv, cv);
                    assert_eq!(changed, mirror[r * n2 + c], "step {step} delete ({r},{c})");
                    mirror[r * n2 + c] = false;
                }
                _ => {
                    assert_eq!(g.contains(rv, cv), mirror[r * n2 + c], "step {step}");
                }
            }
            if step % 257 == 0 {
                g.compact();
            }
            if step % 97 == 0 {
                let want = mirror.iter().filter(|&&b| b).count();
                assert_eq!(g.nnz(), want, "step {step} nnz");
                let a = g.to_csc();
                assert_eq!(a.nnz(), want);
                for rr in 0..n1 {
                    for cc in 0..n2 {
                        assert_eq!(
                            a.contains(rr as Vidx, cc),
                            mirror[rr * n2 + cc],
                            "step {step} csc ({rr},{cc})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_overlay_materializes_inserts_only() {
        let mut g = CscOverlay::empty(4, 4);
        g.insert(3, 1);
        g.insert(0, 1);
        let t = g.to_triples();
        assert_eq!(t.entries(), &[(0, 1), (3, 1)]);
        g.compact();
        assert_eq!(g.base().nnz(), 2);
    }
}
