//! Matrix Market I/O for pattern matrices.
//!
//! The paper evaluates on matrices from the University of Florida (now
//! SuiteSparse) collection, distributed in Matrix Market format. The
//! collection is not available offline in this environment (see DESIGN.md for
//! the synthetic stand-ins), but the reader/writer lets downstream users run
//! the library on the *actual* UF matrices: matching only needs the pattern,
//! so `pattern`, `real`, `integer`, and `complex` fields are all accepted and
//! numerical values are ignored.

use crate::{Triples, Vidx};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a human-readable explanation.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market `coordinate` file into a pattern [`Triples`] list.
///
/// Supports the `general`, `symmetric`, and `skew-symmetric` symmetry kinds
/// (symmetric entries are mirrored; diagonal entries of skew files are
/// dropped, as the format mandates they are absent). Values are discarded.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Triples, MmError> {
    let (nrows, ncols, entries) = parse_mm(reader)?;
    Ok(Triples::from_edges(nrows, ncols, entries.into_iter().map(|(i, j, _)| (i, j)).collect()))
}

/// Reads a Matrix Market `coordinate` file *with values* into a
/// [`WCsc`](crate::WCsc). `pattern` files get weight 1.0 per entry;
/// `symmetric` mirrors carry the same value, `skew-symmetric` the negated
/// one. `complex` entries use the real part.
pub fn read_matrix_market_weighted<R: Read>(reader: R) -> Result<crate::WCsc, MmError> {
    let (nrows, ncols, entries) = parse_mm(reader)?;
    Ok(crate::WCsc::from_weighted_triples(nrows, ncols, entries))
}

/// Reads a weighted Matrix Market file from disk.
pub fn read_matrix_market_weighted_file(path: impl AsRef<Path>) -> Result<crate::WCsc, MmError> {
    read_matrix_market_weighted(std::fs::File::open(path)?)
}

/// Parsed Matrix Market body: dimensions plus 0-based weighted entries.
type MmBody = (usize, usize, Vec<(Vidx, Vidx, f64)>);

/// The shared parser: dimensions plus 0-based `(row, col, value)` entries
/// with symmetry already expanded.
fn parse_mm<R: Read>(reader: R) -> Result<MmBody, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let head_l = header.to_ascii_lowercase();
    let fields: Vec<&str> = head_l.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate (sparse) format is supported"));
    }
    let symmetry = fields[4];
    let (mirror, mirror_sign) = match symmetry {
        "general" => (false, 1.0),
        "symmetric" => (true, 1.0),
        "skew-symmetric" => (true, -1.0),
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };
    let has_value = fields[3] != "pattern";

    // Skip comments; first non-comment line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let mut it = size_line.split_whitespace();
    let nrows: usize =
        it.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad size line"))?;
    let ncols: usize =
        it.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad size line"))?;
    let declared_nnz: usize =
        it.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad size line"))?;

    assert!(
        nrows < Vidx::MAX as usize && ncols < Vidx::MAX as usize,
        "matrix dimensions must fit in Vidx"
    );
    let mut entries: Vec<(Vidx, Vidx, f64)> =
        Vec::with_capacity(declared_nnz * if mirror { 2 } else { 1 });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {trimmed}")))?;
        let j: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {trimmed}")))?;
        let w: f64 = if has_value {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(format!("missing value field: {trimmed}")))?
        } else {
            1.0
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i}, {j}) out of bounds (1-based)")));
        }
        let (i0, j0) = ((i - 1) as Vidx, (j - 1) as Vidx);
        entries.push((i0, j0, w));
        if mirror && i0 != j0 {
            entries.push((j0, i0, w * mirror_sign));
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(parse_err(format!("expected {declared_nnz} entries, found {seen}")));
    }
    Ok((nrows, ncols, entries))
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Triples, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a pattern matrix in Matrix Market `coordinate pattern general`
/// format (sorted, deduplicated, 1-based).
pub fn write_matrix_market<W: Write>(t: &Triples, writer: W) -> std::io::Result<()> {
    let mut sorted = t.clone();
    sorted.sort_dedup();
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "{} {} {}", sorted.nrows(), sorted.ncols(), sorted.len())?;
    for &(i, j) in sorted.entries() {
        writeln!(w, "{} {}", i + 1, j + 1)?;
    }
    w.flush()
}

/// Writes a pattern matrix to a file on disk.
pub fn write_matrix_market_file(t: &Triples, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_matrix_market(t, std::fs::File::create(path)?)
}

/// Writes a weighted matrix in Matrix Market `coordinate real general`
/// format (sorted, 1-based). Entries must already be unique — the
/// weighted containers ([`WCsc`](crate::WCsc),
/// [`WCscOverlay`](crate::WCscOverlay)) guarantee that.
pub fn write_matrix_market_weighted<W: Write>(
    nrows: usize,
    ncols: usize,
    entries: &[(Vidx, Vidx, f64)],
    writer: W,
) -> std::io::Result<()> {
    let mut sorted = entries.to_vec();
    sorted.sort_unstable_by_key(|&(i, j, _)| (j, i));
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", nrows, ncols, sorted.len())?;
    for &(i, j, v) in &sorted {
        writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
    }
    w.flush()
}

/// Writes a weighted matrix to a file on disk.
pub fn write_matrix_market_weighted_file(
    nrows: usize,
    ncols: usize,
    entries: &[(Vidx, Vidx, f64)],
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    write_matrix_market_weighted(nrows, ncols, entries, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_general() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   % a comment\n\
                   3 4 2\n\
                   1 1\n\
                   3 4\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((t.nrows(), t.ncols(), t.len()), (3, 4, 2));
        assert_eq!(t.entries(), &[(0, 0), (2, 3)]);
    }

    #[test]
    fn parses_real_values_and_ignores_them() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 2\n\
                   1 2 3.5\n\
                   2 1 -1e-3\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(t.entries(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn mirrors_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        // (1,0) mirrored to (0,1); diagonal (2,2) not mirrored.
        let mut e = t.entries().to_vec();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_and_count_mismatch() {
        let oob = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }

    #[test]
    fn weighted_read_keeps_values() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 3\n\
                   1 1 2.5\n\
                   2 1 -4\n\
                   2 2 1e2\n";
        let a = read_matrix_market_weighted(src.as_bytes()).unwrap();
        assert_eq!(a.weight(0, 0), Some(2.5));
        assert_eq!(a.weight(1, 0), Some(-4.0));
        assert_eq!(a.weight(1, 1), Some(100.0));
    }

    #[test]
    fn weighted_pattern_defaults_to_one() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let a = read_matrix_market_weighted(src.as_bytes()).unwrap();
        assert_eq!(a.weight(0, 1), Some(1.0));
    }

    #[test]
    fn skew_symmetric_negates_the_mirror() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 1\n\
                   2 1 3.0\n";
        let a = read_matrix_market_weighted(src.as_bytes()).unwrap();
        assert_eq!(a.weight(1, 0), Some(3.0));
        assert_eq!(a.weight(0, 1), Some(-3.0));
    }

    #[test]
    fn write_read_roundtrip() {
        let t = Triples::from_edges(4, 3, vec![(3, 2), (0, 0), (1, 2)]);
        let mut buf = Vec::new();
        write_matrix_market(&t, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        let mut want = t.clone();
        want.sort_dedup();
        assert_eq!(back, want);
    }

    #[test]
    fn file_roundtrip_at_buffered_scale() {
        // Large enough that the write spans many BufWriter flushes and
        // the read spans many BufReader refills; deterministic entries so
        // the file is identical across platforms.
        let (n1, n2) = (211usize, 193usize);
        let mut t = Triples::new(n1, n2);
        let mut x = 0x9E37u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t.push(((x >> 33) % n1 as u64) as Vidx, (x % n2 as u64) as Vidx);
        }
        let path = std::env::temp_dir().join("mcm_io_file_roundtrip.mtx");
        write_matrix_market_file(&t, &path).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut want = t.clone();
        want.sort_dedup();
        assert_eq!(back, want);
        assert!(want.len() > 4000, "dedup collapsed the instance: {}", want.len());
    }

    #[test]
    fn weighted_write_read_roundtrip() {
        let entries = vec![(0, 0, 2.5), (2, 1, -1.0), (1, 2, 7.0)];
        let mut buf = Vec::new();
        write_matrix_market_weighted(3, 3, &entries, &mut buf).unwrap();
        let back = read_matrix_market_weighted(&buf[..]).unwrap();
        assert_eq!(back.nnz(), 3);
        for &(i, j, v) in &entries {
            assert_eq!(back.weight(i, j as usize), Some(v));
        }
    }
}
