//! # mcm-sparse — sparse matrix/vector substrate
//!
//! This crate provides the sparse linear-algebra substrate on which the
//! matrix-algebraic matching algorithms of Azad & Buluç (IPDPS 2016) are
//! built. It mirrors the pieces of CombBLAS that the paper relies on:
//!
//! * [`Triples`] — a coordinate-format (COO) staging area for graph
//!   construction and I/O,
//! * [`Csc`] — compressed sparse columns, the workhorse local format,
//! * [`CscView`] — a *borrowed* CSC over externally owned arrays (mmap'ed
//!   MCSB files from `mcm-store`), the zero-copy load path,
//! * [`Dcsc`] — *doubly* compressed sparse columns, the format CombBLAS uses
//!   for hypersparse 2D-partitioned submatrices (Buluç & Gilbert),
//! * [`SpVec`] — a sparse vector of `(index, value)` pairs,
//! * [`DenseVec`] — a dense vector with the paper's `-1`-means-missing
//!   convention expressed through the [`NIL`] sentinel,
//! * semiring sparse-matrix × sparse-vector products ([`spmspv`]) used for
//!   frontier expansion in multi-source BFS,
//! * [`CscOverlay`] — an insert/delete edge overlay over a CSC base with
//!   epoch-based compaction, the storage layer of the dynamic matching
//!   engine (`mcm-dyn`),
//! * [`WCsc`] / [`WCscOverlay`] — the weighted value layer: the same CSC
//!   pattern machinery carrying an `f64` per nonzero, statically and under
//!   insert/delete/reweight churn, for the weighted (assignment) domain.
//!
//! Bipartite graphs `G = (R, C, E)` are represented as an `n1 × n2` binary
//! matrix `A` where `A[i][j] != 0` iff row vertex `i` is adjacent to column
//! vertex `j` (§II of the paper). Matrices here are *pattern-only*: only the
//! structure is stored, because matching never needs numerical values.

pub mod csc;
pub mod dcsc;
pub mod densevec;
pub mod io;
pub mod overlay;
pub mod permute;
pub mod semiring;
pub mod spmv;
pub mod spvec;
pub mod stats;
pub mod triples;
pub mod view;
pub mod wcsc;
pub mod workspace;
pub mod woverlay;

pub use csc::Csc;
pub use dcsc::Dcsc;
pub use densevec::DenseVec;
pub use overlay::CscOverlay;
pub use semiring::{Combiner, MaxWeightCombiner, MinCombiner, Select2nd};
pub use spmv::{spmspv, spmspv_csc, spmspv_monoid, spmv_dense};
pub use spvec::SpVec;
pub use triples::Triples;
pub use view::CscView;
pub use wcsc::WCsc;
pub use workspace::{SpmvWorkspace, WorkspaceStats};
pub use woverlay::WCscOverlay;

/// Vertex/column index type.
///
/// `u32` halves the memory traffic relative to `usize` on 64-bit targets and
/// comfortably covers every graph this reproduction runs (the paper's largest
/// *executed-here* instances have a few million vertices per side; the
/// scale-30 instances quoted in the paper are reproduced at reduced scale, see
/// DESIGN.md).
pub type Vidx = u32;

/// Sentinel encoding the paper's "-1 denotes unmatched / unvisited / missing".
///
/// Using `u32::MAX` keeps vectors unsigned while preserving the semantics of
/// the dense `mate`, `π` (parents) and `path` vectors of Algorithm 2.
pub const NIL: Vidx = Vidx::MAX;

/// Returns `true` if `v` is a real vertex index (not the [`NIL`] sentinel).
#[inline(always)]
pub fn is_some(v: Vidx) -> bool {
    v != NIL
}

/// Returns `true` if `v` is the [`NIL`] sentinel.
#[inline(always)]
pub fn is_nil(v: Vidx) -> bool {
    v == NIL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_not_a_vertex() {
        assert!(is_nil(NIL));
        assert!(!is_some(NIL));
        assert!(is_some(0));
        assert!(is_some(Vidx::MAX - 1));
    }
}
