//! Doubly compressed sparse columns (DCSC) — the hypersparse format.
//!
//! On a `√p × √p` process grid each local submatrix holds only `m/p`
//! nonzeros over `n/√p` columns; once `p` is large, most columns are empty
//! and the O(ncols) column-pointer array of CSC dominates memory and
//! SpMSpV time. DCSC (Buluç & Gilbert, "On the representation and
//! multiplication of hypersparse matrices") compresses the column dimension
//! too: only the `nzc` nonempty columns appear, in the sorted array `jc`,
//! with `cp[k]..cp[k+1]` delimiting the rows of the `k`-th nonempty column.
//!
//! The paper (§IV-A) uses CombBLAS DCSC storage for all local submatrices;
//! `ablation_storage` in `mcm-bench` measures the CSC-vs-DCSC difference in
//! the hypersparse regime.

use crate::{Csc, Triples, Vidx};

/// A pattern-only sparse matrix in doubly-compressed-sparse-column layout.
///
/// # Example
///
/// ```
/// use mcm_sparse::{Dcsc, Triples};
///
/// // 2 nonzeros over 1000 columns: hypersparse, only 2 column entries stored.
/// let t = Triples::from_edges(10, 1000, vec![(3, 5), (7, 800)]);
/// let d = Dcsc::from_triples(&t);
/// assert!(d.is_hypersparse());
/// assert_eq!(d.nzc(), 2);
/// assert_eq!(d.col(5), &[3]);
/// assert!(d.col(6).is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dcsc {
    nrows: usize,
    ncols: usize,
    /// Sorted global (within this matrix) indices of nonempty columns.
    jc: Vec<Vidx>,
    /// `cp.len() == jc.len() + 1`; nonempty column `k` (with index `jc[k]`)
    /// occupies `ir[cp[k]..cp[k+1]]`.
    cp: Vec<usize>,
    /// Row indices, sorted within each column.
    ir: Vec<Vidx>,
}

impl Dcsc {
    /// Builds from triples that are already column-major sorted and
    /// deduplicated.
    pub fn from_sorted_triples(t: &Triples) -> Self {
        let entries = t.entries();
        debug_assert!(
            entries.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)),
            "triples must be column-major sorted and deduplicated"
        );
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(entries.len());
        for &(i, j) in entries {
            if jc.last() != Some(&j) {
                jc.push(j);
                cp.push(ir.len());
            }
            ir.push(i);
            *cp.last_mut().unwrap() = ir.len();
        }
        Self { nrows: t.nrows(), ncols: t.ncols(), jc, cp, ir }
    }

    /// Builds from a (possibly unsorted) triple list.
    pub fn from_triples(t: &Triples) -> Self {
        Self::from_unsorted_pairs(t.nrows(), t.ncols(), t.entries())
    }

    /// Builds from unsorted, possibly duplicated `(row, col)` pairs by one
    /// counting scatter: a column histogram places every row index directly
    /// into its column's segment of `ir`, then each (typically tiny)
    /// segment is sorted and deduplicated in place while the DCSC arrays
    /// are emitted. O(nnz · avg-col-sort + ncols), no comparisons across
    /// columns, one allocation of the output itself.
    ///
    /// This is the hot path of `DistMatrix` assembly — the comparison sort
    /// it replaces dominated end-to-end matching time on mid-size inputs.
    pub fn from_unsorted_pairs(nrows: usize, ncols: usize, pairs: &[(Vidx, Vidx)]) -> Self {
        if pairs.is_empty() {
            return Self::empty(nrows, ncols);
        }
        // Column histogram → running cursors. After the scatter, `cursor[j]`
        // is the *end* of column j's segment (and the start of j+1's).
        let mut cursor = vec![0u32; ncols + 1];
        for &(_, j) in pairs {
            cursor[j as usize + 1] += 1;
        }
        for k in 0..ncols {
            cursor[k + 1] += cursor[k];
        }
        let mut ir = vec![0 as Vidx; pairs.len()];
        for &(i, j) in pairs {
            let slot = &mut cursor[j as usize];
            ir[*slot as usize] = i;
            *slot += 1;
        }
        // Per-column sort + in-place dedup compaction. The write cursor
        // never passes a column's read start (dedup only shrinks), so the
        // compaction is safe in one forward pass.
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut w = 0usize;
        let mut seg_start = 0usize;
        #[allow(clippy::needless_range_loop)] // parallel-array cursor walk
        for j in 0..ncols {
            let seg_end = cursor[j] as usize;
            if seg_end == seg_start {
                continue;
            }
            // Columns are short on average; an inlined insertion sort beats
            // the dispatch overhead of the general sort for small segments.
            if seg_end - seg_start <= 24 {
                for k in seg_start + 1..seg_end {
                    let v = ir[k];
                    let mut m = k;
                    while m > seg_start && ir[m - 1] > v {
                        ir[m] = ir[m - 1];
                        m -= 1;
                    }
                    ir[m] = v;
                }
            } else {
                ir[seg_start..seg_end].sort_unstable();
            }
            jc.push(j as Vidx);
            let mut last = Vidx::MAX;
            for k in seg_start..seg_end {
                let i = ir[k];
                if i != last {
                    ir[w] = i;
                    w += 1;
                    last = i;
                }
            }
            cp.push(w);
            seg_start = seg_end;
        }
        ir.truncate(w);
        Self { nrows, ncols, jc, cp, ir }
    }

    /// The transpose, by counting scatter: a row histogram becomes the new
    /// column pointers, and walking the existing columns in ascending order
    /// scatters each `(i, j)` to position `cursor[i]++` — which leaves every
    /// new column's row list sorted (and, the input being deduplicated,
    /// deduplicated) for free. O(nnz + nrows), no sorts.
    ///
    /// `DistMatrix` assembly on a 1×1 execution grid uses this to derive
    /// `Aᵀ` from `A` instead of running a second scatter over the raw edge
    /// list — the transpose reads the already-compacted `nnz` entries with
    /// sequential writes per row segment.
    pub fn transposed(&self) -> Dcsc {
        let mut cursor = vec![0usize; self.nrows + 1];
        for &i in &self.ir {
            cursor[i as usize + 1] += 1;
        }
        for k in 0..self.nrows {
            cursor[k + 1] += cursor[k];
        }
        let mut t_ir = vec![0 as Vidx; self.ir.len()];
        for k in 0..self.jc.len() {
            let j = self.jc[k];
            for &i in &self.ir[self.cp[k]..self.cp[k + 1]] {
                let slot = &mut cursor[i as usize];
                t_ir[*slot] = j;
                *slot += 1;
            }
        }
        // `cursor[i]` is now the end of new-column i's segment.
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut seg_start = 0usize;
        #[allow(clippy::needless_range_loop)] // parallel-array cursor walk
        for i in 0..self.nrows {
            let seg_end = cursor[i];
            if seg_end != seg_start {
                jc.push(i as Vidx);
                cp.push(seg_end);
                seg_start = seg_end;
            }
        }
        Dcsc { nrows: self.ncols, ncols: self.nrows, jc, cp, ir: t_ir }
    }

    /// Converts from CSC, dropping empty columns.
    pub fn from_csc(a: &Csc) -> Self {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(a.nnz());
        for j in 0..a.ncols() {
            let col = a.col(j);
            if !col.is_empty() {
                jc.push(j as Vidx);
                ir.extend_from_slice(col);
                cp.push(ir.len());
            }
        }
        Self { nrows: a.nrows(), ncols: a.ncols(), jc, cp, ir }
    }

    /// Converts from a borrowed CSC view, dropping empty columns. The
    /// zero-copy counterpart of [`Dcsc::from_csc`]: a view over mmap'ed
    /// MCSB pages compacts straight into DCSC with one sequential read of
    /// the mapped arrays and no intermediate triple list.
    pub fn from_csc_view(v: &crate::CscView<'_>) -> Self {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(v.nnz());
        for j in 0..v.ncols() {
            let col = v.col(j);
            if !col.is_empty() {
                jc.push(j as Vidx);
                ir.extend_from_slice(col);
                cp.push(ir.len());
            }
        }
        Self { nrows: v.nrows(), ncols: v.ncols(), jc, cp, ir }
    }

    /// Builds from a *re-iterable* stream of (possibly unsorted, possibly
    /// duplicated) `(row, col)` pairs without ever materializing them: one
    /// pass counts the column histogram, a second pass scatters each row
    /// index into its column's segment, then segments are sorted and
    /// deduplicated exactly as in [`Dcsc::from_unsorted_pairs`].
    ///
    /// This is what lets `DistMatrix` assembly apply a relabeling
    /// permutation to an mmap'ed [`CscView`](crate::CscView) — the permuted
    /// pairs exist only inside the iterator — at the cost of iterating the
    /// source twice.
    pub fn from_pair_iter<I, F>(nrows: usize, ncols: usize, pairs: F) -> Self
    where
        I: Iterator<Item = (Vidx, Vidx)>,
        F: Fn() -> I,
    {
        // Column histogram → running cursors (pass 1).
        let mut cursor = vec![0u32; ncols + 1];
        let mut nnz = 0usize;
        for (_, j) in pairs() {
            cursor[j as usize + 1] += 1;
            nnz += 1;
        }
        if nnz == 0 {
            return Self::empty(nrows, ncols);
        }
        for k in 0..ncols {
            cursor[k + 1] += cursor[k];
        }
        // Scatter (pass 2), then the same per-column sort + in-place dedup
        // compaction as `from_unsorted_pairs`.
        let mut ir = vec![0 as Vidx; nnz];
        for (i, j) in pairs() {
            let slot = &mut cursor[j as usize];
            ir[*slot as usize] = i;
            *slot += 1;
        }
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut w = 0usize;
        let mut seg_start = 0usize;
        #[allow(clippy::needless_range_loop)] // parallel-array cursor walk
        for j in 0..ncols {
            let seg_end = cursor[j] as usize;
            if seg_end == seg_start {
                continue;
            }
            if seg_end - seg_start <= 24 {
                for k in seg_start + 1..seg_end {
                    let v = ir[k];
                    let mut m = k;
                    while m > seg_start && ir[m - 1] > v {
                        ir[m] = ir[m - 1];
                        m -= 1;
                    }
                    ir[m] = v;
                }
            } else {
                ir[seg_start..seg_end].sort_unstable();
            }
            jc.push(j as Vidx);
            let mut last = Vidx::MAX;
            for k in seg_start..seg_end {
                let i = ir[k];
                if i != last {
                    ir[w] = i;
                    w += 1;
                    last = i;
                }
            }
            cp.push(w);
            seg_start = seg_end;
        }
        ir.truncate(w);
        Self { nrows, ncols, jc, cp, ir }
    }

    /// An empty matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, jc: Vec::new(), cp: vec![0], ir: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (logical, including empty ones).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of *nonempty* columns.
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// `true` when the matrix is hypersparse (`nnz < ncols`), the regime
    /// DCSC is designed for.
    #[inline]
    pub fn is_hypersparse(&self) -> bool {
        self.nnz() < self.ncols
    }

    /// Sorted indices of nonempty columns.
    #[inline]
    pub fn nonzero_cols(&self) -> &[Vidx] {
        &self.jc
    }

    /// Rows of the `k`-th *nonempty* column.
    #[inline]
    pub fn nth_col(&self, k: usize) -> (&[Vidx], Vidx) {
        (&self.ir[self.cp[k]..self.cp[k + 1]], self.jc[k])
    }

    /// Rows of logical column `j`, empty when `j` has no nonzeros.
    /// O(log nzc) via binary search on `jc`.
    pub fn col(&self, j: usize) -> &[Vidx] {
        match self.jc.binary_search(&(j as Vidx)) {
            Ok(k) => &self.ir[self.cp[k]..self.cp[k + 1]],
            Err(_) => &[],
        }
    }

    /// `true` when the entry `(i, j)` is a stored nonzero.
    pub fn contains(&self, i: Vidx, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Iterates over all `(row, col)` coordinates in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vidx, Vidx)> + '_ {
        (0..self.nzc()).flat_map(move |k| {
            let (rows, j) = self.nth_col(k);
            rows.iter().map(move |&i| (i, j))
        })
    }

    /// Converts to CSC (materializing the full column-pointer array).
    pub fn to_csc(&self) -> Csc {
        let mut colptr = vec![0usize; self.ncols + 1];
        for k in 0..self.nzc() {
            colptr[self.jc[k] as usize + 1] = self.cp[k + 1] - self.cp[k];
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        Csc::from_parts(self.nrows, self.ncols, colptr, self.ir.clone())
    }

    /// Degrees of all row vertices.
    pub fn row_degrees(&self) -> Vec<Vidx> {
        let mut deg = vec![0 as Vidx; self.nrows];
        for &i in &self.ir {
            deg[i as usize] += 1;
        }
        deg
    }

    /// Degrees of all column vertices (dense output over logical columns).
    pub fn col_degrees(&self) -> Vec<Vidx> {
        let mut deg = vec![0 as Vidx; self.ncols];
        for k in 0..self.nzc() {
            deg[self.jc[k] as usize] = (self.cp[k + 1] - self.cp[k]) as Vidx;
        }
        deg
    }

    /// Heap memory footprint in bytes (for the storage ablation).
    pub fn memory_bytes(&self) -> usize {
        self.jc.len() * std::mem::size_of::<Vidx>()
            + self.cp.len() * std::mem::size_of::<usize>()
            + self.ir.len() * std::mem::size_of::<Vidx>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Dcsc {
        // 4x6, only columns 1 and 4 nonempty.
        Dcsc::from_triples(&Triples::from_edges(4, 6, vec![(3, 1), (0, 1), (2, 4)]))
    }

    #[test]
    fn compresses_empty_columns() {
        let a = example();
        assert_eq!(a.nzc(), 2);
        assert_eq!(a.nonzero_cols(), &[1, 4]);
        assert_eq!(a.nnz(), 3);
        assert!(a.is_hypersparse());
    }

    #[test]
    fn col_lookup() {
        let a = example();
        assert_eq!(a.col(1), &[0, 3]);
        assert_eq!(a.col(4), &[2]);
        assert_eq!(a.col(0), &[] as &[Vidx]);
        assert_eq!(a.col(5), &[] as &[Vidx]);
        assert!(a.contains(3, 1));
        assert!(!a.contains(1, 1));
    }

    #[test]
    fn csc_roundtrip() {
        let a = example();
        let csc = a.to_csc();
        assert_eq!(csc.nnz(), a.nnz());
        assert_eq!(Dcsc::from_csc(&csc), a);
    }

    #[test]
    fn iter_yields_column_major() {
        let a = example();
        let coords: Vec<_> = a.iter().collect();
        assert_eq!(coords, vec![(0, 1), (3, 1), (2, 4)]);
    }

    #[test]
    fn degrees_match_csc() {
        let a = example();
        let csc = a.to_csc();
        assert_eq!(a.row_degrees(), csc.row_degrees());
        assert_eq!(a.col_degrees(), csc.col_degrees());
    }

    #[test]
    fn empty_is_consistent() {
        let a = Dcsc::empty(3, 3);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nzc(), 0);
        assert_eq!(a.to_csc().nnz(), 0);
    }

    #[test]
    fn counting_sort_build_matches_comparison_sort() {
        // Adversarial mixes: duplicates, reverse order, empty rows/cols,
        // dense-ish and hypersparse shapes.
        #[allow(clippy::type_complexity)]
        let cases: Vec<(usize, usize, Vec<(Vidx, Vidx)>)> = vec![
            (1, 1, vec![(0, 0), (0, 0), (0, 0)]),
            (4, 6, vec![(3, 5), (0, 0), (3, 5), (1, 2), (2, 4), (0, 4), (0, 0)]),
            (10, 1000, vec![(9, 999), (0, 999), (9, 0), (0, 0), (5, 500)]),
            (8, 8, (0..8).flat_map(|i| (0..8).map(move |j| (7 - i, 7 - j))).collect()),
            (3, 3, vec![]),
        ];
        for (nrows, ncols, pairs) in cases {
            let mut sorted = Triples::from_edges(nrows, ncols, pairs.clone());
            sorted.sort_dedup();
            let want = Dcsc::from_sorted_triples(&sorted);
            let got = Dcsc::from_unsorted_pairs(nrows, ncols, &pairs);
            assert_eq!(got, want, "{nrows}x{ncols} {pairs:?}");
        }
    }

    #[test]
    fn pair_iter_build_matches_slice_build() {
        #[allow(clippy::type_complexity)]
        let cases: Vec<(usize, usize, Vec<(Vidx, Vidx)>)> = vec![
            (1, 1, vec![(0, 0), (0, 0), (0, 0)]),
            (4, 6, vec![(3, 5), (0, 0), (3, 5), (1, 2), (2, 4), (0, 4), (0, 0)]),
            (10, 1000, vec![(9, 999), (0, 999), (9, 0), (0, 0), (5, 500)]),
            (8, 8, (0..8).flat_map(|i| (0..8).map(move |j| (7 - i, 7 - j))).collect()),
            (3, 3, vec![]),
        ];
        for (nrows, ncols, pairs) in cases {
            let want = Dcsc::from_unsorted_pairs(nrows, ncols, &pairs);
            let got = Dcsc::from_pair_iter(nrows, ncols, || pairs.iter().copied());
            assert_eq!(got, want, "{nrows}x{ncols} {pairs:?}");
        }
    }

    #[test]
    fn from_csc_view_matches_from_csc() {
        let t = Triples::from_edges(5, 7, vec![(4, 6), (0, 0), (2, 3), (1, 3), (4, 0)]);
        let csc = t.to_csc();
        let colptr: Vec<u64> = csc.colptr().iter().map(|&p| p as u64).collect();
        let view = crate::CscView::new(csc.nrows(), csc.ncols(), &colptr, csc.rowind());
        assert_eq!(Dcsc::from_csc_view(&view), Dcsc::from_csc(&csc));
    }

    #[test]
    fn transpose_matches_rebuild_from_swapped_pairs() {
        #[allow(clippy::type_complexity)]
        let cases: Vec<(usize, usize, Vec<(Vidx, Vidx)>)> = vec![
            (1, 1, vec![(0, 0)]),
            (4, 6, vec![(3, 5), (0, 0), (1, 2), (2, 4), (0, 4)]),
            (10, 1000, vec![(9, 999), (0, 999), (9, 0), (0, 0), (5, 500)]),
            (8, 8, (0..8).flat_map(|i| (0..8).map(move |j| (7 - i, 7 - j))).collect()),
            (3, 3, vec![]),
        ];
        for (nrows, ncols, pairs) in cases {
            let a = Dcsc::from_unsorted_pairs(nrows, ncols, &pairs);
            let swapped: Vec<(Vidx, Vidx)> = pairs.iter().map(|&(i, j)| (j, i)).collect();
            let want = Dcsc::from_unsorted_pairs(ncols, nrows, &swapped);
            assert_eq!(a.transposed(), want, "{nrows}x{ncols} {pairs:?}");
        }
    }

    #[test]
    fn memory_smaller_than_csc_when_hypersparse() {
        // 2 nonzeros across 1000 columns: DCSC stores 2 column entries, CSC 1001.
        let t = Triples::from_edges(10, 1000, vec![(1, 5), (2, 900)]);
        let d = Dcsc::from_triples(&t);
        let csc_colptr_bytes = 1001 * std::mem::size_of::<usize>();
        assert!(d.memory_bytes() < csc_colptr_bytes);
    }
}
