//! Semiring sparse-matrix × sparse-vector products (SpMSpV).
//!
//! Step 1 of every MS-BFS iteration explores the neighbours of the column
//! frontier with `f_r ← SpMV(A, f_c)` over a `(select2nd, ⊕)` semiring
//! (Fig. 1 / Fig. 2 of the paper). The kernels here are the *local* products
//! run on each process's submatrix; `mcm-bsp` composes them with the
//! expand/fold communication phases of the 2D distributed algorithm.
//!
//! All kernels report the number of traversed edges (`flops`) so the cost
//! model can charge `γ · flops / t` of modeled compute per rank.
//!
//! The functions here are convenience wrappers that allocate a fresh
//! [`SpmvWorkspace`](crate::workspace::SpmvWorkspace) and output vector per
//! call. Hot paths (the per-block, per-iteration products inside
//! `mcm-bsp::distmat`) should hold a workspace and call its `*_into`
//! methods instead, which reuse the sparse accumulator and output
//! allocations across calls — see [`crate::workspace`] for the
//! generation-stamped SPA design and the intra-block parallel variant.
//!
//! The semiring multiply `mul(j, xj)` depends only on the column, so all
//! kernels evaluate it once per matched column and clone the value per
//! traversed edge (hence the `U: Copy` bound).

use crate::workspace::SpmvWorkspace;
use crate::{Csc, Dcsc, SpVec, Vidx};

/// Result of a local SpMSpV: the output sparse vector plus the number of
/// traversed matrix nonzeros (the serial-complexity term
/// `Σ_{k ∈ IND(x)} nnz(A(:,k))` of Table I).
#[derive(Clone, Debug)]
pub struct SpmvOut<U> {
    /// `y = A ⊗ x` over the semiring.
    pub y: SpVec<U>,
    /// Number of `multiply`+`add` operations performed.
    pub flops: u64,
}

///
/// Local SpMSpV over a DCSC matrix.
///
/// * `mul(j, xj)` is the semiring multiply for column `j` carrying frontier
///   value `xj` (for BFS: return `xj` with its parent rewritten to `j` —
///   `select2nd` plus parent bookkeeping).
/// * `take_incoming(acc, inc)` is the semiring add as a selection (see
///   [`Combiner`](crate::semiring::Combiner)): `true` keeps `inc`.
///
/// Columns are processed in ascending index order and rows accumulate into a
/// sparse accumulator, so results and combiner decisions are deterministic.
/// Runs in `O(nnz(x) + nzc(A) + flops)` time thanks to a merge-join between
/// the sorted frontier and the sorted nonzero-column list of the DCSC.
///
/// # Example
///
/// BFS step over the `(select2nd, min)` semiring: each reached row records
/// its smallest frontier neighbour.
///
/// ```
/// use mcm_sparse::{spmspv, Dcsc, SpVec, Triples};
///
/// let a = Dcsc::from_triples(&Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 1)]));
/// let frontier = SpVec::from_pairs(2, vec![(0, 0u32), (1, 1)]);
/// let out = spmspv(&a, &frontier, |j, _| j, |acc, inc| inc < acc);
/// assert_eq!(out.y.entries(), &[(0, 0), (1, 1)]);
/// assert_eq!(out.flops, 3); // edges traversed
/// ```
pub fn spmspv<T, U: Copy>(
    a: &Dcsc,
    x: &SpVec<T>,
    mul: impl FnMut(Vidx, &T) -> U,
    take_incoming: impl FnMut(&U, &U) -> bool,
) -> SpmvOut<U> {
    let mut ws = SpmvWorkspace::new();
    let mut y = SpVec::new(a.nrows());
    let flops = ws.spmspv_into(a, x, mul, take_incoming, &mut y);
    SpmvOut { y, flops }
}

/// Local SpMSpV over a CSC matrix (same contract as [`spmspv`]).
///
/// Used by the CSC arm of the storage ablation; direct column indexing
/// replaces the merge-join.
pub fn spmspv_csc<T, U: Copy>(
    a: &Csc,
    x: &SpVec<T>,
    mul: impl FnMut(Vidx, &T) -> U,
    take_incoming: impl FnMut(&U, &U) -> bool,
) -> SpmvOut<U> {
    let mut ws = SpmvWorkspace::new();
    let mut y = SpVec::new(a.nrows());
    let flops = ws.spmspv_csc_into(a, x, mul, take_incoming, &mut y);
    SpmvOut { y, flops }
}

/// Local SpMSpV over a general *monoid* "addition": `combine(&mut acc, inc)`
/// folds every candidate into the accumulator (e.g. `+` for counting
/// semirings). Must be commutative and associative — the distributed fold
/// combines partials from different blocks in unspecified order.
pub fn spmspv_monoid<T, U: Copy>(
    a: &Dcsc,
    x: &SpVec<T>,
    mul: impl FnMut(Vidx, &T) -> U,
    combine: impl FnMut(&mut U, U),
) -> SpmvOut<U> {
    let mut ws = SpmvWorkspace::new();
    let mut y = SpVec::new(a.nrows());
    let flops = ws.spmspv_monoid_into(a, x, mul, combine, &mut y);
    SpmvOut { y, flops }
}

/// Dense-vector SpMV over an additive monoid: `y[i] = ⊕_j A(i,j) ⊗ x[j]`,
/// materialized as `Option<U>` per row.
///
/// Useful for whole-graph sweeps such as counting each row vertex's
/// unmatched-neighbour total in the maximal-matching initializers.
pub fn spmv_dense<T, U>(
    a: &Dcsc,
    x: &[T],
    mut mul: impl FnMut(Vidx, &T) -> U,
    mut add: impl FnMut(U, U) -> U,
) -> Vec<Option<U>> {
    assert_eq!(x.len(), a.ncols());
    let mut y: Vec<Option<U>> = Vec::new();
    y.resize_with(a.nrows(), || None);
    for k in 0..a.nzc() {
        let (rows, j) = a.nth_col(k);
        for &i in rows {
            let cand = mul(j, &x[j as usize]);
            let slot = &mut y[i as usize];
            *slot = Some(match slot.take() {
                None => cand,
                Some(acc) => add(acc, cand),
            });
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triples;

    /// The paper's Fig. 2 matrix: rows r1..r4, cols c1..c5 (0-based here).
    /// Edges: r1-c1, r1-c3, r2-c1, r2-c2, r2-c4, r3-c3, r3-c5, r4-c4, r4-c5.
    fn fig2_matrix() -> Dcsc {
        Dcsc::from_triples(&Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        ))
    }

    #[test]
    fn fig2_spmv_min_parent() {
        // Frontier = unmatched columns {c1, c2, c5} = {0, 1, 4}, each carrying
        // (parent=self, root=self); semiring (select2nd, minParent).
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        let out =
            spmspv(&a, &x, |j, &(_, root)| (j, root), |acc: &(Vidx, Vidx), inc| inc.0 < acc.0);
        // r1 reached from c1 only → (0,0); r2 from c1 and c2, minParent keeps c1;
        // r3 from c5 → (4,4); r4 from c5 → (4,4).
        assert_eq!(out.y.entries(), &[(0, (0, 0)), (1, (0, 0)), (2, (4, 4)), (3, (4, 4))]);
        // flops = deg(c1) + deg(c2) + deg(c5) = 2 + 1 + 2 = 5.
        assert_eq!(out.flops, 5);
    }

    #[test]
    fn csc_and_dcsc_agree() {
        let d = fig2_matrix();
        let c = d.to_csc();
        let x = SpVec::from_pairs(5, vec![(1, 10u32), (3, 30)]);
        let od = spmspv(&d, &x, |j, &v| (j, v), |a: &(Vidx, u32), b| b < a);
        let oc = spmspv_csc(&c, &x, |j, &v| (j, v), |a: &(Vidx, u32), b| b < a);
        assert_eq!(od.y, oc.y);
        assert_eq!(od.flops, oc.flops);
    }

    #[test]
    fn empty_frontier_is_empty_result() {
        let a = fig2_matrix();
        let x: SpVec<u32> = SpVec::new(5);
        let out = spmspv(&a, &x, |j, &v| (j, v), |_: &(Vidx, u32), _| false);
        assert!(out.y.is_empty());
        assert_eq!(out.flops, 0);
    }

    #[test]
    fn monoid_spmspv_counts() {
        // Counting semiring over a sparse frontier: how many frontier
        // columns touch each row?
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, ()), (1, ()), (4, ())]);
        let out = spmspv_monoid(&a, &x, |_, _| 1u32, |acc, inc| *acc += inc);
        // r1: c1 → 1; r2: c1,c2 → 2; r3: c5 → 1; r4: c5 → 1.
        assert_eq!(out.y.entries(), &[(0, 1), (1, 2), (2, 1), (3, 1)]);
        assert_eq!(out.flops, 5);
    }

    #[test]
    fn dense_spmv_counts_degrees() {
        // Counting semiring: x = all ones, mul = 1, add = +  → row degrees.
        let a = fig2_matrix();
        let ones = vec![1u32; 5];
        let y = spmv_dense(&a, &ones, |_, &v| v, |a, b| a + b);
        let degs: Vec<u32> = y.into_iter().map(|o| o.unwrap_or(0)).collect();
        assert_eq!(degs, vec![2, 3, 2, 2]);
    }

    #[test]
    fn combiner_sees_ascending_columns() {
        // FirstCombiner semantics: with ascending column processing, the
        // smallest column index wins by arrival order.
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, 0u32), (1, 1), (3, 3)]);
        let out = spmspv(&a, &x, |j, _| j, |_, _| false);
        // r2 (row 1) is adjacent to c1, c2, c4 — first arrival is c1 = 0.
        assert_eq!(out.y.get(1), Some(&0));
    }
}
