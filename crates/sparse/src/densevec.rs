//! Dense vectors with the paper's `-1`-means-missing convention.
//!
//! Algorithm 2 keeps four dense vectors: `mate_r`, `mate_c` (current
//! matching), `π_r` (parents of row vertices visited in the current phase),
//! and `path_c` (endpoints of discovered augmenting paths). All of them hold
//! vertex indices where "-1 denotes missing"; we encode that with the
//! [`NIL`](crate::NIL) sentinel of the unsigned [`Vidx`](crate::Vidx) type.

use crate::{SpVec, Vidx, NIL};

/// A dense vector of vertex indices, `NIL` meaning "missing".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseVec {
    data: Vec<Vidx>,
}

impl DenseVec {
    /// A vector of `len` entries, all `NIL` (the paper's "initialize to -1").
    pub fn nil(len: usize) -> Self {
        Self { data: vec![NIL; len] }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<Vidx>) -> Self {
        Self { data }
    }

    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at `i`.
    #[inline]
    pub fn get(&self, i: Vidx) -> Vidx {
        self.data[i as usize]
    }

    /// Sets the value at `i`.
    #[inline]
    pub fn set(&mut self, i: Vidx, v: Vidx) {
        self.data[i as usize] = v;
    }

    /// `true` when entry `i` is a real vertex index.
    #[inline]
    pub fn is_set(&self, i: Vidx) -> bool {
        self.data[i as usize] != NIL
    }

    /// Underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[Vidx] {
        &self.data
    }

    /// Mutable underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Vidx] {
        &mut self.data
    }

    /// Atomic view of the storage, for concurrent one-sided access (the
    /// RMA windows of a thread-per-rank execution backend). Requires the
    /// exclusive borrow, so no non-atomic access can overlap it; `Vidx`
    /// (`u32`) and `AtomicU32` have identical size, alignment, and bit
    /// validity, so the reinterpretation is sound.
    pub fn as_atomic_view(&mut self) -> &[std::sync::atomic::AtomicU32] {
        let slice: *mut [Vidx] = self.data.as_mut_slice();
        unsafe { &*(slice as *const [std::sync::atomic::AtomicU32]) }
    }

    /// Resets every entry to `NIL`.
    pub fn fill_nil(&mut self) {
        self.data.fill(NIL);
    }

    /// Number of non-`NIL` entries.
    pub fn count_set(&self) -> usize {
        self.data.iter().filter(|&&v| v != NIL).count()
    }

    /// Indices of the `NIL` entries (e.g. the unmatched column vertices
    /// seeding a phase of Algorithm 2).
    pub fn nil_indices(&self) -> Vec<Vidx> {
        self.data.iter().enumerate().filter_map(|(i, &v)| (v == NIL).then_some(i as Vidx)).collect()
    }

    /// The paper's `SET(y, x)` for a dense target: `y[i] ← x[i]` for every
    /// explicit entry of the sparse vector `x`.
    pub fn set_from_sparse(&mut self, x: &SpVec<Vidx>) {
        for (i, &v) in x.iter() {
            self.data[i as usize] = v;
        }
    }

    /// Extracts the non-`NIL` entries as a sparse vector (used by
    /// Algorithm 3 line 2: "sparse vector from `path_c` by removing entries
    /// with -1").
    pub fn to_sparse(&self) -> SpVec<Vidx> {
        SpVec::from_sorted_pairs(
            self.len(),
            self.data
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| (v != NIL).then_some((i as Vidx, v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_construction() {
        let v = DenseVec::nil(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.count_set(), 0);
        assert_eq!(v.nil_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = DenseVec::nil(4);
        v.set(2, 7);
        assert!(v.is_set(2));
        assert!(!v.is_set(0));
        assert_eq!(v.get(2), 7);
        assert_eq!(v.count_set(), 1);
        v.fill_nil();
        assert_eq!(v.count_set(), 0);
    }

    #[test]
    fn set_from_sparse_matches_paper_example() {
        // Table I SET example: x = [3,0,2,2,0] sparse, y dense →
        // z[i] ← x[i] for nonzero x. With 0 treated as "no entry" there:
        // our encoding uses explicit sparse entries instead.
        let mut y = DenseVec::from_vec(vec![9, 9, 9, 9, 9]);
        let x = SpVec::from_pairs(5, vec![(0, 3), (2, 2), (3, 2)]);
        y.set_from_sparse(&x);
        assert_eq!(y.as_slice(), &[3, 9, 2, 2, 9]);
    }

    #[test]
    fn atomic_view_aliases_the_storage() {
        let mut v = DenseVec::nil(3);
        v.set(1, 7);
        {
            let view = v.as_atomic_view();
            assert_eq!(view.len(), 3);
            assert_eq!(view[1].load(std::sync::atomic::Ordering::SeqCst), 7);
            view[2].store(9, std::sync::atomic::Ordering::SeqCst);
        }
        assert_eq!(v.get(2), 9);
        assert!(!v.is_set(0));
    }

    #[test]
    fn sparse_roundtrip() {
        let mut v = DenseVec::nil(5);
        v.set(1, 4);
        v.set(4, 0);
        let s = v.to_sparse();
        assert_eq!(s.entries(), &[(1, 4), (4, 0)]);
        let mut w = DenseVec::nil(5);
        w.set_from_sparse(&s);
        assert_eq!(w, v);
    }
}
