//! Insert/delete/reweight overlay on top of a weighted CSC base.
//!
//! The weighted analogue of [`CscOverlay`](crate::overlay::CscOverlay): the
//! dynamic weighted matching engine (`mcm-dyn`) needs cheap point updates
//! carrying per-edge weights plus the merged `(row, weight)` column scans the
//! auction repair performs. [`WCscOverlay`] keeps the bulk of the graph in an
//! immutable [`WCsc`] base and stages mutations in two small per-column
//! sorted lists; re-weighting a live base edge stages a base deletion plus a
//! weighted insertion, so the invariant "staged insertions are disjoint from
//! the live base" carries over unchanged from the structural overlay and all
//! counting logic stays identical.

use crate::{Vidx, WCsc};

/// A mutable weighted sparse pattern: an immutable [`WCsc`] base plus sorted
/// per-column insert/delete lists, compacted epoch by epoch.
///
/// # Example
///
/// ```
/// use mcm_sparse::woverlay::WCscOverlay;
///
/// let mut g = WCscOverlay::empty(3, 3);
/// assert!(g.insert(0, 0, 5.0));
/// assert!(!g.insert(0, 0, 7.5), "re-insert of a live edge just re-weights");
/// assert_eq!(g.weight(0, 0), Some(7.5));
/// assert!(g.delete(0, 0));
/// assert_eq!(g.nnz(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct WCscOverlay {
    base: WCsc,
    /// Per-column row-sorted `(row, weight)` pairs live in the graph but not
    /// in the (unmasked) base. Also holds weight overrides of base edges —
    /// the base entry is then masked through `deleted`.
    inserted: Vec<Vec<(Vidx, f64)>>,
    /// Per-column sorted row indices present in the base but masked.
    deleted: Vec<Vec<Vidx>>,
    n_inserted: usize,
    n_deleted: usize,
    epoch: u64,
}

impl WCscOverlay {
    /// Wraps an existing weighted base with an empty overlay (epoch 0).
    pub fn new(base: WCsc) -> Self {
        let ncols = base.ncols();
        Self {
            base,
            inserted: vec![Vec::new(); ncols],
            deleted: vec![Vec::new(); ncols],
            n_inserted: 0,
            n_deleted: 0,
            epoch: 0,
        }
    }

    /// An empty `nrows × ncols` weighted graph.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self::new(WCsc::from_weighted_triples(nrows, ncols, Vec::new()))
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.base.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.base.ncols()
    }

    /// Live edge count (base minus deletions plus insertions).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.base.nnz() - self.n_deleted + self.n_inserted
    }

    /// Staged overlay size: inserted plus deleted entries. Callers use this
    /// against [`WCscOverlay::nnz`] to decide when to compact.
    #[inline]
    pub fn overlay_nnz(&self) -> usize {
        self.n_inserted + self.n_deleted
    }

    /// Compaction epoch: bumped every time the base is rebuilt.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The weight of live edge `(r, c)`, or `None` when the edge is dead.
    pub fn weight(&self, r: Vidx, c: Vidx) -> Option<f64> {
        let j = c as usize;
        if let Ok(pos) = self.inserted[j].binary_search_by_key(&r, |&(i, _)| i) {
            return Some(self.inserted[j][pos].1);
        }
        if self.deleted[j].binary_search(&r).is_ok() {
            return None;
        }
        self.base.weight(r, j)
    }

    /// `true` when edge `(r, c)` is live.
    #[inline]
    pub fn contains(&self, r: Vidx, c: Vidx) -> bool {
        self.weight(r, c).is_some()
    }

    /// Inserts edge `(r, c)` with weight `w`; returns `true` when the edge
    /// was not already live. Inserting over a live edge re-weights it (and
    /// returns `false`); a same-weight re-insert is a pure no-op.
    ///
    /// # Panics
    /// Debug-panics on out-of-bounds coordinates.
    pub fn insert(&mut self, r: Vidx, c: Vidx, w: f64) -> bool {
        debug_assert!((r as usize) < self.nrows() && (c as usize) < self.ncols());
        let j = c as usize;
        match self.inserted[j].binary_search_by_key(&r, |&(i, _)| i) {
            Ok(pos) => {
                self.inserted[j][pos].1 = w;
                false
            }
            Err(pos) => match self.base.weight(r, j) {
                Some(bw) => {
                    if let Ok(dpos) = self.deleted[j].binary_search(&r) {
                        // Base edge currently masked: un-delete when the
                        // weight matches the base, override otherwise.
                        if bw == w {
                            self.deleted[j].remove(dpos);
                            self.n_deleted -= 1;
                        } else {
                            self.inserted[j].insert(pos, (r, w));
                            self.n_inserted += 1;
                        }
                        true
                    } else if bw == w {
                        false
                    } else {
                        // Re-weight of a live base edge: mask the base entry
                        // and stage the override; the live edge set (and
                        // therefore `nnz`) is unchanged.
                        let dpos = self.deleted[j].binary_search(&r).unwrap_err();
                        self.deleted[j].insert(dpos, r);
                        self.n_deleted += 1;
                        self.inserted[j].insert(pos, (r, w));
                        self.n_inserted += 1;
                        false
                    }
                }
                None => {
                    self.inserted[j].insert(pos, (r, w));
                    self.n_inserted += 1;
                    true
                }
            },
        }
    }

    /// Deletes edge `(r, c)`; returns `true` when the edge was live.
    pub fn delete(&mut self, r: Vidx, c: Vidx) -> bool {
        debug_assert!((r as usize) < self.nrows() && (c as usize) < self.ncols());
        let j = c as usize;
        if let Ok(pos) = self.inserted[j].binary_search_by_key(&r, |&(i, _)| i) {
            // If this insertion overrode a base edge, the base entry is
            // already masked in `deleted` — removing the override suffices.
            self.inserted[j].remove(pos);
            self.n_inserted -= 1;
            return true;
        }
        if self.base.weight(r, j).is_none() {
            return false;
        }
        match self.deleted[j].binary_search(&r) {
            Ok(_) => false,
            Err(pos) => {
                self.deleted[j].insert(pos, r);
                self.n_deleted += 1;
                true
            }
        }
    }

    /// Live degree of column `c`.
    pub fn col_degree(&self, c: Vidx) -> usize {
        let j = c as usize;
        let base_deg = self.base.pattern().col_nnz(j);
        base_deg - self.deleted[j].len() + self.inserted[j].len()
    }

    /// Visits the live `(row, weight)` entries of column `c` in row order:
    /// the base column minus masked entries, merged with staged insertions.
    pub fn for_each_in_col(&self, c: Vidx, mut f: impl FnMut(Vidx, f64)) {
        let j = c as usize;
        let ins = &self.inserted[j];
        let del = &self.deleted[j];
        let mut ii = 0; // cursor into ins
        let mut di = 0; // cursor into del
        for (r, w) in self.base.col_entries(j) {
            while ii < ins.len() && ins[ii].0 < r {
                f(ins[ii].0, ins[ii].1);
                ii += 1;
            }
            if di < del.len() && del[di] == r {
                di += 1;
                continue;
            }
            f(r, w);
        }
        for &(r, w) in &ins[ii..] {
            f(r, w);
        }
    }

    /// Materializes the live edge set as column-major weighted triples.
    pub fn to_weighted_triples(&self) -> Vec<(Vidx, Vidx, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for c in 0..self.ncols() as Vidx {
            self.for_each_in_col(c, |r, w| out.push((r, c, w)));
        }
        out
    }

    /// Materializes the live edge set as a fresh weighted CSC.
    pub fn to_wcsc(&self) -> WCsc {
        WCsc::from_weighted_triples(self.nrows(), self.ncols(), self.to_weighted_triples())
    }

    /// Folds the overlay back into the base (new epoch). No-op overlays
    /// still bump the epoch so callers can force cache invalidation.
    pub fn compact(&mut self) {
        if self.overlay_nnz() > 0 {
            self.base = self.to_wcsc();
            for v in &mut self.inserted {
                v.clear();
            }
            for v in &mut self.deleted {
                v.clear();
            }
            self.n_inserted = 0;
            self.n_deleted = 0;
        }
        self.epoch += 1;
    }

    /// Read-only view of the current base (valid for the current epoch).
    #[inline]
    pub fn base(&self) -> &WCsc {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permute::SplitMix64;

    fn wbase3() -> WCsc {
        WCsc::from_weighted_triples(3, 3, vec![(0, 0, 1.0), (2, 0, 2.0), (1, 1, 3.0), (0, 2, 4.0)])
    }

    #[test]
    fn insert_delete_reweight_and_lookup() {
        let mut g = WCscOverlay::new(wbase3());
        assert_eq!(g.nnz(), 4);
        assert_eq!(g.weight(2, 0), Some(2.0));
        assert!(!g.insert(2, 0, 2.0), "same-weight re-insert is a no-op");
        assert_eq!(g.overlay_nnz(), 0);
        assert!(!g.insert(2, 0, 9.0), "re-weight of a live base edge");
        assert_eq!(g.weight(2, 0), Some(9.0));
        assert_eq!(g.nnz(), 4, "re-weight leaves the live edge set unchanged");
        assert!(g.insert(1, 0, 5.0));
        assert!(!g.insert(1, 0, 6.0), "re-weight of a live overlay edge");
        assert_eq!(g.weight(1, 0), Some(6.0));
        assert!(g.delete(0, 0));
        assert!(!g.delete(0, 0), "double delete is a no-op");
        assert_eq!(g.weight(0, 0), None);
        assert_eq!(g.nnz(), 4);
        assert_eq!(g.col_degree(0), 2);
    }

    #[test]
    fn delete_then_reinsert_base_edge() {
        let mut g = WCscOverlay::new(wbase3());
        assert!(g.delete(1, 1));
        assert!(g.insert(1, 1, 3.0), "same-weight re-insert un-deletes");
        assert_eq!(g.overlay_nnz(), 0, "un-delete must not leave overlay residue");
        assert!(g.delete(1, 1));
        assert!(g.insert(1, 1, 8.0), "re-insert with a new weight overrides");
        assert_eq!(g.weight(1, 1), Some(8.0));
        assert_eq!(g.nnz(), 4);
    }

    #[test]
    fn delete_of_reweighted_base_edge_kills_the_edge() {
        let mut g = WCscOverlay::new(wbase3());
        assert!(!g.insert(0, 2, 7.0));
        assert!(g.delete(0, 2));
        assert!(!g.contains(0, 2));
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.weight(0, 2), None);
    }

    #[test]
    fn merged_column_scan_is_sorted_and_weighted() {
        let mut g = WCscOverlay::new(wbase3());
        g.insert(1, 0, 5.0); // between base rows 0 and 2
        g.insert(2, 0, 9.0); // re-weight base row 2
        g.delete(0, 0);
        let mut seen = Vec::new();
        g.for_each_in_col(0, |r, w| seen.push((r, w)));
        assert_eq!(seen, vec![(1, 5.0), (2, 9.0)]);
    }

    #[test]
    fn compact_preserves_weights_and_bumps_epoch() {
        let mut g = WCscOverlay::new(wbase3());
        g.insert(2, 2, 6.0);
        g.insert(2, 0, 9.0);
        g.delete(0, 0);
        let before = g.to_wcsc();
        assert_eq!(g.epoch(), 0);
        g.compact();
        assert_eq!(g.epoch(), 1);
        assert_eq!(g.overlay_nnz(), 0);
        assert_eq!(g.base(), &before);
        assert_eq!(g.to_wcsc(), before);
    }

    #[test]
    fn randomized_differential_against_dense_weight_mirror() {
        // Overlay vs a dense Option<f64> mirror under a random op stream
        // with interleaved compactions: weights, nnz, and materialization
        // must agree at every step.
        let (n1, n2) = (13usize, 11usize);
        let mut g = WCscOverlay::empty(n1, n2);
        let mut mirror: Vec<Option<f64>> = vec![None; n1 * n2];
        let mut rng = SplitMix64::new(0xBEA7);
        for step in 0..2000 {
            let r = rng.below(n1 as u64) as usize;
            let c = rng.below(n2 as u64) as usize;
            let (rv, cv) = (r as Vidx, c as Vidx);
            match rng.below(3) {
                0 => {
                    let w = (rng.below(50) + 1) as f64;
                    let changed = g.insert(rv, cv, w);
                    assert_eq!(changed, mirror[r * n2 + c].is_none(), "step {step}");
                    mirror[r * n2 + c] = Some(w);
                }
                1 => {
                    let changed = g.delete(rv, cv);
                    assert_eq!(changed, mirror[r * n2 + c].is_some(), "step {step}");
                    mirror[r * n2 + c] = None;
                }
                _ => {
                    assert_eq!(g.weight(rv, cv), mirror[r * n2 + c], "step {step}");
                }
            }
            if step % 257 == 0 {
                g.compact();
            }
            if step % 97 == 0 {
                let want = mirror.iter().filter(|b| b.is_some()).count();
                assert_eq!(g.nnz(), want, "step {step} nnz");
                let a = g.to_wcsc();
                assert_eq!(a.nnz(), want);
                for rr in 0..n1 {
                    for cc in 0..n2 {
                        assert_eq!(
                            a.weight(rr as Vidx, cc),
                            mirror[rr * n2 + cc],
                            "step {step} wcsc ({rr},{cc})"
                        );
                    }
                }
            }
        }
    }
}
