//! Semiring scaffolding for BFS-style sparse matrix-vector products.
//!
//! §III-B of the paper: *"a semiring is defined over (potentially separate)
//! sets of 'scalars', and has its two operations 'multiplication' and
//! 'addition' redefined"*. For BFS over a binary matrix the multiply is
//! `select2nd` — the matrix entry merely gates the propagation of the vector
//! element — and the "addition" picks one of the candidate values arriving at
//! the same row (e.g. `minParent`, `randParent`, `randRoot`).
//!
//! The concrete matching semirings over `(parent, root)` pairs live in
//! `mcm-core::semirings`; this module provides the generic trait plus
//! reusable combiners, keeping the substrate algorithm-agnostic.

/// The "addition" of a `(select2nd, ⊕)` semiring: a *selection* between two
/// candidate values landing on the same output index.
///
/// `take_incoming(acc, inc)` returns `true` when the incoming candidate
/// should replace the accumulator. Implementations must be deterministic
/// given their own state (randomized semirings hash the candidate, they do
/// not consult a global RNG), so distributed and serial executions agree.
pub trait Combiner<T> {
    /// Should `inc` replace `acc`?
    fn take_incoming(&self, acc: &T, inc: &T) -> bool;
}

/// Marker documenting the `select2nd` multiply: `A(i,j) ⊗ x(j) = x(j)`.
///
/// In code the multiply is a closure handed to
/// [`spmspv`](crate::spmv::spmspv) (it usually also rewrites the parent to
/// `j`, which is how BFS records the discovering column).
#[derive(Clone, Copy, Debug, Default)]
pub struct Select2nd;

/// Keep the minimum value (a deterministic combiner for any `Ord` type; the
/// `minParent` semiring is this over the parent component).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinCombiner;

impl<T: Ord> Combiner<T> for MinCombiner {
    #[inline]
    fn take_incoming(&self, acc: &T, inc: &T) -> bool {
        inc < acc
    }
}

/// Keep the maximum value.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxCombiner;

impl<T: Ord> Combiner<T> for MaxCombiner {
    #[inline]
    fn take_incoming(&self, acc: &T, inc: &T) -> bool {
        inc > acc
    }
}

/// Keep the first value that arrives (arrival order is deterministic:
/// ascending column order within [`spmspv`](crate::spmv::spmspv)).
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstCombiner;

impl<T> Combiner<T> for FirstCombiner {
    #[inline]
    fn take_incoming(&self, _acc: &T, _inc: &T) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_combiner_prefers_smaller() {
        let c = MinCombiner;
        assert!(c.take_incoming(&5, &3));
        assert!(!c.take_incoming(&3, &5));
        assert!(!c.take_incoming(&3, &3));
    }

    #[test]
    fn max_combiner_prefers_larger() {
        let c = MaxCombiner;
        assert!(c.take_incoming(&3, &5));
        assert!(!c.take_incoming(&5, &3));
    }

    #[test]
    fn first_combiner_never_replaces() {
        let c = FirstCombiner;
        assert!(!c.take_incoming(&1, &2));
        assert!(!c.take_incoming(&2, &1));
    }
}
