//! Semiring scaffolding for BFS-style sparse matrix-vector products.
//!
//! §III-B of the paper: *"a semiring is defined over (potentially separate)
//! sets of 'scalars', and has its two operations 'multiplication' and
//! 'addition' redefined"*. For BFS over a binary matrix the multiply is
//! `select2nd` — the matrix entry merely gates the propagation of the vector
//! element — and the "addition" picks one of the candidate values arriving at
//! the same row (e.g. `minParent`, `randParent`, `randRoot`).
//!
//! The concrete matching semirings over `(parent, root)` pairs live in
//! `mcm-core::semirings`; this module provides the generic trait plus
//! reusable combiners, keeping the substrate algorithm-agnostic.

/// The "addition" of a `(select2nd, ⊕)` semiring: a *selection* between two
/// candidate values landing on the same output index.
///
/// `take_incoming(acc, inc)` returns `true` when the incoming candidate
/// should replace the accumulator. Implementations must be deterministic
/// given their own state (randomized semirings hash the candidate, they do
/// not consult a global RNG), so distributed and serial executions agree.
pub trait Combiner<T> {
    /// Should `inc` replace `acc`?
    fn take_incoming(&self, acc: &T, inc: &T) -> bool;
}

/// Marker documenting the `select2nd` multiply: `A(i,j) ⊗ x(j) = x(j)`.
///
/// In code the multiply is a closure handed to
/// [`spmspv`](crate::spmv::spmspv) (it usually also rewrites the parent to
/// `j`, which is how BFS records the discovering column).
#[derive(Clone, Copy, Debug, Default)]
pub struct Select2nd;

/// Keep the minimum value (a deterministic combiner for any `Ord` type; the
/// `minParent` semiring is this over the parent component).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinCombiner;

impl<T: Ord> Combiner<T> for MinCombiner {
    #[inline]
    fn take_incoming(&self, acc: &T, inc: &T) -> bool {
        inc < acc
    }
}

/// Keep the maximum value.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxCombiner;

impl<T: Ord> Combiner<T> for MaxCombiner {
    #[inline]
    fn take_incoming(&self, acc: &T, inc: &T) -> bool {
        inc > acc
    }
}

/// Keep the candidate carrying the larger net value: the "addition" of the
/// `(max, +)` tropical semiring the weighted auction propagates over.
///
/// Candidates are `(payload, net_value)` pairs — for best-bid propagation the
/// payload is the bidding column and the net value is `w(i, j) − price(i)`.
/// `f64` is not `Ord`, so comparison goes through `total_cmp` (IEEE 754
/// total order: −NaN < −∞ < … < +∞ < +NaN, which keeps the combiner total
/// and deterministic even on garbage values); value ties break toward the
/// **smaller** payload so serial and parallel executions select the same
/// candidate regardless of arrival order.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxWeightCombiner;

impl<T: Ord> Combiner<(T, f64)> for MaxWeightCombiner {
    #[inline]
    fn take_incoming(&self, acc: &(T, f64), inc: &(T, f64)) -> bool {
        match inc.1.total_cmp(&acc.1) {
            core::cmp::Ordering::Greater => true,
            core::cmp::Ordering::Equal => inc.0 < acc.0,
            core::cmp::Ordering::Less => false,
        }
    }
}

/// Keep the first value that arrives (arrival order is deterministic:
/// ascending column order within [`spmspv`](crate::spmv::spmspv)).
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstCombiner;

impl<T> Combiner<T> for FirstCombiner {
    #[inline]
    fn take_incoming(&self, _acc: &T, _inc: &T) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_combiner_prefers_smaller() {
        let c = MinCombiner;
        assert!(c.take_incoming(&5, &3));
        assert!(!c.take_incoming(&3, &5));
        assert!(!c.take_incoming(&3, &3));
    }

    #[test]
    fn max_combiner_prefers_larger() {
        let c = MaxCombiner;
        assert!(c.take_incoming(&3, &5));
        assert!(!c.take_incoming(&5, &3));
    }

    #[test]
    fn max_weight_combiner_prefers_larger_net_value() {
        let c = MaxWeightCombiner;
        assert!(c.take_incoming(&(0u32, 1.0), &(9u32, 2.0)));
        assert!(!c.take_incoming(&(0u32, 2.0), &(9u32, 1.0)));
    }

    #[test]
    fn max_weight_combiner_ties_break_to_smaller_payload() {
        let c = MaxWeightCombiner;
        assert!(c.take_incoming(&(7u32, 3.0), &(2u32, 3.0)));
        assert!(!c.take_incoming(&(2u32, 3.0), &(7u32, 3.0)));
        assert!(!c.take_incoming(&(2u32, 3.0), &(2u32, 3.0)));
    }

    #[test]
    fn max_weight_combiner_is_total_under_nan() {
        // IEEE total order: a negative NaN sits below every finite value, a
        // positive NaN above — either way the comparison stays deterministic.
        let c = MaxWeightCombiner;
        assert!(c.take_incoming(&(0u32, 0.0), &(0u32, f64::NAN)));
        assert!(!c.take_incoming(&(0u32, f64::NAN), &(0u32, 0.0)));
        assert!(!c.take_incoming(&(0u32, 0.0), &(0u32, -f64::NAN)));
        assert!(c.take_incoming(&(0u32, -f64::NAN), &(0u32, 0.0)));
    }

    #[test]
    fn first_combiner_never_replaces() {
        let c = FirstCombiner;
        assert!(!c.take_incoming(&1, &2));
        assert!(!c.take_incoming(&2, &1));
    }
}
