//! Compressed sparse columns (CSC), pattern-only.
//!
//! CSC stores, for each column `j`, the sorted row indices of its nonzeros in
//! `rowind[colptr[j]..colptr[j+1]]`. It is the right format when most columns
//! are nonempty; 2D-partitioned submatrices on large process grids are
//! *hypersparse* (more columns than nonzeros) and use [`Dcsc`](crate::Dcsc)
//! instead, exactly as CombBLAS does.

use crate::{Triples, Vidx};

/// A pattern-only sparse matrix in compressed-sparse-column layout.
///
/// # Example
///
/// ```
/// use mcm_sparse::Triples;
///
/// let a = Triples::from_edges(3, 2, vec![(0, 0), (2, 0), (1, 1)]).to_csc();
/// assert_eq!(a.col(0), &[0, 2]);
/// assert_eq!(a.col_nnz(1), 1);
/// assert_eq!(a.transpose().col(0), &[0]); // rows of A become columns of Aᵀ
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    /// `colptr.len() == ncols + 1`; column `j` occupies
    /// `rowind[colptr[j]..colptr[j+1]]`.
    colptr: Vec<usize>,
    /// Row indices, sorted within each column.
    rowind: Vec<Vidx>,
}

impl Csc {
    /// Builds from triples that are already column-major sorted and
    /// deduplicated (see [`Triples::sort_dedup`]).
    ///
    /// # Panics
    /// Debug-panics when the input is not sorted/deduplicated.
    pub fn from_sorted_triples(t: &Triples) -> Self {
        let entries = t.entries();
        debug_assert!(
            entries.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)),
            "triples must be column-major sorted and deduplicated"
        );
        let mut colptr = vec![0usize; t.ncols() + 1];
        for &(_, j) in entries {
            colptr[j as usize + 1] += 1;
        }
        for j in 0..t.ncols() {
            colptr[j + 1] += colptr[j];
        }
        let rowind = entries.iter().map(|&(i, _)| i).collect();
        Self { nrows: t.nrows(), ncols: t.ncols(), colptr, rowind }
    }

    /// Builds an empty matrix with no nonzeros.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, colptr: vec![0; ncols + 1], rowind: Vec::new() }
    }

    /// Builds directly from raw parts.
    ///
    /// # Panics
    /// Panics when the parts are structurally inconsistent.
    pub fn from_parts(nrows: usize, ncols: usize, colptr: Vec<usize>, rowind: Vec<Vidx>) -> Self {
        assert_eq!(colptr.len(), ncols + 1);
        assert_eq!(*colptr.last().unwrap(), rowind.len());
        assert!(colptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(rowind.iter().all(|&i| (i as usize) < nrows));
        Self { nrows, ncols, colptr, rowind }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// The sorted row indices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[Vidx] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Number of nonzeros in column `j` (the degree of column vertex `j`).
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Flat row-index array.
    #[inline]
    pub fn rowind(&self) -> &[Vidx] {
        &self.rowind
    }

    /// `true` when the entry `(i, j)` is a stored nonzero.
    pub fn contains(&self, i: Vidx, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Iterates over all `(row, col)` coordinates in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vidx, Vidx)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col(j).iter().map(move |&i| (i, j as Vidx)))
    }

    /// Degrees of all column vertices.
    pub fn col_degrees(&self) -> Vec<Vidx> {
        (0..self.ncols).map(|j| self.col_nnz(j) as Vidx).collect()
    }

    /// Degrees of all row vertices.
    pub fn row_degrees(&self) -> Vec<Vidx> {
        let mut deg = vec![0 as Vidx; self.nrows];
        for &i in &self.rowind {
            deg[i as usize] += 1;
        }
        deg
    }

    /// Explicit transpose (CSC of `Aᵀ`, i.e. CSR of `A`). O(nnz + n).
    pub fn transpose(&self) -> Csc {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &i in &self.rowind {
            colptr[i as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut cursor = colptr.clone();
        let mut rowind = vec![0 as Vidx; self.nnz()];
        for j in 0..self.ncols {
            for &i in self.col(j) {
                rowind[cursor[i as usize]] = j as Vidx;
                cursor[i as usize] += 1;
            }
        }
        Csc { nrows: self.ncols, ncols: self.nrows, colptr, rowind }
    }

    /// Converts back to (sorted) triples.
    pub fn to_triples(&self) -> Triples {
        Triples::from_edges(self.nrows, self.ncols, self.iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csc {
        // 4x3:
        // col0: rows {0, 2}; col1: {}; col2: rows {1, 3}
        Triples::from_edges(4, 3, vec![(2, 0), (0, 0), (3, 2), (1, 2)]).to_csc()
    }

    #[test]
    fn construction_sorts_columns() {
        let a = example();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.col(0), &[0, 2]);
        assert_eq!(a.col(1), &[] as &[Vidx]);
        assert_eq!(a.col(2), &[1, 3]);
    }

    #[test]
    fn contains_checks_membership() {
        let a = example();
        assert!(a.contains(2, 0));
        assert!(!a.contains(1, 0));
        assert!(!a.contains(0, 1));
    }

    #[test]
    fn degrees() {
        let a = example();
        assert_eq!(a.col_degrees(), vec![2, 0, 2]);
        assert_eq!(a.row_degrees(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = example();
        let at = a.transpose();
        assert_eq!(at.nrows(), 3);
        assert_eq!(at.ncols(), 4);
        assert!(at.contains(0, 0) && at.contains(0, 2) && at.contains(2, 1) && at.contains(2, 3));
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn triples_roundtrip() {
        let a = example();
        assert_eq!(a.to_triples().to_csc(), a);
    }

    #[test]
    fn empty_matrix() {
        let a = Csc::empty(5, 7);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.col(6), &[] as &[Vidx]);
    }
}
