//! Reusable, zero-allocation SpMSpV workspaces.
//!
//! The seed kernels in [`crate::spmv`] allocate and zero an `O(nrows)`
//! sparse accumulator (SPA) plus a `touched` list on **every call** — once
//! per DCSC block per MS-BFS iteration. That allocation traffic, not the
//! semiring arithmetic, dominates the hot path (frontier kernels are
//! memory-bound). This module amortizes it the way CombBLAS-style
//! implementations do:
//!
//! * [`SpmvWorkspace`] owns a **generation-stamped SPA**: a `u32` epoch is
//!   bumped per call and a slot is live only when `stamp[i] == epoch`, so
//!   "resetting" the accumulator costs one integer increment instead of an
//!   `O(nrows)` sweep or a fresh allocation. Epoch wraparound (every 2³²
//!   calls) triggers the one hard reset.
//! * The SPA keeps **split index/value streams**: a bare `stamp: Vec<u32>`
//!   array scanned by the hot loops and a parallel value array with no
//!   per-slot discriminant (`MaybeUninit<U>`; a slot is initialized exactly
//!   when its stamp matches the epoch). The inner loops touch one
//!   branch-light `u32` stream instead of chasing `Option` tags through
//!   interleaved memory, which keeps them autovectorizable. Value types are
//!   `Copy` (frontier records are small PODs — `(parent, root)` pairs,
//!   counters), so slots are overwritten freely with no drop obligations.
//! * Draining is adaptive: a sparse result sorts its touched list, a dense
//!   result (≥ 1/8 of the rows) switches to a **chunked dense sweep** over
//!   the stamp array — a sequential, predictable scan that beats the
//!   `O(k log k)` sort as soon as the output stops being tiny.
//! * The `*_into` kernels write into a **caller-owned** [`SpVec`] via
//!   [`SpVec::reset`], so output allocations are reused across iterations
//!   too. In steady state (buffers warm) a call performs **zero heap
//!   allocation**; `tests/spmv_workspace.rs` pins this down by checking
//!   pointer/capacity stability across iterations.
//! * [`SpmvWorkspace::spmspv_parallel_into`] adds an intra-block thread
//!   level (the paper's OpenMP axis): the matched frontier columns are
//!   split into contiguous chunks by traversed-edge count, each chunk runs
//!   against its own stamped SPA on its own thread, and the chunk results
//!   merge in **ascending chunk (hence ascending column) order** through an
//!   allocation-free k-way merge. Because every supported combiner is an
//!   associative selection (see below), the merged result is bit-identical
//!   to the serial kernel's — `MinParent`, `RandParent`/`RandRoot`, and
//!   first-arrival combiners all included — and `flops` is exactly the
//!   serial count.
//! * [`SpmvWorkspace::spmspv_fused_into`] is the shared-memory backend's
//!   kernel: one physical product over the whole (single-block) matrix
//!   whose SPA doubles as the communication arena — logical ranks'
//!   "messages" are writes into their destination's SPA region, the epoch
//!   stamp is the exchange barrier, and the per-logical-block volumes the
//!   α–β–γ model charges (expand, flops, fold send/recv) are counted
//!   in-line from the same traversal via an owner-stamp array. See
//!   `mcm-bsp`'s `SharedComm` for the epoch protocol this plugs into.
//!
//! ### Combiner contract
//!
//! `take_incoming(acc, inc) -> bool` must implement an **associative
//! selection**: `fold(a, b) = if take_incoming(a, b) { b } else { a }` must
//! be associative (every total-order "keep the minimum key" selection is,
//! as is first-arrival `|_, _| false`). The serial kernel folds candidates
//! per row in ascending column order; the chunked kernel folds each chunk's
//! sub-range in that same order and then folds the per-chunk survivors in
//! ascending chunk order — associativity makes the two parenthesizations
//! equal, value for value. Monoid `combine(&mut acc, inc)` must be
//! commutative and associative, as [`crate::spmv::spmspv_monoid`] already
//! requires.
//!
//! The column-level semiring multiply `mul(j, xj)` is invoked **once per
//! matched column** and its value copied per traversed edge (the multiply
//! depends only on `(j, xj)`, never on the row), which the seed kernels
//! re-evaluated per nonzero.

use crate::{Csc, Dcsc, SpVec, Vidx};
use std::mem::MaybeUninit;

/// A generation-stamped sparse accumulator: values are live only when their
/// stamp equals the current epoch, so reset is O(1). Index and value
/// streams are split — `stamp` is the only array the membership test
/// touches, and `vals` carries bare `U` slots (initialized iff stamped).
#[derive(Debug)]
struct SpaBuf<U> {
    epoch: u32,
    /// Rows covered by the current generation (`begin`'s `nrows`); the
    /// buffers themselves only ever grow.
    active: usize,
    stamp: Vec<u32>,
    vals: Vec<MaybeUninit<U>>,
    touched: Vec<Vidx>,
}

impl<U: Copy> Clone for SpaBuf<U> {
    fn clone(&self) -> Self {
        Self {
            epoch: self.epoch,
            active: self.active,
            stamp: self.stamp.clone(),
            vals: self.vals.clone(),
            touched: self.touched.clone(),
        }
    }
}

impl<U> SpaBuf<U> {
    fn new() -> Self {
        Self { epoch: 0, active: 0, stamp: Vec::new(), vals: Vec::new(), touched: Vec::new() }
    }

    /// Opens a new generation over `nrows` rows. Grows the buffers on first
    /// use (or when a larger matrix arrives); otherwise allocation-free.
    fn begin(&mut self, nrows: usize) {
        if self.stamp.len() < nrows {
            self.stamp.resize(nrows, 0);
            self.vals.resize_with(nrows, MaybeUninit::uninit);
        }
        self.active = nrows;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wraparound: stale stamps could collide with the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }

    /// Folds `cand` into row `i` under a selection combiner.
    #[inline]
    fn accum_select(&mut self, i: Vidx, cand: U, take_incoming: &mut impl FnMut(&U, &U) -> bool)
    where
        U: Copy,
    {
        let iu = i as usize;
        if self.stamp[iu] != self.epoch {
            self.stamp[iu] = self.epoch;
            self.vals[iu].write(cand);
            self.touched.push(i);
        } else {
            // SAFETY: `stamp[iu] == epoch` implies the slot was written in
            // this generation.
            let acc = unsafe { self.vals[iu].assume_init_mut() };
            if take_incoming(acc, &cand) {
                *acc = cand;
            }
        }
    }

    /// Folds `cand` into row `i` under a monoid combiner.
    #[inline]
    fn accum_monoid(&mut self, i: Vidx, cand: U, combine: &mut impl FnMut(&mut U, U))
    where
        U: Copy,
    {
        let iu = i as usize;
        if self.stamp[iu] != self.epoch {
            self.stamp[iu] = self.epoch;
            self.vals[iu].write(cand);
            self.touched.push(i);
        } else {
            // SAFETY: stamped ⇒ initialized this generation.
            let acc = unsafe { self.vals[iu].assume_init_mut() };
            combine(acc, cand);
        }
    }

    /// The live value at row `i`. Caller must know `i` was touched this
    /// generation (stamp check is debug-asserted, not branched).
    #[inline]
    fn take(&self, i: Vidx) -> U
    where
        U: Copy,
    {
        debug_assert_eq!(self.stamp[i as usize], self.epoch, "untouched row drained");
        // SAFETY: stamped ⇒ initialized this generation.
        unsafe { self.vals[i as usize].assume_init_read() }
    }

    /// Moves the touched rows' values into `y` in ascending row order:
    /// a sort of the touched list when the result is sparse, a dense sweep
    /// of the stamp stream when it isn't (the sweep is sequential and
    /// branch-predictable; the crossover sits near `active / 8`).
    fn drain_into(&mut self, y: &mut SpVec<U>)
    where
        U: Copy,
    {
        if 8 * self.touched.len() >= self.active {
            let epoch = self.epoch;
            for (iu, &s) in self.stamp[..self.active].iter().enumerate() {
                if s == epoch {
                    y.push(iu as Vidx, self.take(iu as Vidx));
                }
            }
        } else {
            self.touched.sort_unstable();
            for k in 0..self.touched.len() {
                let i = self.touched[k];
                y.push(i, self.take(i));
            }
        }
    }

    /// Heap bytes currently held by this SPA (capacity-based).
    fn heap_bytes(&self) -> u64 {
        (self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<U>()
            + self.touched.capacity() * std::mem::size_of::<Vidx>()) as u64
    }
}

/// Reuse counters exposed through `McmStats` (see `mcm-core`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Kernel calls served by this workspace.
    pub calls: u64,
    /// Calls that ran without growing any internal buffer — the steady
    /// state. The first call on a given matrix shape is a miss; everything
    /// after should hit.
    pub reuse_hits: u64,
    /// Bytes of SPA capacity reused instead of freshly allocated, summed
    /// over hits: what the non-workspace kernels would have allocated (and
    /// zeroed) per call.
    pub bytes_reused: u64,
}

impl WorkspaceStats {
    /// Merges another workspace's counters into this one.
    pub fn merge(&mut self, other: &WorkspaceStats) {
        self.calls += other.calls;
        self.reuse_hits += other.reuse_hits;
        self.bytes_reused += other.bytes_reused;
    }
}

/// Communication volumes of one fused (single-physical-block) product,
/// accounted at the **logical** grid the shared-memory backend charges for:
/// exactly the quantities `DistMatrix::spmspv_with_plan` derives from its
/// physically-split execution, recovered here from one traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusedVolumes {
    /// Traversed edges in the busiest logical block (`γ` term).
    pub max_flops: u64,
    /// Fold-phase bottleneck: max over logical block rows of
    /// max(largest per-block send, largest per-destination receive), in
    /// 2-words-per-pair units.
    pub fold_bottleneck: u64,
}

/// Reusable state for the `*_into` SpMSpV kernels: one stamped SPA for the
/// serial path, per-chunk SPAs for the intra-block parallel path, and the
/// merge-join scratch shared by both.
#[derive(Clone, Debug)]
pub struct SpmvWorkspace<U: Copy> {
    spa: SpaBuf<U>,
    /// One SPA per chunk of the parallel path (grown on demand).
    chunk_spas: Vec<SpaBuf<U>>,
    /// Matched `(frontier position, nonzero-column position)` pairs from the
    /// merge-join, reused across calls.
    pairs: Vec<(u32, u32)>,
    /// Per-chunk cursors for the k-way merge.
    heads: Vec<usize>,
    /// Per-chunk pair-range boundaries (`chunk c` owns `bounds[c]..bounds[c+1]`).
    bounds: Vec<usize>,
    /// Fused-kernel scratch: last logical block column to touch each row
    /// (valid only where the SPA stamp matches the epoch).
    owner: Vec<u32>,
    /// Fused-kernel scratch: distinct `(row, block-col)` contributions per
    /// logical block — the pre-merge fold *send* volume.
    fsend: Vec<u64>,
    /// Fused-kernel scratch: traversed edges per logical block.
    fflops: Vec<u64>,
    /// Fused-kernel scratch: pre-merge fold words per `(block-row, dest)`.
    frecv: Vec<u64>,
    /// Reuse counters.
    pub stats: WorkspaceStats,
}

impl<U: Copy> Default for SpmvWorkspace<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U: Copy> SpmvWorkspace<U> {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            spa: SpaBuf::new(),
            chunk_spas: Vec::new(),
            pairs: Vec::new(),
            heads: Vec::new(),
            bounds: Vec::new(),
            owner: Vec::new(),
            fsend: Vec::new(),
            fflops: Vec::new(),
            frecv: Vec::new(),
            stats: WorkspaceStats::default(),
        }
    }

    /// Records one call's reuse accounting: `needed` rows against what the
    /// buffers already held.
    fn note_call(&mut self, nrows: usize, chunks_used: usize) {
        self.stats.calls += 1;
        let warm = self.spa.stamp.len() >= nrows
            && self.chunk_spas.len() >= chunks_used
            && self.chunk_spas[..chunks_used].iter().all(|s| s.stamp.len() >= nrows);
        if warm {
            self.stats.reuse_hits += 1;
            self.stats.bytes_reused += self.spa.heap_bytes()
                + self.chunk_spas[..chunks_used].iter().map(|s| s.heap_bytes()).sum::<u64>();
        }
    }

    /// DCSC SpMSpV into a caller-owned output vector; returns the traversed
    /// edge count (`flops`), identical to [`crate::spmv::spmspv`].
    ///
    /// `y` is [`SpVec::reset`] to `a.nrows()` and filled in ascending row
    /// order; its allocation is reused.
    pub fn spmspv_into<T>(
        &mut self,
        a: &Dcsc,
        x: &SpVec<T>,
        mut mul: impl FnMut(Vidx, &T) -> U,
        mut take_incoming: impl FnMut(&U, &U) -> bool,
        y: &mut SpVec<U>,
    ) -> u64 {
        self.note_call(a.nrows(), 0);
        self.spa.begin(a.nrows());
        let mut flops = 0u64;

        let cols = a.nonzero_cols();
        let xs = x.entries();
        let (mut p, mut q) = (0usize, 0usize);
        while p < xs.len() && q < cols.len() {
            let (j, xj) = (&xs[p].0, &xs[p].1);
            match cols[q].cmp(j) {
                std::cmp::Ordering::Less => q += 1,
                std::cmp::Ordering::Greater => p += 1,
                std::cmp::Ordering::Equal => {
                    let (rows, _) = a.nth_col(q);
                    if !rows.is_empty() {
                        // The multiply depends only on (j, xj): hoist it out
                        // of the row loop and copy per edge.
                        let colv = mul(*j, xj);
                        flops += rows.len() as u64;
                        for &i in rows {
                            self.spa.accum_select(i, colv, &mut take_incoming);
                        }
                    }
                    p += 1;
                    q += 1;
                }
            }
        }

        y.reset(a.nrows());
        self.spa.drain_into(y);
        flops
    }

    /// CSC SpMSpV into a caller-owned output vector (same contract as
    /// [`SpmvWorkspace::spmspv_into`]; direct column indexing replaces the
    /// merge-join).
    pub fn spmspv_csc_into<T>(
        &mut self,
        a: &Csc,
        x: &SpVec<T>,
        mut mul: impl FnMut(Vidx, &T) -> U,
        mut take_incoming: impl FnMut(&U, &U) -> bool,
        y: &mut SpVec<U>,
    ) -> u64 {
        self.note_call(a.nrows(), 0);
        self.spa.begin(a.nrows());
        let mut flops = 0u64;

        for (j, xj) in x.iter() {
            let rows = a.col(j as usize);
            if rows.is_empty() {
                continue;
            }
            let colv = mul(j, xj);
            flops += rows.len() as u64;
            for &i in rows {
                self.spa.accum_select(i, colv, &mut take_incoming);
            }
        }

        y.reset(a.nrows());
        self.spa.drain_into(y);
        flops
    }

    /// DCSC SpMSpV over a monoid "addition" into a caller-owned output
    /// vector (the workspace counterpart of
    /// [`crate::spmv::spmspv_monoid`]).
    pub fn spmspv_monoid_into<T>(
        &mut self,
        a: &Dcsc,
        x: &SpVec<T>,
        mut mul: impl FnMut(Vidx, &T) -> U,
        mut combine: impl FnMut(&mut U, U),
        y: &mut SpVec<U>,
    ) -> u64 {
        self.note_call(a.nrows(), 0);
        self.spa.begin(a.nrows());
        let mut flops = 0u64;

        let cols = a.nonzero_cols();
        let xs = x.entries();
        let (mut p, mut q) = (0usize, 0usize);
        while p < xs.len() && q < cols.len() {
            let (j, xj) = (&xs[p].0, &xs[p].1);
            match cols[q].cmp(j) {
                std::cmp::Ordering::Less => q += 1,
                std::cmp::Ordering::Greater => p += 1,
                std::cmp::Ordering::Equal => {
                    let (rows, _) = a.nth_col(q);
                    if !rows.is_empty() {
                        let colv = mul(*j, xj);
                        flops += rows.len() as u64;
                        for &i in rows {
                            self.spa.accum_monoid(i, colv, &mut combine);
                        }
                    }
                    p += 1;
                    q += 1;
                }
            }
        }

        y.reset(a.nrows());
        self.spa.drain_into(y);
        flops
    }

    /// Opens a fused product: sizes the per-logical-block volume counters
    /// and the owner-stamp array, and begins a fresh SPA generation.
    fn fused_begin(&mut self, nrows: usize, pr: usize, pc: usize) {
        self.note_call(nrows, 0);
        let nb = pr * pc;
        self.fsend.clear();
        self.fsend.resize(nb, 0);
        self.fflops.clear();
        self.fflops.resize(nb, 0);
        self.frecv.clear();
        self.frecv.resize(nb, 0);
        if self.owner.len() < nrows {
            self.owner.resize(nrows, 0);
        }
        self.spa.begin(nrows);
    }

    /// Reduces the per-logical-block counters to the two bottleneck volumes
    /// the cost model charges.
    fn fused_volumes(&self, pr: usize, pc: usize) -> FusedVolumes {
        let mut max_flops = 0u64;
        let mut fold_bottleneck = 0u64;
        for bi in 0..pr {
            let mut send = 0u64;
            let mut recv = 0u64;
            for bj in 0..pc {
                let blk = bi * pc + bj;
                max_flops = max_flops.max(self.fflops[blk]);
                send = send.max(2 * self.fsend[blk]);
                recv = recv.max(self.frecv[blk]);
            }
            fold_bottleneck = fold_bottleneck.max(send.max(recv));
        }
        FusedVolumes { max_flops, fold_bottleneck }
    }

    /// Fused single-block SpMSpV for the shared-memory backend: one physical
    /// product over the whole matrix (`a` spans all rows and columns) whose
    /// SPA serves as the communication arena of a **logical** `pr × pc`
    /// grid. Every "remote contribution" a distributed execution would ship
    /// through expand/fold buffers is instead written directly into the
    /// destination's SPA region — zero copies, zero per-message allocation —
    /// while the α–β–γ volumes of the logical execution are counted in-line:
    ///
    /// * `fflops[bi][bj]` — edges traversed inside logical block `(bi,bj)`
    ///   (the row/column block cursors advance monotonically with the sorted
    ///   traversal, so no per-edge owner arithmetic is needed);
    /// * `fsend[bi][bj]` — distinct `(row, bj)` contributions, i.e. the
    ///   nnz of the partial product block `(bi,bj)` would send into the
    ///   fold (counted via the owner-stamp array: a row's visits arrive in
    ///   ascending `bj`, so each transition is one distinct pair);
    /// * `frecv[bi][dest]` — pre-merge pairs received per fold destination
    ///   (`recv_owner(bi, local_row)` is the logical rank that owns the row
    ///   in the balanced fold distribution).
    ///
    /// Results are bit-identical to the serial kernel (candidates fold per
    /// row in ascending global column order), hence — by grid independence —
    /// to `DistMatrix::spmspv_with_plan` on any grid, and the returned
    /// [`FusedVolumes`] match that execution's charges exactly.
    #[allow(clippy::too_many_arguments)] // mirrors the distributed kernel's surface
    pub fn spmspv_fused_into<T>(
        &mut self,
        a: &Dcsc,
        x: &SpVec<T>,
        row_off: &[usize],
        col_off: &[usize],
        mut recv_owner: impl FnMut(usize, usize) -> usize,
        mut mul: impl FnMut(Vidx, &T) -> U,
        mut take_incoming: impl FnMut(&U, &U) -> bool,
        y: &mut SpVec<U>,
    ) -> FusedVolumes {
        let (pr, pc) = (row_off.len() - 1, col_off.len() - 1);
        self.fused_begin(a.nrows(), pr, pc);

        let cols = a.nonzero_cols();
        let xs = x.entries();
        let (mut p, mut q) = (0usize, 0usize);
        let mut bj = 0usize; // logical column block: ascending with j
        while p < xs.len() && q < cols.len() {
            match cols[q].cmp(&xs[p].0) {
                std::cmp::Ordering::Less => q += 1,
                std::cmp::Ordering::Greater => p += 1,
                std::cmp::Ordering::Equal => {
                    let (rows, _) = a.nth_col(q);
                    if !rows.is_empty() {
                        let j = xs[p].0;
                        while (j as usize) >= col_off[bj + 1] {
                            bj += 1;
                        }
                        let colv = mul(j, &xs[p].1);
                        let epoch = self.spa.epoch;
                        let mut bi = 0usize; // rows ascend within a column
                        for &i in rows {
                            let iu = i as usize;
                            while iu >= row_off[bi + 1] {
                                bi += 1;
                            }
                            let blk = bi * pc + bj;
                            self.fflops[blk] += 1;
                            if self.spa.stamp[iu] != epoch {
                                self.spa.stamp[iu] = epoch;
                                self.spa.vals[iu].write(colv);
                                self.spa.touched.push(i);
                                self.owner[iu] = bj as u32;
                                self.fsend[blk] += 1;
                                self.frecv[bi * pc + recv_owner(bi, iu - row_off[bi])] += 2;
                            } else {
                                if self.owner[iu] != bj as u32 {
                                    // First touch from this logical block:
                                    // one more pre-merge fold pair.
                                    self.owner[iu] = bj as u32;
                                    self.fsend[blk] += 1;
                                    self.frecv[bi * pc + recv_owner(bi, iu - row_off[bi])] += 2;
                                }
                                // SAFETY: stamped ⇒ initialized this epoch.
                                let acc = unsafe { self.spa.vals[iu].assume_init_mut() };
                                if take_incoming(acc, &colv) {
                                    *acc = colv;
                                }
                            }
                        }
                    }
                    p += 1;
                    q += 1;
                }
            }
        }

        y.reset(a.nrows());
        self.spa.drain_into(y);
        self.fused_volumes(pr, pc)
    }

    /// Monoid counterpart of [`SpmvWorkspace::spmspv_fused_into`] (same
    /// arena/accounting scheme, commutative-associative `combine` fold).
    #[allow(clippy::too_many_arguments)] // mirrors the distributed kernel's surface
    pub fn spmspv_monoid_fused_into<T>(
        &mut self,
        a: &Dcsc,
        x: &SpVec<T>,
        row_off: &[usize],
        col_off: &[usize],
        mut recv_owner: impl FnMut(usize, usize) -> usize,
        mut mul: impl FnMut(Vidx, &T) -> U,
        mut combine: impl FnMut(&mut U, U),
        y: &mut SpVec<U>,
    ) -> FusedVolumes {
        let (pr, pc) = (row_off.len() - 1, col_off.len() - 1);
        self.fused_begin(a.nrows(), pr, pc);

        let cols = a.nonzero_cols();
        let xs = x.entries();
        let (mut p, mut q) = (0usize, 0usize);
        let mut bj = 0usize;
        while p < xs.len() && q < cols.len() {
            match cols[q].cmp(&xs[p].0) {
                std::cmp::Ordering::Less => q += 1,
                std::cmp::Ordering::Greater => p += 1,
                std::cmp::Ordering::Equal => {
                    let (rows, _) = a.nth_col(q);
                    if !rows.is_empty() {
                        let j = xs[p].0;
                        while (j as usize) >= col_off[bj + 1] {
                            bj += 1;
                        }
                        let colv = mul(j, &xs[p].1);
                        let epoch = self.spa.epoch;
                        let mut bi = 0usize;
                        for &i in rows {
                            let iu = i as usize;
                            while iu >= row_off[bi + 1] {
                                bi += 1;
                            }
                            let blk = bi * pc + bj;
                            self.fflops[blk] += 1;
                            if self.spa.stamp[iu] != epoch {
                                self.spa.stamp[iu] = epoch;
                                self.spa.vals[iu].write(colv);
                                self.spa.touched.push(i);
                                self.owner[iu] = bj as u32;
                                self.fsend[blk] += 1;
                                self.frecv[bi * pc + recv_owner(bi, iu - row_off[bi])] += 2;
                            } else {
                                if self.owner[iu] != bj as u32 {
                                    self.owner[iu] = bj as u32;
                                    self.fsend[blk] += 1;
                                    self.frecv[bi * pc + recv_owner(bi, iu - row_off[bi])] += 2;
                                }
                                // SAFETY: stamped ⇒ initialized this epoch.
                                let acc = unsafe { self.spa.vals[iu].assume_init_mut() };
                                combine(acc, colv);
                            }
                        }
                    }
                    p += 1;
                    q += 1;
                }
            }
        }

        y.reset(a.nrows());
        self.spa.drain_into(y);
        self.fused_volumes(pr, pc)
    }

    /// Intra-block thread-parallel DCSC SpMSpV: the matched frontier columns
    /// are split into up to `threads` contiguous chunks (balanced by
    /// traversed-edge count), each chunk accumulates into its own stamped
    /// SPA on its own thread, and the per-chunk results merge in ascending
    /// chunk order through an allocation-free k-way merge.
    ///
    /// Output and `flops` are **bit-identical** to
    /// [`SpmvWorkspace::spmspv_into`] (see the module docs for the combiner
    /// associativity contract). `threads <= 1` — or a frontier too small to
    /// be worth splitting — falls through to the serial path.
    pub fn spmspv_parallel_into<T>(
        &mut self,
        a: &Dcsc,
        x: &SpVec<T>,
        threads: usize,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
        y: &mut SpVec<U>,
    ) -> u64
    where
        T: Sync,
        U: Send,
    {
        // Merge-join once, into the reusable pair list.
        self.pairs.clear();
        let cols = a.nonzero_cols();
        let xs = x.entries();
        let (mut p, mut q) = (0usize, 0usize);
        let mut total_edges = 0u64;
        while p < xs.len() && q < cols.len() {
            match cols[q].cmp(&xs[p].0) {
                std::cmp::Ordering::Less => q += 1,
                std::cmp::Ordering::Greater => p += 1,
                std::cmp::Ordering::Equal => {
                    let (rows, _) = a.nth_col(q);
                    if !rows.is_empty() {
                        self.pairs.push((p as u32, q as u32));
                        total_edges += rows.len() as u64;
                    }
                    p += 1;
                    q += 1;
                }
            }
        }

        /// Below this many traversed edges, thread spawn costs more than it
        /// saves; run serial.
        const MIN_PARALLEL_EDGES: u64 = 4096;
        let chunks = threads
            .min(self.pairs.len())
            .min((total_edges / MIN_PARALLEL_EDGES.max(1)).max(1) as usize);
        if chunks <= 1 {
            // Reuse the already-computed merge-join: run the serial SPA over
            // the pair list directly.
            self.note_call(a.nrows(), 0);
            self.spa.begin(a.nrows());
            let mut flops = 0u64;
            for &(p, q) in &self.pairs {
                let (j, xj) = (&xs[p as usize].0, &xs[p as usize].1);
                let (rows, _) = a.nth_col(q as usize);
                let colv = mul(*j, xj);
                flops += rows.len() as u64;
                for &i in rows {
                    let mut take = |acc: &U, inc: &U| take_incoming(acc, inc);
                    self.spa.accum_select(i, colv, &mut take);
                }
            }
            y.reset(a.nrows());
            self.spa.drain_into(y);
            return flops;
        }

        // Chunk boundaries balanced by edge count (deterministic in the
        // input, independent of the worker count actually scheduled).
        self.bounds.clear();
        self.bounds.push(0);
        let per_chunk = total_edges.div_ceil(chunks as u64);
        let mut acc_edges = 0u64;
        for (k, &(_, q)) in self.pairs.iter().enumerate() {
            let deg = {
                let (rows, _) = a.nth_col(q as usize);
                rows.len() as u64
            };
            acc_edges += deg;
            if acc_edges >= per_chunk && self.bounds.len() < chunks && k + 1 < self.pairs.len() {
                self.bounds.push(k + 1);
                acc_edges = 0;
            }
        }
        self.bounds.push(self.pairs.len());
        let used = self.bounds.len() - 1;

        if self.chunk_spas.len() < used {
            self.chunk_spas.resize_with(used, SpaBuf::new);
        }
        self.note_call(a.nrows(), used);

        // Parallel phase: one stamped SPA per chunk, ascending columns
        // within each chunk.
        let pairs = &self.pairs;
        let bounds = &self.bounds;
        let per_chunk_flops =
            mcm_par::par_for_each_mut(&mut self.chunk_spas[..used], used, |c, spa| {
                spa.begin(a.nrows());
                let mut flops = 0u64;
                for &(p, q) in &pairs[bounds[c]..bounds[c + 1]] {
                    let (j, xj) = (&xs[p as usize].0, &xs[p as usize].1);
                    let (rows, _) = a.nth_col(q as usize);
                    let colv = mul(*j, xj);
                    flops += rows.len() as u64;
                    for &i in rows {
                        let mut take = |acc: &U, inc: &U| take_incoming(acc, inc);
                        spa.accum_select(i, colv, &mut take);
                    }
                }
                spa.touched.sort_unstable();
                flops
            });
        let flops: u64 = per_chunk_flops.into_iter().sum();

        // Deterministic fold: k-way merge of the per-chunk sorted rows,
        // ties resolved toward the lower chunk (= earlier columns), values
        // folded left-to-right with the combiner — exactly the serial
        // arrival order, re-parenthesized per chunk.
        y.reset(a.nrows());
        self.heads.clear();
        self.heads.resize(used, 0);
        loop {
            let mut best: Option<(Vidx, usize)> = None;
            for c in 0..used {
                let spa = &self.chunk_spas[c];
                if self.heads[c] < spa.touched.len() {
                    let r = spa.touched[self.heads[c]];
                    if best.is_none_or(|(br, _)| r < br) {
                        best = Some((r, c));
                    }
                }
            }
            let Some((r, c)) = best else { break };
            self.heads[c] += 1;
            let v = self.chunk_spas[c].take(r);
            match y.entries_mut().last_mut() {
                Some((last, acc)) if *last == r => {
                    if take_incoming(acc, &v) {
                        *acc = v;
                    }
                }
                _ => y.push(r, v),
            }
        }
        flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmspv;
    use crate::Triples;

    fn fig2_matrix() -> Dcsc {
        Dcsc::from_triples(&Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        ))
    }

    #[test]
    fn into_matches_seed_kernel() {
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        let seed = spmspv(&a, &x, |j, &(_, r)| (j, r), |acc: &(Vidx, Vidx), inc| inc.0 < acc.0);
        let mut ws = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        let flops = ws.spmspv_into(&a, &x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0, &mut y);
        assert_eq!(y, seed.y);
        assert_eq!(flops, seed.flops);
    }

    #[test]
    fn epoch_bump_does_not_leak_state() {
        let a = fig2_matrix();
        let mut ws: SpmvWorkspace<Vidx> = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        // First call touches rows 0..4.
        let full = SpVec::from_pairs(5, vec![(0, 0u32), (1, 1), (3, 3), (4, 4)]);
        ws.spmspv_into(&a, &full, |j, _| j, |acc, inc| inc < acc, &mut y);
        assert_eq!(y.nnz(), 4);
        // Second call with a tiny frontier: rows from call 1 must be gone.
        let tiny = SpVec::from_pairs(5, vec![(1, 1u32)]);
        ws.spmspv_into(&a, &tiny, |j, _| j, |acc, inc| inc < acc, &mut y);
        assert_eq!(y.entries(), &[(1, 1)]);
    }

    #[test]
    fn parallel_matches_serial_on_fig2() {
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        let seed = spmspv(&a, &x, |j, &(_, r)| (j, r), |acc: &(Vidx, Vidx), inc| inc.0 < acc.0);
        let mut ws = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        let flops = ws.spmspv_parallel_into(
            &a,
            &x,
            4,
            |j, &(_, r)| (j, r),
            |acc, inc| inc.0 < acc.0,
            &mut y,
        );
        assert_eq!(y, seed.y);
        assert_eq!(flops, seed.flops);
    }

    #[test]
    fn reuse_is_counted() {
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, 0u32), (4, 4)]);
        let mut ws: SpmvWorkspace<Vidx> = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        for _ in 0..3 {
            ws.spmspv_into(&a, &x, |j, _| j, |acc, inc| inc < acc, &mut y);
        }
        assert_eq!(ws.stats.calls, 3);
        assert_eq!(ws.stats.reuse_hits, 2); // first call is the cold miss
        assert!(ws.stats.bytes_reused > 0);
    }

    #[test]
    fn dense_drain_matches_sparse_drain() {
        // A matrix whose product touches every row: the dense-sweep drain
        // path must produce the identical (ascending) output the sort path
        // produces on a tiny frontier.
        let n = 64usize;
        let mut edges = Vec::new();
        for j in 0..n as Vidx {
            for k in 0..4u32 {
                edges.push(((j * 7 + k * 13) % n as Vidx, j));
            }
        }
        let a = Dcsc::from_triples(&Triples::from_edges(n, n, edges));
        let full: SpVec<Vidx> = SpVec::from_pairs(n, (0..n as Vidx).map(|j| (j, j)).collect());
        let seed = spmspv(&a, &full, |j, _| j, |acc: &Vidx, inc| inc < acc);
        let mut ws = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        let flops = ws.spmspv_into(&a, &full, |j, _| j, |acc, inc| inc < acc, &mut y);
        assert_eq!(y, seed.y);
        assert_eq!(flops, seed.flops);
        assert!(8 * y.nnz() >= n, "test must exercise the dense-sweep drain");
    }

    #[test]
    fn fused_matches_serial_and_counts_single_block_volumes() {
        let a = fig2_matrix();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        let seed = spmspv(&a, &x, |j, &(_, r)| (j, r), |acc: &(Vidx, Vidx), inc| inc.0 < acc.0);
        let mut ws = SpmvWorkspace::new();
        let mut y = SpVec::new(0);
        // Logical 1×1: flops = serial flops, fold send = 2 · nnz(y).
        let vols = ws.spmspv_fused_into(
            &a,
            &x,
            &[0, 4],
            &[0, 5],
            |_, _| 0,
            |j, &(_, r)| (j, r),
            |acc, inc| inc.0 < acc.0,
            &mut y,
        );
        assert_eq!(y, seed.y);
        assert_eq!(vols.max_flops, seed.flops);
        assert_eq!(vols.fold_bottleneck, 2 * seed.y.nnz() as u64);
    }
}
