//! Coordinate-format (COO) staging area for building sparse matrices.
//!
//! Generators and I/O produce a [`Triples`] list, which is then sorted,
//! deduplicated, and converted into [`Csc`](crate::Csc) /
//! [`Dcsc`](crate::Dcsc) (or sliced into 2D blocks by
//! `mcm-bsp::DistMatrix`). Matching only needs the *pattern* of the matrix,
//! so a triple is just an `(i, j)` pair.

use crate::{Csc, Vidx};

/// A pattern-only coordinate list describing an `nrows × ncols` binary
/// sparse matrix (equivalently, the edge list of a bipartite graph with
/// `nrows` row vertices and `ncols` column vertices).
///
/// # Example
///
/// ```
/// use mcm_sparse::Triples;
///
/// let mut t = Triples::new(2, 3);
/// t.push(0, 1);
/// t.push(1, 2);
/// t.push(0, 1); // duplicates are fine until sort_dedup
/// t.sort_dedup();
/// assert_eq!(t.len(), 2);
/// let a = t.to_csc();
/// assert!(a.contains(0, 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Triples {
    nrows: usize,
    ncols: usize,
    /// `(row, col)` coordinates; may contain duplicates until
    /// [`Triples::sort_dedup`] is called.
    entries: Vec<(Vidx, Vidx)>,
}

impl Triples {
    /// Creates an empty triple list for an `nrows × ncols` matrix.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `Vidx::MAX - 1` (the top value is
    /// reserved for the [`NIL`](crate::NIL) sentinel).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows < Vidx::MAX as usize && ncols < Vidx::MAX as usize,
            "matrix dimensions must fit in Vidx with room for the NIL sentinel"
        );
        Self { nrows, ncols, entries: Vec::new() }
    }

    /// Creates a triple list with pre-reserved capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut t = Self::new(nrows, ncols);
        t.entries.reserve(cap);
        t
    }

    /// Builds directly from a list of edges.
    pub fn from_edges(nrows: usize, ncols: usize, edges: Vec<(Vidx, Vidx)>) -> Self {
        let mut t = Self::new(nrows, ncols);
        for &(i, j) in &edges {
            debug_assert!((i as usize) < nrows && (j as usize) < ncols);
        }
        t.entries = edges;
        t
    }

    /// Number of row vertices (matrix rows).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of column vertices (matrix columns).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Current number of stored coordinates (may include duplicates).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no coordinates are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends the edge `(row, col)`.
    ///
    /// # Panics
    /// Panics (in debug builds) when the coordinate is out of bounds.
    #[inline]
    pub fn push(&mut self, row: Vidx, col: Vidx) {
        debug_assert!(
            (row as usize) < self.nrows && (col as usize) < self.ncols,
            "triple ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col));
    }

    /// Read-only view of the coordinates.
    #[inline]
    pub fn entries(&self) -> &[(Vidx, Vidx)] {
        &self.entries
    }

    /// Sorts coordinates column-major (by `col`, then `row`) and removes
    /// duplicate edges. RMAT generators in particular emit duplicates; the
    /// paper's generators "have 32 nonzeros per row and column *on average*"
    /// after this kind of deduplication.
    pub fn sort_dedup(&mut self) {
        self.entries.sort_unstable_by_key(|&(i, j)| (j, i));
        self.entries.dedup();
    }

    /// Converts to compressed sparse columns. Sorts and deduplicates first.
    pub fn to_csc(&self) -> Csc {
        let mut sorted = self.clone();
        sorted.sort_dedup();
        Csc::from_sorted_triples(&sorted)
    }

    /// Transposes in place: every `(i, j)` becomes `(j, i)` and the
    /// dimensions swap. Cheap by design — the MCM algorithm only ever needs
    /// `A` (R→C exploration runs over `Aᵀ`, which we build once).
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.nrows, &mut self.ncols);
        for e in &mut self.entries {
            *e = (e.1, e.0);
        }
    }

    /// Returns a transposed copy.
    pub fn transposed(&self) -> Self {
        let mut t = self.clone();
        t.transpose();
        t
    }

    /// Splits the coordinates into a `pr × pc` grid of blocks (row-major
    /// order of blocks) using block distribution: block `(bi, bj)` owns rows
    /// `[row_offset(bi), row_offset(bi+1))` and the analogous column range.
    ///
    /// Offsets follow CombBLAS: the first `nrows mod pr` row blocks get one
    /// extra row (balanced block distribution), same for columns. Returned
    /// triples use *local* (block-relative) coordinates.
    pub fn split_blocks(&self, pr: usize, pc: usize) -> Vec<Triples> {
        assert!(pr > 0 && pc > 0);
        let row_off = block_offsets(self.nrows, pr);
        let col_off = block_offsets(self.ncols, pc);
        let mut blocks: Vec<Triples> = (0..pr * pc)
            .map(|b| {
                let (bi, bj) = (b / pc, b % pc);
                Triples::new(row_off[bi + 1] - row_off[bi], col_off[bj + 1] - col_off[bj])
            })
            .collect();
        for &(i, j) in &self.entries {
            let bi = block_owner(&row_off, i as usize);
            let bj = block_owner(&col_off, j as usize);
            let li = (i as usize - row_off[bi]) as Vidx;
            let lj = (j as usize - col_off[bj]) as Vidx;
            blocks[bi * pc + bj].push(li, lj);
        }
        blocks
    }
}

/// Boundaries of a balanced block distribution of `n` items over `parts`
/// parts: `offsets[k]..offsets[k+1]` is part `k`'s range; the first
/// `n % parts` parts are one larger.
pub fn block_offsets(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut off = Vec::with_capacity(parts + 1);
    let mut acc = 0usize;
    off.push(0);
    for k in 0..parts {
        acc += base + usize::from(k < extra);
        off.push(acc);
    }
    off
}

/// Which part of a balanced block distribution owns global index `idx`.
///
/// `offsets` must come from [`block_offsets`]; runs in O(1) by exploiting the
/// balanced structure, falling back to binary search only at the boundary.
#[inline]
pub fn block_owner(offsets: &[usize], idx: usize) -> usize {
    debug_assert!(idx < *offsets.last().unwrap());
    // Balanced distribution: part sizes differ by at most one, so the owner
    // is within one of idx / ceil(n/parts); a short local scan fixes it up.
    let parts = offsets.len() - 1;
    let n = offsets[parts];
    let guess = (idx * parts).checked_div(n).unwrap_or(0).min(parts - 1);
    let mut k = guess;
    while idx < offsets[k] {
        k -= 1;
    }
    while idx >= offsets[k + 1] {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut t = Triples::new(3, 4);
        assert!(t.is_empty());
        t.push(0, 0);
        t.push(2, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries(), &[(0, 0), (2, 3)]);
    }

    #[test]
    fn sort_dedup_removes_duplicates_and_orders_column_major() {
        let mut t = Triples::from_edges(3, 3, vec![(2, 1), (0, 0), (2, 1), (1, 0), (0, 2)]);
        t.sort_dedup();
        assert_eq!(t.entries(), &[(0, 0), (1, 0), (2, 1), (0, 2)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Triples::from_edges(2, 3, vec![(0, 2), (1, 0)]);
        let tt = t.transposed();
        assert_eq!(tt.nrows(), 3);
        assert_eq!(tt.ncols(), 2);
        assert_eq!(tt.entries(), &[(2, 0), (0, 1)]);
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn block_offsets_balanced() {
        assert_eq!(block_offsets(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(block_offsets(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(block_offsets(2, 4), vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn block_owner_agrees_with_linear_scan() {
        for (n, parts) in [(10usize, 3usize), (9, 3), (7, 4), (100, 7), (5, 5)] {
            let off = block_offsets(n, parts);
            for idx in 0..n {
                let expect = (0..parts).find(|&k| idx >= off[k] && idx < off[k + 1]).unwrap();
                assert_eq!(block_owner(&off, idx), expect, "n={n} parts={parts} idx={idx}");
            }
        }
    }

    #[test]
    fn split_blocks_partitions_all_entries() {
        let t = Triples::from_edges(4, 6, vec![(0, 0), (3, 5), (1, 2), (2, 3), (0, 5), (3, 0)]);
        let blocks = t.split_blocks(2, 3);
        assert_eq!(blocks.len(), 6);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, t.len());
        // block (0,0): rows 0..2, cols 0..2 → contains (0,0)
        assert_eq!(blocks[0].entries(), &[(0, 0)]);
        // block (1,2): rows 2..4, cols 4..6 → contains (3,5) as local (1,1)
        assert_eq!(blocks[5].entries(), &[(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn dimension_overflow_panics() {
        let _ = Triples::new(Vidx::MAX as usize, 1);
    }
}
