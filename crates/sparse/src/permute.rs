//! Random permutations for load balancing.
//!
//! §IV-A: *"To balance load across processors, we randomly permute the input
//! matrix A before running the matching algorithms."* The permutation is
//! also how the motivating application consumes a matching: a perfect
//! matching of the bipartite graph of a square sparse matrix yields a row
//! permutation placing nonzeros on the whole diagonal (see the
//! `solver_preprocess` example).
//!
//! We implement Fisher–Yates over a tiny self-contained SplitMix64 stream so
//! permutations are identical across platforms and runs.

use crate::{Triples, Vidx};

/// Deterministic 64-bit SplitMix generator (public-domain constants).
///
/// Kept deliberately minimal — `rand` stays confined to tests/property
/// checks so that algorithmic randomness (permutation, randomized semirings,
/// generators) is bit-stable everywhere.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 raw bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift (bound > 0).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A permutation `perm` of `0..n`: `perm[old] = new`.
///
/// # Example
///
/// ```
/// use mcm_sparse::permute::Permutation;
///
/// let p = Permutation::random(100, 42);
/// let inv = p.inverse();
/// assert_eq!(inv.apply(p.apply(17)), 17);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Vidx>,
}

impl Permutation {
    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Self { forward: (0..n as Vidx).collect() }
    }

    /// A uniformly random permutation of length `n` (Fisher–Yates).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut forward: Vec<Vidx> = (0..n as Vidx).collect();
        for k in (1..n).rev() {
            let j = rng.below(k as u64 + 1) as usize;
            forward.swap(k, j);
        }
        Self { forward }
    }

    /// Wraps an explicit mapping `old → new`.
    ///
    /// # Panics
    /// Panics when `forward` is not a permutation of `0..len`.
    pub fn from_forward(forward: Vec<Vidx>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            assert!((v as usize) < n && !seen[v as usize], "not a permutation");
            seen[v as usize] = true;
        }
        Self { forward }
    }

    /// Length of the permuted domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Image of `old`.
    #[inline]
    pub fn apply(&self, old: Vidx) -> Vidx {
        self.forward[old as usize]
    }

    /// The mapping as a slice (`slice[old] = new`).
    #[inline]
    pub fn as_slice(&self) -> &[Vidx] {
        &self.forward
    }

    /// The inverse permutation (`inv[new] = old`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Vidx; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as Vidx;
        }
        Permutation { forward: inv }
    }
}

/// Applies row/column permutations to a triple list: entry `(i, j)` becomes
/// `(rowp(i), colp(j))`. Pass [`Permutation::identity`] to leave a side
/// untouched.
pub fn permute_triples(t: &Triples, rowp: &Permutation, colp: &Permutation) -> Triples {
    assert_eq!(rowp.len(), t.nrows());
    assert_eq!(colp.len(), t.ncols());
    let edges = t.entries().iter().map(|&(i, j)| (rowp.apply(i), colp.apply(j))).collect();
    Triples::from_edges(t.nrows(), t.ncols(), edges)
}

/// The row/column permutation pair [`random_relabel`] applies, without
/// materializing the permuted triples — callers that fuse the relabeling
/// into matrix assembly (`DistMatrix::from_triples_mapped`) use this to
/// stay bit-identical with the materializing path.
pub fn relabel_permutations(nrows: usize, ncols: usize, seed: u64) -> (Permutation, Permutation) {
    let rowp = Permutation::random(nrows, seed ^ 0x517C_C1B7_2722_0A95);
    let colp = Permutation::random(ncols, seed ^ 0x71D6_7FFF_EDA6_0000);
    (rowp, colp)
}

/// Symmetric random relabeling of a bipartite graph for load balance: both
/// sides are permuted with independent streams derived from `seed`.
pub fn random_relabel(t: &Triples, seed: u64) -> (Triples, Permutation, Permutation) {
    let (rowp, colp) = relabel_permutations(t.nrows(), t.ncols(), seed);
    (permute_triples(t, &rowp, &colp), rowp, colp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn random_permutation_is_valid() {
        let p = Permutation::random(100, 3);
        let mut seen = [false; 100];
        for old in 0..100u32 {
            let new = p.apply(old) as usize;
            assert!(!seen[new]);
            seen[new] = true;
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::random(57, 11);
        let inv = p.inverse();
        for old in 0..57u32 {
            assert_eq!(inv.apply(p.apply(old)), old);
        }
    }

    #[test]
    fn permute_preserves_structure() {
        let t = Triples::from_edges(3, 3, vec![(0, 0), (1, 1), (2, 2), (0, 2)]);
        let (pt, rowp, colp) = random_relabel(&t, 99);
        assert_eq!(pt.len(), t.len());
        // Undo and compare as sets.
        let undone = permute_triples(&pt, &rowp.inverse(), &colp.inverse());
        let mut a = undone.entries().to_vec();
        let mut b = t.entries().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn from_forward_rejects_non_permutation() {
        Permutation::from_forward(vec![0, 0, 1]);
    }
}
