//! Sparse vectors: sorted `(index, value)` pairs.
//!
//! Frontier sets in the MS-BFS matching algorithm are represented as sparse
//! vectors so that work stays proportional to the frontier size even as it
//! shrinks over iterations (§I of the paper). CombBLAS stores sparse vectors
//! as index/value pair lists; we keep the pairs sorted by index, which makes
//! merging, lookup, and deterministic iteration cheap.

use crate::Vidx;

/// A sparse vector of logical length `len` holding `nnz` explicit
/// `(index, value)` entries, sorted by index with no duplicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpVec<T> {
    len: usize,
    entries: Vec<(Vidx, T)>,
}

impl<T> SpVec<T> {
    /// An empty sparse vector of logical length `len`.
    pub fn new(len: usize) -> Self {
        Self { len, entries: Vec::new() }
    }

    /// Builds from pairs that are already sorted by index and duplicate-free.
    ///
    /// # Panics
    /// Debug-panics when the invariant does not hold or an index is out of
    /// bounds.
    pub fn from_sorted_pairs(len: usize, entries: Vec<(Vidx, T)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "indices must be strictly increasing"
        );
        debug_assert!(entries.last().is_none_or(|&(i, _)| (i as usize) < len));
        Self { len, entries }
    }

    /// Builds from unsorted pairs; sorts by index. On duplicate indices the
    /// *first* occurrence in the input wins (stable sort), matching the
    /// paper's INVERT convention "we keep the first index".
    pub fn from_pairs(len: usize, mut entries: Vec<(Vidx, T)>) -> Self {
        entries.sort_by_key(|&(i, _)| i);
        entries.dedup_by_key(|&mut (i, _)| i);
        Self::from_sorted_pairs(len, entries)
    }

    /// Logical length (`len(x)` in the paper's Table I).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of explicit entries (`nnz(x)` in the paper).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no explicit entries (the `f == φ` test of
    /// Algorithms 1–3).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted `(index, value)` entries.
    #[inline]
    pub fn entries(&self) -> &[(Vidx, T)] {
        &self.entries
    }

    /// Mutable access to the entries; the caller must preserve sortedness.
    #[inline]
    pub fn entries_mut(&mut self) -> &mut [(Vidx, T)] {
        &mut self.entries
    }

    /// Consumes the vector, returning its entries.
    #[inline]
    pub fn into_entries(self) -> Vec<(Vidx, T)> {
        self.entries
    }

    /// The value at index `i`, if explicitly stored. O(log nnz).
    pub fn get(&self, i: Vidx) -> Option<&T> {
        self.entries.binary_search_by_key(&i, |&(idx, _)| idx).ok().map(|k| &self.entries[k].1)
    }

    /// The paper's `IND(x)`: indices of the explicit entries.
    pub fn ind(&self) -> Vec<Vidx> {
        self.entries.iter().map(|&(i, _)| i).collect()
    }

    /// Iterates over `(index, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (Vidx, &T)> {
        self.entries.iter().map(|(i, v)| (*i, v))
    }

    /// Maps values, preserving indices.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> SpVec<U> {
        SpVec { len: self.len, entries: self.entries.iter().map(|(i, v)| (*i, f(v))).collect() }
    }

    /// Keeps only entries whose `(index, value)` satisfies `pred`.
    pub fn filter(&self, mut pred: impl FnMut(Vidx, &T) -> bool) -> SpVec<T>
    where
        T: Clone,
    {
        SpVec {
            len: self.len,
            entries: self.entries.iter().filter(|(i, v)| pred(*i, v)).cloned().collect(),
        }
    }

    /// Appends an entry with index strictly greater than all current ones.
    ///
    /// # Panics
    /// Debug-panics when the ordering invariant would break.
    #[inline]
    pub fn push(&mut self, i: Vidx, v: T) {
        debug_assert!((i as usize) < self.len);
        debug_assert!(self.entries.last().is_none_or(|&(last, _)| last < i));
        self.entries.push((i, v));
    }

    /// Removes all entries, keeping the logical length.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Clears the entries and sets a new logical length, **keeping the
    /// entry allocation** — the reuse primitive of the `spmspv_into`
    /// workspace kernels (`crate::workspace`).
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.entries.clear();
    }

    /// Capacity of the underlying entry buffer. Exposed so steady-state
    /// reuse can be asserted (a workspace kernel must not grow this once
    /// warm).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Pointer identity of the entry buffer (allocation-stability checks in
    /// the zero-allocation regression tests).
    #[inline]
    pub fn as_entries_ptr(&self) -> *const (Vidx, T) {
        self.entries.as_ptr()
    }
}

impl<T: Clone> SpVec<T> {
    /// Densifies into a `Vec<Option<T>>` (test/debug helper).
    pub fn to_dense_options(&self) -> Vec<Option<T>> {
        let mut out = vec![None; self.len];
        for (i, v) in self.iter() {
            out[i as usize] = Some(v.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let x = SpVec::from_pairs(5, vec![(3, 30), (1, 10)]);
        assert_eq!(x.len(), 5);
        assert_eq!(x.nnz(), 2);
        assert_eq!(x.get(1), Some(&10));
        assert_eq!(x.get(3), Some(&30));
        assert_eq!(x.get(0), None);
        assert_eq!(x.ind(), vec![1, 3]);
    }

    #[test]
    fn from_pairs_keeps_first_duplicate() {
        let x = SpVec::from_pairs(4, vec![(2, 'a'), (2, 'b'), (1, 'c')]);
        assert_eq!(x.get(2), Some(&'a'));
        assert_eq!(x.nnz(), 2);
    }

    #[test]
    fn map_and_filter() {
        let x = SpVec::from_pairs(5, vec![(0, 1), (2, 2), (4, 3)]);
        let y = x.map(|v| v * 10);
        assert_eq!(y.entries(), &[(0, 10), (2, 20), (4, 30)]);
        let z = x.filter(|_, &v| v % 2 == 1);
        assert_eq!(z.entries(), &[(0, 1), (4, 3)]);
        assert_eq!(z.len(), 5);
    }

    #[test]
    fn push_in_order() {
        let mut x: SpVec<u8> = SpVec::new(10);
        x.push(1, 9);
        x.push(7, 8);
        assert_eq!(x.entries(), &[(1, 9), (7, 8)]);
        x.clear();
        assert!(x.is_empty());
        assert_eq!(x.len(), 10);
    }

    #[test]
    fn to_dense_options() {
        let x = SpVec::from_pairs(3, vec![(1, 5u8)]);
        assert_eq!(x.to_dense_options(), vec![None, Some(5), None]);
    }
}
