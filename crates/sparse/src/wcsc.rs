//! Weighted CSC: the pattern plus per-nonzero values.
//!
//! The structural matching this crate is built for is step one of solver
//! preprocessing; step two (Duff & Koster's MC64, the paper's citation [2])
//! matches on *numerical* weights to bring large entries onto the diagonal.
//! [`WCsc`] carries the values needed for that weighted matching
//! (`mcm-core::weighted`) while reusing the CSC pattern machinery.

use crate::{Csc, Triples, Vidx};

/// A sparse matrix in CSC layout with an `f64` value per nonzero.
///
/// # Example
///
/// ```
/// use mcm_sparse::WCsc;
///
/// let a = WCsc::from_weighted_triples(2, 2, vec![(0, 0, 5.0), (1, 0, 2.0), (1, 1, 3.0)]);
/// assert_eq!(a.weight(1, 0), Some(2.0));
/// assert_eq!(a.weight(0, 1), None);
/// let col0: Vec<_> = a.col_entries(0).collect();
/// assert_eq!(col0, vec![(0, 5.0), (1, 2.0)]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WCsc {
    pattern: Csc,
    /// Values aligned with `pattern.rowind()` (column-major, row-sorted).
    values: Vec<f64>,
}

impl WCsc {
    /// Builds from `(row, col, weight)` triples. Duplicate coordinates keep
    /// the **largest** weight (the natural choice for matching).
    pub fn from_weighted_triples(
        nrows: usize,
        ncols: usize,
        mut entries: Vec<(Vidx, Vidx, f64)>,
    ) -> Self {
        // Column-major sort; ties on coordinates keep the max weight.
        entries.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)).then(b.2.total_cmp(&a.2)));
        entries.dedup_by_key(|&mut (i, j, _)| (i, j));
        let pattern = Csc::from_sorted_triples(&Triples::from_edges(
            nrows,
            ncols,
            entries.iter().map(|&(i, j, _)| (i, j)).collect(),
        ));
        let values = entries.into_iter().map(|(_, _, w)| w).collect();
        Self { pattern, values }
    }

    /// Builds from an already-constructed pattern and values aligned with
    /// `pattern.rowind()`. This is the decode path for storage formats
    /// (MCSB in `mcm-store`) whose payload is exactly these arrays — the
    /// data is sorted and deduplicated on disk, so re-sorting through
    /// [`WCsc::from_weighted_triples`] would be a wasted O(nnz log nnz).
    pub fn from_sorted_parts(pattern: Csc, values: Vec<f64>) -> Self {
        assert_eq!(
            pattern.nnz(),
            values.len(),
            "values must align one-to-one with the pattern's nonzeros"
        );
        Self { pattern, values }
    }

    /// The structural pattern.
    #[inline]
    pub fn pattern(&self) -> &Csc {
        &self.pattern
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.pattern.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.pattern.ncols()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(row, weight)` pairs of column `j`, rows ascending.
    pub fn col_entries(&self, j: usize) -> impl Iterator<Item = (Vidx, f64)> + '_ {
        let lo = self.pattern.colptr()[j];
        let hi = self.pattern.colptr()[j + 1];
        self.pattern.rowind()[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&i, &w)| (i, w))
    }

    /// The weight of entry `(i, j)` when present.
    pub fn weight(&self, i: Vidx, j: usize) -> Option<f64> {
        let lo = self.pattern.colptr()[j];
        let hi = self.pattern.colptr()[j + 1];
        self.pattern.rowind()[lo..hi].binary_search(&i).ok().map(|k| self.values[lo + k])
    }

    /// The values slice, aligned with `pattern().rowind()`.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Back to `(row, col, weight)` triples, column-major.
    pub fn to_weighted_triples(&self) -> Vec<(Vidx, Vidx, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols() {
            for (i, w) in self.col_entries(j) {
                out.push((i, j as Vidx, w));
            }
        }
        out
    }

    /// The weighted transpose: entry `(i, j, w)` becomes `(j, i, w)`.
    ///
    /// The weighted analogue of [`Triples::transposed`]; the dynamic weighted
    /// engine keeps both orientations so price resets can walk a row's
    /// column neighbourhood.
    pub fn transposed(&self) -> WCsc {
        let flipped = self.to_weighted_triples().into_iter().map(|(i, j, w)| (j, i, w)).collect();
        WCsc::from_weighted_triples(self.ncols(), self.nrows(), flipped)
    }

    /// Largest absolute weight (0 for an empty matrix).
    pub fn max_abs_weight(&self) -> f64 {
        self.values.iter().fold(0.0, |m, &w| m.max(w.abs()))
    }

    /// Applies `f` to every weight (e.g. `|w| w.abs().ln()` for MC64-style
    /// product objectives).
    pub fn map_weights(&self, f: impl Fn(f64) -> f64) -> WCsc {
        WCsc { pattern: self.pattern.clone(), values: self.values.iter().map(|&w| f(w)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let a = WCsc::from_weighted_triples(3, 3, vec![(2, 0, 1.0), (0, 0, 4.0), (1, 2, -2.0)]);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.weight(0, 0), Some(4.0));
        assert_eq!(a.weight(2, 0), Some(1.0));
        assert_eq!(a.weight(1, 2), Some(-2.0));
        assert_eq!(a.weight(1, 1), None);
        assert_eq!(a.max_abs_weight(), 4.0);
    }

    #[test]
    fn duplicates_keep_max_weight() {
        let a = WCsc::from_weighted_triples(2, 2, vec![(0, 0, 1.0), (0, 0, 9.0), (0, 0, 3.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.weight(0, 0), Some(9.0));
    }

    #[test]
    fn map_weights_transforms() {
        let a = WCsc::from_weighted_triples(1, 1, vec![(0, 0, -8.0)]);
        let b = a.map_weights(|w| w.abs());
        assert_eq!(b.weight(0, 0), Some(8.0));
        assert_eq!(b.pattern(), a.pattern());
    }

    #[test]
    fn transpose_round_trips() {
        let a = WCsc::from_weighted_triples(
            3,
            4,
            vec![(2, 0, 1.5), (0, 1, 4.0), (1, 3, -2.0), (2, 3, 7.0)],
        );
        let t = a.transposed();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.weight(0, 2), Some(1.5));
        assert_eq!(t.weight(3, 2), Some(7.0));
        assert_eq!(t.weight(1, 0), Some(4.0));
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn weighted_triples_round_trip() {
        let entries = vec![(0, 0, 2.0), (1, 0, 3.0), (0, 1, -1.0)];
        let a = WCsc::from_weighted_triples(2, 2, entries.clone());
        assert_eq!(a.to_weighted_triples(), entries);
    }

    #[test]
    fn col_entries_sorted_by_row() {
        let a = WCsc::from_weighted_triples(4, 1, vec![(3, 0, 3.0), (1, 0, 1.0), (2, 0, 2.0)]);
        let rows: Vec<Vidx> = a.col_entries(0).map(|(i, _)| i).collect();
        assert_eq!(rows, vec![1, 2, 3]);
    }
}
