//! Borrowed CSC views: the zero-copy bridge from storage to the solvers.
//!
//! The MCSB on-disk format (`mcm-store`) lays out a graph as exactly the CSC
//! arrays — a `u64` column-pointer array followed by a `u32` row-index array —
//! so an mmap'ed file *is* a valid CSC without any decode step. [`CscView`]
//! is the borrowed counterpart of [`Csc`](crate::Csc) that makes this usable:
//! it holds `&[u64]` / `&[Vidx]` slices (pointing into mapped pages, a heap
//! read buffer, or an owned `Csc`'s arrays) and offers the column-access API
//! the matching pipeline needs, without taking ownership and without ever
//! materializing a triple list.
//!
//! `colptr` is `u64` rather than `usize` because the type is dictated by the
//! wire format: MCSB is fixed little-endian 64-bit regardless of the host,
//! and re-encoding to `usize` would force the copy this type exists to avoid.

use crate::{Csc, Vidx};

/// A borrowed pattern-only sparse matrix in CSC layout.
///
/// # Example
///
/// ```
/// use mcm_sparse::CscView;
///
/// // Column 0 holds rows {0, 2}; column 1 is empty; column 2 holds row {1}.
/// let colptr = [0u64, 2, 2, 3];
/// let rowind = [0u32, 2, 1];
/// let v = CscView::new(3, 3, &colptr, &rowind);
/// assert_eq!(v.nnz(), 3);
/// assert_eq!(v.col(0), &[0, 2]);
/// assert!(v.col(1).is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CscView<'a> {
    nrows: usize,
    ncols: usize,
    /// `ncols + 1` monotone offsets into `rowind`.
    colptr: &'a [u64],
    /// Row indices, sorted and deduplicated within each column.
    rowind: &'a [Vidx],
}

impl<'a> CscView<'a> {
    /// Wraps borrowed CSC arrays, checking the structural invariants
    /// (`colptr` has `ncols + 1` monotone entries ending at `rowind.len()`).
    ///
    /// # Panics
    ///
    /// On inconsistent arrays — the storage layer validates untrusted input
    /// *before* constructing a view, so a panic here is a programming error,
    /// not a bad file.
    pub fn new(nrows: usize, ncols: usize, colptr: &'a [u64], rowind: &'a [Vidx]) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr must have ncols + 1 entries");
        assert_eq!(colptr[0], 0, "colptr must start at 0");
        assert_eq!(*colptr.last().unwrap() as usize, rowind.len(), "colptr must end at nnz");
        assert!(colptr.windows(2).all(|w| w[0] <= w[1]), "colptr must be monotone");
        assert!(
            nrows < Vidx::MAX as usize && ncols < Vidx::MAX as usize,
            "dimensions must fit in Vidx"
        );
        Self { nrows, ncols, colptr, rowind }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// The column-pointer array (`ncols + 1` entries, fixed `u64`).
    #[inline]
    pub fn colptr(&self) -> &'a [u64] {
        self.colptr
    }

    /// The concatenated row indices of all columns.
    #[inline]
    pub fn rowind(&self) -> &'a [Vidx] {
        self.rowind
    }

    /// The sorted row indices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [Vidx] {
        &self.rowind[self.colptr[j] as usize..self.colptr[j + 1] as usize]
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        (self.colptr[j + 1] - self.colptr[j]) as usize
    }

    /// `true` when the entry `(i, j)` is a stored nonzero.
    pub fn contains(&self, i: Vidx, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Iterates over all `(row, col)` coordinates in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vidx, Vidx)> + 'a {
        let v = *self;
        (0..v.ncols).flat_map(move |j| v.col(j).iter().map(move |&i| (i, j as Vidx)))
    }

    /// Materializes an owned [`Csc`] (copies both arrays; the view itself
    /// stays zero-copy — this is for consumers that need ownership, like the
    /// dynamic overlay base).
    pub fn to_csc(&self) -> Csc {
        let colptr: Vec<usize> = self.colptr.iter().map(|&p| p as usize).collect();
        Csc::from_parts(self.nrows, self.ncols, colptr, self.rowind.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrays() -> (Vec<u64>, Vec<Vidx>) {
        // 4x3: col 0 = {1, 3}, col 1 = {}, col 2 = {0, 2}.
        (vec![0, 2, 2, 4], vec![1, 3, 0, 2])
    }

    #[test]
    fn column_access_and_counts() {
        let (cp, ri) = arrays();
        let v = CscView::new(4, 3, &cp, &ri);
        assert_eq!((v.nrows(), v.ncols(), v.nnz()), (4, 3, 4));
        assert_eq!(v.col(0), &[1, 3]);
        assert_eq!(v.col(1), &[] as &[Vidx]);
        assert_eq!(v.col(2), &[0, 2]);
        assert_eq!(v.col_nnz(2), 2);
        assert!(v.contains(3, 0));
        assert!(!v.contains(2, 0));
    }

    #[test]
    fn iter_is_column_major() {
        let (cp, ri) = arrays();
        let v = CscView::new(4, 3, &cp, &ri);
        let coords: Vec<_> = v.iter().collect();
        assert_eq!(coords, vec![(1, 0), (3, 0), (0, 2), (2, 2)]);
    }

    #[test]
    fn to_csc_round_trips() {
        let (cp, ri) = arrays();
        let v = CscView::new(4, 3, &cp, &ri);
        let a = v.to_csc();
        assert_eq!(a.nnz(), 4);
        for j in 0..3 {
            assert_eq!(a.col(j), v.col(j), "column {j}");
        }
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_non_monotone_colptr() {
        let cp = vec![0u64, 3, 2, 4];
        let ri = vec![0, 1, 2, 3];
        CscView::new(4, 3, &cp, &ri);
    }
}
