//! A thin read-only `mmap` wrapper — the crate's `unsafe` boundary.
//!
//! # Safety argument (see DESIGN.md §18)
//!
//! The single `unsafe` block below calls `mmap(2)` / `munmap(2)` directly
//! (the workspace carries no `libc` crate) and exposes the mapping only as
//! `&[u8]` borrowed from the owning [`MmapRegion`]. Soundness rests on:
//!
//! * **Validity**: `mmap` either returns `MAP_FAILED` (turned into an
//!   `io::Error`) or a pointer to `len` readable bytes; we never map with
//!   `len == 0` (MCSB files are at least one header long, enforced by the
//!   caller).
//! * **Lifetime**: the `&[u8]` from [`MmapRegion::bytes`] borrows `self`, so
//!   the borrow checker prevents use after `Drop` runs `munmap`.
//! * **Aliasing**: the mapping is `PROT_READ | MAP_PRIVATE`; this process
//!   never writes through it, so shared `&[u8]` access is sound. A
//!   *concurrent writer to the underlying file* could still change mapped
//!   bytes under us — MCSB files are written once and then immutable by
//!   convention, and every array index read out of a mapping is
//!   bounds-checked against the header before use, so torn reads can
//!   produce wrong answers on a file being overwritten in place but never
//!   memory unsafety.
//! * **Alignment**: `mmap` returns page-aligned memory and MCSB sections
//!   sit at 64-byte offsets, so the `u64`/`u32`/`f64` reinterpretations in
//!   `read.rs` are aligned (each cast re-asserts this).

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::unix::io::AsRawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only. Returns a raw page-aligned
    /// pointer or an `io::Error` from the OS.
    pub fn map(file: &std::fs::File, len: usize) -> std::io::Result<*const u8> {
        // SAFETY: arguments follow the mmap(2) contract — a null hint, a
        // nonzero length (checked by the caller), PROT_READ|MAP_PRIVATE, a
        // live fd borrowed from `file`, offset 0. The returned region is
        // only ever read, and only through `MmapRegion::bytes`.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    /// Unmaps a region previously returned by [`map`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: called exactly once, from Drop, with the pointer/length
        // pair `map` returned.
        unsafe {
            munmap(ptr as *mut core::ffi::c_void, len);
        }
    }
}

/// An owned read-only memory mapping of a file.
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable shared memory; all access is through
// `&self`, and Drop is the only mutation (unmapping), which requires
// exclusive ownership.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps `len` bytes of `file` read-only. `len` must be nonzero and at
    /// most the file's length.
    #[cfg(unix)]
    pub fn map_file(file: &File, len: usize) -> io::Result<MmapRegion> {
        assert!(len > 0, "cannot map an empty region");
        let ptr = sys::map(file, len)?;
        Ok(MmapRegion { ptr, len })
    }

    /// On non-Unix targets there is no mmap wrapper; callers fall back to
    /// the heap read path.
    #[cfg(not(unix))]
    pub fn map_file(_file: &File, _len: usize) -> io::Result<MmapRegion> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap unavailable on this platform"))
    }

    /// The mapped bytes. The slice borrows `self`, so it cannot outlive the
    /// mapping.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points to `len` mapped readable bytes for as long
        // as `self` lives (see module docs).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join("mcm_store_mmap_selftest.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        std::fs::File::create(&path).unwrap().write_all(&data).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let map = MmapRegion::map_file(&f, data.len()).unwrap();
        assert_eq!(map.bytes(), &data[..]);
        // Page alignment makes the 64-byte section offsets 8-byte aligned.
        assert_eq!(map.bytes().as_ptr() as usize % 4096, 0);
        drop(map);
        std::fs::remove_file(&path).ok();
    }
}
