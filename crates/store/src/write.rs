//! Writing MCSB files from in-RAM matrices.
//!
//! These one-shot writers serve graphs that already fit in memory (tests,
//! small conversions, `Csc`/`WCsc` snapshots). The bounded-memory ingest
//! paths live in [`crate::stream`].

use crate::format::{fnv1a, Header, StoreError, FNV_OFFSET};
use mcm_sparse::{Csc, Vidx, WCsc};
use std::io::Write;
use std::path::Path;

/// Writes a pattern matrix as an MCSB file. Returns the file size in bytes.
pub fn write_csc_file(path: impl AsRef<Path>, a: &Csc) -> Result<u64, StoreError> {
    write_parts(path, a.nrows(), a.ncols(), a.colptr(), a.rowind(), None)
}

/// Writes a weighted matrix as an MCSB file. Returns the file size in bytes.
pub fn write_wcsc_file(path: impl AsRef<Path>, a: &WCsc) -> Result<u64, StoreError> {
    write_parts(
        path,
        a.nrows(),
        a.ncols(),
        a.pattern().colptr(),
        a.pattern().rowind(),
        Some(a.values()),
    )
}

/// Writes raw CSC arrays as an MCSB file. `colptr` must be the usual
/// `ncols + 1` monotone offsets; `values`, when present, must align
/// one-to-one with `rowind`.
pub fn write_parts(
    path: impl AsRef<Path>,
    nrows: usize,
    ncols: usize,
    colptr: &[usize],
    rowind: &[Vidx],
    values: Option<&[f64]>,
) -> Result<u64, StoreError> {
    if colptr.len() != ncols + 1 || colptr.last().copied().unwrap_or(1) != rowind.len() {
        return Err(StoreError::Format(format!(
            "colptr ({} entries, end {:?}) does not describe rowind ({} entries)",
            colptr.len(),
            colptr.last(),
            rowind.len()
        )));
    }
    if let Some(v) = values {
        if v.len() != rowind.len() {
            return Err(StoreError::Format(format!(
                "values ({}) must align with rowind ({})",
                v.len(),
                rowind.len()
            )));
        }
    }
    let mut header =
        Header::layout(nrows as u64, ncols as u64, rowind.len() as u64, values.is_some());

    // Hash the payload first so the header can be written up front and the
    // file emitted in one sequential pass.
    let mut h = FNV_OFFSET;
    for &p in colptr {
        h = fnv1a(h, &(p as u64).to_le_bytes());
    }
    for &i in rowind {
        h = fnv1a(h, &i.to_le_bytes());
    }
    if let Some(vals) = values {
        for &w in vals {
            h = fnv1a(h, &w.to_le_bytes());
        }
    }
    header.payload_checksum = h;

    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut written = 0u64;
    w.write_all(&header.encode())?;
    written += header.encode().len() as u64;
    for &p in colptr {
        w.write_all(&(p as u64).to_le_bytes())?;
        written += 8;
    }
    written = pad_to(&mut w, written, header.rowind_off)?;
    for &i in rowind {
        w.write_all(&i.to_le_bytes())?;
        written += 4;
    }
    if let Some(vals) = values {
        written = pad_to(&mut w, written, header.values_off)?;
        for &v in vals {
            w.write_all(&v.to_le_bytes())?;
            written += 8;
        }
    }
    w.flush()?;
    debug_assert_eq!(written, header.file_len());
    Ok(written)
}

/// Writes zero padding from `pos` up to `target`, returning `target`.
pub(crate) fn pad_to<W: Write>(w: &mut W, pos: u64, target: u64) -> Result<u64, StoreError> {
    debug_assert!(target >= pos, "sections must be emitted in ascending order");
    const ZEROS: [u8; 64] = [0; 64];
    let mut gap = (target - pos) as usize;
    while gap > 0 {
        let n = gap.min(ZEROS.len());
        w.write_all(&ZEROS[..n])?;
        gap -= n;
    }
    Ok(target)
}
