//! Streaming Matrix Market → MCSB conversion.
//!
//! The converter never holds the edge list: lines are read in chunks,
//! parsed in parallel (`mcm-par`), and pushed straight into a
//! [`McsbStreamWriter`](crate::McsbStreamWriter), so memory is bounded by
//! the chunk size plus the stream writer's bucket budget regardless of the
//! input size. Semantics match `mcm_sparse::io::parse_mm` exactly: 1-based
//! coordinates, `general`/`symmetric`/`skew-symmetric` symmetry with mirror
//! expansion, values kept iff the field is not `pattern` (`complex` keeps
//! the real part), and a declared-count check at EOF.

use crate::format::StoreError;
use crate::stream::McsbStreamWriter;
use mcm_sparse::Vidx;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Lines parsed per parallel chunk.
const CHUNK_LINES: usize = 1 << 16;

/// What a conversion produced.
#[derive(Clone, Copy, Debug)]
pub struct ConvertSummary {
    /// Rows in the converted graph.
    pub nrows: usize,
    /// Columns in the converted graph.
    pub ncols: usize,
    /// Nonzeros after symmetry expansion and deduplication.
    pub nnz: u64,
    /// Whether the MCSB file carries values.
    pub weighted: bool,
    /// MCSB file size in bytes.
    pub bytes: u64,
}

/// Converts a Matrix Market file to MCSB using [`mcm_par::max_threads`]
/// parse workers.
pub fn convert_matrix_market(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
) -> Result<ConvertSummary, StoreError> {
    convert_matrix_market_with(src, dst, mcm_par::max_threads())
}

/// Converts a Matrix Market file to MCSB with an explicit parse-worker
/// count. The output is weighted iff the source field is not `pattern`.
pub fn convert_matrix_market_with(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    threads: usize,
) -> Result<ConvertSummary, StoreError> {
    let src = src.as_ref();
    let mut lines = BufReader::new(std::fs::File::open(src)?).lines();

    let header = lines.next().ok_or_else(|| StoreError::Format("empty file".to_string()))??;
    let head_l = header.to_ascii_lowercase();
    let fields: Vec<&str> = head_l.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(StoreError::Format(format!("bad Matrix Market header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(StoreError::Format(
            "only coordinate (sparse) Matrix Market files can be converted".to_string(),
        ));
    }
    let (mirror, mirror_sign) = match fields[4] {
        "general" => (false, 1.0),
        "symmetric" => (true, 1.0),
        "skew-symmetric" => (true, -1.0),
        other => return Err(StoreError::Format(format!("unsupported symmetry: {other}"))),
    };
    let has_value = fields[3] != "pattern";

    // Skip comments; first non-comment line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| StoreError::Format("missing size line".to_string()))?;
    let mut it = size_line.split_whitespace();
    let mut dim = || {
        it.next()
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| StoreError::Format("bad size line".to_string()))
    };
    let nrows = dim()?;
    let ncols = dim()?;
    let declared_nnz = dim()?;

    let mut writer = McsbStreamWriter::create(&dst, nrows, ncols, has_value)?;
    let threads = threads.max(1);
    let mut chunk: Vec<String> = Vec::with_capacity(CHUNK_LINES);
    let mut seen = 0usize;
    let flush_chunk = |chunk: &mut Vec<String>,
                       writer: &mut McsbStreamWriter,
                       seen: &mut usize|
     -> Result<(), StoreError> {
        if chunk.is_empty() {
            return Ok(());
        }
        let parsed: Vec<Result<(Vidx, Vidx, f64), String>> =
            mcm_par::par_map_range(chunk.len(), threads, |k| {
                parse_entry(&chunk[k], nrows, ncols, has_value)
            });
        let mut out: Vec<(Vidx, Vidx, f64)> =
            Vec::with_capacity(chunk.len() * if mirror { 2 } else { 1 });
        for r in parsed {
            let (i, j, w) = r.map_err(StoreError::Format)?;
            out.push((i, j, w));
            if mirror && i != j {
                out.push((j, i, w * mirror_sign));
            }
        }
        *seen += chunk.len();
        if has_value {
            writer.push_weighted_edges(&out)?;
        } else {
            let pairs: Vec<(Vidx, Vidx)> = out.iter().map(|&(i, j, _)| (i, j)).collect();
            writer.push_edges(&pairs)?;
        }
        chunk.clear();
        Ok(())
    };

    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        chunk.push(line);
        if chunk.len() >= CHUNK_LINES {
            flush_chunk(&mut chunk, &mut writer, &mut seen)?;
        }
    }
    flush_chunk(&mut chunk, &mut writer, &mut seen)?;
    if seen != declared_nnz {
        return Err(StoreError::Format(format!("expected {declared_nnz} entries, found {seen}")));
    }
    let summary = writer.finish(threads)?;
    Ok(ConvertSummary { nrows, ncols, nnz: summary.nnz, weighted: has_value, bytes: summary.bytes })
}

/// Parses one Matrix Market entry line (already known to be non-comment).
fn parse_entry(
    line: &str,
    nrows: usize,
    ncols: usize,
    has_value: bool,
) -> Result<(Vidx, Vidx, f64), String> {
    let trimmed = line.trim();
    let mut it = trimmed.split_whitespace();
    let i: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad entry line: {trimmed}"))?;
    let j: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad entry line: {trimmed}"))?;
    let w: f64 = if has_value {
        it.next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("missing value field: {trimmed}"))?
    } else {
        1.0
    };
    if i == 0 || j == 0 || i > nrows || j > ncols {
        return Err(format!("entry ({i}, {j}) out of bounds (1-based)"));
    }
    Ok(((i - 1) as Vidx, (j - 1) as Vidx, w))
}
