//! # mcm-store — out-of-core graph storage
//!
//! The storage subsystem behind the repo's scaling story (DESIGN.md §18):
//! every other crate assumes a graph that fits in RAM and arrives through a
//! line-by-line Matrix Market parser; this crate makes the on-disk layout
//! *be* the in-memory layout so graphs 10–100× larger load in O(1) work.
//!
//! * [`format`] — **MCSB**, a compact versioned binary format whose payload
//!   is exactly the CSC arrays (`colptr`/`rowind`, optional `f64` values)
//!   in fixed little-endian layout with 64-byte section alignment.
//! * [`McsbFile`] — an mmap-backed reader exposing a borrowed
//!   [`CscView`](mcm_sparse::CscView) over the mapped pages (plus a
//!   read-to-heap fallback that eagerly verifies the payload checksum), so
//!   `DistMatrix`/`Dcsc` construction never materializes a triple list.
//! * [`McsbStreamWriter`] / [`convert_matrix_market`] — bounded-memory
//!   ingest: unsorted edges (an RMAT generator stream, a Matrix Market
//!   file) spill into column-range buckets, each bucket sorts in RAM, and
//!   the sorted sections stream into their final file positions.
//! * [`sniff_format`] — magic-byte dispatch between MCSB and Matrix Market
//!   for the `--load` paths of `mcm` and `mcmd`.

pub mod convert;
pub mod format;
mod mmap;
pub mod read;
pub mod stream;
pub mod write;

pub use convert::{convert_matrix_market, convert_matrix_market_with, ConvertSummary};
pub use format::{Header, StoreError};
pub use read::McsbFile;
pub use stream::{McsbStreamWriter, StreamSummary, DEFAULT_BUCKETS};
pub use write::{write_csc_file, write_parts, write_wcsc_file};

use std::io::Read;
use std::path::Path;

/// A graph file format recognizable by its leading bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// The MCSB binary format of this crate.
    Mcsb,
    /// Matrix Market coordinate text (`%%MatrixMarket ...`).
    MatrixMarket,
}

/// Sniffs a graph file's format from its magic bytes: MCSB binary or
/// `%%MatrixMarket` text. Anything else is a [`StoreError::Format`].
pub fn sniff_format(path: impl AsRef<Path>) -> Result<GraphFormat, StoreError> {
    let path = path.as_ref();
    let mut head = [0u8; 14]; // len("%%MatrixMarket")
    let mut f = std::fs::File::open(path)?;
    let mut got = 0;
    while got < head.len() {
        let n = f.read(&mut head[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got >= format::MAGIC.len() && head[..format::MAGIC.len()] == format::MAGIC {
        return Ok(GraphFormat::Mcsb);
    }
    if got == head.len() && head.eq_ignore_ascii_case(b"%%MatrixMarket") {
        return Ok(GraphFormat::MatrixMarket);
    }
    Err(StoreError::Format(
        "unrecognized graph format (expected MCSB magic or a %%MatrixMarket header)".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mcm_store_{name}_{}", std::process::id()))
    }

    #[test]
    fn sniffs_both_formats_and_rejects_garbage() {
        let m = tmp("sniff.mtx");
        std::fs::File::create(&m)
            .unwrap()
            .write_all(b"%%MatrixMarket matrix coordinate pattern general\n1 1 0\n")
            .unwrap();
        assert_eq!(sniff_format(&m).unwrap(), GraphFormat::MatrixMarket);

        let b = tmp("sniff.mcsb");
        let a = mcm_sparse::Triples::from_edges(2, 2, vec![(0, 0), (1, 1)]).to_csc();
        write_csc_file(&b, &a).unwrap();
        assert_eq!(sniff_format(&b).unwrap(), GraphFormat::Mcsb);

        let g = tmp("sniff.bin");
        std::fs::File::create(&g).unwrap().write_all(b"not a graph").unwrap();
        assert!(matches!(sniff_format(&g), Err(StoreError::Format(_))));

        for p in [m, b, g] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn csc_round_trip_through_both_backings() {
        let t = mcm_sparse::Triples::from_edges(6, 5, vec![(0, 0), (5, 4), (2, 2), (3, 2)]);
        let a = t.to_csc();
        let p = tmp("roundtrip.mcsb");
        write_csc_file(&p, &a).unwrap();
        for file in [McsbFile::open(&p).unwrap(), McsbFile::open_heap(&p).unwrap()] {
            let v = file.view();
            assert_eq!((v.nrows(), v.ncols(), v.nnz()), (6, 5, 4));
            for j in 0..5 {
                assert_eq!(v.col(j), a.col(j), "column {j}");
            }
            assert!(file.values().is_none());
            file.verify_payload().unwrap();
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn weighted_round_trip_keeps_bit_identical_values() {
        let a = mcm_sparse::WCsc::from_weighted_triples(
            3,
            3,
            vec![(0, 0, 1.5), (2, 1, -0.0), (1, 2, f64::MIN_POSITIVE)],
        );
        let p = tmp("weighted.mcsb");
        write_wcsc_file(&p, &a).unwrap();
        let file = McsbFile::open(&p).unwrap();
        assert!(file.is_weighted());
        let back = file.to_wcsc().unwrap();
        assert_eq!(back.pattern(), a.pattern());
        let bits: Vec<u64> = back.values().iter().map(|w| w.to_bits()).collect();
        let want: Vec<u64> = a.values().iter().map(|w| w.to_bits()).collect();
        assert_eq!(bits, want);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn stream_writer_matches_one_shot_writer() {
        // Unsorted, duplicated edges through 3 buckets must produce the
        // same file contents as sorting in RAM and writing one-shot.
        let edges: Vec<(u32, u32)> =
            vec![(4, 9), (0, 0), (4, 9), (2, 3), (1, 3), (3, 0), (0, 9), (2, 5)];
        let mut t = mcm_sparse::Triples::from_edges(5, 10, edges.clone());
        t.sort_dedup();
        let a = t.to_csc();

        let p1 = tmp("stream_a.mcsb");
        let p2 = tmp("stream_b.mcsb");
        write_csc_file(&p1, &a).unwrap();
        let mut w = McsbStreamWriter::create_with(&p2, 5, 10, false, 3).unwrap();
        for chunk in edges.chunks(3) {
            w.push_edges(chunk).unwrap();
        }
        let summary = w.finish(2).unwrap();
        assert_eq!(summary.nnz as usize, a.nnz());
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn convert_matches_in_ram_parse() {
        let t = mcm_sparse::Triples::from_edges(40, 30, {
            let mut e = Vec::new();
            let mut x = 7u64;
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                e.push((((x >> 33) % 40) as u32, ((x >> 3) % 30) as u32));
            }
            e
        });
        let mtx = tmp("convert.mtx");
        mcm_sparse::io::write_matrix_market_file(&t, &mtx).unwrap();
        let mcsb = tmp("convert.mcsb");
        let summary = convert_matrix_market_with(&mtx, &mcsb, 2).unwrap();
        let mut want = t.clone();
        want.sort_dedup();
        assert_eq!(summary.nnz as usize, want.len());
        assert!(!summary.weighted);
        let file = McsbFile::open(&mcsb).unwrap();
        let a = want.to_csc();
        let v = file.view();
        for j in 0..30 {
            assert_eq!(v.col(j), a.col(j), "column {j}");
        }
        std::fs::remove_file(mtx).ok();
        std::fs::remove_file(mcsb).ok();
    }
}
