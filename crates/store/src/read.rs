//! Reading MCSB files: mmap-backed zero-copy views and a heap fallback.

use crate::format::{Header, StoreError, FNV_OFFSET, HEADER_LEN};
use crate::mmap::MmapRegion;
use mcm_sparse::{Csc, CscView, Vidx, WCsc};
use std::io::Read;
use std::path::Path;

/// How the file's bytes are held in memory.
enum Backing {
    /// The file is mapped; sections are reinterpreted in place.
    Mapped(MmapRegion),
    /// Sections were read and decoded onto the heap (portable fallback,
    /// also the path that eagerly verifies the payload checksum).
    Heap { colptr: Vec<u64>, rowind: Vec<Vidx>, values: Vec<f64> },
}

/// An opened MCSB graph file.
///
/// [`McsbFile::open`] maps the file and borrows the CSC arrays straight out
/// of the mapped pages — opening touches only the header page, so resident
/// memory stays far below the file size until the solver actually walks the
/// graph. [`McsbFile::open_heap`] reads and decodes the file instead; it is
/// the portable fallback and the integrity path (it verifies the payload
/// checksum eagerly, which the mmap path deliberately does not — hashing a
/// mapping faults in every page, defeating the point of mapping; call
/// [`McsbFile::verify_payload`] when you want that check).
pub struct McsbFile {
    header: Header,
    backing: Backing,
}

impl McsbFile {
    /// Opens an MCSB file via `mmap` (falling back to the heap path on
    /// platforms without the mapping wrapper). Validates magic, version,
    /// header checksum, and that every section fits in the file; does
    /// **not** hash the payload.
    pub fn open(path: impl AsRef<Path>) -> Result<McsbFile, StoreError> {
        let path = path.as_ref();
        // The in-place view reinterprets little-endian file bytes as native
        // integers, so big-endian hosts must decode instead of map.
        if !cfg!(unix) || cfg!(target_endian = "big") {
            return Self::open_heap(path);
        }
        let mut f = std::fs::File::open(path)?;
        let file_len = f.metadata()?.len();
        let mut head = [0u8; HEADER_LEN];
        let got = read_up_to(&mut f, &mut head)?;
        let header = Header::decode(&head[..got])?;
        header.validate_extent(file_len)?;
        let map = MmapRegion::map_file(&f, header.file_len() as usize)?;
        // Validate the colptr section eagerly so `view()` cannot panic on a
        // corrupt payload. This faults in only the colptr pages (a small
        // fraction of the file); the rowind/values pages stay untouched.
        let colptr = section_as::<u64>(map.bytes(), header.colptr_off, header.ncols as usize + 1);
        check_colptr(&header, colptr)?;
        Ok(McsbFile { header, backing: Backing::Mapped(map) })
    }

    /// Opens an MCSB file by reading it onto the heap, verifying the payload
    /// checksum, and decoding the sections into owned arrays.
    pub fn open_heap(path: impl AsRef<Path>) -> Result<McsbFile, StoreError> {
        let bytes = std::fs::read(path)?;
        let header = Header::decode(&bytes)?;
        header.validate_extent(bytes.len() as u64)?;
        let section = |off: u64, len: u64| &bytes[off as usize..(off + len) as usize];
        let mut h = crate::format::fnv1a(FNV_OFFSET, section(header.colptr_off, header.colptr_len));
        h = crate::format::fnv1a(h, section(header.rowind_off, header.rowind_len));
        if header.weighted {
            h = crate::format::fnv1a(h, section(header.values_off, header.values_len));
        }
        if h != header.payload_checksum {
            return Err(StoreError::ChecksumMismatch {
                stored: header.payload_checksum,
                computed: h,
            });
        }
        let colptr: Vec<u64> = section(header.colptr_off, header.colptr_len)
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let rowind: Vec<Vidx> = section(header.rowind_off, header.rowind_len)
            .chunks_exact(4)
            .map(|c| Vidx::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let values: Vec<f64> = if header.weighted {
            section(header.values_off, header.values_len)
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        } else {
            Vec::new()
        };
        validate_payload(&header, &colptr, &rowind)?;
        Ok(McsbFile { header, backing: Backing::Heap { colptr, rowind, values } })
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.header.nrows as usize
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.header.ncols as usize
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.header.nnz as usize
    }

    /// Whether the file carries a values section.
    pub fn is_weighted(&self) -> bool {
        self.header.weighted
    }

    /// Whether this handle is mmap-backed (as opposed to the heap fallback).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// The borrowed CSC view of the graph. On the mmap backing this borrows
    /// the mapped pages directly; nothing is copied or decoded.
    pub fn view(&self) -> CscView<'_> {
        match &self.backing {
            Backing::Mapped(map) => {
                let colptr =
                    section_as::<u64>(map.bytes(), self.header.colptr_off, self.ncols() + 1);
                let rowind = section_as::<Vidx>(map.bytes(), self.header.rowind_off, self.nnz());
                CscView::new(self.nrows(), self.ncols(), colptr, rowind)
            }
            Backing::Heap { colptr, rowind, .. } => {
                CscView::new(self.nrows(), self.ncols(), colptr, rowind)
            }
        }
    }

    /// The values aligned with the view's `rowind`, when weighted.
    pub fn values(&self) -> Option<&[f64]> {
        if !self.header.weighted {
            return None;
        }
        Some(match &self.backing {
            Backing::Mapped(map) => {
                section_as::<f64>(map.bytes(), self.header.values_off, self.nnz())
            }
            Backing::Heap { values, .. } => values,
        })
    }

    /// Recomputes the payload checksum and compares it to the header.
    ///
    /// On the mmap backing this faults in every page of the file — call it
    /// when integrity matters more than residency. The heap backing already
    /// verified at open, so this re-checks the decoded arrays' structure
    /// and returns `Ok`.
    pub fn verify_payload(&self) -> Result<(), StoreError> {
        match &self.backing {
            Backing::Mapped(map) => {
                let bytes = map.bytes();
                let section = |off: u64, len: u64| &bytes[off as usize..(off + len) as usize];
                let mut h = crate::format::fnv1a(
                    FNV_OFFSET,
                    section(self.header.colptr_off, self.header.colptr_len),
                );
                h = crate::format::fnv1a(
                    h,
                    section(self.header.rowind_off, self.header.rowind_len),
                );
                if self.header.weighted {
                    h = crate::format::fnv1a(
                        h,
                        section(self.header.values_off, self.header.values_len),
                    );
                }
                if h != self.header.payload_checksum {
                    return Err(StoreError::ChecksumMismatch {
                        stored: self.header.payload_checksum,
                        computed: h,
                    });
                }
                let v = self.view();
                validate_payload(&self.header, v.colptr(), v.rowind())
            }
            Backing::Heap { colptr, rowind, .. } => validate_payload(&self.header, colptr, rowind),
        }
    }

    /// Materializes an owned [`Csc`] (for consumers that need ownership,
    /// e.g. the dynamic overlay base).
    pub fn to_csc(&self) -> Csc {
        self.view().to_csc()
    }

    /// Materializes an owned [`WCsc`] when the file is weighted.
    pub fn to_wcsc(&self) -> Option<WCsc> {
        let values = self.values()?;
        Some(WCsc::from_sorted_parts(self.to_csc(), values.to_vec()))
    }
}

/// Checks that a colptr section is a monotone `0..=nnz` offset array, so
/// [`CscView::new`]'s assertions can never fire on untrusted input.
fn check_colptr(h: &Header, colptr: &[u64]) -> Result<(), StoreError> {
    if colptr.first() != Some(&0)
        || colptr.last() != Some(&h.nnz)
        || colptr.windows(2).any(|w| w[0] > w[1])
    {
        return Err(StoreError::HeaderCorrupt(
            "colptr section is not a monotone 0..=nnz offset array".to_string(),
        ));
    }
    Ok(())
}

/// Full structural validation: colptr monotonicity plus row indices in
/// range. Used on the heap path (which holds all sections anyway) and by
/// [`McsbFile::verify_payload`].
fn validate_payload(h: &Header, colptr: &[u64], rowind: &[Vidx]) -> Result<(), StoreError> {
    check_colptr(h, colptr)?;
    if let Some(&bad) = rowind.iter().find(|&&i| i as u64 >= h.nrows) {
        return Err(StoreError::HeaderCorrupt(format!(
            "row index {bad} out of range for {} rows",
            h.nrows
        )));
    }
    Ok(())
}

/// Reinterprets an aligned section of the mapped file as a typed slice.
///
/// `T` is one of `u64`/`u32`/`f64`; MCSB stores them little-endian, and the
/// mmap view path is only taken on little-endian hosts (see `McsbFile::open`
/// via the `cfg!` below) so the in-memory and on-disk representations agree.
fn section_as<T: Copy>(bytes: &[u8], off: u64, n: usize) -> &[T] {
    let off = off as usize;
    let len = n * std::mem::size_of::<T>();
    let slice = &bytes[off..off + len];
    assert_eq!(
        slice.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "MCSB section offset must be aligned (64-byte sections over a page-aligned map)"
    );
    // SAFETY: the range is in bounds (sliced above), aligned (asserted), and
    // `T` is a plain-old-data numeric type for which any bit pattern is a
    // valid value. The lifetime is tied to `bytes`, i.e. the mapping.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const T, n) }
}

fn read_up_to(f: &mut std::fs::File, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        let n = f.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}
