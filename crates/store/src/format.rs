//! The MCSB on-disk format: header layout, checksums, and typed errors.
//!
//! MCSB ("Matching CSc Binary") is a fixed little-endian container whose
//! payload is *exactly* the CSC arrays the solvers consume:
//!
//! ```text
//! offset   size                content
//! ------   ------------------  ----------------------------------------
//! 0        128                 header (see below)
//! 128      8·(ncols+1)         colptr  — u64 LE, monotone, ends at nnz
//! align64  4·nnz               rowind  — u32 LE, sorted within columns
//! align64  8·nnz (weighted)    values  — f64 LE, aligned with rowind
//! ```
//!
//! Each section starts at the next 64-byte boundary after the previous one
//! (padding bytes are zero). Because the header is 128 bytes and every
//! section offset is a multiple of 64, a page-aligned `mmap` of the file
//! yields 8-byte-aligned section pointers, so the arrays can be viewed in
//! place with no decode step — the on-disk layout *is* the in-memory layout.
//!
//! Header (all integers little-endian):
//!
//! ```text
//! 0   [u8; 4]  magic  = "MCSB"
//! 4   u32      version = 1
//! 8   u64      flags   (bit 0: weighted — a values section is present)
//! 16  u64      nrows
//! 24  u64      ncols
//! 32  u64      nnz
//! 40  u64      colptr_off     48  u64  colptr_len  (bytes)
//! 56  u64      rowind_off     64  u64  rowind_len  (bytes)
//! 72  u64      values_off     80  u64  values_len  (bytes, 0 unweighted)
//! 88  u64      payload_checksum  — FNV-1a over the section bytes in file
//!              order (colptr ‖ rowind ‖ values), padding excluded
//! 96  u64      header_checksum   — FNV-1a over header bytes 0..96
//! 104 [u8;24]  reserved, zero
//! ```
//!
//! Versioning: readers reject any magic mismatch with [`StoreError::NotMcsb`]
//! and any version other than [`VERSION`] with
//! [`StoreError::UnsupportedVersion`]. Future revisions that keep the payload
//! readable by old readers must keep version 1 and use a flag bit; anything
//! that changes the array layout bumps the version.

/// The four magic bytes opening every MCSB file.
pub const MAGIC: [u8; 4] = *b"MCSB";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 128;

/// Section alignment in bytes.
pub const ALIGN: usize = 64;

/// Flag bit: a values section is present (weighted graph).
pub const FLAG_WEIGHTED: u64 = 1;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Feeds `bytes` through the FNV-1a 64-bit hash, continuing from state `h`
/// (start from [`FNV_OFFSET`]). FNV is sequential, so streaming writers can
/// hash sections as they go without buffering them.
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Rounds `off` up to the next multiple of [`ALIGN`].
pub fn align_up(off: u64) -> u64 {
    off.div_ceil(ALIGN as u64) * ALIGN as u64
}

/// Errors from reading, writing, or converting MCSB files.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the MCSB magic bytes.
    NotMcsb,
    /// The file is MCSB but a newer (or corrupt) version.
    UnsupportedVersion(u32),
    /// The file is shorter than its header says it must be.
    Truncated {
        /// Bytes the header requires the file to contain.
        need: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// The header fails its own checksum or is internally inconsistent.
    HeaderCorrupt(String),
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// A structural problem in data being converted or written.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::NotMcsb => write!(f, "not an MCSB file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported MCSB version {v} (this reader supports {VERSION})")
            }
            StoreError::Truncated { need, have } => {
                write!(f, "truncated MCSB file: header requires {need} bytes, found {have}")
            }
            StoreError::HeaderCorrupt(msg) => write!(f, "corrupt MCSB header: {msg}"),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "MCSB payload checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            StoreError::Format(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A decoded MCSB header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version (always [`VERSION`] after a successful decode).
    pub version: u32,
    /// Whether a values section is present.
    pub weighted: bool,
    /// Number of rows.
    pub nrows: u64,
    /// Number of columns.
    pub ncols: u64,
    /// Number of stored nonzeros.
    pub nnz: u64,
    /// Byte offset of the colptr section.
    pub colptr_off: u64,
    /// Byte length of the colptr section.
    pub colptr_len: u64,
    /// Byte offset of the rowind section.
    pub rowind_off: u64,
    /// Byte length of the rowind section.
    pub rowind_len: u64,
    /// Byte offset of the values section (0 when unweighted).
    pub values_off: u64,
    /// Byte length of the values section (0 when unweighted).
    pub values_len: u64,
    /// FNV-1a over the section bytes in file order.
    pub payload_checksum: u64,
}

impl Header {
    /// Lays out a header for a graph of the given shape, computing the
    /// aligned section offsets. `payload_checksum` starts at 0; the writer
    /// fills it in once the payload has been hashed.
    pub fn layout(nrows: u64, ncols: u64, nnz: u64, weighted: bool) -> Header {
        let colptr_off = HEADER_LEN as u64;
        let colptr_len = 8 * (ncols + 1);
        let rowind_off = align_up(colptr_off + colptr_len);
        let rowind_len = 4 * nnz;
        let (values_off, values_len) =
            if weighted { (align_up(rowind_off + rowind_len), 8 * nnz) } else { (0, 0) };
        Header {
            version: VERSION,
            weighted,
            nrows,
            ncols,
            nnz,
            colptr_off,
            colptr_len,
            rowind_off,
            rowind_len,
            values_off,
            values_len,
            payload_checksum: 0,
        }
    }

    /// Total file size this header describes (end of the last section).
    pub fn file_len(&self) -> u64 {
        if self.weighted {
            self.values_off + self.values_len
        } else {
            self.rowind_off + self.rowind_len
        }
    }

    /// Encodes the 128-byte header, computing the header checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..4].copy_from_slice(&MAGIC);
        b[4..8].copy_from_slice(&self.version.to_le_bytes());
        let flags = if self.weighted { FLAG_WEIGHTED } else { 0 };
        b[8..16].copy_from_slice(&flags.to_le_bytes());
        b[16..24].copy_from_slice(&self.nrows.to_le_bytes());
        b[24..32].copy_from_slice(&self.ncols.to_le_bytes());
        b[32..40].copy_from_slice(&self.nnz.to_le_bytes());
        b[40..48].copy_from_slice(&self.colptr_off.to_le_bytes());
        b[48..56].copy_from_slice(&self.colptr_len.to_le_bytes());
        b[56..64].copy_from_slice(&self.rowind_off.to_le_bytes());
        b[64..72].copy_from_slice(&self.rowind_len.to_le_bytes());
        b[72..80].copy_from_slice(&self.values_off.to_le_bytes());
        b[80..88].copy_from_slice(&self.values_len.to_le_bytes());
        b[88..96].copy_from_slice(&self.payload_checksum.to_le_bytes());
        let hc = fnv1a(FNV_OFFSET, &b[0..96]);
        b[96..104].copy_from_slice(&hc.to_le_bytes());
        b
    }

    /// Decodes and validates a header: magic, version, header checksum, and
    /// internal consistency (section lengths implied by the shape, section
    /// alignment, non-overlapping ascending sections, `Vidx`-sized
    /// dimensions). File-extent checks need the file length and live in
    /// [`Header::validate_extent`].
    pub fn decode(b: &[u8]) -> Result<Header, StoreError> {
        if b.len() < 4 || b[0..4] != MAGIC {
            return Err(StoreError::NotMcsb);
        }
        if b.len() < HEADER_LEN {
            return Err(StoreError::Truncated { need: HEADER_LEN as u64, have: b.len() as u64 });
        }
        let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let version = u32_at(4);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored_hc = u64_at(96);
        let computed_hc = fnv1a(FNV_OFFSET, &b[0..96]);
        if stored_hc != computed_hc {
            return Err(StoreError::HeaderCorrupt(format!(
                "header checksum mismatch: stored {stored_hc:#018x}, computed {computed_hc:#018x}"
            )));
        }
        let flags = u64_at(8);
        if flags & !FLAG_WEIGHTED != 0 {
            return Err(StoreError::HeaderCorrupt(format!("unknown flag bits {flags:#x}")));
        }
        let h = Header {
            version,
            weighted: flags & FLAG_WEIGHTED != 0,
            nrows: u64_at(16),
            ncols: u64_at(24),
            nnz: u64_at(32),
            colptr_off: u64_at(40),
            colptr_len: u64_at(48),
            rowind_off: u64_at(56),
            rowind_len: u64_at(64),
            values_off: u64_at(72),
            values_len: u64_at(80),
            payload_checksum: u64_at(88),
        };
        let mut expect = Header::layout(h.nrows, h.ncols, h.nnz, h.weighted);
        expect.payload_checksum = h.payload_checksum;
        if h != expect {
            return Err(StoreError::HeaderCorrupt(
                "section offsets/lengths do not match the declared shape".to_string(),
            ));
        }
        if h.nrows >= u32::MAX as u64 || h.ncols >= u32::MAX as u64 {
            return Err(StoreError::HeaderCorrupt(format!(
                "dimensions {}x{} exceed the 32-bit vertex index space",
                h.nrows, h.ncols
            )));
        }
        if h.nnz > h.nrows.saturating_mul(h.ncols) {
            return Err(StoreError::HeaderCorrupt(format!(
                "nnz {} exceeds {}x{}",
                h.nnz, h.nrows, h.ncols
            )));
        }
        Ok(h)
    }

    /// Checks that every section this header declares fits inside a file of
    /// `file_len` bytes.
    pub fn validate_extent(&self, file_len: u64) -> Result<(), StoreError> {
        let need = self.file_len();
        if file_len < need {
            return Err(StoreError::Truncated { need, have: file_len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_aligned_and_ordered() {
        let h = Header::layout(1000, 777, 4242, true);
        assert_eq!(h.colptr_off, 128);
        assert_eq!(h.colptr_len, 8 * 778);
        assert_eq!(h.rowind_off % ALIGN as u64, 0);
        assert_eq!(h.values_off % ALIGN as u64, 0);
        assert!(h.rowind_off >= h.colptr_off + h.colptr_len);
        assert!(h.values_off >= h.rowind_off + h.rowind_len);
        assert_eq!(h.file_len(), h.values_off + 8 * 4242);
    }

    #[test]
    fn encode_decode_round_trips() {
        for weighted in [false, true] {
            let mut h = Header::layout(10, 20, 30, weighted);
            h.payload_checksum = 0xDEAD_BEEF;
            let b = h.encode();
            assert_eq!(Header::decode(&b).unwrap(), h, "weighted={weighted}");
        }
    }

    #[test]
    fn decode_rejects_bad_magic_version_and_checksum() {
        let h = Header::layout(4, 4, 4, false);
        let good = h.encode();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(Header::decode(&bad_magic), Err(StoreError::NotMcsb)));

        let mut bad_version = good;
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(Header::decode(&bad_version), Err(StoreError::UnsupportedVersion(99))));

        let mut flipped = good;
        flipped[20] ^= 1; // corrupt nrows under the checksum
        assert!(matches!(Header::decode(&flipped), Err(StoreError::HeaderCorrupt(_))));

        assert!(matches!(
            Header::decode(&good[..64]),
            Err(StoreError::Truncated { need: 128, have: 64 })
        ));
    }

    #[test]
    fn fnv_streams_identically_to_one_shot() {
        let data = b"the quick brown fox";
        let whole = fnv1a(FNV_OFFSET, data);
        let split = fnv1a(fnv1a(FNV_OFFSET, &data[..7]), &data[7..]);
        assert_eq!(whole, split);
    }
}
