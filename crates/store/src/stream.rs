//! Bounded-memory streaming ingest: edges in, sorted MCSB out.
//!
//! [`McsbStreamWriter`] accepts `(row, col[, weight])` edges in arbitrary
//! order and any quantity, and produces a sorted, deduplicated MCSB file
//! while holding only O(ncols + nnz / buckets) memory:
//!
//! 1. **Scatter**: incoming edges are routed by column range into one of
//!    `buckets` temporary spill files (fixed-width binary records).
//! 2. **Sort + merge**: `finish()` walks the buckets in column order — each
//!    bucket is small enough to sort and deduplicate in RAM (buckets are
//!    sorted in parallel, `mcm-par`, a group at a time) — and appends the
//!    row indices (and values) straight into their final position in the
//!    output file. Only the column-count array spans the whole graph.
//! 3. **Seal**: column counts become the colptr section, the payload is
//!    re-read once sequentially to compute its checksum, and the header is
//!    written last — so a crash mid-ingest leaves a file with no valid
//!    magic, never a silently half-written graph.
//!
//! This is what lets `mcm gen --format mcsb` emit scale-20+ RMAT graphs and
//! `mcm convert` ingest Matrix Market files larger than RAM.

use crate::format::{fnv1a, Header, StoreError, FNV_OFFSET};
use crate::write::pad_to;
use mcm_sparse::triples::{block_offsets, block_owner};
use mcm_sparse::Vidx;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default number of column-range spill buckets.
///
/// Peak memory at `finish()` is roughly `threads × nnz/buckets` records
/// (16–24 bytes each), e.g. ≈ 2 MB per thread for a 16M-edge graph at the
/// default 128 buckets.
pub const DEFAULT_BUCKETS: usize = 128;

/// What [`McsbStreamWriter::finish`] produced.
#[derive(Clone, Copy, Debug)]
pub struct StreamSummary {
    /// Nonzeros after sorting and deduplication.
    pub nnz: u64,
    /// Final file size in bytes.
    pub bytes: u64,
}

/// A bounded-memory writer producing a sorted MCSB file from unsorted edges.
pub struct McsbStreamWriter {
    path: PathBuf,
    tmp_dir: PathBuf,
    nrows: usize,
    ncols: usize,
    weighted: bool,
    /// Column-range boundaries, one bucket per `block_offsets` slot.
    bounds: Vec<usize>,
    buckets: Vec<BufWriter<File>>,
    /// Records pushed per bucket (pre-dedup), for exact read-back sizing.
    pushed: Vec<u64>,
    finished: bool,
}

impl McsbStreamWriter {
    /// Starts an ingest into `path` with [`DEFAULT_BUCKETS`] spill buckets.
    pub fn create(
        path: impl AsRef<Path>,
        nrows: usize,
        ncols: usize,
        weighted: bool,
    ) -> Result<Self, StoreError> {
        Self::create_with(path, nrows, ncols, weighted, DEFAULT_BUCKETS)
    }

    /// Starts an ingest with an explicit bucket count (≥ 1). More buckets
    /// lower peak memory at `finish()`; fewer buckets mean fewer open files.
    pub fn create_with(
        path: impl AsRef<Path>,
        nrows: usize,
        ncols: usize,
        weighted: bool,
        buckets: usize,
    ) -> Result<Self, StoreError> {
        if nrows >= Vidx::MAX as usize || ncols >= Vidx::MAX as usize {
            return Err(StoreError::Format(format!(
                "dimensions {nrows}x{ncols} exceed the 32-bit vertex index space"
            )));
        }
        let path = path.as_ref().to_path_buf();
        let tmp_dir = PathBuf::from(format!("{}.ingest-tmp", path.display()));
        std::fs::create_dir_all(&tmp_dir)?;
        let k = buckets.max(1).min(ncols.max(1));
        let bounds = block_offsets(ncols, k);
        let mut bucket_files = Vec::with_capacity(k);
        for b in 0..k {
            let f = File::create(tmp_dir.join(format!("bucket{b}.bin")))?;
            bucket_files.push(BufWriter::new(f));
        }
        Ok(Self {
            path,
            tmp_dir,
            nrows,
            ncols,
            weighted,
            bounds,
            buckets: bucket_files,
            pushed: vec![0; k],
            finished: false,
        })
    }

    /// Number of records pushed so far (pre-dedup).
    pub fn pushed(&self) -> u64 {
        self.pushed.iter().sum()
    }

    /// Appends a chunk of pattern edges. Rejects out-of-bounds coordinates
    /// and (on a weighted ingest) missing weights.
    pub fn push_edges(&mut self, edges: &[(Vidx, Vidx)]) -> Result<(), StoreError> {
        if self.weighted {
            return Err(StoreError::Format(
                "this ingest is weighted; use push_weighted_edges".to_string(),
            ));
        }
        for &(i, j) in edges {
            let b = self.route(i, j)?;
            let mut rec = [0u8; 8];
            rec[0..4].copy_from_slice(&i.to_le_bytes());
            rec[4..8].copy_from_slice(&j.to_le_bytes());
            self.buckets[b].write_all(&rec)?;
            self.pushed[b] += 1;
        }
        Ok(())
    }

    /// Appends a chunk of weighted edges.
    pub fn push_weighted_edges(&mut self, edges: &[(Vidx, Vidx, f64)]) -> Result<(), StoreError> {
        if !self.weighted {
            return Err(StoreError::Format(
                "this ingest is unweighted; use push_edges".to_string(),
            ));
        }
        for &(i, j, w) in edges {
            let b = self.route(i, j)?;
            let mut rec = [0u8; 16];
            rec[0..4].copy_from_slice(&i.to_le_bytes());
            rec[4..8].copy_from_slice(&j.to_le_bytes());
            rec[8..16].copy_from_slice(&w.to_le_bytes());
            self.buckets[b].write_all(&rec)?;
            self.pushed[b] += 1;
        }
        Ok(())
    }

    fn route(&self, i: Vidx, j: Vidx) -> Result<usize, StoreError> {
        if (i as usize) >= self.nrows || (j as usize) >= self.ncols {
            return Err(StoreError::Format(format!(
                "edge ({i}, {j}) out of bounds for a {}x{} graph",
                self.nrows, self.ncols
            )));
        }
        Ok(block_owner(&self.bounds, j as usize))
    }

    /// Sorts, deduplicates, and seals the MCSB file. `threads` bounds the
    /// bucket-sort parallelism (and the transient memory: `threads` buckets
    /// are resident at once).
    pub fn finish(mut self, threads: usize) -> Result<StreamSummary, StoreError> {
        self.finished = true;
        let rec_len: usize = if self.weighted { 16 } else { 8 };
        for b in &mut self.buckets {
            b.flush()?;
        }
        let nbuckets = self.buckets.len();
        self.buckets.clear(); // close the spill files

        // The rowind section's start is independent of the final nnz, so row
        // indices stream straight into place while counts accumulate.
        let provisional = Header::layout(self.nrows as u64, self.ncols as u64, 0, self.weighted);
        // Read+write: the checksum pass re-reads the payload at the end.
        let mut out_file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)?;
        out_file.seek(SeekFrom::Start(provisional.rowind_off))?;
        let mut out = BufWriter::new(out_file);
        let mut values_tmp = if self.weighted {
            Some(BufWriter::new(File::create(self.tmp_dir.join("values.bin"))?))
        } else {
            None
        };

        let mut counts = vec![0u64; self.ncols + 1];
        let mut nnz = 0u64;
        let threads = threads.max(1);
        for group_start in (0..nbuckets).step_by(threads) {
            let group_end = (group_start + threads).min(nbuckets);
            // Read the group's spill files serially (I/O), sort in parallel.
            let mut raw: Vec<Vec<u8>> = Vec::with_capacity(group_end - group_start);
            for b in group_start..group_end {
                let path = self.tmp_dir.join(format!("bucket{b}.bin"));
                let mut bytes = Vec::with_capacity((self.pushed[b] as usize) * rec_len);
                BufReader::new(File::open(&path)?).read_to_end(&mut bytes)?;
                if bytes.len() != self.pushed[b] as usize * rec_len {
                    return Err(StoreError::Format(format!(
                        "spill bucket {b} is {} bytes, expected {}",
                        bytes.len(),
                        self.pushed[b] as usize * rec_len
                    )));
                }
                raw.push(bytes);
            }
            let weighted = self.weighted;
            let sorted: Vec<SortedBucket> =
                mcm_par::par_map_range(raw.len(), threads, |k| sort_bucket(&raw[k], weighted));
            for (pairs, weights) in &sorted {
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    counts[j as usize + 1] += 1;
                    out.write_all(&i.to_le_bytes())?;
                    if let Some(vt) = &mut values_tmp {
                        vt.write_all(&weights[k].to_le_bytes())?;
                    }
                }
                nnz += pairs.len() as u64;
            }
        }

        // Seal: values after rowind, then colptr, then the checksummed header.
        let mut header = Header::layout(self.nrows as u64, self.ncols as u64, nnz, self.weighted);
        let mut pos = header.rowind_off + header.rowind_len;
        if let Some(vt) = values_tmp.take() {
            vt.into_inner().map_err(|e| StoreError::Format(format!("spill flush: {e}")))?;
            pos = pad_to(&mut out, pos, header.values_off)?;
            let mut src = BufReader::new(File::open(self.tmp_dir.join("values.bin"))?);
            let copied = std::io::copy(&mut src, &mut out)?;
            if copied != header.values_len {
                return Err(StoreError::Format(format!(
                    "values spill is {copied} bytes, expected {}",
                    header.values_len
                )));
            }
            pos += copied;
        }
        debug_assert_eq!(pos, header.file_len());
        out.flush()?;
        let mut out_file =
            out.into_inner().map_err(|e| StoreError::Format(format!("output flush: {e}")))?;
        // An empty rowind section leaves the file short of its declared
        // extent (nothing was written past the seek); extend explicitly.
        out_file.set_len(header.file_len())?;
        let bytes = header.file_len();

        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        out_file.seek(SeekFrom::Start(header.colptr_off))?;
        let mut out = BufWriter::new(out_file);
        let mut checksum = FNV_OFFSET;
        for &c in &counts {
            let le = c.to_le_bytes();
            checksum = fnv1a(checksum, &le);
            out.write_all(&le)?;
        }
        out.flush()?;
        let mut out_file =
            out.into_inner().map_err(|e| StoreError::Format(format!("output flush: {e}")))?;

        // One sequential re-read of the payload finishes the checksum (FNV
        // is order-dependent and the rowind bytes were written before the
        // colptr bytes existed).
        checksum = hash_section(&mut out_file, header.rowind_off, header.rowind_len, checksum)?;
        if self.weighted {
            checksum = hash_section(&mut out_file, header.values_off, header.values_len, checksum)?;
        }
        header.payload_checksum = checksum;
        out_file.seek(SeekFrom::Start(0))?;
        out_file.write_all(&header.encode())?;
        out_file.flush()?;
        drop(out_file);

        std::fs::remove_dir_all(&self.tmp_dir).ok();
        Ok(StreamSummary { nnz, bytes })
    }
}

impl Drop for McsbStreamWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned ingest: drop the spill directory; the (headerless)
            // output file, if any, has no valid magic and will be rejected.
            std::fs::remove_dir_all(&self.tmp_dir).ok();
        }
    }
}

/// One decoded, sorted spill bucket: coordinate pairs plus (for weighted
/// files) their parallel weight array.
type SortedBucket = (Vec<(Vidx, Vidx)>, Vec<f64>);

/// Decodes, sorts, and deduplicates one spill bucket. Duplicate coordinates
/// keep the largest weight, matching `WCsc::from_weighted_triples`.
fn sort_bucket(bytes: &[u8], weighted: bool) -> SortedBucket {
    if weighted {
        let mut recs: Vec<(Vidx, Vidx, f64)> = bytes
            .chunks_exact(16)
            .map(|r| {
                (
                    Vidx::from_le_bytes(r[0..4].try_into().unwrap()),
                    Vidx::from_le_bytes(r[4..8].try_into().unwrap()),
                    f64::from_le_bytes(r[8..16].try_into().unwrap()),
                )
            })
            .collect();
        recs.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)).then(b.2.total_cmp(&a.2)));
        recs.dedup_by_key(|&mut (i, j, _)| (i, j));
        let pairs = recs.iter().map(|&(i, j, _)| (i, j)).collect();
        let weights = recs.into_iter().map(|(_, _, w)| w).collect();
        (pairs, weights)
    } else {
        let mut recs: Vec<(Vidx, Vidx)> = bytes
            .chunks_exact(8)
            .map(|r| {
                (
                    Vidx::from_le_bytes(r[0..4].try_into().unwrap()),
                    Vidx::from_le_bytes(r[4..8].try_into().unwrap()),
                )
            })
            .collect();
        recs.sort_unstable_by_key(|&(i, j)| (j, i));
        recs.dedup();
        (recs, Vec::new())
    }
}

/// Streams `len` bytes at `off` through the FNV state.
fn hash_section(f: &mut File, off: u64, len: u64, mut h: u64) -> Result<u64, StoreError> {
    f.seek(SeekFrom::Start(off))?;
    let mut remaining = len;
    let mut buf = vec![0u8; 1 << 16];
    while remaining > 0 {
        let want = remaining.min(buf.len() as u64) as usize;
        f.read_exact(&mut buf[..want])?;
        h = fnv1a(h, &buf[..want]);
        remaining -= want as u64;
    }
    Ok(h)
}
