//! The centralized gather–compute–scatter baseline (§VI-E, Fig. 9).
//!
//! *"If a graph is already distributed, collecting it on a single node
//! requires expensive communication. The communication cost includes
//! gathering the distributed graph on a selected node and scattering the
//! computed MCM from the selected node to all nodes."*
//!
//! This module models exactly that pipeline: gather `m` edges (two words
//! each) onto rank 0, run the best *serial* MCM there (Hopcroft–Karp as the
//! stand-in for the shared-memory MS-BFS-Graft code of [7]), then scatter
//! the two mate vectors. Fig. 9 plots the gather+scatter time against the
//! edge count; §VI-E's argument is that this communication alone exceeds
//! running MCM-DIST in place.

use crate::matching::Matching;
use crate::serial::hopcroft_karp;
use mcm_bsp::{DistCtx, Kernel};
use mcm_sparse::Triples;

/// Modeled costs of the centralized pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CentralizedCost {
    /// Gathering the edge list onto rank 0 (seconds).
    pub gather_s: f64,
    /// Scattering the mate vectors back (seconds).
    pub scatter_s: f64,
}

impl CentralizedCost {
    /// Total communication time of the pipeline.
    pub fn total(&self) -> f64 {
        self.gather_s + self.scatter_s
    }
}

/// Charges and returns the communication cost of gathering a distributed
/// graph with `m_edges` edges onto one rank and scattering `n1 + n2` mate
/// entries back, on the machine of `ctx` (pure cost model — used by the
/// Fig. 9 sweep without materializing the graphs).
pub fn centralized_cost(ctx: &mut DistCtx, m_edges: u64, n1: u64, n2: u64) -> CentralizedCost {
    let gather_s = ctx.charge_gather(Kernel::Gather, 2 * m_edges);
    let scatter_s = ctx.charge_scatter(Kernel::Gather, n1 + n2);
    CentralizedCost { gather_s, scatter_s }
}

/// Runs the full centralized pipeline on an actual graph: charge the
/// gather, solve serially on "rank 0", charge the scatter. Returns the
/// matching and the modeled communication cost.
pub fn centralized_matching(ctx: &mut DistCtx, t: &Triples) -> (Matching, CentralizedCost) {
    let cost = centralized_cost(ctx, t.len() as u64, t.nrows() as u64, t.ncols() as u64);
    let a = t.to_csc();
    let m = hopcroft_karp(&a, None);
    (m, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_bsp::MachineConfig;

    #[test]
    fn cost_grows_linearly_with_edges() {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
        let small = centralized_cost(&mut ctx, 1_000_000, 1000, 1000);
        let large = centralized_cost(&mut ctx, 10_000_000, 1000, 1000);
        let ratio = large.gather_s / small.gather_s;
        assert!((ratio - 10.0).abs() < 0.5, "gather should scale ~linearly, got {ratio}");
    }

    #[test]
    fn single_process_pipeline_is_free() {
        let mut ctx = DistCtx::serial();
        let c = centralized_cost(&mut ctx, 1_000_000, 1000, 1000);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn pipeline_produces_maximum_matching() {
        use mcm_sparse::Vidx;
        let t = Triples::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 0), (2, 2)]);
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let (m, cost) = centralized_matching(&mut ctx, &t);
        assert_eq!(m.cardinality(), 3);
        assert!(cost.total() > 0.0);
        assert!(ctx.timers.seconds(Kernel::Gather) > 0.0);
        let _ = m.mate_r.get(0 as Vidx);
    }
}
