//! Differential oracle sweeps under schedule perturbation (the simtest
//! driver; DESIGN.md §10).
//!
//! One entry point, [`differential_sweep`], runs MCM-DIST end-to-end over
//! a matrix of {grid dims × semirings × initializers × augmentation modes
//! × schedule seeds} on seeded adversarial schedules
//! ([`mcm_bsp::sched`]) and checks, for every configuration:
//!
//! 1. **Cardinality oracle** — the distributed result equals the serial
//!    Hopcroft–Karp *and* Pothen–Fan cardinalities (which are first
//!    cross-checked against each other);
//! 2. **Berge certificate** — [`crate::verify::verify`] accepts the
//!    matching (structural validity + no augmenting path);
//! 3. **Accounting** — on the channel engine, the elements each rank
//!    really sent/received under the perturbed schedule exactly match the
//!    per-rank volumes the cost model charges for the same INVERT routing.
//!
//! Every failure carries the schedule seed that replays it
//! ([`SweepFailure`] formats the full repro recipe; EXPERIMENTS.md
//! "Reproducing a failing schedule"). [`detect_injected_fault`] arms the
//! deliberate `fetch_and_put` bug of [`FaultPlan::broken_fetch_and_put`]
//! and reports the first seed on which the same checks catch it — the
//! harness's own acceptance test.

use crate::auction::{auction, AuctionOptions};
use crate::augment::AugmentMode;
use crate::maximal::Initializer;
use crate::mcm::{maximum_matching, McmOptions};
use crate::portfolio::{solve, MatchingAlgo, PortfolioOptions};
use crate::primitives::invert;
use crate::semirings::SemiringKind;
use crate::serial::{hopcroft_karp, pothen_fan};
use crate::verify;
use mcm_bsp::collectives::{balanced_owner, per_rank_counts, per_rank_index_counts};
use mcm_bsp::engine::run_ranks_sched;
use mcm_bsp::sched::{FaultPlan, SchedConfig, Schedule};
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Csc, SpVec, Triples, Vidx};
use std::fmt;

/// The configuration matrix of one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Process-grid dimensions (`dim × dim` grids, so `p = dim²`).
    pub dims: Vec<usize>,
    /// Frontier-expansion semirings.
    pub semirings: Vec<SemiringKind>,
    /// Maximal-matching initializers.
    pub inits: Vec<Initializer>,
    /// Augmentation kernels.
    pub augments: Vec<AugmentMode>,
    /// Schedule seeds; each seed is one deterministic adversarial
    /// perturbation of every configuration.
    pub sched_seeds: Vec<u64>,
    /// Also run the channel-engine accounting differential per
    /// (case, dim, seed).
    pub engine_check: bool,
    /// Portfolio engines swept alongside MS-BFS: each runs per
    /// (case, dim, seed) with `dim²` worker threads and the schedule seed
    /// as its order-perturbation seed, against the same oracles plus a
    /// seeded `is_maximum_from` Berge certificate.
    pub algos: Vec<MatchingAlgo>,
}

impl SweepConfig {
    /// The per-PR CI matrix: p ∈ {1, 4, 9}, three seeds (ROADMAP's small
    /// scale). The nightly/manual job widens `sched_seeds`.
    pub fn ci() -> Self {
        Self {
            dims: vec![1, 2, 3],
            semirings: vec![SemiringKind::MinParent, SemiringKind::RandRoot(9)],
            inits: vec![Initializer::None, Initializer::KarpSipser],
            augments: vec![AugmentMode::LevelParallel, AugmentMode::PathParallel],
            sched_seeds: vec![0xA11CE, 0xB0B5EED, 0xC0FFEE],
            engine_check: true,
            algos: vec![MatchingAlgo::Ppf, MatchingAlgo::Auction],
        }
    }

    /// The CI matrix with `extra` additional seeds derived from `base`
    /// (the manual larger sweep).
    pub fn ci_with_extra_seeds(base: u64, extra: usize) -> Self {
        let mut cfg = Self::ci();
        let mut rng = SplitMix64::new(base);
        cfg.sched_seeds.extend((0..extra).map(|_| rng.next_u64()));
        cfg
    }
}

/// What a completed sweep covered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Input cases swept.
    pub cases: usize,
    /// End-to-end MCM-DIST runs (every one individually checked).
    pub runs: usize,
    /// One-sided calls serviced under perturbed interleavings, total.
    pub interleave_steps: u64,
    /// Channel-engine accounting differentials executed.
    pub engine_checks: usize,
    /// Portfolio-engine (ppf/auction) runs, each individually checked.
    pub portfolio_runs: usize,
}

/// A checked configuration that failed, with everything needed to replay
/// the exact schedule: `Schedule::new(sched_seed)` (or the same
/// `SchedConfig`) plus the recorded options reproduces it deterministically.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Input case name (from the suite).
    pub case: String,
    /// Grid dimension (`p = dim²`).
    pub dim: usize,
    /// Semiring of the failing run.
    pub semiring: SemiringKind,
    /// Initializer of the failing run.
    pub init: Initializer,
    /// Augmentation mode of the failing run.
    pub augment: AugmentMode,
    /// The seed that replays the failing schedule.
    pub sched_seed: u64,
    /// Engine of the failing run (`"msbfs"`, `"ppf"`, `"auction"`).
    pub algo: &'static str,
    /// Which check tripped, with its diagnostic.
    pub detail: String,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simtest failure [case {}, algo {}, grid {}x{}, {:?}, init {:?}, augment {:?}, \
             sched seed {:#x}]: {}",
            self.case,
            self.algo,
            self.dim,
            self.dim,
            self.semiring,
            self.init,
            self.augment,
            self.sched_seed,
            self.detail
        )?;
        write!(
            f,
            "  reproduce: DistCtx::new(MachineConfig::hybrid({}, 1))\
             .with_schedule(Schedule::new({:#x})) with the options above \
             (see EXPERIMENTS.md, 'Reproducing a failing schedule')",
            self.dim, self.sched_seed
        )
    }
}

impl std::error::Error for SweepFailure {}

/// Runs the full differential sweep; the error is the first failing
/// configuration, carrying its replay seed.
pub fn differential_sweep(
    cases: &[(String, Triples)],
    cfg: &SweepConfig,
) -> Result<SweepReport, Box<SweepFailure>> {
    let mut report = SweepReport { cases: cases.len(), ..Default::default() };
    for (name, graph) in cases {
        let a = graph.to_csc();
        let want = oracle_cardinality(&a).map_err(|detail| {
            Box::new(SweepFailure {
                case: name.clone(),
                dim: 1,
                semiring: SemiringKind::MinParent,
                init: Initializer::None,
                augment: AugmentMode::Auto,
                sched_seed: 0,
                algo: "oracle",
                detail,
            })
        })?;
        for &dim in &cfg.dims {
            for &semiring in &cfg.semirings {
                for &init in &cfg.inits {
                    for &augment in &cfg.augments {
                        for &seed in &cfg.sched_seeds {
                            let sched = Schedule::new(seed);
                            report.runs += 1;
                            report.interleave_steps +=
                                run_one(graph, &a, want, dim, semiring, init, augment, sched)
                                    .map_err(|detail| {
                                        Box::new(SweepFailure {
                                            case: name.clone(),
                                            dim,
                                            semiring,
                                            init,
                                            augment,
                                            sched_seed: seed,
                                            algo: "msbfs",
                                            detail,
                                        })
                                    })?;
                        }
                    }
                }
            }
            if cfg.engine_check {
                for &seed in &cfg.sched_seeds {
                    report.engine_checks += 1;
                    engine_invert_differential(graph, dim * dim, seed).map_err(|detail| {
                        Box::new(SweepFailure {
                            case: name.clone(),
                            dim,
                            semiring: SemiringKind::MinParent,
                            init: Initializer::None,
                            augment: AugmentMode::Auto,
                            sched_seed: seed,
                            algo: "msbfs",
                            detail,
                        })
                    })?;
                }
            }
            for &algo in &cfg.algos {
                for &seed in &cfg.sched_seeds {
                    report.portfolio_runs += 1;
                    run_portfolio_one(graph, &a, want, algo, dim * dim, seed).map_err(
                        |detail| {
                            Box::new(SweepFailure {
                                case: name.clone(),
                                dim,
                                semiring: SemiringKind::MinParent,
                                init: Initializer::None,
                                augment: AugmentMode::Auto,
                                sched_seed: seed,
                                algo: algo.name(),
                                detail,
                            })
                        },
                    )?;
                }
            }
        }
    }
    Ok(report)
}

/// One checked portfolio-engine run: `algo` with `threads` workers under
/// order-perturbation seed `seed`, against the serial-oracle cardinality,
/// the full Berge certificate, and the seeded dirty-region certificate
/// (`is_maximum_from` from every unmatched column).
fn run_portfolio_one(
    graph: &Triples,
    a: &Csc,
    want: usize,
    algo: MatchingAlgo,
    threads: usize,
    seed: u64,
) -> Result<(), String> {
    let opts = PortfolioOptions { algo, threads, seed, ..PortfolioOptions::default() };
    let r = solve(graph, &opts);
    if r.stats.algo != algo.name() {
        return Err(format!("stats.algo reports '{}', expected '{}'", r.stats.algo, algo.name()));
    }
    if r.matching.cardinality() != want {
        return Err(format!(
            "cardinality {} diverged from serial oracles ({want})",
            r.matching.cardinality()
        ));
    }
    verify::verify(a, &r.matching).map_err(|e| e.to_string())?;
    let seeds = r.matching.unmatched_cols();
    if !verify::is_maximum_from(a, &r.matching, &seeds) {
        return Err("seeded is_maximum_from certificate rejected the matching".to_string());
    }
    Ok(())
}

/// Serial oracle cardinality, with Hopcroft–Karp and Pothen–Fan
/// cross-checked against each other first.
fn oracle_cardinality(a: &Csc) -> Result<usize, String> {
    let hk = hopcroft_karp(a, None);
    hk.validate(a).map_err(|e| format!("HK oracle invalid: {e}"))?;
    let pf = pothen_fan(a, None);
    pf.validate(a).map_err(|e| format!("PF oracle invalid: {e}"))?;
    if hk.cardinality() != pf.cardinality() {
        return Err(format!(
            "serial oracles disagree: HK {} vs PF {}",
            hk.cardinality(),
            pf.cardinality()
        ));
    }
    Ok(hk.cardinality())
}

/// One checked end-to-end run under one schedule; `Ok` carries the
/// interleaved service steps it contributed.
#[allow(clippy::too_many_arguments)]
fn run_one(
    graph: &Triples,
    a: &Csc,
    want: usize,
    dim: usize,
    semiring: SemiringKind,
    init: Initializer,
    augment: AugmentMode,
    sched: Schedule,
) -> Result<u64, String> {
    let seed = sched.seed();
    let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1)).with_schedule(sched);
    let opts = McmOptions {
        semiring,
        augment,
        init,
        permute_seed: Some(seed),
        seed,
        ..Default::default()
    };
    let r = maximum_matching(&mut ctx, graph, &opts);
    if r.matching.cardinality() != want {
        return Err(format!(
            "cardinality {} diverged from serial oracles ({want})",
            r.matching.cardinality()
        ));
    }
    verify::verify(a, &r.matching).map_err(|e| e.to_string())?;
    debug_assert_eq!(r.stats.sched_seed, Some(seed));
    Ok(r.stats.sched_interleave_steps)
}

/// The accounting differential: INVERT routing executed on `p` real ranks
/// under a perturbed schedule must (a) reproduce the simulator's result
/// bit-for-bit and (b) send/receive exactly the per-rank element counts
/// the cost model charges — stalls, retries, and reordering included.
fn engine_invert_differential(graph: &Triples, p: usize, seed: u64) -> Result<(), String> {
    // An injective routed vector derived from the case: entry i ↦ a
    // pseudo-random distinct destination, the shape INVERT sees from the
    // matching algorithms.
    let n = graph.nrows().max(graph.ncols()).max(p);
    let mut dests: Vec<Vidx> = (0..n as Vidx).collect();
    let mut rng = SplitMix64::new(seed ^ 0x1274E57);
    for k in (1..n).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        dests.swap(k, j);
    }
    let x: SpVec<Vidx> =
        SpVec::from_sorted_pairs(n, (0..n).step_by(2).map(|i| (i as Vidx, dests[i])).collect());

    // Real ranks, perturbed schedule.
    let sched = Schedule::new(seed);
    let per_rank_pairs: Vec<Vec<(Vidx, Vidx)>> = {
        let mut v: Vec<Vec<(Vidx, Vidx)>> = (0..p).map(|_| Vec::new()).collect();
        for (i, &val) in x.iter() {
            v[balanced_owner(n, p, i as usize)].push((i, val));
        }
        v
    };
    let results = run_ranks_sched::<(Vidx, Vidx), _, _>(p, &sched, |mut comm| {
        let rank = comm.rank();
        let group: Vec<usize> = (0..p).collect();
        let mut sends: Vec<Vec<(Vidx, Vidx)>> = (0..p).map(|_| Vec::new()).collect();
        for &(i, val) in &per_rank_pairs[rank] {
            sends[balanced_owner(n, p, val as usize)].push((val, i));
        }
        let received = comm.alltoallv(&group, sends);
        let recv_count: u64 = received.iter().map(|m| m.len() as u64).sum();
        let mut mine: Vec<(Vidx, Vidx)> = received.into_iter().flatten().collect();
        mine.sort_unstable();
        mine.dedup_by_key(|&mut (k, _)| k);
        (mine, comm.sent_elems(), recv_count)
    });

    let mut entries = Vec::new();
    let mut sent = Vec::new();
    let mut recvd = Vec::new();
    for (mine, s, r) in results {
        entries.extend(mine);
        sent.push(s);
        recvd.push(r);
    }
    entries.sort_unstable_by_key(|&(i, _)| i);
    let real = SpVec::from_sorted_pairs(n, entries);

    // Simulator reference and charged per-rank volumes.
    let mut ctx = DistCtx::new(MachineConfig::hybrid(1, 1));
    let simulated = invert(&mut ctx, Kernel::Invert, &x, n);
    if real != simulated {
        return Err(format!("perturbed engine INVERT diverged from the simulator (p = {p})"));
    }
    let model_send = per_rank_counts(&x, p);
    let model_recv = per_rank_index_counts(n, p, x.iter().map(|(_, &v)| v));
    if sent != model_send {
        return Err(format!(
            "sent-element accounting diverged from charged volumes: engine {sent:?} vs model \
             {model_send:?} (p = {p})"
        ));
    }
    if recvd != model_recv {
        return Err(format!(
            "received-element accounting diverged from charged volumes: engine {recvd:?} vs \
             model {model_recv:?} (p = {p})"
        ));
    }
    Ok(())
}

/// Arms [`FaultPlan::broken_fetch_and_put`] (the deliberately injected
/// interleaving bug: `fetch_and_put` loses its fetch) and runs the same
/// checks the sweep applies, path-parallel, on `graph`. Returns the first
/// seed on which the harness catches the bug together with the failure it
/// reported — `None` means the bug escaped the whole seed budget (which
/// the harness's own tests treat as a harness regression).
pub fn detect_injected_fault(
    graph: &Triples,
    sched_seeds: &[u64],
) -> Option<(u64, Box<SweepFailure>)> {
    let a = graph.to_csc();
    let want = oracle_cardinality(&a).expect("oracle failed on fault-injection input");
    let cfg = SchedConfig { fault: FaultPlan::broken_fetch_and_put(), ..SchedConfig::default() };
    for &seed in sched_seeds {
        let sched = Schedule::with_config(seed, cfg);
        let (semiring, init, augment) =
            (SemiringKind::MinParent, Initializer::Greedy, AugmentMode::PathParallel);
        if let Err(detail) = run_one(graph, &a, want, 1, semiring, init, augment, sched) {
            return Some((
                seed,
                Box::new(SweepFailure {
                    case: "fault-injection".into(),
                    dim: 1,
                    semiring,
                    init,
                    augment,
                    sched_seed: seed,
                    algo: "msbfs",
                    detail,
                }),
            ));
        }
    }
    None
}

/// The auction-engine analogue of [`detect_injected_fault`]: arms the
/// deliberate "lost bidder" bid-update bug
/// ([`AuctionOptions::fault_lost_bidder`] — evicted owners are dropped
/// instead of re-enqueued) and runs the same per-run checks the portfolio
/// sweep applies. Returns the first seed on which the harness catches the
/// bug; `None` means it escaped the whole seed budget (a harness
/// regression, pinned by tests on eviction-heavy instances).
pub fn detect_injected_auction_fault(
    graph: &Triples,
    sched_seeds: &[u64],
) -> Option<(u64, Box<SweepFailure>)> {
    let a = graph.to_csc();
    let want = oracle_cardinality(&a).expect("oracle failed on fault-injection input");
    for &seed in sched_seeds {
        let opts = AuctionOptions { seed, fault_lost_bidder: true, ..AuctionOptions::default() };
        let r = auction(&a, &opts);
        let detail = if r.matching.cardinality() != want {
            format!(
                "cardinality {} diverged from serial oracles ({want})",
                r.matching.cardinality()
            )
        } else if let Err(e) = verify::verify(&a, &r.matching) {
            e.to_string()
        } else if !verify::is_maximum_from(&a, &r.matching, &r.matching.unmatched_cols()) {
            "seeded is_maximum_from certificate rejected the matching".to_string()
        } else {
            continue;
        };
        return Some((
            seed,
            Box::new(SweepFailure {
                case: "auction-fault-injection".into(),
                dim: 1,
                semiring: SemiringKind::MinParent,
                init: Initializer::None,
                augment: AugmentMode::Auto,
                sched_seed: seed,
                algo: "auction",
                detail,
            }),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(k: usize) -> Triples {
        // c_i — r_i and r_i — c_{i+1}: one maximal-length augmenting chain
        // (mirrors mcm-gen's `hard::chain` without a core→gen dependency).
        let mut t = Triples::new(k, k);
        for i in 0..k as Vidx {
            t.push(i, i);
            if (i as usize) + 1 < k {
                t.push(i, i + 1);
            }
        }
        t
    }

    #[test]
    fn tiny_sweep_passes() {
        let cases = vec![("chain_5".to_string(), chain_graph(5))];
        let cfg = SweepConfig {
            dims: vec![1, 2],
            semirings: vec![SemiringKind::MinParent],
            inits: vec![Initializer::None],
            augments: vec![AugmentMode::PathParallel],
            sched_seeds: vec![1, 2],
            engine_check: true,
            algos: vec![],
        };
        let report = differential_sweep(&cases, &cfg).unwrap_or_else(|e| panic!("{e}"));
        // 2 dims × 1 semiring × 1 init × 1 augment × 2 seeds.
        assert_eq!(report.runs, 4);
        assert_eq!(report.engine_checks, 2 * 2);
        assert_eq!(report.portfolio_runs, 0);
        assert!(report.interleave_steps > 0, "perturbed RMA epochs never ran");
    }

    #[test]
    fn tiny_sweep_covers_portfolio_engines() {
        let cases = vec![("chain_5".to_string(), chain_graph(5))];
        let cfg = SweepConfig {
            dims: vec![1, 2],
            semirings: vec![SemiringKind::MinParent],
            inits: vec![Initializer::None],
            augments: vec![AugmentMode::PathParallel],
            sched_seeds: vec![1, 2],
            engine_check: false,
            algos: vec![MatchingAlgo::Ppf, MatchingAlgo::Auction],
        };
        let report = differential_sweep(&cases, &cfg).unwrap_or_else(|e| panic!("{e}"));
        // 2 dims × 2 algos × 2 seeds.
        assert_eq!(report.portfolio_runs, 8);
    }

    #[test]
    fn injected_auction_fault_is_caught_and_replays() {
        // chain(6) forces an eviction cascade (see auction.rs tests), so
        // the lost-bidder bug strands the tail row.
        let g = chain_graph(6);
        let budget: Vec<u64> = (0..3).collect();
        let (seed, failure) = detect_injected_auction_fault(&g, &budget)
            .expect("lost-bidder auction bug escaped the harness");
        let msg = failure.to_string();
        assert_eq!(failure.algo, "auction");
        assert!(
            msg.contains(&format!("{seed:#x}")),
            "failure report must print the replay seed: {msg}"
        );
        let (seed2, failure2) =
            detect_injected_auction_fault(&g, &[seed]).expect("replay lost the bug");
        assert_eq!(seed2, seed);
        assert_eq!(failure2.detail, failure.detail, "replay diverged from original failure");
        // Clean auction runs pass the identical checks on the same seeds.
        let a = g.to_csc();
        let want = oracle_cardinality(&a).unwrap();
        for seed in budget {
            run_portfolio_one(&g, &a, want, MatchingAlgo::Auction, 1, seed)
                .unwrap_or_else(|e| panic!("clean auction run failed under seed {seed}: {e}"));
        }
    }

    #[test]
    fn injected_fault_is_caught_and_replays() {
        let g = chain_graph(6);
        let budget: Vec<u64> = (0..3).collect();
        let (seed, failure) =
            detect_injected_fault(&g, &budget).expect("broken fetch_and_put escaped the harness");
        let msg = failure.to_string();
        assert!(
            msg.contains(&format!("{seed:#x}")),
            "failure report must print the replay seed: {msg}"
        );
        // Replaying the same seed must reproduce the identical failure.
        let (seed2, failure2) = detect_injected_fault(&g, &[seed]).expect("replay lost the bug");
        assert_eq!(seed2, seed);
        assert_eq!(failure2.detail, failure.detail, "replay diverged from original failure");
    }

    #[test]
    fn clean_schedules_pass_where_fault_is_caught() {
        // Sanity: the detection above is due to the armed fault, not the
        // perturbation itself.
        let g = chain_graph(6);
        let a = g.to_csc();
        let want = oracle_cardinality(&a).unwrap();
        for seed in 0..3 {
            run_one(
                &g,
                &a,
                want,
                1,
                SemiringKind::MinParent,
                Initializer::Greedy,
                AugmentMode::PathParallel,
                Schedule::new(seed),
            )
            .unwrap_or_else(|e| panic!("clean schedule {seed} failed: {e}"));
        }
    }
}
