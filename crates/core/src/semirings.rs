//! The matching semirings: `(select2nd, minParent)`, `(select2nd,
//! randParent)`, `(select2nd, randRoot)`.
//!
//! §III-B: the semiring multiply is `select2nd` — exploring column `j` hands
//! each neighbouring row the value `Vertex(parent = j, root = root(f_c[j]))`
//! — and the "addition" selects among candidates arriving at the same row:
//!
//! * **minParent** keeps the candidate with the smallest parent index
//!   (deterministic, the paper's running example),
//! * **randParent** keeps a pseudo-random candidate keyed by parent,
//! * **randRoot** keeps a pseudo-random candidate keyed by root — *"useful
//!   to randomly distribute vertices among alternating trees, ensuring
//!   better balance of tree sizes"*.
//!
//! Randomized selections hash `(seed, candidate index)` instead of drawing
//! from a stateful RNG, so distributed folds and the serial kernel make
//! identical choices regardless of arrival order or process grid.

use crate::vertex::Vertex;
use mcm_sparse::Vidx;

/// Which `(select2nd, ⊕)` semiring MCM-DIST uses for frontier expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SemiringKind {
    /// Keep the minimum parent index.
    #[default]
    MinParent,
    /// Keep the candidate whose hashed parent is smallest (seeded).
    RandParent(u64),
    /// Keep the candidate whose hashed root is smallest (seeded).
    RandRoot(u64),
}

/// A strong 64-bit mix (SplitMix64 finalizer) for order-free tie-breaking.
#[inline]
fn mix(seed: u64, v: Vidx) -> u64 {
    let mut z = seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SemiringKind {
    /// The semiring "addition" as a selection: `true` keeps the incoming
    /// candidate. Total order on candidates ⇒ associative, commutative, and
    /// arrival-order independent.
    #[inline]
    pub fn take_incoming(&self, acc: &Vertex, inc: &Vertex) -> bool {
        match *self {
            SemiringKind::MinParent => inc.parent < acc.parent,
            SemiringKind::RandParent(seed) => {
                (mix(seed, inc.parent), inc.parent) < (mix(seed, acc.parent), acc.parent)
            }
            SemiringKind::RandRoot(seed) => {
                (mix(seed, inc.root), inc.root) < (mix(seed, acc.root), acc.root)
            }
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SemiringKind::MinParent => "minParent",
            SemiringKind::RandParent(_) => "randParent",
            SemiringKind::RandRoot(_) => "randRoot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_parent_selects_smaller_parent() {
        let s = SemiringKind::MinParent;
        let a = Vertex::new(3, 9);
        let b = Vertex::new(1, 5);
        assert!(s.take_incoming(&a, &b));
        assert!(!s.take_incoming(&b, &a));
    }

    #[test]
    fn selections_are_total_orders() {
        // For each semiring and any pair, exactly one of (take a→b, take b→a,
        // equal-key) holds — required for arrival-order independence.
        for s in [SemiringKind::MinParent, SemiringKind::RandParent(42), SemiringKind::RandRoot(42)]
        {
            for pa in 0..6u32 {
                for pb in 0..6u32 {
                    let a = Vertex::new(pa, pa + 10);
                    let b = Vertex::new(pb, pb + 10);
                    let ab = s.take_incoming(&a, &b);
                    let ba = s.take_incoming(&b, &a);
                    assert!(!(ab && ba), "{s:?} not antisymmetric for {pa},{pb}");
                    if pa != pb {
                        assert!(ab || ba, "{s:?} not total for {pa},{pb}");
                    }
                }
            }
        }
    }

    #[test]
    fn rand_semirings_depend_on_seed() {
        let a = Vertex::new(0, 0);
        let b = Vertex::new(1, 1);
        let picks: Vec<bool> =
            (0..32u64).map(|seed| SemiringKind::RandRoot(seed).take_incoming(&a, &b)).collect();
        assert!(picks.iter().any(|&x| x) && picks.iter().any(|&x| !x));
    }

    #[test]
    fn rand_root_ignores_parent() {
        let s = SemiringKind::RandRoot(7);
        let a = Vertex::new(0, 4);
        let b = Vertex::new(9, 4); // same root, different parent
        assert!(!s.take_incoming(&a, &b));
        assert!(!s.take_incoming(&b, &a));
    }
}
