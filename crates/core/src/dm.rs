//! Coarse Dulmage–Mendelsohn decomposition.
//!
//! The paper's motivating application (§I) is preprocessing for distributed
//! sparse solvers; the canonical consumer of a bipartite maximum matching in
//! that world is the Dulmage–Mendelsohn decomposition, which permutes any
//! rectangular sparse matrix into block triangular form
//!
//! ```text
//!        HC        SC        VC
//!   HR [ A_h        *         *  ]   horizontal: underdetermined rows
//!   SR [  0        A_s        *  ]   square:     perfectly matchable
//!   VR [  0         0        A_v ]   vertical:   overdetermined rows
//! ```
//!
//! computed from a maximum matching by two alternating-reachability sweeps:
//! the *horizontal* part is everything alternating-reachable from unmatched
//! **columns**, the *vertical* part everything reachable from unmatched
//! **rows**, and the *square* part the rest (where the matching is perfect).

use crate::cover::alternating_reach_from_cols;
use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

/// Which coarse block a vertex belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmBlock {
    /// Underdetermined part (more columns than rows).
    Horizontal,
    /// Perfectly matched part.
    Square,
    /// Overdetermined part (more rows than columns).
    Vertical,
}

/// The coarse Dulmage–Mendelsohn decomposition of an `n1 × n2` matrix.
#[derive(Clone, Debug)]
pub struct DmDecomposition {
    /// Block of each row vertex.
    pub row_block: Vec<DmBlock>,
    /// Block of each column vertex.
    pub col_block: Vec<DmBlock>,
}

impl DmDecomposition {
    /// Rows in `block`.
    pub fn rows_in(&self, block: DmBlock) -> Vec<Vidx> {
        self.row_block
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == block).then_some(i as Vidx))
            .collect()
    }

    /// Columns in `block`.
    pub fn cols_in(&self, block: DmBlock) -> Vec<Vidx> {
        self.col_block
            .iter()
            .enumerate()
            .filter_map(|(j, &b)| (b == block).then_some(j as Vidx))
            .collect()
    }

    /// `true` when the matrix is structurally nonsingular: square and with
    /// an empty horizontal and vertical part.
    pub fn is_structurally_nonsingular(&self) -> bool {
        self.row_block.iter().all(|&b| b == DmBlock::Square)
            && self.col_block.iter().all(|&b| b == DmBlock::Square)
    }
}

/// Rows/columns alternating-reachable from the unmatched **rows**
/// (row → any edge → column → matched edge → row …).
fn alternating_reach_from_rows(a: &Csc, at: &Csc, m: &Matching) -> (Vec<bool>, Vec<bool>) {
    debug_assert_eq!(at.nrows(), a.ncols());
    let mut row_z = vec![false; a.nrows()];
    let mut col_z = vec![false; a.ncols()];
    let mut queue: Vec<Vidx> = Vec::new();
    for r in 0..a.nrows() {
        if !m.row_matched(r as Vidx) {
            row_z[r] = true;
            queue.push(r as Vidx);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let r = queue[head];
        head += 1;
        for &c in at.col(r as usize) {
            if col_z[c as usize] {
                continue;
            }
            col_z[c as usize] = true;
            let mate = m.mate_c.get(c);
            if mate != NIL && !row_z[mate as usize] {
                row_z[mate as usize] = true;
                queue.push(mate);
            }
        }
    }
    (row_z, col_z)
}

/// Computes the coarse DM decomposition from a **maximum** matching.
///
/// # Panics
/// Debug-panics when `m` is not a valid matching of `a` (the decomposition
/// is only meaningful for maximum matchings; with a non-maximum one the
/// horizontal and vertical parts would intersect).
///
/// # Example
///
/// ```
/// use mcm_core::dm::{dulmage_mendelsohn, DmBlock};
/// use mcm_core::serial::hopcroft_karp;
/// use mcm_sparse::Triples;
///
/// // A wide 1x3 block is underdetermined: everything lands in Horizontal.
/// let a = Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]).to_csc();
/// let m = hopcroft_karp(&a, None);
/// let dm = dulmage_mendelsohn(&a, &m);
/// assert_eq!(dm.row_block[0], DmBlock::Horizontal);
/// assert!(!dm.is_structurally_nonsingular());
/// ```
pub fn dulmage_mendelsohn(a: &Csc, m: &Matching) -> DmDecomposition {
    debug_assert!(m.validate(a).is_ok());
    let at = a.transpose();
    let (h_rows, h_cols) = alternating_reach_from_cols(a, m);
    let (v_rows, v_cols) = alternating_reach_from_rows(a, &at, m);

    let row_block = (0..a.nrows())
        .map(|r| {
            debug_assert!(
                !(h_rows[r] && v_rows[r]),
                "horizontal and vertical parts intersect: matching not maximum"
            );
            if h_rows[r] {
                DmBlock::Horizontal
            } else if v_rows[r] {
                DmBlock::Vertical
            } else {
                DmBlock::Square
            }
        })
        .collect();
    let col_block = (0..a.ncols())
        .map(|c| {
            if h_cols[c] {
                DmBlock::Horizontal
            } else if v_cols[c] {
                DmBlock::Vertical
            } else {
                DmBlock::Square
            }
        })
        .collect();
    DmDecomposition { row_block, col_block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    fn decompose(t: &Triples) -> (Csc, Matching, DmDecomposition) {
        let a = t.to_csc();
        let m = hopcroft_karp(&a, None);
        let dm = dulmage_mendelsohn(&a, &m);
        (a, m, dm)
    }

    #[test]
    fn perfect_matching_is_all_square() {
        let t = Triples::from_edges(3, 3, vec![(0, 0), (1, 1), (2, 2), (0, 1)]);
        let (_, _, dm) = decompose(&t);
        assert!(dm.is_structurally_nonsingular());
    }

    #[test]
    fn wide_matrix_is_horizontal() {
        // 1 row, 3 columns, all adjacent: underdetermined.
        let t = Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]);
        let (_, _, dm) = decompose(&t);
        assert_eq!(dm.row_block, vec![DmBlock::Horizontal]);
        assert!(dm.col_block.iter().all(|&b| b == DmBlock::Horizontal));
    }

    #[test]
    fn tall_matrix_is_vertical() {
        let t = Triples::from_edges(3, 1, vec![(0, 0), (1, 0), (2, 0)]);
        let (_, _, dm) = decompose(&t);
        assert_eq!(dm.col_block, vec![DmBlock::Vertical]);
        assert!(dm.row_block.iter().all(|&b| b == DmBlock::Vertical));
    }

    #[test]
    fn mixed_blocks() {
        // Horizontal island (r0; c0, c1), square island (r1-c2), vertical
        // island (r2, r3; c3).
        let t = Triples::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 2), (2, 3), (3, 3)]);
        let (_, _, dm) = decompose(&t);
        assert_eq!(dm.row_block[0], DmBlock::Horizontal);
        assert_eq!(dm.row_block[1], DmBlock::Square);
        assert_eq!(dm.row_block[2], DmBlock::Vertical);
        assert_eq!(dm.row_block[3], DmBlock::Vertical);
        assert_eq!(dm.col_block[0], DmBlock::Horizontal);
        assert_eq!(dm.col_block[1], DmBlock::Horizontal);
        assert_eq!(dm.col_block[2], DmBlock::Square);
        assert_eq!(dm.col_block[3], DmBlock::Vertical);
    }

    /// The structural zero blocks of the block-triangular form.
    fn assert_block_triangular(a: &Csc, dm: &DmDecomposition) {
        for (r, c) in a.iter() {
            let rb = dm.row_block[r as usize];
            let cb = dm.col_block[c as usize];
            // A column in HC may only touch HR rows; a row in VR may only
            // touch VC columns; square rows may not touch horizontal cols.
            if cb == DmBlock::Horizontal {
                assert_eq!(rb, DmBlock::Horizontal, "edge ({r},{c}) breaks the zero block");
            }
            if rb == DmBlock::Vertical {
                assert_eq!(cb, DmBlock::Vertical, "edge ({r},{c}) breaks the zero block");
            }
        }
    }

    #[test]
    fn zero_blocks_hold_on_random_graphs() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(2121);
        for _ in 0..40 {
            let n1 = 3 + (rng.next_u64() % 25) as usize;
            let n2 = 3 + (rng.next_u64() % 25) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..2 * n1.max(n2) {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let (a, m, dm) = decompose(&t);
            assert_block_triangular(&a, &dm);
            // The square part carries a perfect matching.
            let sr = dm.rows_in(DmBlock::Square);
            let sc = dm.cols_in(DmBlock::Square);
            assert_eq!(sr.len(), sc.len());
            for &r in &sr {
                let c = m.mate_r.get(r);
                assert!(dm.col_block[c as usize] == DmBlock::Square);
            }
        }
    }
}
