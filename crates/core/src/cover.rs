//! König's theorem: a minimum vertex cover from a maximum matching.
//!
//! In bipartite graphs the minimum vertex cover has exactly the size of the
//! maximum matching (König, 1931), and one is extracted from the other by
//! the same alternating-reachability search the matching algorithms run.
//! The cover doubles as an independently checkable *optimality certificate*:
//! if a claimed matching yields a valid cover of equal size, the matching is
//! maximum — this is the LP-duality check `verify::assert_maximum` rests on
//! conceptually, and sparse solvers use the same sets for the
//! Dulmage–Mendelsohn decomposition ([`crate::dm`]).

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

/// A vertex cover of a bipartite graph: a set of rows and columns touching
/// every edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexCover {
    /// Covered (selected) row vertices.
    pub rows: Vec<Vidx>,
    /// Covered (selected) column vertices.
    pub cols: Vec<Vidx>,
}

impl VertexCover {
    /// Total size of the cover.
    pub fn size(&self) -> usize {
        self.rows.len() + self.cols.len()
    }

    /// `true` when every edge of `a` has at least one endpoint in the cover.
    pub fn covers(&self, a: &Csc) -> bool {
        let mut row_in = vec![false; a.nrows()];
        let mut col_in = vec![false; a.ncols()];
        for &r in &self.rows {
            row_in[r as usize] = true;
        }
        for &c in &self.cols {
            col_in[c as usize] = true;
        }
        a.iter().all(|(r, c)| row_in[r as usize] || col_in[c as usize])
    }
}

/// Rows/columns reachable from the unmatched columns by alternating paths
/// (column → any edge → row → matched edge → column …).
pub(crate) fn alternating_reach_from_cols(a: &Csc, m: &Matching) -> (Vec<bool>, Vec<bool>) {
    let mut col_z = vec![false; a.ncols()];
    let mut row_z = vec![false; a.nrows()];
    let mut queue: Vec<Vidx> = Vec::new();
    for c in 0..a.ncols() {
        if !m.col_matched(c as Vidx) {
            col_z[c] = true;
            queue.push(c as Vidx);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        for &r in a.col(c as usize) {
            if row_z[r as usize] {
                continue;
            }
            row_z[r as usize] = true;
            let mate = m.mate_r.get(r);
            if mate != NIL && !col_z[mate as usize] {
                col_z[mate as usize] = true;
                queue.push(mate);
            }
        }
    }
    (row_z, col_z)
}

/// Extracts a minimum vertex cover from a **maximum** matching via König's
/// construction: with `Z` the vertices alternating-reachable from unmatched
/// columns, the cover is `(columns ∉ Z) ∪ (rows ∈ Z)`.
///
/// The result is only guaranteed to be a (minimum) cover when `m` is
/// maximum; `cover_certifies` reports whether the certificate closed.
///
/// # Example
///
/// ```
/// use mcm_core::cover::{cover_certifies, koenig_cover};
/// use mcm_core::serial::hopcroft_karp;
/// use mcm_sparse::Triples;
///
/// let a = Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]).to_csc();
/// let m = hopcroft_karp(&a, None);
/// let cover = koenig_cover(&a, &m);
/// assert_eq!(cover.size(), m.cardinality()); // LP duality: both optimal
/// assert!(cover_certifies(&a, &m));
/// ```
pub fn koenig_cover(a: &Csc, m: &Matching) -> VertexCover {
    let (row_z, col_z) = alternating_reach_from_cols(a, m);
    VertexCover {
        rows: (0..a.nrows() as Vidx).filter(|&r| row_z[r as usize]).collect(),
        cols: (0..a.ncols() as Vidx).filter(|&c| !col_z[c as usize]).collect(),
    }
}

/// `true` iff König's construction certifies `m` as maximum: the extracted
/// set is a valid cover **and** has exactly `|M|` vertices (LP duality —
/// any cover is ≥ any matching, so equality pins both as optimal).
pub fn cover_certifies(a: &Csc, m: &Matching) -> bool {
    let cover = koenig_cover(a, m);
    cover.covers(a) && cover.size() == m.cardinality()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    fn z_graph() -> Csc {
        Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc()
    }

    #[test]
    fn cover_of_maximum_matching_is_minimum() {
        let a = z_graph();
        let m = hopcroft_karp(&a, None);
        assert_eq!(m.cardinality(), 2);
        let cover = koenig_cover(&a, &m);
        assert!(cover.covers(&a));
        assert_eq!(cover.size(), 2);
        assert!(cover_certifies(&a, &m));
    }

    #[test]
    fn suboptimal_matching_fails_certification() {
        let a = z_graph();
        let mut m = Matching::empty(2, 2);
        m.add(0, 0); // maximal but not maximum
        assert!(!cover_certifies(&a, &m));
    }

    #[test]
    fn star_graph_cover_is_the_center() {
        // One row adjacent to three columns: cover = {row 0}.
        let a = Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]).to_csc();
        let m = hopcroft_karp(&a, None);
        let cover = koenig_cover(&a, &m);
        assert!(cover.covers(&a));
        assert_eq!(cover.size(), 1);
        assert_eq!(cover.rows, vec![0]);
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let a = Triples::new(3, 3).to_csc();
        let m = Matching::empty(3, 3);
        let cover = koenig_cover(&a, &m);
        assert_eq!(cover.size(), 0);
        assert!(cover.covers(&a));
        assert!(cover_certifies(&a, &m));
    }

    #[test]
    fn certificate_on_random_graphs() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(808);
        for _ in 0..40 {
            let n1 = 3 + (rng.next_u64() % 20) as usize;
            let n2 = 3 + (rng.next_u64() % 20) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..2 * n1.max(n2) {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            let m = hopcroft_karp(&a, None);
            assert!(cover_certifies(&a, &m));
        }
    }
}
