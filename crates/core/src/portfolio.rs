//! The algorithm portfolio: one front door over the three first-class
//! engines — MS-BFS (the paper's MCM-DIST), parallel Pothen–Fan
//! ([`crate::ppf`]) and the ε-scaled auction ([`crate::auction`]) — plus
//! the `auto` selector that picks an engine from cheap measured graph
//! statistics (DESIGN.md §15).
//!
//! The selector reads three numbers off one O(nnz) pass over the
//! deduplicated graph: density, side ratio and degree skew. All three are
//! label-permutation-invariant (they depend only on the degree multisets
//! and the dimensions), so `auto` is deterministic and cannot be steered
//! by vertex relabeling — properties pinned by `tests/algo_portfolio.rs`.
//! The placement heuristic: dense blocks go to the auction (per-bidder
//! parallelism and Naparstek–Leshem's expected-time analysis favour
//! crowded random instances), heavy degree skew or a strongly rectangular
//! shape goes to Pothen–Fan (lookahead DFS drains hub-dominated and
//! deficient instances in few phases), and everything else takes MS-BFS,
//! the paper's engine. Every run is differential-tested against the
//! serial oracles regardless of the pick.

use crate::auction::{auction, AuctionOptions};
use crate::matching::Matching;
use crate::mcm::{
    maximum_matching, maximum_matching_engine, maximum_matching_shared, McmOptions, McmResult,
    McmStats,
};
use crate::ppf::{ppf, PpfOptions};
use crate::weighted::{auction_mwm_par, WeightedResult};
use mcm_bsp::{DistCtx, MachineConfig};
use mcm_sparse::{Csc, Triples, WCsc};
use std::fmt;
use std::str::FromStr;

/// Which matching engine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchingAlgo {
    /// The paper's distributed MS-BFS (MCM-DIST) on a `Communicator`.
    MsBfs,
    /// Parallel Pothen–Fan lookahead-DFS ([`crate::ppf`]).
    Ppf,
    /// ε-scaled per-bidder auction ([`crate::auction`]).
    Auction,
    /// Pick one of the above from measured graph stats.
    Auto,
}

impl MatchingAlgo {
    /// Every concrete engine (excludes `Auto`).
    pub const CONCRETE: [MatchingAlgo; 3] =
        [MatchingAlgo::MsBfs, MatchingAlgo::Ppf, MatchingAlgo::Auction];

    /// The CLI / metrics-label name.
    pub fn name(self) -> &'static str {
        match self {
            MatchingAlgo::MsBfs => "msbfs",
            MatchingAlgo::Ppf => "ppf",
            MatchingAlgo::Auction => "auction",
            MatchingAlgo::Auto => "auto",
        }
    }
}

impl fmt::Display for MatchingAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MatchingAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "msbfs" => Ok(MatchingAlgo::MsBfs),
            "ppf" => Ok(MatchingAlgo::Ppf),
            "auction" => Ok(MatchingAlgo::Auction),
            "auto" => Ok(MatchingAlgo::Auto),
            other => Err(format!("unknown algorithm '{other}' (expected msbfs|ppf|auction|auto)")),
        }
    }
}

/// Cheap measured statistics the `auto` selector decides by. Computed in
/// one pass over the deduplicated CSC; invariant under row/column
/// relabeling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectorStats {
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Distinct edges.
    pub nnz: usize,
    /// `nnz / (nrows · ncols)`; 0 on degenerate shapes.
    pub density: f64,
    /// `max(nrows, ncols) / min(nrows, ncols)`; 1 on degenerate shapes.
    pub side_ratio: f64,
    /// `max degree / mean nonzero-side degree`, the worse of the two
    /// orientations; 1 on empty graphs.
    pub degree_skew: f64,
}

impl SelectorStats {
    /// Density above which the auction engine is preferred.
    pub const DENSE: f64 = 0.05;
    /// Degree skew above which Pothen–Fan is preferred.
    pub const SKEWED: f64 = 8.0;
    /// Side ratio above which Pothen–Fan is preferred.
    pub const RECTANGULAR: f64 = 4.0;
    /// Degree skew **below** which a dense instance is routed to PPF
    /// instead of the auction. Crown-like shapes — dense, square, and
    /// degree-uniform (crown(n) has every degree n−1, skew exactly 1) —
    /// are drained by PPF's greedy + lookahead in one `O(nnz)` phase,
    /// while the auction runs price dynamics over all n² edges:
    /// BENCH_algo.json has the density rule losing ~40× on crown_256.
    /// The auction's home turf, crowded *random* instances, sits well
    /// above this bound (a binomial degree distribution puts the max
    /// degree at ≥ 2× the mean at these sizes).
    pub const UNIFORM: f64 = 1.25;

    /// Measures the selector inputs (deduplicates via CSC assembly).
    pub fn measure(t: &Triples) -> SelectorStats {
        Self::measure_csc(&t.to_csc())
    }

    /// Measures the selector inputs from an already-assembled CSC.
    pub fn measure_csc(a: &Csc) -> SelectorStats {
        let (n1, n2) = (a.nrows(), a.ncols());
        let mut nnz = 0usize;
        let mut max_col = 0usize;
        let mut row_deg = vec![0usize; n1];
        for c in 0..n2 {
            let col = a.col(c);
            nnz += col.len();
            max_col = max_col.max(col.len());
            for &r in col {
                row_deg[r as usize] += 1;
            }
        }
        let max_row = row_deg.iter().copied().max().unwrap_or(0);
        let skew = |max_deg: usize, n: usize| -> f64 {
            if nnz == 0 || n == 0 {
                1.0
            } else {
                max_deg as f64 / (nnz as f64 / n as f64)
            }
        };
        SelectorStats {
            nrows: n1,
            ncols: n2,
            nnz,
            density: if n1 == 0 || n2 == 0 { 0.0 } else { nnz as f64 / (n1 as f64 * n2 as f64) },
            side_ratio: if n1 == 0 || n2 == 0 {
                1.0
            } else {
                n1.max(n2) as f64 / n1.min(n2) as f64
            },
            degree_skew: skew(max_row, n1).max(skew(max_col, n2)),
        }
    }

    /// The selector decision; always a concrete engine, never `Auto`.
    /// Shape rules run before the density rule: a strongly rectangular
    /// graph has a high `nnz/(n1·n2)` purely because its small side is
    /// small, and skewed-degree instances are PPF's home turf even when
    /// crowded. The density rule itself carries a uniformity guard
    /// ([`Self::UNIFORM`]): dense but degree-uniform instances (crowns,
    /// complete blocks) are price-war fuel for the auction and trivial
    /// for PPF, so only dense instances with genuine degree variance go
    /// to the auction.
    pub fn choose(&self) -> MatchingAlgo {
        if self.nnz == 0 {
            MatchingAlgo::MsBfs
        } else if self.degree_skew >= Self::SKEWED || self.side_ratio >= Self::RECTANGULAR {
            MatchingAlgo::Ppf
        } else if self.density >= Self::DENSE {
            if self.degree_skew <= Self::UNIFORM {
                MatchingAlgo::Ppf // crown guard: dense + uniform
            } else {
                MatchingAlgo::Auction
            }
        } else {
            MatchingAlgo::MsBfs
        }
    }
}

/// Which machine MS-BFS runs on when the portfolio picks it. PPF and the
/// auction are shared-memory engines — they take `threads` directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortfolioBackend {
    /// Cost-model simulator on a `grid × grid` process grid.
    Sim {
        /// Process-grid side (ranks = grid²).
        grid: usize,
        /// Modeled threads per rank.
        threads: usize,
    },
    /// Thread-per-rank channel-mesh engine.
    Engine {
        /// Real ranks (perfect square).
        p: usize,
        /// Worker threads per rank.
        threads: usize,
    },
    /// Fused shared-memory backend with simulator-identical accounting.
    Shared {
        /// Logical ranks (perfect square).
        p: usize,
        /// Worker threads.
        threads: usize,
    },
}

impl Default for PortfolioBackend {
    fn default() -> Self {
        PortfolioBackend::Sim { grid: 2, threads: 1 }
    }
}

/// Options of [`solve`].
#[derive(Clone, Copy, Debug)]
pub struct PortfolioOptions {
    /// Engine to run; `Auto` measures [`SelectorStats`] and picks.
    pub algo: MatchingAlgo,
    /// Machine for the MS-BFS engine.
    pub backend: PortfolioBackend,
    /// Worker threads for the PPF / auction engines.
    pub threads: usize,
    /// MS-BFS tunables (ignored by PPF / auction).
    pub mcm: McmOptions,
    /// Deterministic order-perturbation seed for PPF / auction (the
    /// simtest schedule analogue); `0` keeps natural order.
    pub seed: u64,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        Self {
            algo: MatchingAlgo::Auto,
            backend: PortfolioBackend::default(),
            threads: 1,
            mcm: McmOptions::default(),
            seed: 0,
        }
    }
}

/// Resolves `Auto` to a concrete engine for this graph (measures only
/// when needed); returns the engine together with the measured stats.
pub fn resolve_algo(t: &Triples, algo: MatchingAlgo) -> (MatchingAlgo, Option<SelectorStats>) {
    match algo {
        MatchingAlgo::Auto => {
            let s = SelectorStats::measure(t);
            (s.choose(), Some(s))
        }
        concrete => (concrete, None),
    }
}

/// Runs the portfolio on `t`: resolves `Auto`, dispatches the engine, and
/// stamps `McmStats::algo`/`algo_auto` plus the
/// `mcm_algo_runs_total{algo,selector}` metric.
pub fn solve(t: &Triples, opts: &PortfolioOptions) -> McmResult {
    let was_auto = opts.algo == MatchingAlgo::Auto;
    let (algo, _) = resolve_algo(t, opts.algo);
    mcm_obs::counter_add(
        "mcm_algo_runs_total",
        &[("algo", algo.name()), ("selector", if was_auto { "auto" } else { "explicit" })],
        1,
    );
    let mut result = match algo {
        MatchingAlgo::MsBfs => match opts.backend {
            PortfolioBackend::Sim { grid, threads } => {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(grid, threads));
                maximum_matching(&mut ctx, t, &opts.mcm)
            }
            PortfolioBackend::Engine { p, threads } => {
                maximum_matching_engine(p, threads, t, &opts.mcm)
            }
            PortfolioBackend::Shared { p, threads } => {
                maximum_matching_shared(p, threads, t, &opts.mcm)
            }
        },
        MatchingAlgo::Ppf => {
            let a = t.to_csc();
            let ppf_opts = PpfOptions { threads: opts.threads, fairness: true, seed: opts.seed };
            let r = ppf(&a, None, &ppf_opts);
            McmResult {
                matching: r.matching,
                stats: McmStats {
                    algo: "ppf",
                    phases: r.stats.phases,
                    augmentations: r.stats.paths,
                    ..Default::default()
                },
            }
        }
        MatchingAlgo::Auction => {
            let a = t.to_csc();
            let auction_opts = AuctionOptions {
                threads: opts.threads,
                seed: opts.seed,
                ..AuctionOptions::default()
            };
            let r = auction(&a, &auction_opts);
            let stats = McmStats {
                algo: "auction",
                phases: r.stats.scales,
                iterations: r.stats.rounds,
                augmentations: r.matching.cardinality(),
                ..Default::default()
            };
            McmResult { matching: r.matching, stats }
        }
        MatchingAlgo::Auto => unreachable!("resolve_algo returns concrete engines"),
    };
    result.stats.algo_auto = was_auto;
    result
}

/// Convenience: [`solve`] returning only the matching.
pub fn solve_matching(t: &Triples, opts: &PortfolioOptions) -> Matching {
    solve(t, opts).matching
}

/// The weighted front door: maximum *weight* matching through the
/// portfolio. The weighted domain has one engine today — the parallel
/// ε-scaled auction ([`crate::weighted::auction_mwm_par`]) — so no
/// selector runs; `opts.threads` and `opts.seed` carry over exactly as
/// for the cardinality auction. Stamps the shared
/// `mcm_algo_runs_total{algo="wauction"}` counter and the
/// `mcm_matching_weight` gauge.
pub fn solve_weighted(a: &WCsc, opts: &PortfolioOptions) -> WeightedResult {
    mcm_obs::counter_add(
        "mcm_algo_runs_total",
        &[("algo", "wauction"), ("selector", "explicit")],
        1,
    );
    let r = auction_mwm_par(
        a,
        &AuctionOptions { threads: opts.threads, seed: opts.seed, ..AuctionOptions::default() },
    );
    mcm_obs::gauge_set("mcm_matching_weight", &[], r.weight);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::permute::SplitMix64;
    use mcm_sparse::Vidx;

    #[test]
    fn parse_and_display_round_trip() {
        for algo in
            [MatchingAlgo::MsBfs, MatchingAlgo::Ppf, MatchingAlgo::Auction, MatchingAlgo::Auto]
        {
            assert_eq!(algo.name().parse::<MatchingAlgo>().unwrap(), algo);
            assert_eq!(format!("{algo}"), algo.name());
        }
        assert!("frobnicate".parse::<MatchingAlgo>().is_err());
        assert!("MSBFS".parse::<MatchingAlgo>().is_err(), "names are case-sensitive");
    }

    #[test]
    fn selector_routes_the_intended_shapes() {
        // Dense with genuine degree variance → auction. A 10-cycle of
        // degree-2 columns plus one degree-5 hub column: density 0.23,
        // skew ≈ 2.2 — above UNIFORM, below SKEWED.
        let mut dense = Triples::new(10, 10);
        for j in 0..10u32 {
            dense.push(j, j);
            dense.push((j + 1) % 10, j);
        }
        for r in 2..5u32 {
            dense.push(r, 0);
        }
        let s = SelectorStats::measure(&dense);
        assert!(s.density >= SelectorStats::DENSE, "density {}", s.density);
        assert!(
            s.degree_skew > SelectorStats::UNIFORM && s.degree_skew < SelectorStats::SKEWED,
            "skew {}",
            s.degree_skew
        );
        assert_eq!(s.choose(), MatchingAlgo::Auction);

        // Dense but degree-uniform (complete block, skew exactly 1) →
        // ppf via the crown guard.
        let mut block = Triples::new(8, 8);
        for r in 0..8u32 {
            for c in 0..8u32 {
                block.push(r, c);
            }
        }
        let s = SelectorStats::measure(&block);
        assert!(s.degree_skew <= SelectorStats::UNIFORM);
        assert_eq!(s.choose(), MatchingAlgo::Ppf);

        // Hub-dominated sparse graph → ppf.
        let mut hub = Triples::new(64, 64);
        for c in 0..64u32 {
            hub.push(0, c);
        }
        for i in 1..64u32 {
            hub.push(i, i);
        }
        let s = SelectorStats::measure(&hub);
        assert!(s.degree_skew >= SelectorStats::SKEWED, "skew {}", s.degree_skew);
        assert_eq!(s.choose(), MatchingAlgo::Ppf);

        // Strongly rectangular sparse graph → ppf.
        let mut rect = Triples::new(8, 64);
        for c in 0..64u32 {
            rect.push(c % 8, c);
        }
        assert_eq!(SelectorStats::measure(&rect).choose(), MatchingAlgo::Ppf);

        // Balanced sparse graph → msbfs; empty graph → msbfs.
        let mut plain = Triples::new(64, 64);
        for i in 0..64u32 {
            plain.push(i, i);
            plain.push((i + 1) % 64, i);
        }
        assert_eq!(SelectorStats::measure(&plain).choose(), MatchingAlgo::MsBfs);
        assert_eq!(SelectorStats::measure(&Triples::new(64, 64)).choose(), MatchingAlgo::MsBfs);
    }

    #[test]
    fn every_engine_agrees_with_the_oracle() {
        let mut rngv = SplitMix64::new(0x60_7F);
        for _ in 0..12 {
            let n1 = 4 + (rngv.next_u64() % 24) as usize;
            let n2 = 4 + (rngv.next_u64() % 24) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..2 * n1.max(n2) {
                t.push(rngv.below(n1 as u64) as Vidx, rngv.below(n2 as u64) as Vidx);
            }
            let want = hopcroft_karp(&t.to_csc(), None).cardinality();
            for algo in MatchingAlgo::CONCRETE {
                let r = solve(&t, &PortfolioOptions { algo, ..PortfolioOptions::default() });
                assert_eq!(r.matching.cardinality(), want, "algo {algo}");
                assert_eq!(r.stats.algo, algo.name());
                assert!(!r.stats.algo_auto);
            }
            let auto = solve(&t, &PortfolioOptions::default());
            assert_eq!(auto.matching.cardinality(), want);
            assert!(auto.stats.algo_auto);
            assert_ne!(auto.stats.algo, "auto", "auto must resolve to a concrete engine");
        }
    }
}
