//! The matrix-algebraic primitives of Table I: `IND`, `SELECT`, `SET`,
//! `INVERT`, `PRUNE`.
//!
//! Every primitive is written once against the backend-agnostic
//! [`Communicator`] trait, so the same code executes on the cost-model
//! simulator ([`mcm_bsp::DistCtx`]) and on the thread-per-rank engine
//! ([`mcm_bsp::EngineComm`]). Each function performs the operation on the
//! (logically or physically distributed) vectors and charges the
//! communication/computation the paper's Table I and §IV-B attribute to it:
//!
//! | op     | communication                         | computation        |
//! |--------|---------------------------------------|--------------------|
//! | IND    | none                                  | O(nnz(x))          |
//! | SELECT | none (sparse and dense are aligned)   | O(nnz(x))          |
//! | SET    | none                                  | O(nnz(x))          |
//! | INVERT | personalized all-to-all (value→owner) | O(nnz(x))          |
//! | PRUNE  | allgather of the root set             | sort + binary search |
//!
//! Computation is charged at the *bottleneck rank* (max entries owned by any
//! of the `p` ranks), divided by the threads-per-process. The communicating
//! primitives (`INVERT`, `PRUNE`) route their payloads through
//! [`Communicator::alltoallv`] / [`Communicator::allgatherv`], which move
//! real message buffers on the engine backend and charge the identical
//! α–β–γ formulas on both.

use mcm_bsp::collectives::{balanced_owner, max_count, per_rank_counts};
use mcm_bsp::{Communicator, Kernel};
use mcm_sparse::triples::block_offsets;
use mcm_sparse::{DenseVec, SpVec, Vidx};

/// `SELECT(x, y, expr)`: keep the entries of sparse `x` whose aligned dense
/// entry satisfies `pred`. Purely local (vectors share the same block
/// distribution).
pub fn select<C: Communicator, T: Clone>(
    comm: &mut C,
    kernel: Kernel,
    x: &SpVec<T>,
    y: &DenseVec,
    pred: impl Fn(Vidx) -> bool,
) -> SpVec<T> {
    let _span = mcm_obs::kernel_span("select", kernel.name());
    assert_eq!(x.len(), y.len(), "SELECT requires aligned vectors");
    charge_local(comm, kernel, x);
    x.filter(|i, _| pred(y.get(i)))
}

/// `SET(y, x)` with a dense target: `y[i] ← f(x[i])` for every explicit
/// entry of `x`. Local.
pub fn set_dense<C: Communicator, T>(
    comm: &mut C,
    kernel: Kernel,
    y: &mut DenseVec,
    x: &SpVec<T>,
    f: impl Fn(&T) -> Vidx,
) {
    let _span = mcm_obs::kernel_span("set_dense", kernel.name());
    assert_eq!(x.len(), y.len(), "SET requires aligned vectors");
    charge_local(comm, kernel, x);
    for (i, v) in x.iter() {
        y.set(i, f(v));
    }
}

/// `SET(x, y)` with a sparse target: replace every explicit value of `x`
/// with the aligned dense value `y[i]`. Local.
pub fn set_sparse<C: Communicator>(
    comm: &mut C,
    kernel: Kernel,
    x: &SpVec<Vidx>,
    y: &DenseVec,
) -> SpVec<Vidx> {
    let _span = mcm_obs::kernel_span("set_sparse", kernel.name());
    assert_eq!(x.len(), y.len(), "SET requires aligned vectors");
    charge_local(comm, kernel, x);
    x.map_indexed(y)
}

/// `INVERT(x)`: swap indices and values. Entry `(i, v)` of `x` becomes entry
/// `(key(v), value(i, v))` of the result, which has logical length
/// `result_len`. On repeated keys the entry with the smallest original index
/// wins ("If x has repeated nonzero values, only one of them is used ... we
/// keep the first index").
///
/// Communication: every pair is routed to the rank owning its *new* index —
/// a personalized all-to-all over all `p` ranks (§IV-B). The pairs really
/// travel through [`Communicator::alltoallv`]; draining the received
/// messages destination-major and source-ascending reproduces the original
/// index order per key, so the keep-first dedup is bit-identical on both
/// backends.
pub fn invert_by<C: Communicator, T, U: Send + Clone>(
    comm: &mut C,
    kernel: Kernel,
    x: &SpVec<T>,
    result_len: usize,
    key: impl Fn(&T) -> Vidx,
    value: impl Fn(Vidx, &T) -> U,
) -> SpVec<U> {
    let _span = mcm_obs::kernel_span("invert", kernel.name());
    let p = comm.p();
    let n = x.len();
    let mut sends: Vec<Vec<Vec<(Vidx, U)>>> =
        (0..p).map(|_| (0..p).map(|_| Vec::new()).collect()).collect();
    for (i, v) in x.iter() {
        let src = balanced_owner(n.max(1), p, i as usize);
        let k = key(v);
        let dst = balanced_owner(result_len.max(1), p, k as usize);
        sends[src][dst].push((k, value(i, v)));
    }
    let send_max =
        sends.iter().map(|row| row.iter().map(|m| m.len() as u64).sum::<u64>()).max().unwrap_or(0);
    let recvd = comm.alltoallv(kernel, 2, sends);
    let recv_max =
        recvd.iter().map(|row| row.iter().map(|m| m.len() as u64).sum::<u64>()).max().unwrap_or(0);
    // Local packing/unpacking on the bottleneck rank (streaming sweeps).
    comm.ctx_mut().charge_compute_stream(kernel, send_max + recv_max);

    // Drain destination-major, source-ascending: sources own contiguous
    // ascending index ranges, so each key's candidates appear in original
    // index order and the stable keep-first dedup matches the serial INVERT.
    let mut pairs: Vec<(Vidx, U)> = Vec::new();
    for row in recvd {
        for msg in row {
            pairs.extend(msg);
        }
    }
    SpVec::from_pairs(result_len, pairs)
}

/// `INVERT` for plain index-valued vectors: `z[x[i]] = i`.
pub fn invert<C: Communicator>(
    comm: &mut C,
    kernel: Kernel,
    x: &SpVec<Vidx>,
    result_len: usize,
) -> SpVec<Vidx> {
    invert_by(comm, kernel, x, result_len, |&v| v, |i, _| i)
}

/// `PRUNE(x, q)`: remove the entries of `x` whose `key` appears in `q` (the
/// roots of trees that discovered augmenting paths this iteration).
///
/// Communication: `q` is allgathered on all ranks — `αp + βµ` (§IV-B). Each
/// rank contributes its balanced block of the root set; the concatenation
/// every rank receives is the full `q`.
/// Computation: `min(sort(ψ) + µ·log ψ, sort(µ) + ψ·log µ)` from Table I;
/// we sort the (usually much smaller) root set `q` and binary-search each of
/// the ψ frontier entries into it.
pub fn prune<C: Communicator, T: Clone>(
    comm: &mut C,
    kernel: Kernel,
    x: &SpVec<T>,
    q: &[Vidx],
    key: impl Fn(&T) -> Vidx,
) -> SpVec<T> {
    let _span = mcm_obs::kernel_span("prune", kernel.name());
    let p = comm.p();
    let mu = q.len() as u64;
    let off = block_offsets(q.len(), p);
    let chunks: Vec<Vec<Vidx>> = (0..p).map(|r| q[off[r]..off[r + 1]].to_vec()).collect();
    let gathered = comm.allgatherv(kernel, 1, chunks);
    let roots: Vec<Vidx> = gathered.into_iter().flatten().collect();
    debug_assert_eq!(roots, q, "allgathered root set must reassemble q");

    let psi_max = max_count(&per_rank_counts(x, p));
    let log_mu = (mu.max(2) as f64).log2().ceil() as u64;
    let sort_mu = mu * log_mu;
    comm.ctx_mut().charge_compute_stream(kernel, sort_mu + psi_max * log_mu);

    let mut sorted = roots;
    sorted.sort_unstable();
    sorted.dedup();
    x.filter(|_, v| sorted.binary_search(&key(v)).is_err())
}

/// Charges `O(nnz)` streaming local work at the bottleneck rank.
fn charge_local<C: Communicator, T>(comm: &mut C, kernel: Kernel, x: &SpVec<T>) {
    let counts = per_rank_counts(x, comm.p());
    comm.ctx_mut().charge_compute_stream(kernel, max_count(&counts));
}

/// Extension trait hosting the aligned-gather used by [`set_sparse`].
trait MapIndexed {
    fn map_indexed(&self, y: &DenseVec) -> SpVec<Vidx>;
}

impl MapIndexed for SpVec<Vidx> {
    fn map_indexed(&self, y: &DenseVec) -> SpVec<Vidx> {
        SpVec::from_sorted_pairs(self.len(), self.iter().map(|(i, _)| (i, y.get(i))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_bsp::{DistCtx, EngineComm};
    use mcm_sparse::NIL;

    fn ctx() -> DistCtx {
        DistCtx::new(mcm_bsp::MachineConfig::hybrid(2, 1))
    }

    #[test]
    fn select_keeps_matching_entries() {
        // Table I example: x = [3,-,2,2,-] (explicit at 0,2,3),
        // y = [1,-1,-1,2,1]; SELECT(x, y == -1) keeps index 2 only... in the
        // paper's example SELECT(x,y) with expr y[i]=-1 yields [-,-,2,-,-].
        let mut c = ctx();
        let x = SpVec::from_pairs(5, vec![(0, 3u32), (2, 2), (3, 2)]);
        let y = DenseVec::from_vec(vec![1, NIL, NIL, 2, 1]);
        let z = select(&mut c, Kernel::Select, &x, &y, |v| v == NIL);
        assert_eq!(z.entries(), &[(2, 2)]);
    }

    #[test]
    fn set_dense_writes_values() {
        let mut c = ctx();
        let mut y = DenseVec::nil(5);
        let x = SpVec::from_pairs(5, vec![(1, 7u32), (4, 2)]);
        set_dense(&mut c, Kernel::Select, &mut y, &x, |&v| v);
        assert_eq!(y.as_slice(), &[NIL, 7, NIL, NIL, 2]);
    }

    #[test]
    fn set_sparse_gathers_dense_values() {
        let mut c = ctx();
        let x = SpVec::from_pairs(4, vec![(0, 99u32), (2, 99)]);
        let y = DenseVec::from_vec(vec![5, 6, 7, 8]);
        let z = set_sparse(&mut c, Kernel::Select, &x, &y);
        assert_eq!(z.entries(), &[(0, 5), (2, 7)]);
    }

    #[test]
    fn invert_matches_table1_example() {
        // Table I: x = [3,-,2,2,-] → INVERT(x) has z[3]=0, z[2]=2 (first
        // index kept for the duplicate value 2).
        let mut c = ctx();
        let x = SpVec::from_pairs(5, vec![(0, 3u32), (2, 2), (3, 2)]);
        let z = invert(&mut c, Kernel::Invert, &x, 5);
        assert_eq!(z.entries(), &[(2, 2), (3, 0)]);
    }

    #[test]
    fn invert_charges_alltoall() {
        let mut c = ctx(); // p = 4, edison costs
        let x = SpVec::from_pairs(8, vec![(0, 7u32), (5, 1)]);
        let before = c.timers.seconds(Kernel::Invert);
        let _ = invert(&mut c, Kernel::Invert, &x, 8);
        assert!(c.timers.seconds(Kernel::Invert) > before);
    }

    #[test]
    fn invert_charges_match_the_direct_route_formula() {
        // The trait-routed INVERT must charge exactly what the hard-wired
        // charge_invert_route always charged: an alltoallv at the
        // bottleneck pair volume plus a streaming pack/unpack sweep.
        let x = SpVec::from_pairs(8, vec![(0, 0u32), (2, 0), (4, 0), (6, 0)]);
        let mut direct = ctx();
        direct.charge_invert_route(Kernel::Invert, &x, 8, |&v| v);
        let mut routed = ctx();
        let _ = invert(&mut routed, Kernel::Invert, &x, 8);
        assert_eq!(
            direct.timers.seconds(Kernel::Invert),
            routed.timers.seconds(Kernel::Invert),
            "routed INVERT drifted from the modeled charge"
        );
        assert_eq!(direct.timers.calls(Kernel::Invert), routed.timers.calls(Kernel::Invert));
    }

    #[test]
    fn invert_and_prune_agree_across_backends() {
        let x = SpVec::from_pairs(10, vec![(0, 3u32), (2, 7), (3, 7), (5, 1), (7, 3), (9, 0)]);
        for p in [1usize, 4, 9] {
            let dim = (p as f64).sqrt() as usize;
            let mut sim = DistCtx::new(mcm_bsp::MachineConfig::hybrid(dim, 1));
            let mut eng = EngineComm::new(p, 1);
            let a = invert(&mut sim, Kernel::Invert, &x, 10);
            let b = invert(&mut eng, Kernel::Invert, &x, 10);
            assert_eq!(a, b, "INVERT diverged at p = {p}");
            let q = [7u32, 0];
            let pa = prune(&mut sim, Kernel::Prune, &x, &q, |&v| v);
            let pb = prune(&mut eng, Kernel::Prune, &x, &q, |&v| v);
            assert_eq!(pa, pb, "PRUNE diverged at p = {p}");
            assert_eq!(pa.entries(), &[(0, 3), (5, 1), (7, 3)]);
        }
    }

    #[test]
    fn prune_removes_keyed_entries() {
        let mut c = ctx();
        let x = SpVec::from_pairs(6, vec![(0, 10u32), (2, 20), (4, 10), (5, 30)]);
        let z = prune(&mut c, Kernel::Prune, &x, &[10, 30], |&v| v);
        assert_eq!(z.entries(), &[(2, 20)]);
    }

    #[test]
    fn prune_with_empty_root_set_is_identity() {
        let mut c = ctx();
        let x = SpVec::from_pairs(3, vec![(1, 5u32)]);
        let z = prune(&mut c, Kernel::Prune, &x, &[], |&v| v);
        assert_eq!(z, x);
    }
}
