//! MCM-DIST: the distributed maximum-cardinality-matching driver
//! (Algorithm 2 of the paper).
//!
//! Each *phase* runs a level-synchronous multi-source BFS from all unmatched
//! column vertices, tracking `(parent, root)` pairs over a semiring SpMSpV,
//! records at most one augmenting path per alternating tree, optionally
//! prunes trees that already found a path, and finally augments by all
//! discovered vertex-disjoint paths (Algorithm 3 or 4). Phases repeat until
//! one finds no augmenting path, which certifies maximum cardinality
//! (Berge's theorem; `verify::is_maximum` re-checks this independently in
//! the tests).

use crate::augment::{augment, AugmentMode, AugmentReport};
use crate::matching::Matching;
use crate::maximal::Initializer;
use crate::primitives::{invert_by, prune, select, set_dense};
use crate::semirings::SemiringKind;
use crate::vertex::Vertex;
use mcm_bsp::collectives::per_rank_counts;
use mcm_bsp::{
    Communicator, DistCtx, DistMatrix, EngineComm, Kernel, ReduceOp, SharedComm, SpmvPlan,
};
use mcm_sparse::permute::{relabel_permutations, Permutation};
use mcm_sparse::{CscView, DenseVec, SpVec, Triples, Vidx, NIL};

/// Tunables of MCM-DIST.
#[derive(Clone, Copy, Debug)]
pub struct McmOptions {
    /// Frontier-expansion semiring (§III-B).
    pub semiring: SemiringKind,
    /// Prune trees that already discovered a path (Step 6; Fig. 8 ablation).
    pub prune: bool,
    /// Augmentation kernel selection (§IV-B).
    pub augment: AugmentMode,
    /// Maximal-matching initializer (§VI-A).
    pub init: Initializer,
    /// Direction-optimizing BFS (§VII future work, after Beamer): switch
    /// to bottom-up frontier expansion when the frontier covers a large
    /// fraction of the columns. Bit-identical results under `MinParent`.
    pub direction_optimizing: bool,
    /// Randomly permute rows/columns for load balance (§IV-A) with this
    /// seed. The returned matching is mapped back to original labels.
    pub permute_seed: Option<u64>,
    /// Seed for the randomized initializer (Karp–Sipser's fallback
    /// order). Randomized *semirings* carry their own seed inside
    /// [`SemiringKind`].
    pub seed: u64,
}

impl Default for McmOptions {
    fn default() -> Self {
        Self {
            semiring: SemiringKind::MinParent,
            prune: true,
            augment: AugmentMode::Auto,
            init: Initializer::DynamicMindegree,
            direction_optimizing: false,
            permute_seed: Some(0x5EED),
            seed: 1,
        }
    }
}

/// Counters describing one MCM-DIST run.
#[derive(Clone, Debug, Default)]
pub struct McmStats {
    /// Phases executed (including the final, path-free one).
    pub phases: usize,
    /// Level-synchronous BFS iterations across all phases.
    pub iterations: usize,
    /// Total augmenting paths applied.
    pub augmentations: usize,
    /// Cardinality contributed by the initializer.
    pub init_cardinality: usize,
    /// BFS iterations expanded bottom-up (direction optimization).
    pub bottom_up_iterations: usize,
    /// One report per phase that augmented.
    pub augment_reports: Vec<AugmentReport>,
    /// Kernel calls served by the reused SpMSpV plan (all blocks).
    pub spmv_workspace_calls: u64,
    /// Plan calls that ran entirely on warm buffers (no allocation).
    pub spmv_workspace_hits: u64,
    /// Bytes of sparse-accumulator capacity reused instead of reallocated.
    pub spmv_bytes_reused: u64,
    /// Wall-clock nanoseconds of each top-down SpMSpV iteration (in order
    /// across phases; bottom-up iterations are not included).
    pub spmv_iteration_ns: Vec<u64>,
    /// Seed of the simtest schedule this run executed under (`None` on the
    /// friendly fixed schedule) — the failure-report handle that replays
    /// the exact perturbation.
    pub sched_seed: Option<u64>,
    /// One-sided calls serviced under perturbed interleavings, summed over
    /// all path-parallel augmentation epochs.
    pub sched_interleave_steps: u64,
    /// Which engine produced the result (`"msbfs"`, `"ppf"`,
    /// `"auction"`; see `portfolio::MatchingAlgo`). Empty only on
    /// default-constructed stats.
    pub algo: &'static str,
    /// `true` when `--algo auto` picked the engine from measured graph
    /// stats rather than an explicit request.
    pub algo_auto: bool,
}

/// The result of [`maximum_matching`].
#[derive(Clone, Debug)]
pub struct McmResult {
    /// A maximum cardinality matching (in the caller's vertex labels).
    pub matching: Matching,
    /// Run counters.
    pub stats: McmStats,
}

/// Computes a maximum cardinality matching of the bipartite graph `t` on
/// the machine behind `comm` — the cost-model simulator ([`DistCtx`]) or
/// the thread-per-rank engine ([`EngineComm`]); modeled time accrues into
/// the backend's timers either way.
pub fn maximum_matching<C: Communicator>(
    comm: &mut C,
    t: &Triples,
    opts: &McmOptions,
) -> McmResult {
    // Load-balancing random relabeling (§IV-A); undone before returning.
    // The permutation (and the transpose for At) is fused into the block
    // scatter of matrix assembly — no permuted/transposed triple list is
    // ever materialized.
    let perms = opts.permute_seed.map(|seed| relabel_permutations(t.nrows(), t.ncols(), seed));
    let (rowp, colp) = (perms.as_ref().map(|p| &p.0), perms.as_ref().map(|p| &p.1));

    // The transpose is needed by the row-proposing initializers and by the
    // bottom-up direction; when anything wants it, build both orientations
    // from a single fused scatter pass.
    // Blocks live on the backend's *physical* execution grid (1×1 for the
    // shared backend, the accounting grid otherwise).
    let (epr, epc) = comm.exec_grid();
    let needs_at = !matches!(opts.init, Initializer::None) || opts.direction_optimizing;
    let (a, at) = if needs_at {
        let (a, at) = DistMatrix::with_grid_mapped_pair(t, epr, epc, rowp, colp);
        (a, Some(at))
    } else {
        (DistMatrix::with_grid_mapped(t, epr, epc, rowp, colp, false), None)
    };
    let mut m = match (&opts.init, &at) {
        (Initializer::None, _) => Matching::empty(a.nrows(), a.ncols()),
        (init, Some(at)) => init.run(comm, &a, at, opts.seed),
        _ => unreachable!("needs_at covers every non-None initializer"),
    };
    let mut stats =
        McmStats { init_cardinality: m.cardinality(), algo: "msbfs", ..Default::default() };

    run_phases(comm, &a, at.as_ref(), &mut m, opts, &mut stats);

    let matching = match perms {
        None => m,
        Some((rowp, colp)) => unpermute(m, &rowp, &colp),
    };
    McmResult { matching, stats }
}

/// [`maximum_matching`] from a borrowed CSC view — the zero-copy path for
/// mmap-backed MCSB graphs (`mcm-store`).
///
/// Identical pipeline, but matrix assembly reads the view in place
/// ([`DistMatrix::with_grid_csc_pair`]): the default load-balancing
/// relabeling streams permuted coordinates through a two-pass counting
/// build, so no triple list (permuted or otherwise) is ever materialized.
/// Produces the same matching as [`maximum_matching`] on the equivalent
/// triples (asserted by `tests/store.rs`).
pub fn maximum_matching_view<C: Communicator>(
    comm: &mut C,
    v: &CscView<'_>,
    opts: &McmOptions,
) -> McmResult {
    let perms = opts.permute_seed.map(|seed| relabel_permutations(v.nrows(), v.ncols(), seed));
    let (rowp, colp) = (perms.as_ref().map(|p| &p.0), perms.as_ref().map(|p| &p.1));
    let (epr, epc) = comm.exec_grid();
    let needs_at = !matches!(opts.init, Initializer::None) || opts.direction_optimizing;
    let (a, at) = if needs_at {
        let (a, at) = DistMatrix::with_grid_csc_pair(v, epr, epc, rowp, colp);
        (a, Some(at))
    } else {
        (DistMatrix::with_grid_csc(v, epr, epc, rowp, colp, false), None)
    };
    let mut m = match (&opts.init, &at) {
        (Initializer::None, _) => Matching::empty(a.nrows(), a.ncols()),
        (init, Some(at)) => init.run(comm, &a, at, opts.seed),
        _ => unreachable!("needs_at covers every non-None initializer"),
    };
    let mut stats =
        McmStats { init_cardinality: m.cardinality(), algo: "msbfs", ..Default::default() };

    run_phases(comm, &a, at.as_ref(), &mut m, opts, &mut stats);

    let matching = match perms {
        None => m,
        Some((rowp, colp)) => unpermute(m, &rowp, &colp),
    };
    McmResult { matching, stats }
}

/// Warm-start entry point: resumes MCM-DIST from an existing valid (not
/// necessarily maximal) matching instead of running an initializer.
///
/// §V of the paper shows a warm start removes most of the BFS work; the
/// incremental engine (`mcm-dyn`) leans on this as its large-dirty-set
/// fallback — after a batch of edge updates, the stale matching is still
/// valid on the new graph (matched deletions were unmatched first), so the
/// phase loop only has to repair the damaged region.
///
/// # Panics
/// Panics when `warm`'s dimensions do not match `t`'s; debug-panics when
/// `warm` is not a valid matching of `t`.
pub fn maximum_matching_from<C: Communicator>(
    comm: &mut C,
    t: &Triples,
    warm: Matching,
    opts: &McmOptions,
) -> McmResult {
    maximum_matching_from_pooled(comm, t, warm, opts, &mut SolverPool::new())
}

/// Reusable cross-solve state for repeated warm-started runs: the SpMSpV
/// plan (per-block workspaces + frontier-slice buffers) and the dense
/// `parent_r`/`path_c` phase vectors.
///
/// One [`maximum_matching_from`] call pays ~1.3ms of cold allocations on
/// the benchmark instances before its first iteration runs warm; a
/// service that falls back repeatedly (`mcm-dyn`'s large-dirty-set path,
/// `mcmd` under load) pays it per solve. Holding a `SolverPool` across
/// [`maximum_matching_from_pooled`] calls keeps those buffers at their
/// high-water mark instead: every call after the first runs entirely on
/// warm workspaces as long as the grid shape is stable (buffers regrow
/// transparently when the graph outgrows them).
pub struct SolverPool {
    plan: SpmvPlan<Vertex, Vertex>,
    parent_r: DenseVec,
    path_c: DenseVec,
    /// Solves serviced through this pool.
    solves: u64,
}

impl SolverPool {
    /// An empty pool; buffers materialize on first use.
    pub fn new() -> Self {
        Self {
            plan: SpmvPlan::new(),
            parent_r: DenseVec::nil(0),
            path_c: DenseVec::nil(0),
            solves: 0,
        }
    }

    /// Solves serviced through this pool since construction.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Cumulative workspace reuse counters of the pooled plan (across all
    /// solves, unlike the per-run diff in [`McmStats`]).
    pub fn workspace_stats(&self) -> mcm_sparse::workspace::WorkspaceStats {
        self.plan.stats()
    }
}

impl Default for SolverPool {
    fn default() -> Self {
        Self::new()
    }
}

/// A cloned pool starts cold: the buffers belong to the original.
impl Clone for SolverPool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ws = self.plan.stats();
        f.debug_struct("SolverPool")
            .field("solves", &self.solves)
            .field("spmv_calls", &ws.calls)
            .field("spmv_reuse_hits", &ws.reuse_hits)
            .finish()
    }
}

/// [`maximum_matching_from`] with buffers drawn from (and returned to) a
/// caller-held [`SolverPool`], so repeated warm-started solves skip the
/// per-solve cold allocations.
pub fn maximum_matching_from_pooled<C: Communicator>(
    comm: &mut C,
    t: &Triples,
    warm: Matching,
    opts: &McmOptions,
    pool: &mut SolverPool,
) -> McmResult {
    assert!(
        warm.n1() == t.nrows() && warm.n2() == t.ncols(),
        "warm matching is {}x{} but the graph is {}x{}",
        warm.n1(),
        warm.n2(),
        t.nrows(),
        t.ncols()
    );
    debug_assert!(warm.validate(&t.to_csc()).is_ok());
    let perms = opts.permute_seed.map(|seed| relabel_permutations(t.nrows(), t.ncols(), seed));
    let (rowp, colp) = (perms.as_ref().map(|p| &p.0), perms.as_ref().map(|p| &p.1));
    let (epr, epc) = comm.exec_grid();
    let a = DistMatrix::with_grid_mapped(t, epr, epc, rowp, colp, false);
    let at = opts
        .direction_optimizing
        .then(|| DistMatrix::with_grid_mapped(t, epr, epc, rowp, colp, true));
    let mut m = match &perms {
        None => warm,
        Some((rowp, colp)) => permute_matching(warm, rowp, colp),
    };
    let mut stats =
        McmStats { init_cardinality: m.cardinality(), algo: "msbfs", ..Default::default() };

    run_phases_pooled(comm, &a, at.as_ref(), &mut m, opts, &mut stats, pool);

    let matching = match perms {
        None => m,
        Some((rowp, colp)) => unpermute(m, &rowp, &colp),
    };
    McmResult { matching, stats }
}

/// Maps a matching in original labels into relabeled vertices (the inverse
/// of [`unpermute`], used by the warm-start entry).
fn permute_matching(m: Matching, rowp: &Permutation, colp: &Permutation) -> Matching {
    let mut out = Matching::empty(m.n1(), m.n2());
    for j in 0..m.n2() as Vidx {
        let i = m.mate_c.get(j);
        if i != NIL {
            out.add(rowp.apply(i), colp.apply(j));
        }
    }
    out
}

/// The phase loop of Algorithm 2, operating on an already-distributed
/// matrix and matching (used directly by benches that pre-distribute).
/// `at` (the transpose) is only consulted when `opts.direction_optimizing`.
pub fn run_phases<C: Communicator>(
    comm: &mut C,
    a: &DistMatrix,
    at: Option<&DistMatrix>,
    m: &mut Matching,
    opts: &McmOptions,
    stats: &mut McmStats,
) {
    run_phases_pooled(comm, a, at, m, opts, stats, &mut SolverPool::new());
}

/// [`run_phases`] with buffers drawn from a caller-held [`SolverPool`]:
/// the SpMSpV plan and the dense phase vectors persist across calls, so a
/// second solve on the same grid starts with every buffer already at its
/// high-water mark (the per-solve cold-allocation cost drops to zero).
pub fn run_phases_pooled<C: Communicator>(
    comm: &mut C,
    a: &DistMatrix,
    at: Option<&DistMatrix>,
    m: &mut Matching,
    opts: &McmOptions,
    stats: &mut McmStats,
    pool: &mut SolverPool,
) {
    let (n1, n2) = (a.nrows(), a.ncols());
    pool.solves += 1;
    // Workspace stats are cumulative over the pooled plan's lifetime;
    // snapshot at entry so this run reports only its own calls.
    let ws0 = pool.plan.stats();
    if pool.parent_r.len() != n1 {
        pool.parent_r = DenseVec::nil(n1);
    }
    if pool.path_c.len() != n2 {
        pool.path_c = DenseVec::nil(n2);
    }
    let SolverPool { plan, parent_r, path_c, .. } = pool;
    stats.sched_seed = comm.ctx().sched.as_ref().map(|s| s.seed());

    loop {
        stats.phases += 1;
        let _phase_span = mcm_obs::span("ms_bfs_phase");
        mcm_obs::counter_add("mcm_phases_total", &[], 1);
        // Decorrelate the perturbations of each phase's RMA epochs: the
        // schedule stream is reseeded as a pure function of (seed, phase),
        // so a failing phase replays exactly from the run's seed.
        if let Some(sched) = comm.ctx_mut().sched.as_mut() {
            sched.next_phase(stats.phases as u64);
        }
        parent_r.fill_nil();
        path_c.fill_nil();

        // Initial column frontier: unmatched columns seed their own trees.
        let mut f_c: SpVec<Vertex> = SpVec::from_sorted_pairs(
            n2,
            m.unmatched_cols().into_iter().map(|c| (c, Vertex::seed(c))).collect(),
        );

        while !f_c.is_empty() {
            stats.iterations += 1;
            // f_c ≠ φ check: a real allreduce of the per-rank frontier
            // counts (one control word each — charged identically to the
            // old hard-wired charge_allreduce).
            let total =
                comm.allreduce(Kernel::Other, &per_rank_counts(&f_c, comm.p()), ReduceOp::Sum);
            debug_assert_eq!(total as usize, f_c.nnz());

            // Step 1: explore neighbours of the column frontier — top-down
            // SpMSpV, or bottom-up when the frontier is dense enough
            // (Beamer's direction optimization; §VII future work).
            let semiring = opts.semiring;
            // Pull pays off only when a random probe is likely to hit the
            // frontier: require majority column coverage (misses cost a
            // full adjacency scan, so low-density pulls lose to push).
            let bottom_up = opts.direction_optimizing && at.is_some() && 2 * f_c.nnz() > n2;
            mcm_obs::counter_add("mcm_bfs_iterations_total", &[], 1);
            let f_r_all = if bottom_up {
                stats.bottom_up_iterations += 1;
                let _span = mcm_obs::kernel_span("bottom_up_spmspv", "SpMV");
                // Densify the frontier (local streaming sweep)...
                let mut fmap: Vec<Option<Vertex>> = vec![None; n2];
                for (j, &v) in f_c.iter() {
                    fmap[j as usize] = Some(v);
                }
                // ...and list the candidate rows: unvisited this phase.
                let candidates: Vec<Vidx> =
                    (0..n1 as Vidx).filter(|&r| parent_r.get(r) == NIL).collect();
                let p = comm.p();
                let ctx = comm.ctx_mut();
                ctx.charge_compute_stream(Kernel::Select, (n1 + n2) as u64 / p.max(1) as u64);
                at.expect("bottom_up requires at").bottom_up_spmspv(
                    ctx,
                    Kernel::SpMV,
                    &candidates,
                    &fmap,
                    f_c.nnz(),
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| semiring.take_incoming(acc, inc),
                )
            } else {
                // One measurement path: the always-on stopwatch feeds both
                // the compat `McmStats` field and (when enabled) the obs
                // registry's latency histogram.
                let sw = mcm_obs::Stopwatch::new();
                let f_r_all = comm.spmspv(
                    a,
                    Kernel::SpMV,
                    &mut *plan,
                    &f_c,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| semiring.take_incoming(acc, inc),
                );
                let ns = sw.elapsed_ns();
                stats.spmv_iteration_ns.push(ns);
                mcm_obs::observe_ns("mcm_spmv_iteration_seconds", &[], ns);
                f_r_all
            };
            // Step 2: keep rows not yet visited in this phase.
            let f_r_new = select(comm, Kernel::Select, &f_r_all, parent_r, |p| p == NIL);
            // Step 3: record their parents.
            set_dense(comm, Kernel::Select, parent_r, &f_r_new, |v| v.parent);
            // Step 4: split into unmatched (path endpoints) and matched rows.
            let uf_r = select(comm, Kernel::Select, &f_r_new, &m.mate_r, |v| v == NIL);
            let mut f_r = select(comm, Kernel::Select, &f_r_new, &m.mate_r, |v| v != NIL);

            if !uf_r.is_empty() {
                // Step 5: record one augmenting-path endpoint per tree.
                let t_c = invert_by(comm, Kernel::Invert, &uf_r, n2, |v| v.root, |i, _| i);
                set_dense(comm, Kernel::Select, path_c, &t_c, |&r| r);
                // Step 6: prune the rest of those trees from the frontier.
                if opts.prune {
                    let roots: Vec<Vidx> = t_c.ind();
                    f_r = prune(comm, Kernel::Prune, &f_r, &roots, |v| v.root);
                }
            }

            // Step 7: next column frontier from the mates of matched rows.
            // Replace each row's parent with its mate (a local dense gather),
            // then INVERT to land on the mate columns.
            let stepped = SpVec::from_sorted_pairs(
                n1,
                f_r.iter().map(|(i, v)| (i, Vertex::new(m.mate_r.get(i), v.root))).collect(),
            );
            comm.ctx_mut().charge_compute_stream(Kernel::Select, stepped.nnz() as u64);
            f_c = invert_by(
                comm,
                Kernel::Invert,
                &stepped,
                n2,
                |v| v.parent,
                |i, v| Vertex::new(i, v.root),
            );
        }

        // Step 8: augment by every path discovered in this phase.
        let report = augment(comm, opts.augment, path_c, parent_r, m);
        if report.paths == 0 {
            break; // no augmenting path: maximum reached
        }
        stats.augmentations += report.paths;
        stats.sched_interleave_steps += report.sched_steps;
        stats.augment_reports.push(report);
    }

    // Workspace accounting is measured once (by the plan itself) and fans
    // out to the compat `McmStats` fields and the obs registry. The plan
    // may be pooled across solves, so report this run's diff only.
    let ws = plan.stats();
    stats.spmv_workspace_calls += ws.calls - ws0.calls;
    stats.spmv_workspace_hits += ws.reuse_hits - ws0.reuse_hits;
    stats.spmv_bytes_reused += ws.bytes_reused - ws0.bytes_reused;
    if mcm_obs::metrics_enabled() {
        mcm_obs::counter_add("mcm_spmv_workspace_calls_total", &[], ws.calls - ws0.calls);
        mcm_obs::counter_add("mcm_spmv_workspace_hits_total", &[], ws.reuse_hits - ws0.reuse_hits);
        mcm_obs::counter_add(
            "mcm_spmv_workspace_bytes_reused_total",
            &[],
            ws.bytes_reused - ws0.bytes_reused,
        );
        mcm_obs::counter_add("mcm_augmentations_total", &[], stats.augmentations as u64);
    }
}

/// Maps a matching computed on relabeled vertices back to original labels.
fn unpermute(m: Matching, rowp: &Permutation, colp: &Permutation) -> Matching {
    // The permuted graph had edge (rowp(i), colp(j)) for original (i, j);
    // translate mates back through the inverses.
    let rinv = rowp.inverse();
    let cinv = colp.inverse();
    let mut out = Matching::empty(m.n1(), m.n2());
    for jp in 0..m.n2() as Vidx {
        let ip = m.mate_c.get(jp);
        if ip != NIL {
            out.add(rinv.apply(ip), cinv.apply(jp));
        }
    }
    out
}

/// Convenience: MCM on a serial (1-process) context.
pub fn maximum_matching_serial(t: &Triples, opts: &McmOptions) -> McmResult {
    let mut ctx = DistCtx::serial();
    maximum_matching(&mut ctx, t, opts)
}

/// MCM on the thread-per-rank execution backend: `p` real ranks (a perfect
/// square — the 2D SpMV grid) with `threads` workers per rank, every
/// collective a real channel-mesh exchange and every RMA epoch an atomic
/// window. Produces the identical matching the simulator backend produces
/// (the `backend_differential` suite asserts this across the full
/// generator corpus) while actually using all `p · threads` cores.
pub fn maximum_matching_engine(
    p: usize,
    threads: usize,
    t: &Triples,
    opts: &McmOptions,
) -> McmResult {
    let mut comm = EngineComm::new(p, threads);
    maximum_matching(&mut comm, t, opts)
}

/// MCM on the shared-memory backend: `p` logical ranks (a perfect square)
/// accounted at simulator-identical α–β–γ cost, executed in one address
/// space on a single matrix block with the SpMSpV expand/fold fused into
/// the communication epoch (see [`mcm_bsp::SharedComm`]). Produces the
/// identical matching and modeled timers the simulator produces at the
/// same `p` and `threads`.
pub fn maximum_matching_shared(
    p: usize,
    threads: usize,
    t: &Triples,
    opts: &McmOptions,
) -> McmResult {
    let mut comm = SharedComm::new(p, threads);
    maximum_matching(&mut comm, t, opts)
}

/// [`maximum_matching_serial`] from a borrowed CSC view.
pub fn maximum_matching_serial_view(v: &CscView<'_>, opts: &McmOptions) -> McmResult {
    let mut ctx = DistCtx::serial();
    maximum_matching_view(&mut ctx, v, opts)
}

/// [`maximum_matching_engine`] from a borrowed CSC view.
pub fn maximum_matching_engine_view(
    p: usize,
    threads: usize,
    v: &CscView<'_>,
    opts: &McmOptions,
) -> McmResult {
    let mut comm = EngineComm::new(p, threads);
    maximum_matching_view(&mut comm, v, opts)
}

/// [`maximum_matching_shared`] from a borrowed CSC view: the end of the
/// zero-copy chain — mmap'ed MCSB pages feed the single shared-memory block
/// with no intermediate edge list (the path the BENCH_store scaling curve
/// measures).
pub fn maximum_matching_shared_view(
    p: usize,
    threads: usize,
    v: &CscView<'_>,
    opts: &McmOptions,
) -> McmResult {
    let mut comm = SharedComm::new(p, threads);
    maximum_matching_view(&mut comm, v, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use crate::verify::assert_maximum;
    use mcm_bsp::MachineConfig;

    fn fig2() -> Triples {
        Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        )
    }

    #[test]
    fn finds_maximum_on_fig2() {
        let t = fig2();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 2));
        let r = maximum_matching(&mut ctx, &t, &McmOptions::default());
        let a = t.to_csc();
        assert_maximum(&a, &r.matching);
        assert_eq!(r.matching.cardinality(), 4);
        assert!(r.stats.phases >= 1);
    }

    #[test]
    fn matches_hk_on_random_graphs_across_grids_and_options() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(2024);
        for trial in 0..15 {
            let n1 = 8 + (rng.next_u64() % 40) as usize;
            let n2 = 8 + (rng.next_u64() % 40) as usize;
            let edges = (rng.next_u64() % (4 * n1.max(n2) as u64)) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..edges {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let want = hopcroft_karp(&t.to_csc(), None).cardinality();
            for (dim, semiring, prune_on) in [
                (1usize, SemiringKind::MinParent, true),
                (2, SemiringKind::MinParent, false),
                (3, SemiringKind::RandRoot(9), true),
                (2, SemiringKind::RandParent(5), true),
            ] {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
                let opts = McmOptions { semiring, prune: prune_on, ..Default::default() };
                let r = maximum_matching(&mut ctx, &t, &opts);
                r.matching.validate(&t.to_csc()).unwrap();
                assert_eq!(
                    r.matching.cardinality(),
                    want,
                    "trial {trial} dim {dim} semiring {semiring:?} prune {prune_on}"
                );
            }
        }
    }

    #[test]
    fn all_initializers_reach_the_same_maximum() {
        let t = fig2();
        let want = hopcroft_karp(&t.to_csc(), None).cardinality();
        for init in [
            Initializer::None,
            Initializer::Greedy,
            Initializer::KarpSipser,
            Initializer::DynamicMindegree,
        ] {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            let opts = McmOptions { init, ..Default::default() };
            let r = maximum_matching(&mut ctx, &t, &opts);
            assert_eq!(r.matching.cardinality(), want, "init {init:?}");
        }
    }

    #[test]
    fn permutation_is_transparent() {
        let t = fig2();
        let base =
            maximum_matching_serial(&t, &McmOptions { permute_seed: None, ..Default::default() });
        let perm = maximum_matching_serial(
            &t,
            &McmOptions { permute_seed: Some(77), ..Default::default() },
        );
        assert_eq!(base.matching.cardinality(), perm.matching.cardinality());
        perm.matching.validate(&t.to_csc()).unwrap();
    }

    #[test]
    fn good_initializer_reduces_bfs_work() {
        let t = fig2();
        let run = |init| {
            let opts = McmOptions { init, permute_seed: None, ..Default::default() };
            maximum_matching_serial(&t, &opts).stats
        };
        let cold = run(Initializer::None);
        let warm = run(Initializer::DynamicMindegree);
        assert!(warm.init_cardinality > 0);
        assert!(warm.augmentations <= cold.augmentations);
    }

    #[test]
    fn direction_optimizing_is_bit_identical_under_min_parent() {
        // Without an initializer the first frontier is every column, so the
        // bottom-up path actually triggers; the result must be identical.
        for t in [fig2(), {
            use mcm_sparse::permute::SplitMix64;
            let mut rng = SplitMix64::new(404);
            let mut t = Triples::new(40, 40);
            for _ in 0..160 {
                t.push(rng.below(40) as Vidx, rng.below(40) as Vidx);
            }
            t
        }] {
            let run = |diropt: bool| {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
                let opts = McmOptions {
                    init: Initializer::None,
                    direction_optimizing: diropt,
                    permute_seed: None,
                    ..Default::default()
                };
                let r = maximum_matching(&mut ctx, &t, &opts);
                (r.matching, r.stats.bottom_up_iterations)
            };
            let (plain, zero) = run(false);
            let (diropt, used) = run(true);
            assert_eq!(zero, 0);
            assert!(used > 0, "bottom-up should trigger with a full first frontier");
            assert_eq!(diropt, plain, "direction optimization changed the matching");
        }
    }

    #[test]
    fn bottom_up_reduces_spmv_traversals_on_dense_frontiers() {
        // A dense-ish bipartite block: with all columns unmatched the first
        // iterations have huge frontiers where bottom-up probes O(1) edges
        // per row instead of scanning the whole frontier adjacency.
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(11);
        let n = 60;
        let mut t = Triples::new(n, n);
        for _ in 0..n * 12 {
            t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
        }
        let run = |diropt: bool| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(1, 1));
            let opts = McmOptions {
                init: Initializer::None,
                direction_optimizing: diropt,
                permute_seed: None,
                ..Default::default()
            };
            let _ = maximum_matching(&mut ctx, &t, &opts);
            ctx.timers.seconds(Kernel::SpMV)
        };
        assert!(
            run(true) < run(false),
            "bottom-up should lower modeled SpMV time on dense frontiers"
        );
    }

    #[test]
    fn workspace_counters_report_steady_state_reuse() {
        // Cold start (no initializer) forces many BFS iterations through the
        // shared plan: everything after the first iteration must hit warm
        // buffers, and each top-down iteration must record its wall time.
        let t = fig2();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let opts = McmOptions { init: Initializer::None, ..Default::default() };
        let r = maximum_matching(&mut ctx, &t, &opts);
        let s = &r.stats;
        assert!(s.spmv_workspace_calls > 0);
        assert!(s.spmv_workspace_hits > 0, "later iterations must reuse buffers");
        assert!(s.spmv_bytes_reused > 0);
        assert!(!s.spmv_iteration_ns.is_empty());
        assert!(s.spmv_iteration_ns.len() <= s.iterations);
    }

    #[test]
    fn warm_start_resumes_and_reaches_maximum() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(0x3A57);
        for trial in 0..10 {
            let (n1, n2) =
                (10 + (rng.next_u64() % 20) as usize, 10 + (rng.next_u64() % 20) as usize);
            let mut t = Triples::new(n1, n2);
            for _ in 0..3 * n1.max(n2) {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            let want = hopcroft_karp(&a, None).cardinality();
            // A deliberately stale warm start: a greedy matching on a
            // subsample of the columns (valid, far from maximal).
            let mut warm = Matching::empty(n1, n2);
            for j in (0..n2 as Vidx).step_by(3) {
                for &i in a.col(j as usize) {
                    if !warm.row_matched(i) && !warm.col_matched(j) {
                        warm.add(i, j);
                        break;
                    }
                }
            }
            // Both the unpermuted and the relabeled paths must repair it.
            for permute_seed in [None, Some(0xBEEF + trial)] {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
                let opts = McmOptions { permute_seed, ..Default::default() };
                let r = maximum_matching_from(&mut ctx, &t, warm.clone(), &opts);
                r.matching.validate(&a).unwrap();
                assert_eq!(
                    r.matching.cardinality(),
                    want,
                    "trial {trial} permute {permute_seed:?}"
                );
                assert_eq!(r.stats.init_cardinality, warm.cardinality());
                assert_maximum(&a, &r.matching);
            }
        }
    }

    #[test]
    fn warm_start_from_maximum_does_no_augmentation() {
        let t = fig2();
        let a = t.to_csc();
        let warm = hopcroft_karp(&a, None);
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let r = maximum_matching_from(&mut ctx, &t, warm, &McmOptions::default());
        assert_eq!(r.stats.augmentations, 0, "an already-maximum warm start needs no paths");
        assert_eq!(r.stats.phases, 1, "one certifying phase only");
        assert_eq!(r.matching.cardinality(), 4);
    }

    #[test]
    fn pooled_solves_reuse_the_plan_across_runs() {
        // A cold start (empty warm matching, no initializer work skipped)
        // forces many SpMSpV calls. The first pooled run pays one cold
        // call per block; the second identical run must be entirely warm —
        // that is the per-solve allocation cost the pool exists to cut.
        let t = fig2();
        let opts = McmOptions { permute_seed: None, ..Default::default() };
        let mut pool = SolverPool::new();
        let run = |pool: &mut SolverPool| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            maximum_matching_from_pooled(&mut ctx, &t, Matching::empty(4, 5), &opts, pool)
        };
        let first = run(&mut pool);
        assert_eq!(first.matching.cardinality(), 4);
        assert!(first.stats.spmv_workspace_calls > 0);
        assert!(
            first.stats.spmv_workspace_hits < first.stats.spmv_workspace_calls,
            "a cold pool must miss on first touch ({} hits / {} calls)",
            first.stats.spmv_workspace_hits,
            first.stats.spmv_workspace_calls
        );
        let second = run(&mut pool);
        assert_eq!(second.matching.cardinality(), 4);
        assert_eq!(
            second.stats.spmv_workspace_hits, second.stats.spmv_workspace_calls,
            "the second pooled run must serve every call from warm buffers"
        );
        assert_eq!(pool.solves(), 2);
        // Per-run stats are diffs, not the pool's cumulative counters.
        let cumulative = pool.workspace_stats();
        assert_eq!(
            cumulative.calls,
            first.stats.spmv_workspace_calls + second.stats.spmv_workspace_calls
        );
    }

    #[test]
    #[should_panic(expected = "warm matching is")]
    fn warm_start_rejects_dimension_mismatch() {
        let t = fig2();
        let mut ctx = DistCtx::serial();
        let _ = maximum_matching_from(&mut ctx, &t, Matching::empty(2, 2), &McmOptions::default());
    }

    #[test]
    fn charges_all_kernel_categories() {
        let t = fig2();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let _ = maximum_matching(&mut ctx, &t, &McmOptions::default());
        assert!(ctx.timers.calls(Kernel::SpMV) > 0);
        assert!(ctx.timers.calls(Kernel::Invert) > 0);
        assert!(ctx.timers.calls(Kernel::Select) > 0);
        assert!(ctx.timers.calls(Kernel::Init) > 0);
    }
}
