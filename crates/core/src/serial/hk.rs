//! Hopcroft–Karp: the `O(m√n)` maximum bipartite matching oracle.
//!
//! Each phase runs one BFS from all unmatched columns to build the layered
//! alternating-level structure, then one pass of layered DFS to extract a
//! maximal set of vertex-disjoint shortest augmenting paths. The number of
//! phases is `O(√n)` [Hopcroft & Karp 1973]. This implementation is the
//! correctness oracle for every distributed run in the test suite.

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

const INF: u32 = u32::MAX;

/// Computes a maximum cardinality matching of the bipartite graph whose
/// column-to-row adjacency is `a`, optionally warm-started from `init`.
///
/// # Example
///
/// ```
/// use mcm_core::serial::hopcroft_karp;
/// use mcm_sparse::Triples;
///
/// // The greedy trap: (r0,c0) blocks perfection; HK must augment.
/// let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
/// let m = hopcroft_karp(&a, None);
/// assert_eq!(m.cardinality(), 2);
/// ```
pub fn hopcroft_karp(a: &Csc, init: Option<Matching>) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = init.unwrap_or_else(|| Matching::empty(n1, n2));
    debug_assert!(m.validate(a).is_ok());

    // dist[c] = BFS layer of column c; rows are implicit between layers.
    let mut dist = vec![INF; n2];
    let mut queue: Vec<Vidx> = Vec::with_capacity(n2);

    loop {
        // ---- BFS: layer columns by shortest alternating path length. ----
        queue.clear();
        for c in 0..n2 {
            if !m.col_matched(c as Vidx) {
                dist[c] = 0;
                queue.push(c as Vidx);
            } else {
                dist[c] = INF;
            }
        }
        let mut found_free_row = false;
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            for &r in a.col(c as usize) {
                let mate = m.mate_r.get(r);
                if mate == NIL {
                    found_free_row = true;
                } else if dist[mate as usize] == INF {
                    dist[mate as usize] = dist[c as usize] + 1;
                    queue.push(mate);
                }
            }
        }
        if !found_free_row {
            break; // no augmenting path exists: matching is maximum
        }

        // ---- DFS along strictly increasing layers. -----------------------
        // `row_used` guards vertex-disjointness of the paths in this phase.
        let mut row_used = vec![false; n1];
        for c0 in 0..n2 {
            if !m.col_matched(c0 as Vidx) && dist[c0] == 0 {
                let _ = dfs(a, &mut m, &mut dist, &mut row_used, c0 as Vidx);
            }
        }
    }
    m
}

/// Layered DFS from column `c`; returns `true` when an augmenting path was
/// found and flipped.
fn dfs(a: &Csc, m: &mut Matching, dist: &mut [u32], row_used: &mut [bool], c: Vidx) -> bool {
    for &r in a.col(c as usize) {
        if row_used[r as usize] {
            continue;
        }
        let mate = m.mate_r.get(r);
        let advance = if mate == NIL {
            true
        } else {
            dist[mate as usize] == dist[c as usize] + 1 && dfs(a, m, dist, row_used, mate)
        };
        if advance {
            row_used[r as usize] = true;
            m.mate_r.set(r, c);
            m.mate_c.set(c, r);
            return true;
        }
    }
    // Dead end: prune this column from the current phase.
    dist[c as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    fn mcm(edges: Vec<(Vidx, Vidx)>, n1: usize, n2: usize) -> usize {
        let a = Triples::from_edges(n1, n2, edges).to_csc();
        let m = hopcroft_karp(&a, None);
        m.validate(&a).unwrap();
        m.cardinality()
    }

    #[test]
    fn perfect_matching_on_diagonal() {
        assert_eq!(mcm(vec![(0, 0), (1, 1), (2, 2)], 3, 3), 3);
    }

    #[test]
    fn needs_augmentation() {
        // Greedy matching (0,0) blocks the perfect matching; HK must augment.
        // Edges: r0-c0, r0-c1, r1-c0 → maximum = 2 via (r0,c1),(r1,c0).
        assert_eq!(mcm(vec![(0, 0), (0, 1), (1, 0)], 2, 2), 2);
    }

    #[test]
    fn deficient_graph() {
        // Two columns share the single row: maximum = 1 (König deficiency).
        assert_eq!(mcm(vec![(0, 0), (0, 1)], 1, 2), 1);
    }

    #[test]
    fn paper_fig2_graph_has_perfect_column_matching_deficiency() {
        // Fig 2: 4 rows, 5 columns, so at most 4 columns can be matched.
        let edges = vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)];
        assert_eq!(mcm(edges, 4, 5), 4);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(mcm(vec![], 3, 3), 0);
    }

    #[test]
    fn warm_start_is_respected() {
        let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
        let mut init = Matching::empty(2, 2);
        init.add(0, 0); // suboptimal greedy start
        let m = hopcroft_karp(&a, Some(init));
        assert_eq!(m.cardinality(), 2);
        m.validate(&a).unwrap();
    }

    #[test]
    fn long_augmenting_chain() {
        // Path graph: c0-r0-c1-r1-c2-r2 ... matching must ripple down.
        // Edges: (ri, ci) and (ri, c_{i+1}).
        let k = 50;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i as Vidx, i as Vidx));
            if i + 1 < k {
                edges.push((i as Vidx, (i + 1) as Vidx));
            }
        }
        assert_eq!(mcm(edges, k, k), k);
    }
}
