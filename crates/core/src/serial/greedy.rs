//! Serial greedy maximal matching.
//!
//! Scans columns in index order and matches each to its first unmatched row
//! neighbour — `O(m)`, approximation ratio ≥ 1/2 (§II-A, flavour (a)).

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx};

/// Greedy maximal matching by column order.
pub fn greedy_serial(a: &Csc) -> Matching {
    let mut m = Matching::empty(a.nrows(), a.ncols());
    for c in 0..a.ncols() {
        for &r in a.col(c) {
            if !m.row_matched(r) {
                m.add(r, c as Vidx);
                break;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximal;
    use mcm_sparse::Triples;

    #[test]
    fn matches_diagonal() {
        let a = Triples::from_edges(3, 3, vec![(0, 0), (1, 1), (2, 2)]).to_csc();
        let m = greedy_serial(&a);
        assert_eq!(m.cardinality(), 3);
        m.validate(&a).unwrap();
    }

    #[test]
    fn result_is_maximal() {
        let a =
            Triples::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3), (1, 3)])
                .to_csc();
        let m = greedy_serial(&a);
        m.validate(&a).unwrap();
        assert!(is_maximal(&a, &m));
    }

    #[test]
    fn can_be_suboptimal() {
        // Greedy takes (r0, c0), blocking the perfect matching.
        let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
        let m = greedy_serial(&a);
        assert_eq!(m.cardinality(), 1);
    }
}
