//! Serial Karp–Sipser maximal matching.
//!
//! §II-A flavour (b): process degree-1 vertices first — matching a degree-1
//! vertex to its only neighbour is always safe (some maximum matching
//! contains that edge) — and fall back to a random edge when no degree-1
//! vertex exists. `O(m)` with lazy degree maintenance; usually the highest
//! approximation ratio of the three maximal flavours (§VI-A), which is why
//! its slow *distributed* behaviour (Fig. 3) is interesting.

use crate::matching::Matching;
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Csc, Vidx};
use std::collections::VecDeque;

/// Karp–Sipser maximal matching; `seed` drives the random-edge fallback.
pub fn karp_sipser_serial(a: &Csc, seed: u64) -> Matching {
    let at = a.transpose(); // row → columns adjacency
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let mut rng = SplitMix64::new(seed);

    // Dynamic degrees = number of *unmatched* neighbours.
    let mut deg_r: Vec<u32> = at.col_degrees().to_vec();
    let mut deg_c: Vec<u32> = a.col_degrees().to_vec();

    // Queues of (possibly stale) degree-1 vertices; staleness is re-checked
    // on pop, keeping the whole pass O(m).
    let mut q1_rows: VecDeque<Vidx> = (0..n1 as Vidx).filter(|&r| deg_r[r as usize] == 1).collect();
    let mut q1_cols: VecDeque<Vidx> = (0..n2 as Vidx).filter(|&c| deg_c[c as usize] == 1).collect();

    // Random processing order of columns for the fallback phase.
    let mut order: Vec<Vidx> = (0..n2 as Vidx).collect();
    for k in (1..order.len()).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        order.swap(k, j);
    }
    let mut cursor = 0usize;

    loop {
        // --- Degree-1 rule, both sides. -----------------------------------
        let mut progressed = true;
        while progressed {
            progressed = false;
            while let Some(r) = q1_rows.pop_front() {
                if m.row_matched(r) || deg_r[r as usize] != 1 {
                    continue;
                }
                // Find the unique unmatched column neighbour.
                if let Some(&c) = at.col(r as usize).iter().find(|&&c| !m.col_matched(c)) {
                    do_match(
                        &mut m,
                        a,
                        &at,
                        r,
                        c,
                        &mut deg_r,
                        &mut deg_c,
                        &mut q1_rows,
                        &mut q1_cols,
                    );
                    progressed = true;
                }
            }
            while let Some(c) = q1_cols.pop_front() {
                if m.col_matched(c) || deg_c[c as usize] != 1 {
                    continue;
                }
                if let Some(&r) = a.col(c as usize).iter().find(|&&r| !m.row_matched(r)) {
                    do_match(
                        &mut m,
                        a,
                        &at,
                        r,
                        c,
                        &mut deg_r,
                        &mut deg_c,
                        &mut q1_rows,
                        &mut q1_cols,
                    );
                    progressed = true;
                }
            }
        }

        // --- Random fallback: match the next random column. ---------------
        let mut matched_random = false;
        while cursor < order.len() {
            let c = order[cursor];
            cursor += 1;
            if m.col_matched(c) || deg_c[c as usize] == 0 {
                continue;
            }
            if let Some(&r) = a.col(c as usize).iter().find(|&&r| !m.row_matched(r)) {
                do_match(&mut m, a, &at, r, c, &mut deg_r, &mut deg_c, &mut q1_rows, &mut q1_cols);
                matched_random = true;
                break;
            }
        }
        if !matched_random && q1_rows.is_empty() && q1_cols.is_empty() {
            break;
        }
    }
    m
}

/// Matches `(r, c)` and decrements the dynamic degrees of their unmatched
/// neighbours, enqueueing the ones that drop to 1.
#[allow(clippy::too_many_arguments)]
fn do_match(
    m: &mut Matching,
    a: &Csc,
    at: &Csc,
    r: Vidx,
    c: Vidx,
    deg_r: &mut [u32],
    deg_c: &mut [u32],
    q1_rows: &mut VecDeque<Vidx>,
    q1_cols: &mut VecDeque<Vidx>,
) {
    m.add(r, c);
    for &c2 in at.col(r as usize) {
        if !m.col_matched(c2) {
            deg_c[c2 as usize] -= 1;
            if deg_c[c2 as usize] == 1 {
                q1_cols.push_back(c2);
            }
        }
    }
    for &r2 in a.col(c as usize) {
        if !m.row_matched(r2) {
            deg_r[r2 as usize] -= 1;
            if deg_r[r2 as usize] == 1 {
                q1_rows.push_back(r2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{greedy_serial, hopcroft_karp};
    use crate::verify::is_maximal;
    use mcm_sparse::Triples;

    #[test]
    fn result_is_maximal_and_valid() {
        let a = Triples::from_edges(
            5,
            5,
            vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3), (1, 3), (4, 4), (0, 4)],
        )
        .to_csc();
        let m = karp_sipser_serial(&a, 1);
        m.validate(&a).unwrap();
        assert!(is_maximal(&a, &m));
    }

    #[test]
    fn degree_one_rule_is_optimal_on_paths() {
        // A path: KS's degree-1 rule finds the perfect matching where plain
        // greedy order can miss it.
        let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
        let ks = karp_sipser_serial(&a, 3);
        assert_eq!(ks.cardinality(), 2);
    }

    #[test]
    fn beats_or_ties_greedy_on_random_graphs_in_aggregate() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(77);
        let (mut ks_total, mut greedy_total, mut max_total) = (0usize, 0usize, 0usize);
        for _ in 0..20 {
            let n = 40;
            let mut t = Triples::new(n, n);
            for _ in 0..3 * n {
                t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
            }
            let a = t.to_csc();
            let ks = karp_sipser_serial(&a, 5);
            ks.validate(&a).unwrap();
            assert!(is_maximal(&a, &ks));
            ks_total += ks.cardinality();
            greedy_total += greedy_serial(&a).cardinality();
            max_total += hopcroft_karp(&a, None).cardinality();
        }
        assert!(ks_total >= greedy_total, "KS {ks_total} vs greedy {greedy_total}");
        // ≥ 1/2-approximation in aggregate, usually much closer to optimal.
        assert!(2 * ks_total >= max_total);
    }
}
