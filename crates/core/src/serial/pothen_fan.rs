//! The Pothen–Fan algorithm: multi-source DFS with lookahead.
//!
//! §II-A: *"specialized multi-source DFS (the Pothen-Fan algorithm) ...
//! shown to outperform the Hopcroft-Karp algorithm on most practical
//! graphs"*. Each phase runs one DFS from every unmatched column; the
//! *lookahead* mechanism first scans a column's adjacency for a still
//! unmatched row before descending, which prunes most of the search. Row
//! visit marks are phase-global, so the paths found within a phase are
//! vertex-disjoint. Phases repeat until one finds no augmenting path.

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

/// Computes a maximum cardinality matching by repeated multi-source DFS
/// with lookahead, optionally warm-started from `init`.
pub fn pothen_fan(a: &Csc, init: Option<Matching>) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = init.unwrap_or_else(|| Matching::empty(n1, n2));
    debug_assert!(m.validate(a).is_ok());

    // lookahead[c]: position in col(c) where the unmatched-row scan resumes
    // (amortizes the lookahead to O(deg) per column per run, as in the
    // original algorithm).
    let mut lookahead = vec![0usize; n2];
    let mut visited_row = vec![u32::MAX; n1]; // phase id when last visited
                                              // Explicit DFS stack of (column, adjacency cursor).
    let mut stack: Vec<(Vidx, usize)> = Vec::new();

    let mut phase: u32 = 0;
    loop {
        let mut augmented = false;
        for c0 in 0..n2 as Vidx {
            if m.col_matched(c0) {
                continue;
            }
            if dfs_lookahead(a, &mut m, &mut lookahead, &mut visited_row, &mut stack, c0, phase) {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
        phase += 1;
        // Lookahead cursors persist across phases in the classic formulation;
        // rows matched later are skipped by the mate check.
    }
    m
}

/// Iterative DFS from unmatched column `c0`. Returns `true` (and flips the
/// path) when an unmatched row is reached.
fn dfs_lookahead(
    a: &Csc,
    m: &mut Matching,
    lookahead: &mut [usize],
    visited_row: &mut [u32],
    stack: &mut Vec<(Vidx, usize)>,
    c0: Vidx,
    phase: u32,
) -> bool {
    stack.clear();
    stack.push((c0, 0));

    while let Some(&mut (c, ref mut cursor)) = stack.last_mut() {
        let adj = a.col(c as usize);

        // --- Lookahead: is any neighbour of c still unmatched? ------------
        let mut found: Option<Vidx> = None;
        while lookahead[c as usize] < adj.len() {
            let r = adj[lookahead[c as usize]];
            lookahead[c as usize] += 1;
            if !m.row_matched(r) {
                found = Some(r);
                break;
            }
        }
        if let Some(r_free) = found {
            visited_row[r_free as usize] = phase;
            // Flip the path recorded on the stack: match each (column, row)
            // pair from the bottom up.
            let mut r = r_free;
            while let Some((c, _)) = stack.pop() {
                let prev = m.mate_c.get(c);
                m.mate_c.set(c, r);
                m.mate_r.set(r, c);
                if prev == NIL {
                    debug_assert!(stack.is_empty());
                    break;
                }
                r = prev;
            }
            return true;
        }

        // --- Regular DFS step: descend through a matched row. -------------
        let mut advanced = false;
        while *cursor < adj.len() {
            let r = adj[*cursor];
            *cursor += 1;
            if visited_row[r as usize] == phase {
                continue;
            }
            visited_row[r as usize] = phase;
            let mate = m.mate_r.get(r);
            debug_assert_ne!(mate, NIL, "lookahead must have caught free rows");
            stack.push((mate, 0));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    fn check(edges: Vec<(Vidx, Vidx)>, n1: usize, n2: usize) {
        let a = Triples::from_edges(n1, n2, edges).to_csc();
        let pf = pothen_fan(&a, None);
        pf.validate(&a).unwrap();
        let hk = hopcroft_karp(&a, None);
        assert_eq!(pf.cardinality(), hk.cardinality());
    }

    #[test]
    fn agrees_with_hk_on_small_graphs() {
        check(vec![(0, 0), (0, 1), (1, 0)], 2, 2);
        check(vec![(0, 0), (0, 1)], 1, 2);
        check(vec![], 3, 4);
        check(vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)], 4, 5);
    }

    #[test]
    fn agrees_with_hk_on_random_graphs() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(17);
        for trial in 0..30 {
            let n1 = 5 + (rng.next_u64() % 30) as usize;
            let n2 = 5 + (rng.next_u64() % 30) as usize;
            let m = (rng.next_u64() % (2 * (n1 * n2) as u64 / 3 + 1)) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..m {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            let pf = pothen_fan(&a, None);
            pf.validate(&a).unwrap();
            assert_eq!(pf.cardinality(), hopcroft_karp(&a, None).cardinality(), "trial {trial}");
        }
    }

    #[test]
    fn warm_start() {
        let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
        let mut init = Matching::empty(2, 2);
        init.add(0, 0);
        let m = pothen_fan(&a, Some(init));
        assert_eq!(m.cardinality(), 2);
    }
}
