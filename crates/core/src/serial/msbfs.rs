//! Serial multi-source BFS matching: a direct transliteration of
//! Algorithm 1, in plain graph terms.
//!
//! This is the semantic reference for the matrix-algebraic MCM-DIST: both
//! run phases of level-synchronous searches from all unmatched columns,
//! keep alternating trees vertex-disjoint via first-touch ownership of rows,
//! collect at most one augmenting path per tree, and augment them all at the
//! end of the phase. The test suite cross-checks phase counts and
//! cardinalities between the two.

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

/// Statistics of one `ms_bfs_serial` run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsBfsStats {
    /// Number of phases executed (including the final empty one).
    pub phases: usize,
    /// Total level-synchronous iterations across phases.
    pub iterations: usize,
    /// Total augmenting paths applied.
    pub augmentations: usize,
}

/// Maximum matching by serial MS-BFS (Algorithm 1), warm-started from
/// `init` when given.
pub fn ms_bfs_serial(a: &Csc, init: Option<Matching>) -> (Matching, MsBfsStats) {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = init.unwrap_or_else(|| Matching::empty(n1, n2));
    let mut stats = MsBfsStats::default();

    // π_r: parent column of each visited row this phase; root_r: its tree.
    let mut parent_r = vec![NIL; n1];
    let mut root_r = vec![NIL; n1];
    // path_c[root] = end row of the augmenting path found for this tree.
    let mut path_c = vec![NIL; n2];
    // dead[root] = tree already yielded a path this phase (prune rule).
    let mut dead_root = vec![false; n2];

    loop {
        stats.phases += 1;
        parent_r.fill(NIL);
        root_r.fill(NIL);
        path_c.fill(NIL);
        dead_root.fill(false);

        // Initial column frontier: unmatched columns, each its own root.
        let mut frontier: Vec<(Vidx, Vidx)> =
            m.unmatched_cols().into_iter().map(|c| (c, c)).collect(); // (column, root)
        let mut found_any = false;

        while !frontier.is_empty() {
            stats.iterations += 1;
            let mut next: Vec<(Vidx, Vidx)> = Vec::new();
            for &(c, root) in &frontier {
                if dead_root[root as usize] {
                    continue; // pruned: this tree already has a path
                }
                for &r in a.col(c as usize) {
                    if parent_r[r as usize] != NIL {
                        continue; // row already claimed by some tree
                    }
                    if dead_root[root as usize] {
                        break;
                    }
                    parent_r[r as usize] = c;
                    root_r[r as usize] = root;
                    let mate = m.mate_r.get(r);
                    if mate == NIL {
                        // Augmenting path discovered: record and prune tree.
                        path_c[root as usize] = r;
                        dead_root[root as usize] = true;
                        found_any = true;
                    } else {
                        next.push((mate, root));
                    }
                }
            }
            frontier = next;
        }

        if !found_any {
            break;
        }

        // Augment every recorded path by walking parents/mates upward.
        for root in 0..n2 {
            let mut r = path_c[root];
            if r == NIL {
                continue;
            }
            stats.augmentations += 1;
            loop {
                let c = parent_r[r as usize];
                let next_r = m.mate_c.get(c);
                m.mate_r.set(r, c);
                m.mate_c.set(c, r);
                if next_r == NIL {
                    break; // reached the root column
                }
                r = next_r;
            }
        }
    }
    (m, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    #[test]
    fn finds_maximum_on_fig2() {
        let a = Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        )
        .to_csc();
        let (m, stats) = ms_bfs_serial(&a, None);
        m.validate(&a).unwrap();
        assert_eq!(m.cardinality(), 4);
        assert!(stats.phases >= 1);
        assert_eq!(stats.augmentations, 4);
    }

    #[test]
    fn agrees_with_hk_on_random_graphs() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(23);
        for trial in 0..40 {
            let n1 = 4 + (rng.next_u64() % 40) as usize;
            let n2 = 4 + (rng.next_u64() % 40) as usize;
            let edges = (rng.next_u64() % (3 * n1.max(n2) as u64)) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..edges {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            let (m, _) = ms_bfs_serial(&a, None);
            m.validate(&a).unwrap();
            assert_eq!(m.cardinality(), hopcroft_karp(&a, None).cardinality(), "trial {trial}");
        }
    }

    #[test]
    fn warm_start_reduces_phases() {
        let a = Triples::from_edges(4, 4, vec![(0, 0), (1, 1), (2, 2), (3, 3), (0, 1), (1, 2)])
            .to_csc();
        let mut init = Matching::empty(4, 4);
        for i in 0..4 {
            init.add(i, i);
        }
        let (m, stats) = ms_bfs_serial(&a, Some(init));
        assert_eq!(m.cardinality(), 4);
        // Perfect initial matching → a single (empty) phase.
        assert_eq!(stats.phases, 1);
        assert_eq!(stats.augmentations, 0);
    }

    #[test]
    fn empty_graph_terminates() {
        let a = Triples::new(3, 3).to_csc();
        let (m, stats) = ms_bfs_serial(&a, None);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(stats.phases, 1);
    }
}
