//! MS-BFS-Graft: multi-source BFS with tree grafting (Azad, Buluç, Pothen
//! [7]) — the shared-memory state of the art the paper benchmarks against
//! conceptually (§VI-E) and names as distributed future work (§VII).
//!
//! Plain MS-BFS rebuilds the entire BFS forest at the start of every phase,
//! re-traversing edges of trees that did *not* find an augmenting path.
//! Tree grafting keeps those "active" trees alive across phases: only
//! vertices belonging to *renewable* trees (trees whose root was matched by
//! the last augmentation round) are released, and released rows adjacent to
//! a surviving tree are **grafted** onto it directly — without restarting a
//! search from the root. The effect is a large reduction in traversed edges
//! (the paper [7] reports the elimination of "most of the redundant edge
//! traversals").
//!
//! This serial implementation follows the published algorithm's structure
//! (frontier-continued phases, renewable-vertex release, adjacency-driven
//! grafting) and exposes traversal counters so the saving is testable; see
//! `stats` in [`ms_bfs_graft`].

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};

/// Counters for one [`ms_bfs_graft`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraftStats {
    /// Phases executed.
    pub phases: usize,
    /// Edges traversed in BFS expansion.
    pub edges_traversed: u64,
    /// Rows re-attached by grafting rather than root restarts.
    pub grafted: u64,
    /// Total augmenting paths applied.
    pub augmentations: usize,
}

/// Maximum matching by MS-BFS with tree grafting; returns the matching and
/// the traversal statistics.
pub fn ms_bfs_graft(a: &Csc, init: Option<Matching>) -> (Matching, GraftStats) {
    let (n1, n2) = (a.nrows(), a.ncols());
    let at = a.transpose();
    let mut m = init.unwrap_or_else(|| Matching::empty(n1, n2));
    let mut stats = GraftStats::default();

    // Forest state, persistent across phases.
    let mut parent_r = vec![NIL; n1]; // discovering column of each row
    let mut root_r = vec![NIL; n1];
    let mut root_c = vec![NIL; n2]; // tree of each column (NIL = not in forest)

    // Seed: every unmatched column roots its own (fresh) tree.
    let mut frontier: Vec<Vidx> = m.unmatched_cols();
    for &c in &frontier {
        root_c[c as usize] = c;
    }

    loop {
        stats.phases += 1;
        // path_c[root] = end row of the augmenting path found for the tree.
        let mut path_c = vec![NIL; n2];
        let mut dead = vec![false; n2];
        let mut found = 0usize;

        // ---- Level-synchronous expansion of the current frontier. --------
        while !frontier.is_empty() {
            let mut next: Vec<Vidx> = Vec::new();
            for &c in &frontier {
                let root = root_c[c as usize];
                if root == NIL || dead[root as usize] {
                    continue;
                }
                for &r in a.col(c as usize) {
                    stats.edges_traversed += 1;
                    if parent_r[r as usize] != NIL {
                        continue;
                    }
                    if dead[root as usize] {
                        break;
                    }
                    parent_r[r as usize] = c;
                    root_r[r as usize] = root;
                    let mate = m.mate_r.get(r);
                    if mate == NIL {
                        path_c[root as usize] = r;
                        dead[root as usize] = true;
                        found += 1;
                    } else {
                        root_c[mate as usize] = root;
                        next.push(mate);
                    }
                }
            }
            frontier = next;
        }

        if found == 0 {
            break;
        }
        stats.augmentations += found;

        // ---- Augment every recorded path. ---------------------------------
        for root in 0..n2 {
            let mut r = path_c[root];
            if r == NIL {
                continue;
            }
            loop {
                let c = parent_r[r as usize];
                let next_r = m.mate_c.get(c);
                m.mate_r.set(r, c);
                m.mate_c.set(c, r);
                if next_r == NIL {
                    break;
                }
                r = next_r;
            }
        }

        // ---- Release renewable vertices and graft. ------------------------
        // Vertices whose tree augmented (dead root) are released; so are
        // vertices of trees whose root is an unmatched column that found
        // nothing (they restart). Released rows adjacent to a surviving
        // tree's column are grafted onto it directly.
        let mut released_rows: Vec<Vidx> = Vec::new();
        for r in 0..n1 {
            let root = root_r[r];
            if root != NIL && dead[root as usize] {
                parent_r[r] = NIL;
                root_r[r] = NIL;
                released_rows.push(r as Vidx);
            }
        }
        for c in 0..n2 {
            let root = root_c[c];
            if root != NIL && dead[root as usize] {
                root_c[c] = NIL;
            }
        }

        // Graft: a released row adjacent to a live tree column re-enters the
        // forest there; its mate column becomes new frontier.
        let mut next_frontier: Vec<Vidx> = Vec::new();
        for &r in &released_rows {
            if m.mate_r.get(r) == NIL {
                continue; // unmatched rows are targets, not tree nodes
            }
            for &c in at.col(r as usize) {
                stats.edges_traversed += 1;
                let root = root_c[c as usize];
                if root != NIL && !dead[root as usize] {
                    parent_r[r as usize] = c;
                    root_r[r as usize] = root;
                    let mate = m.mate_r.get(r);
                    root_c[mate as usize] = root;
                    next_frontier.push(mate);
                    stats.grafted += 1;
                    break;
                }
            }
        }

        // Fresh trees for columns that are still unmatched (their old trees
        // died by augmentation elsewhere, or they never had one).
        for c in m.unmatched_cols() {
            if root_c[c as usize] == NIL || dead[root_c[c as usize] as usize] {
                root_c[c as usize] = c;
                next_frontier.push(c);
            }
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;

        // Safety net for completeness: if grafting produced no frontier but
        // unmatched columns remain, fall back to a full restart (releases
        // the whole forest), mirroring the published algorithm's guarantee
        // that a phase from scratch closes the search.
        if frontier.is_empty() && m.unmatched_cols().iter().any(|&c| a.col_nnz(c as usize) > 0) {
            parent_r.fill(NIL);
            root_r.fill(NIL);
            root_c.fill(NIL);
            frontier = m.unmatched_cols();
            for &c in &frontier {
                root_c[c as usize] = c;
            }
        }
    }

    // Final validation sweep: grafted forests can, in rare shapes, leave a
    // stale "visited" row blocking a path. One full MS-BFS pass from scratch
    // certifies (and if needed completes) the maximum.
    let (m, tail) = super::ms_bfs_serial(a, Some(m));
    stats.phases += tail.phases;
    stats.augmentations += tail.augmentations;
    (m, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{hopcroft_karp, ms_bfs_serial};
    use mcm_sparse::Triples;

    fn check(t: &Triples) -> GraftStats {
        let a = t.to_csc();
        let (m, stats) = ms_bfs_graft(&a, None);
        m.validate(&a).unwrap();
        assert_eq!(m.cardinality(), hopcroft_karp(&a, None).cardinality());
        stats
    }

    #[test]
    fn small_graphs() {
        check(&Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]));
        check(&Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        ));
        check(&Triples::new(3, 3));
    }

    #[test]
    fn random_graphs_match_hk() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(555);
        for _ in 0..50 {
            let n1 = 2 + (rng.next_u64() % 40) as usize;
            let n2 = 2 + (rng.next_u64() % 40) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..3 * n1.max(n2) {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            check(&t);
        }
    }

    #[test]
    fn grafting_saves_traversals_on_skewed_graphs() {
        // On RMAT-like skewed graphs grafting's whole point is fewer edge
        // traversals than restart-from-scratch MS-BFS.
        let t = mcm_gen_like_rmat(1 << 10, 8, 99);
        let a = t.to_csc();
        let (mg, gs) = ms_bfs_graft(&a, None);
        let (mb, _) = ms_bfs_serial(&a, None);
        assert_eq!(mg.cardinality(), mb.cardinality());
        // Count plain MS-BFS traversals: every phase re-traverses edges, so
        // its total is ≥ phases × (edges touched once); compare coarsely via
        // a re-run instrumented the same way: here we assert grafting did
        // occur and the algorithm stayed work-proportional.
        assert!(gs.grafted > 0, "expected grafts on a skewed graph");
    }

    /// A tiny self-contained skewed-graph generator (quadratic preferential
    /// shape) to avoid a dev-dependency cycle on mcm-gen.
    fn mcm_gen_like_rmat(n: usize, avg_deg: usize, seed: u64) -> Triples {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let mut t = Triples::new(n, n);
        for _ in 0..n * avg_deg {
            // Square the uniforms to skew toward low indices.
            let u = rng.next_f64();
            let v = rng.next_f64();
            t.push(((u * u) * n as f64) as Vidx, ((v * v) * n as f64) as Vidx);
        }
        t
    }
}
