//! Serial baselines and references.
//!
//! * [`hopcroft_karp`] — the `O(m√n)` classic; the *oracle* every
//!   distributed run is checked against.
//! * [`pothen_fan`] — multi-source DFS with lookahead (§II-A), the strongest
//!   serial augmenting-path competitor on practical graphs.
//! * [`ms_bfs_serial`] — a direct, pure-graph transliteration of
//!   Algorithm 1, used to cross-check the matrix-algebraic formulation
//!   phase by phase.
//! * [`greedy_serial`] / [`karp_sipser_serial`] — the serial maximal
//!   initializers (§II-A's three flavours; dynamic mindegree's serial twin
//!   is Karp–Sipser-like and covered by those two).

mod graft;
mod greedy;
mod hk;
mod karp_sipser;
mod msbfs;
mod pothen_fan;
mod push_relabel;

pub use graft::{ms_bfs_graft, GraftStats};
pub use greedy::greedy_serial;
pub use hk::hopcroft_karp;
pub use karp_sipser::karp_sipser_serial;
pub use msbfs::{ms_bfs_serial, MsBfsStats};
pub use pothen_fan::pothen_fan;
pub use push_relabel::push_relabel;
