//! Push-relabel maximum bipartite matching.
//!
//! The *other* algorithm family of §II-A — and the approach behind the only
//! prior distributed MCM attempt the paper cites (Langguth et al. [19],
//! which "did not scale beyond 64 processors"). This serial implementation
//! is the unit-capacity specialization: labels (prices) live on the rows,
//! an unmatched column repeatedly performs a *double push* onto its
//! minimum-label neighbour (evicting that row's previous mate), and the row
//! is relabeled above the column's second-best option. A column whose
//! neighbours all carry labels ≥ `2·n1` is provably unmatchable.
//!
//! `O(m·n)` worst case like the BFS/DFS family without Hopcroft–Karp's
//! layering, but with completely local updates — exactly the property that
//! made it attractive (and, per [19], insufficient) for distributed memory.

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx, NIL};
use std::collections::VecDeque;

/// Maximum cardinality matching by push-relabel (FIFO active-vertex order).
pub fn push_relabel(a: &Csc) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let max_label = 2 * n1 as u64 + 1;
    let mut label = vec![0u64; n1]; // row labels ("prices")

    let mut active: VecDeque<Vidx> =
        (0..n2 as Vidx).filter(|&c| a.col_nnz(c as usize) > 0).collect();

    while let Some(c) = active.pop_front() {
        debug_assert!(!m.col_matched(c));
        // Find the two smallest row labels among the neighbours.
        let mut best: Option<(u64, Vidx)> = None;
        let mut second = u64::MAX;
        for &r in a.col(c as usize) {
            let l = label[r as usize];
            match best {
                None => best = Some((l, r)),
                Some((bl, _)) if l < bl => {
                    second = bl;
                    best = Some((l, r));
                }
                Some(_) => second = second.min(l),
            }
        }
        let (best_label, r) = best.expect("columns without neighbours are never enqueued");
        if best_label >= max_label {
            continue; // certified unmatchable: every neighbour saturated
        }
        // Double push: take r, evicting its previous mate (if any)...
        let prev = m.mate_r.get(r);
        if prev != NIL {
            m.mate_c.set(prev, NIL);
            active.push_back(prev);
        }
        m.mate_r.set(r, c);
        m.mate_c.set(c, r);
        // ...and relabel r just above the column's second-best alternative,
        // so the evicted mate will not immediately fight for the same row.
        label[r as usize] = label[r as usize].max(second.saturating_add(1)).min(max_label);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    fn check(t: &Triples) {
        let a = t.to_csc();
        let pr = push_relabel(&a);
        pr.validate(&a).unwrap();
        let hk = hopcroft_karp(&a, None);
        assert_eq!(pr.cardinality(), hk.cardinality());
    }

    #[test]
    fn small_graphs() {
        check(&Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]));
        check(&Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]));
        check(&Triples::from_edges(3, 1, vec![(0, 0), (1, 0), (2, 0)]));
        check(&Triples::new(4, 4));
        check(&Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        ));
    }

    #[test]
    fn eviction_chain() {
        // A chain forcing repeated evictions: every column prefers row 0.
        let t = Triples::from_edges(3, 3, vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]);
        check(&t);
        let a = t.to_csc();
        assert_eq!(push_relabel(&a).cardinality(), 3);
    }

    #[test]
    fn random_graphs_match_hk() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(31337);
        for trial in 0..60 {
            let n1 = 2 + (rng.next_u64() % 30) as usize;
            let n2 = 2 + (rng.next_u64() % 30) as usize;
            let mut t = Triples::new(n1, n2);
            for _ in 0..3 * n1.max(n2) {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            let pr = push_relabel(&a);
            pr.validate(&a).unwrap();
            assert_eq!(pr.cardinality(), hopcroft_karp(&a, None).cardinality(), "trial {trial}");
        }
    }

    #[test]
    fn terminates_on_dense_bipartite() {
        let mut t = Triples::new(12, 12);
        for i in 0..12 {
            for j in 0..12 {
                t.push(i, j);
            }
        }
        let a = t.to_csc();
        assert_eq!(push_relabel(&a).cardinality(), 12);
    }
}
