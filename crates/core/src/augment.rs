//! Augmenting the matching by a set of vertex-disjoint paths.
//!
//! Two kernels (§IV-B):
//!
//! * **Level-parallel** (Algorithm 3): bulk-synchronous; every iteration
//!   matches one `(row, column)` pair on *every* path via two `INVERT`s and
//!   dense `SET`s, costing `≈ h(6αp + …)` for longest path `h`. Good when
//!   many paths amortize the collective latency.
//! * **Path-parallel** (Algorithm 4): each processor walks its `k/p` paths
//!   independently with one-sided RMA — 3 calls (`MPI_Get`, merged
//!   `MPI_Fetch_and_op`, `MPI_Put`) per path per level, `3(α+β)` each.
//!   Good when `k` is small (late phases).
//!
//! *"the path parallel augmentation performs better when the number of
//! augmenting paths k < 2p². Therefore, we use this criterion to
//! automatically switch between these two variants"* — [`AugmentMode::Auto`].
//!
//! Both kernels are written against the backend-agnostic
//! [`Communicator`]: level-parallel's INVERTs route through real
//! all-to-alls on the engine, and path-parallel's walkers implement
//! [`RmaTask`] so one [`Communicator::rma_epoch`] call services them
//! through the schedule-driven [`mcm_bsp::SimWindow`] interleaver on the
//! simulator or through per-rank atomic windows on the engine.

use crate::matching::Matching;
use crate::primitives::{invert, set_dense, set_sparse};
use mcm_bsp::collectives::per_rank_counts;
use mcm_bsp::{Communicator, Kernel, ReduceOp, RmaTask, RmaWin};
use mcm_sparse::{DenseVec, SpVec, Vidx, NIL};

/// Which augmentation kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AugmentMode {
    /// The paper's automatic switch: path-parallel iff `k < 2p²`.
    #[default]
    Auto,
    /// Always bulk-synchronous (Algorithm 3).
    LevelParallel,
    /// Always RMA-based (Algorithm 4).
    PathParallel,
}

/// What one augmentation pass did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AugmentReport {
    /// Kernel actually used (Auto resolved).
    pub used_path_parallel: bool,
    /// Number of augmenting paths applied (`k`).
    pub paths: usize,
    /// Level-iterations executed (`⌈h/2⌉` for longest path `h`).
    pub levels: usize,
    /// One-sided calls serviced under a perturbed schedule (0 on the
    /// friendly fixed schedule — i.e. whenever `ctx.sched` is unset).
    pub sched_steps: u64,
}

/// Augments `m` by the vertex-disjoint paths recorded in `path_c`
/// (index = root column, value = end row) using parent pointers `parent_r`.
pub fn augment<C: Communicator>(
    comm: &mut C,
    mode: AugmentMode,
    path_c: &DenseVec,
    parent_r: &DenseVec,
    m: &mut Matching,
) -> AugmentReport {
    let v_c = path_c.to_sparse();
    let k = v_c.nnz();
    if k == 0 {
        return AugmentReport { used_path_parallel: false, paths: 0, levels: 0, sched_steps: 0 };
    }
    let _span = mcm_obs::kernel_span("augment", "Augment");
    let p = comm.p();
    // The switch criterion compares paper-scale path counts (k grows with
    // matrix size, so it is work-scaled) to 2p² (§IV-B).
    let path_parallel = match mode {
        AugmentMode::Auto => (k as f64 * comm.ctx().work_scale) < 2.0 * (p * p) as f64,
        AugmentMode::LevelParallel => false,
        AugmentMode::PathParallel => true,
    };
    let (levels, sched_steps) = if path_parallel {
        path_parallel_augment(comm, v_c, parent_r, m)
    } else {
        (level_parallel_augment(comm, v_c, parent_r, m), 0)
    };
    if mcm_obs::metrics_enabled() {
        let kernel = if path_parallel { "path_parallel" } else { "level_parallel" };
        mcm_obs::counter_add("mcm_augment_passes_total", &[("kernel", kernel)], 1);
        mcm_obs::counter_add("mcm_augment_paths_total", &[("kernel", kernel)], k as u64);
    }
    AugmentReport { used_path_parallel: path_parallel, paths: k, levels, sched_steps }
}

/// Algorithm 3: level-synchronous augmentation of all paths at once.
fn level_parallel_augment<C: Communicator>(
    comm: &mut C,
    mut v_c: SpVec<Vidx>,
    parent_r: &DenseVec,
    m: &mut Matching,
) -> usize {
    let n1 = m.n1();
    let n2 = m.n2();
    let mut levels = 0;
    while !v_c.is_empty() {
        levels += 1;
        // Emptiness check is an allreduce over the sparse vector's nnz.
        let total =
            comm.allreduce(Kernel::Augment, &per_rank_counts(&v_c, comm.p()), ReduceOp::Sum);
        debug_assert_eq!(total as usize, v_c.nnz());
        // v_r ← INVERT(v_c): rows to be matched this level.
        let v_r = invert(comm, Kernel::Augment, &v_c, n1);
        // v_r ← SET(v_r, π_r): each row's new mate is its BFS parent column.
        let v_r = set_sparse(comm, Kernel::Augment, &v_r, parent_r);
        // v_c' ← INVERT(v_r): those parent columns, carrying their new rows.
        let v_c2 = invert(comm, Kernel::Augment, &v_r, n2);
        // Old mates of the parent columns — the rows to re-attach next level
        // (NIL for root columns: their paths terminate here).
        let v_next = set_sparse(comm, Kernel::Augment, &v_c2, &m.mate_c);
        // mate updates (dense SETs, local).
        set_dense(comm, Kernel::Augment, &mut m.mate_c, &v_c2, |&r| r);
        set_dense(comm, Kernel::Augment, &mut m.mate_r, &v_r, |&c| c);
        v_c = v_next.filter(|_, &r| r != NIL);
    }
    levels
}

/// Algorithm 4: every path walked independently with one-sided operations.
///
/// Each path becomes a [`PathWalker`] origin whose three one-sided calls
/// per level run inside one [`Communicator::rma_epoch`]. On the simulator
/// with no [`mcm_bsp::Schedule`] installed, origins complete in program
/// order; under a schedule their calls are serviced in a seed-chosen
/// adversarial interleaving — the execution Algorithm 4 actually faces on
/// real RMA hardware. On the engine backend the epoch runs on real threads
/// over shared atomic windows and is closed by an all-to-all fence. The
/// paths are vertex-disjoint by construction (§III-C), so *every*
/// interleaving must produce the same matching; the differential sweeps
/// assert exactly that. Returns `(max levels, interleaved service steps)`.
fn path_parallel_augment<C: Communicator>(
    comm: &mut C,
    v_c: SpVec<Vidx>,
    parent_r: &DenseVec,
    m: &mut Matching,
) -> (usize, u64) {
    let p = comm.p();
    // The parent vector is read-only in the epoch; a window-local copy
    // keeps the exposure list uniform across backends.
    let mut parent = parent_r.clone();
    let mut walkers: Vec<PathWalker> = v_c
        .entries()
        .iter()
        .map(|&(_, end_row)| PathWalker {
            r: end_row,
            c: NIL,
            state: WalkState::GetParent,
            levels: 0,
        })
        .collect();
    let sched_steps = comm.rma_epoch(
        Kernel::Augment,
        vec![&mut parent, &mut m.mate_r, &mut m.mate_c],
        &mut walkers,
    );
    let mut total_levels = 0u64;
    let mut max_levels = 0usize;
    for w in &walkers {
        total_levels += w.levels as u64;
        max_levels = max_levels.max(w.levels);
    }
    // Modeled epoch time, per the paper's §IV-B analysis: the paper-scale
    // run has k·work_scale paths "uniformly distributed across p
    // processors", each level costing 3 merged RMA calls of 3(α+β) — so
    // the bottleneck rank issues (Σ levels)·3·work_scale / p calls. A
    // single path is a sequential dependency chain, so the epoch can never
    // beat 3·h·(α+β) for the longest path h.
    let ctx = comm.ctx_mut();
    let ops_bottleneck =
        (total_levels as f64 * 3.0 * ctx.work_scale / p as f64).max(3.0 * max_levels as f64);
    ctx.timers.charge(Kernel::Augment, ops_bottleneck * ctx.cost.rma_op());
    (max_levels, sched_steps)
}

/// Window indices of the three distributed vectors a [`PathWalker`]
/// touches, mirroring the three `MPI_Win`s of Algorithm 4.
const WIN_PARENT: usize = 0;
const WIN_MATE_R: usize = 1;
const WIN_MATE_C: usize = 2;

/// One augmenting path as a resumable op stream: each `step` issues
/// exactly one one-sided call, so the scheduler (or a real engine rank)
/// can interleave paths at the same granularity real RMA does.
struct PathWalker {
    r: Vidx,
    c: Vidx,
    state: WalkState,
    levels: usize,
}

enum WalkState {
    /// `MPI_Get`: fetch the BFS parent column of `r`.
    GetParent,
    /// `MPI_Fetch_and_op`: swap `r` into `mate_c[c]`, fetching the old row.
    SwapMateC,
    /// `MPI_Put`: record `mate_r[r] = c`, then advance or finish.
    PutMateR {
        /// Row fetched by the swap (`NIL` ⇒ the root column is reached).
        next_r: Vidx,
    },
}

impl RmaTask for PathWalker {
    fn step(&mut self, win: &mut dyn RmaWin) -> bool {
        match self.state {
            WalkState::GetParent => {
                self.levels += 1;
                self.c = win.get(WIN_PARENT, self.r);
                self.state = WalkState::SwapMateC;
                true
            }
            WalkState::SwapMateC => {
                let next_r = win.fetch_and_put(WIN_MATE_C, self.c, self.r);
                self.state = WalkState::PutMateR { next_r };
                true
            }
            WalkState::PutMateR { next_r } => {
                win.put(WIN_MATE_R, self.r, self.c);
                if next_r == NIL {
                    return false; // reached the root column
                }
                self.r = next_r;
                self.state = WalkState::GetParent;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_bsp::{DistCtx, EngineComm, MachineConfig};

    /// One path of length 3 (c0 — r0 = c1 — r1, augmenting):
    /// matching {(r0,c1)}, path ends at unmatched r1 whose parent is c1,
    /// r0's parent is c0 (the root). path_c[c0] = r1.
    fn one_path() -> (DenseVec, DenseVec, Matching) {
        let mut m = Matching::empty(2, 2);
        m.add(0, 1);
        let mut parent_r = DenseVec::nil(2);
        parent_r.set(1, 1); // r1 discovered by c1
        parent_r.set(0, 0); // r0 discovered by the root c0
        let mut path_c = DenseVec::nil(2);
        path_c.set(0, 1); // path rooted at c0 ends at r1
        (path_c, parent_r, m)
    }

    #[test]
    fn level_parallel_flips_the_path() {
        let (path_c, parent_r, mut m) = one_path();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let rep = augment(&mut ctx, AugmentMode::LevelParallel, &path_c, &parent_r, &mut m);
        assert!(!rep.used_path_parallel);
        assert_eq!(rep.paths, 1);
        assert_eq!(rep.levels, 2);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.mate_r.get(1), 1);
        assert_eq!(m.mate_r.get(0), 0);
    }

    #[test]
    fn path_parallel_flips_the_path() {
        let (path_c, parent_r, mut m) = one_path();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let rep = augment(&mut ctx, AugmentMode::PathParallel, &path_c, &parent_r, &mut m);
        assert!(rep.used_path_parallel);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.mate_r.get(1), 1);
        assert_eq!(m.mate_r.get(0), 0);
    }

    #[test]
    fn both_variants_agree_on_multiple_paths() {
        // Two disjoint length-1 paths: unmatched c2 → r2, unmatched c3 → r3.
        let build = || {
            let mut m = Matching::empty(4, 4);
            m.add(0, 0);
            let mut parent_r = DenseVec::nil(4);
            parent_r.set(2, 2);
            parent_r.set(3, 3);
            let mut path_c = DenseVec::nil(4);
            path_c.set(2, 2);
            path_c.set(3, 3);
            (path_c, parent_r, m)
        };
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let (pc, pr, mut m1) = build();
        augment(&mut ctx, AugmentMode::LevelParallel, &pc, &pr, &mut m1);
        let (pc, pr, mut m2) = build();
        augment(&mut ctx, AugmentMode::PathParallel, &pc, &pr, &mut m2);
        assert_eq!(m1, m2);
        assert_eq!(m1.cardinality(), 3);
    }

    #[test]
    fn auto_switches_on_path_count() {
        // p = 1 → threshold 2p² = 2: k = 1 uses path-parallel.
        let (path_c, parent_r, mut m) = one_path();
        let mut ctx = DistCtx::serial();
        let rep = augment(&mut ctx, AugmentMode::Auto, &path_c, &parent_r, &mut m);
        assert!(rep.used_path_parallel);
    }

    #[test]
    fn path_parallel_is_schedule_oblivious() {
        // Vertex-disjoint paths: every adversarial interleaving of the
        // per-level RMA triplets must produce the friendly-schedule result.
        let build = || {
            let mut m = Matching::empty(4, 4);
            m.add(0, 1); // path A: c0 — r0 = c1 — r1
            let mut parent_r = DenseVec::nil(4);
            parent_r.set(1, 1);
            parent_r.set(0, 0);
            parent_r.set(2, 2); // path B: length-1, c2 → r2
            parent_r.set(3, 3); // path C: length-1, c3 → r3
            let mut path_c = DenseVec::nil(4);
            path_c.set(0, 1);
            path_c.set(2, 2);
            path_c.set(3, 3);
            (path_c, parent_r, m)
        };
        let friendly = {
            let (pc, pr, mut m) = build();
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            augment(&mut ctx, AugmentMode::PathParallel, &pc, &pr, &mut m);
            m
        };
        assert_eq!(friendly.cardinality(), 4);
        for seed in 0..32 {
            let (pc, pr, mut m) = build();
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1))
                .with_schedule(mcm_bsp::Schedule::new(seed));
            let rep = augment(&mut ctx, AugmentMode::PathParallel, &pc, &pr, &mut m);
            assert!(rep.sched_steps > 0, "seed {seed}: interleaver did not run");
            assert_eq!(m, friendly, "seed {seed}: interleaving changed the matching");
            assert!(ctx.sched.is_some(), "schedule must be restored to the ctx");
        }
    }

    #[test]
    fn path_parallel_on_the_engine_matches_the_simulator() {
        // The trait-routed epoch must produce the identical matching when
        // the walkers run on real threads over atomic windows.
        let (pc, pr, mut sim_m) = one_path();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        augment(&mut ctx, AugmentMode::PathParallel, &pc, &pr, &mut sim_m);
        let (pc, pr, mut eng_m) = one_path();
        let mut eng = EngineComm::new(4, 1);
        let rep = augment(&mut eng, AugmentMode::PathParallel, &pc, &pr, &mut eng_m);
        assert!(rep.used_path_parallel);
        assert_eq!(eng_m, sim_m);
        assert_eq!(eng_m.cardinality(), 2);
    }

    #[test]
    fn empty_path_set_is_a_noop() {
        let mut ctx = DistCtx::serial();
        let path_c = DenseVec::nil(3);
        let parent_r = DenseVec::nil(3);
        let mut m = Matching::empty(3, 3);
        let rep = augment(&mut ctx, AugmentMode::Auto, &path_c, &parent_r, &mut m);
        assert_eq!(rep.paths, 0);
        assert_eq!(m.cardinality(), 0);
    }
}
