//! The matching itself: a pair of mate vectors.
//!
//! §III-B: *"We store the mates of row and column vertices in two dense
//! vectors `mate_r` and `mate_c`. If the i-th row vertex is matched to the
//! j-th column vertex, then `mate_r[i] = j` and `mate_c[j] = i` (-1 denotes
//! unmatched vertices)."*

use mcm_sparse::{Csc, CscView, DenseVec, Vidx, NIL};

/// A (partial) matching of an `n1 × n2` bipartite graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `mate_r[i]` = column matched to row `i`, or `NIL`.
    pub mate_r: DenseVec,
    /// `mate_c[j]` = row matched to column `j`, or `NIL`.
    pub mate_c: DenseVec,
}

impl Matching {
    /// The empty matching of an `n1 × n2` graph.
    pub fn empty(n1: usize, n2: usize) -> Self {
        Self { mate_r: DenseVec::nil(n1), mate_c: DenseVec::nil(n2) }
    }

    /// Number of row vertices.
    #[inline]
    pub fn n1(&self) -> usize {
        self.mate_r.len()
    }

    /// Number of column vertices.
    #[inline]
    pub fn n2(&self) -> usize {
        self.mate_c.len()
    }

    /// Number of matched edges `|M|`.
    pub fn cardinality(&self) -> usize {
        self.mate_c.count_set()
    }

    /// Adds the edge `(r, c)` to the matching.
    ///
    /// # Panics
    /// Debug-panics if either endpoint is already matched.
    #[inline]
    pub fn add(&mut self, r: Vidx, c: Vidx) {
        debug_assert!(!self.mate_r.is_set(r), "row {r} already matched");
        debug_assert!(!self.mate_c.is_set(c), "col {c} already matched");
        self.mate_r.set(r, c);
        self.mate_c.set(c, r);
    }

    /// `true` when row `r` is matched.
    #[inline]
    pub fn row_matched(&self, r: Vidx) -> bool {
        self.mate_r.is_set(r)
    }

    /// `true` when column `c` is matched.
    #[inline]
    pub fn col_matched(&self, c: Vidx) -> bool {
        self.mate_c.is_set(c)
    }

    /// Unmatched column vertices (the phase seeds of Algorithm 2).
    pub fn unmatched_cols(&self) -> Vec<Vidx> {
        self.mate_c.nil_indices()
    }

    /// Unmatched row vertices.
    pub fn unmatched_rows(&self) -> Vec<Vidx> {
        self.mate_r.nil_indices()
    }

    /// Checks internal consistency and that every matched edge exists in
    /// `a`; returns a description of the first violation.
    pub fn validate(&self, a: &Csc) -> Result<(), String> {
        self.validate_with(a.nrows(), a.ncols(), |r, c| a.contains(r, c))
    }

    /// [`validate`](Self::validate) against a borrowed [`CscView`] — the
    /// zero-copy path for MCSB-backed graphs (`mcm-store`).
    pub fn validate_view(&self, v: &CscView<'_>) -> Result<(), String> {
        self.validate_with(v.nrows(), v.ncols(), |r, c| v.contains(r, c))
    }

    fn validate_with(
        &self,
        nrows: usize,
        ncols: usize,
        contains: impl Fn(Vidx, usize) -> bool,
    ) -> Result<(), String> {
        if self.n1() != nrows || self.n2() != ncols {
            return Err(format!(
                "dimension mismatch: matching {}x{}, matrix {}x{}",
                self.n1(),
                self.n2(),
                nrows,
                ncols
            ));
        }
        for j in 0..self.n2() {
            let r = self.mate_c.get(j as Vidx);
            if r == NIL {
                continue;
            }
            if (r as usize) >= self.n1() {
                return Err(format!("mate_c[{j}] = {r} out of range"));
            }
            if self.mate_r.get(r) != j as Vidx {
                return Err(format!(
                    "inconsistent mates: mate_c[{j}] = {r} but mate_r[{r}] = {}",
                    self.mate_r.get(r)
                ));
            }
            if !contains(r, j) {
                return Err(format!("matched edge ({r}, {j}) is not in the graph"));
            }
        }
        for i in 0..self.n1() {
            let c = self.mate_r.get(i as Vidx);
            if c == NIL {
                continue;
            }
            if (c as usize) >= self.n2() || self.mate_c.get(c) != i as Vidx {
                return Err(format!("inconsistent mates: mate_r[{i}] = {c}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    fn graph() -> Csc {
        Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 1)]).to_csc()
    }

    #[test]
    fn add_and_cardinality() {
        let mut m = Matching::empty(2, 2);
        assert_eq!(m.cardinality(), 0);
        m.add(0, 1);
        assert_eq!(m.cardinality(), 1);
        assert!(m.row_matched(0));
        assert!(m.col_matched(1));
        assert_eq!(m.unmatched_cols(), vec![0]);
        assert_eq!(m.unmatched_rows(), vec![1]);
    }

    #[test]
    fn validate_accepts_good_matching() {
        let mut m = Matching::empty(2, 2);
        m.add(0, 0);
        m.add(1, 1);
        assert!(m.validate(&graph()).is_ok());
    }

    #[test]
    fn validate_rejects_nonedge() {
        let mut m = Matching::empty(2, 2);
        m.mate_r.set(1, 0);
        m.mate_c.set(0, 1);
        // (1, 0) is not an edge of `graph`.
        assert!(m.validate(&graph()).is_err());
    }

    #[test]
    fn validate_rejects_inconsistency() {
        let mut m = Matching::empty(2, 2);
        m.mate_c.set(0, 0); // mate_r[0] still NIL
        assert!(m.validate(&graph()).is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn double_match_panics_in_debug() {
        let mut m = Matching::empty(2, 2);
        m.add(0, 0);
        m.add(0, 1);
    }
}
