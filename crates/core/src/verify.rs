//! Independent verification of matchings.
//!
//! * [`is_maximal`] — no edge joins two unmatched vertices (the guarantee of
//!   the greedy/Karp–Sipser/mindegree initializers).
//! * [`is_maximum`] — no augmenting path exists with respect to `M`, which
//!   by Berge's theorem certifies maximum cardinality. The check runs one
//!   alternating BFS from all unmatched columns — independent of the
//!   algorithms under test, so it catches agreement-in-error with the
//!   Hopcroft–Karp oracle.
//! * [`is_maximum_from`] — the same Berge check seeded from a caller-chosen
//!   set of free columns (the *dirty region*), the per-batch running
//!   certificate of the incremental engine (`mcm-dyn`).
//! * [`verify`] — both checks as a `Result<(), VerifyError>` so sweep
//!   harnesses can report *which* check failed (and under which schedule
//!   seed) without aborting; [`assert_maximum`] is the panicking wrapper.
//! * [`verify_eps_cs`] — the weighted analogue of the Berge certificate:
//!   ε-complementary-slackness of a matching against a price vector, the
//!   independent check of the auction engines (`mcm-core::weighted`) and
//!   of the price-carrying dynamic repair (`mcm-dyn`).

use crate::matching::Matching;
use mcm_sparse::{Csc, CscView, Vidx, WCsc, NIL};
use std::fmt;

/// Why a matching failed verification. `Display` gives the same diagnostic
/// the old panicking API printed, so harnesses (the simtest sweeps) can
/// attach context — notably the schedule seed — instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Structural violation: inconsistent mates, out-of-range indices, or a
    /// matched pair that is not an edge (from [`Matching::validate`]).
    Invalid(String),
    /// The matching is valid but admits an augmenting path (not maximum).
    NotMaximum {
        /// Cardinality of the non-maximum matching.
        cardinality: usize,
    },
    /// The weighted ε-complementary-slackness certificate failed: the
    /// matching/price pair does not bound the optimum within `n·ε`.
    EpsCs(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Invalid(e) => write!(f, "invalid matching: {e}"),
            VerifyError::NotMaximum { cardinality } => {
                write!(f, "matching of cardinality {cardinality} admits an augmenting path")
            }
            VerifyError::EpsCs(e) => write!(f, "eps-CS certificate failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Full verification as a `Result`: structural validity plus the Berge
/// maximality certificate. The panicking [`assert_maximum`] wraps this for
/// benches and examples.
pub fn verify(a: &Csc, m: &Matching) -> Result<(), VerifyError> {
    m.validate(a).map_err(VerifyError::Invalid)?;
    if !is_maximum(a, m) {
        return Err(VerifyError::NotMaximum { cardinality: m.cardinality() });
    }
    Ok(())
}

/// [`verify`] against a borrowed [`CscView`] — validity plus the Berge
/// certificate without materializing an owned `Csc`, so MCSB-backed runs
/// (`mcm match --load graph.mcsb`) are verified against the mapped pages
/// themselves.
pub fn verify_view(v: &CscView<'_>, m: &Matching) -> Result<(), VerifyError> {
    m.validate_view(v).map_err(VerifyError::Invalid)?;
    if !is_maximum_view(v, m) {
        return Err(VerifyError::NotMaximum { cardinality: m.cardinality() });
    }
    Ok(())
}

/// `true` when no edge connects an unmatched row to an unmatched column.
pub fn is_maximal(a: &Csc, m: &Matching) -> bool {
    for c in 0..a.ncols() {
        if m.col_matched(c as Vidx) {
            continue;
        }
        for &r in a.col(c) {
            if !m.row_matched(r) {
                return false;
            }
        }
    }
    true
}

/// `true` when `m` admits no augmenting path (Berge: `m` is maximum).
///
/// Alternating BFS over columns: start from all unmatched columns; from a
/// column go to any unvisited row neighbour; from a matched row go to its
/// mate column. Reaching an unmatched row ⇔ an augmenting path exists.
pub fn is_maximum(a: &Csc, m: &Matching) -> bool {
    let seeds: Vec<Vidx> = m.unmatched_cols();
    is_maximum_from(a, m, &seeds)
}

/// [`is_maximum`] against a borrowed [`CscView`] (zero-copy MCSB path).
pub fn is_maximum_view(v: &CscView<'_>, m: &Matching) -> bool {
    let seeds: Vec<Vidx> = m.unmatched_cols();
    berge_from(v.nrows(), v.ncols(), |j| v.col(j), m, &seeds)
}

/// Dirty-region Berge certificate: `true` when no augmenting path starts
/// at any of `seed_cols` (matched seeds are skipped).
///
/// This is [`is_maximum`] restricted to a caller-chosen set of free
/// columns. It certifies *global* maximality only under an invariant the
/// caller must supply — namely that every free column **not** in
/// `seed_cols` already had no augmenting path and nothing since has
/// created one (the incremental engine's per-batch situation: updates
/// only dirtied `seed_cols`' trees, and augmenting elsewhere never
/// creates new paths from a settled free vertex). The sweep harnesses
/// cross-check it against the full [`is_maximum`].
pub fn is_maximum_from(a: &Csc, m: &Matching, seed_cols: &[Vidx]) -> bool {
    berge_from(a.nrows(), a.ncols(), |j| a.col(j), m, seed_cols)
}

/// Alternating-BFS core shared by the owned and borrowed-view entry points:
/// `col` abstracts column access over `Csc` / `CscView`.
fn berge_from<'a>(
    nrows: usize,
    ncols: usize,
    col: impl Fn(usize) -> &'a [Vidx],
    m: &Matching,
    seed_cols: &[Vidx],
) -> bool {
    let mut visited_col = vec![false; ncols];
    let mut visited_row = vec![false; nrows];
    let mut queue: Vec<Vidx> = Vec::new();
    for &c in seed_cols {
        if !m.col_matched(c) && !visited_col[c as usize] {
            visited_col[c as usize] = true;
            queue.push(c);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        for &r in col(c as usize) {
            if visited_row[r as usize] {
                continue;
            }
            visited_row[r as usize] = true;
            let mate = m.mate_r.get(r);
            if mate == NIL {
                return false; // augmenting path found
            }
            if !visited_col[mate as usize] {
                visited_col[mate as usize] = true;
                queue.push(mate);
            }
        }
    }
    true
}

/// Weighted ε-complementary-slackness certificate — the weighted analogue
/// of the Berge check, verified against the auction's dual variables
/// (`prices`) instead of by path search.
///
/// Four conditions, together bounding `W(M) ≥ OPT − |M|·ε` (exact for
/// integer weights once `|M|·ε < 1`, the classic auction guarantee):
///
/// 1. **Edge ε-CS** — every matched column is within ε of its best net
///    value: `w(r, c) − p[r] ≥ max_{r'} (w(r', c) − p[r']) − ε`.
/// 2. **Individual rationality** — every matched column is within ε of
///    the implicit stay-unmatched option: `w(r, c) − p[r] ≥ −ε`.
/// 3. **Retirement** — every unmatched column's best net value is ≤ 0
///    (no profitable row at these prices).
/// 4. **Unmatched rows are free** — `p[r] = 0` for every unmatched row.
///
/// The proof is an exchange argument over `M Δ M*`: conditions 1/3 charge
/// each `M*` edge against an `M` edge plus ε, condition 4 zeroes the one
/// possible `M*`-only endpoint row of each alternating path, and
/// condition 2 floors components where `M` covers vertices `M*` skips.
/// A small floating-point tolerance absorbs price accumulation error.
pub fn verify_eps_cs(a: &WCsc, m: &Matching, prices: &[f64], eps: f64) -> Result<(), VerifyError> {
    const TOL: f64 = 1e-9;
    m.validate(a.pattern()).map_err(VerifyError::Invalid)?;
    if prices.len() != a.nrows() {
        return Err(VerifyError::EpsCs(format!(
            "price vector has {} entries for {} rows",
            prices.len(),
            a.nrows()
        )));
    }
    if eps.is_nan() || eps <= 0.0 {
        return Err(VerifyError::EpsCs(format!("eps must be positive, got {eps}")));
    }
    for c in 0..a.ncols() as Vidx {
        let best = a
            .col_entries(c as usize)
            .map(|(r, w)| w - prices[r as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        let r = m.mate_c.get(c);
        if r == NIL {
            if best > TOL {
                return Err(VerifyError::EpsCs(format!(
                    "unmatched column {c} has profitable best net value {best}"
                )));
            }
            continue;
        }
        let net = a.weight(r, c as usize).expect("validated matched edge") - prices[r as usize];
        if net + eps < best - TOL {
            return Err(VerifyError::EpsCs(format!(
                "column {c} matched to row {r} at net {net} but best is {best} (eps {eps})"
            )));
        }
        if net + eps < -TOL {
            return Err(VerifyError::EpsCs(format!(
                "column {c} matched to row {r} at net {net} below the unmatched option (eps {eps})"
            )));
        }
    }
    for r in 0..a.nrows() as Vidx {
        if !m.row_matched(r) && prices[r as usize].abs() > TOL {
            return Err(VerifyError::EpsCs(format!(
                "unmatched row {r} has nonzero price {}",
                prices[r as usize]
            )));
        }
    }
    Ok(())
}

/// Panics with a diagnostic unless `m` is a valid maximum matching of `a`
/// (the [`verify`] wrapper for benches, examples, and tests).
pub fn assert_maximum(a: &Csc, m: &Matching) {
    if let Err(e) = verify(a, m) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    fn z_graph() -> Csc {
        // r0-c0, r0-c1, r1-c0: maximum = 2.
        Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc()
    }

    #[test]
    fn maximal_but_not_maximum() {
        let a = z_graph();
        let mut m = Matching::empty(2, 2);
        m.add(0, 0);
        assert!(is_maximal(&a, &m));
        assert!(!is_maximum(&a, &m));
    }

    #[test]
    fn maximum_detected() {
        let a = z_graph();
        let mut m = Matching::empty(2, 2);
        m.add(0, 1);
        m.add(1, 0);
        assert!(is_maximum(&a, &m));
        assert_maximum(&a, &m);
    }

    #[test]
    fn not_even_maximal() {
        let a = z_graph();
        let m = Matching::empty(2, 2);
        assert!(!is_maximal(&a, &m));
        assert!(!is_maximum(&a, &m));
    }

    #[test]
    fn empty_graph_empty_matching_is_maximum() {
        let a = Triples::new(2, 2).to_csc();
        let m = Matching::empty(2, 2);
        assert!(is_maximal(&a, &m));
        assert!(is_maximum(&a, &m));
    }

    #[test]
    fn deficiency_is_recognized() {
        // Star: one row, three columns — cardinality 1 is maximum.
        let a = Triples::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]).to_csc();
        let mut m = Matching::empty(1, 3);
        m.add(0, 2);
        assert!(is_maximum(&a, &m));
    }

    #[test]
    #[should_panic]
    fn assert_maximum_panics_on_suboptimal() {
        let a = z_graph();
        let mut m = Matching::empty(2, 2);
        m.add(0, 0);
        assert_maximum(&a, &m);
    }

    #[test]
    fn seeded_certificate_matches_full_berge() {
        use mcm_sparse::permute::SplitMix64;
        // On random instances: seeding from *all* free columns must agree
        // with is_maximum, and seeding from a free column with a path must
        // find it while settled free columns certify clean.
        let mut rng = SplitMix64::new(0x5EEDED);
        for trial in 0..20 {
            let (n1, n2) = (12usize, 12usize);
            let mut t = Triples::new(n1, n2);
            for _ in 0..30 {
                t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
            }
            let a = t.to_csc();
            // Greedy (possibly suboptimal) matching.
            let mut m = Matching::empty(n1, n2);
            for j in 0..n2 {
                for &i in a.col(j) {
                    if !m.row_matched(i) && !m.col_matched(j as Vidx) {
                        m.add(i, j as Vidx);
                        break;
                    }
                }
            }
            let free: Vec<Vidx> = m.unmatched_cols();
            assert_eq!(is_maximum_from(&a, &m, &free), is_maximum(&a, &m), "trial {trial}");
            assert!(is_maximum_from(&a, &m, &[]), "empty seed set certifies vacuously");
        }
    }

    #[test]
    fn seeded_certificate_finds_path_only_from_its_tree() {
        let a = z_graph();
        let mut m = Matching::empty(2, 2);
        m.add(0, 0); // augmenting path exists from free column 1
        assert!(!is_maximum_from(&a, &m, &[1]));
        assert!(is_maximum_from(&a, &m, &[0]), "matched seeds are skipped");
    }

    #[test]
    fn eps_cs_certifies_the_auction_and_rejects_corruption() {
        use crate::weighted::auction_mwm;
        use mcm_sparse::WCsc;
        let a = WCsc::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
        );
        let r = auction_mwm(&a, 1.0 / 6.0);
        assert_eq!(verify_eps_cs(&a, &r.matching, &r.prices, r.eps), Ok(()));

        // A suboptimal matching (light diagonal) with zero prices breaks
        // edge ε-CS: both columns see a far better alternative.
        let mut light = Matching::empty(2, 2);
        light.add(0, 1);
        light.add(1, 0);
        let zeros = vec![0.0; 2];
        assert!(matches!(verify_eps_cs(&a, &light, &zeros, 1.0 / 6.0), Err(VerifyError::EpsCs(_))));

        // Corrupting a matched row's price below its weight is caught by
        // the unmatched-column profitability check on the evicted column.
        let mut prices = r.prices.clone();
        prices[0] = 0.0;
        let mut partial = Matching::empty(2, 2);
        partial.add(1, 1);
        assert!(matches!(verify_eps_cs(&a, &partial, &prices, r.eps), Err(VerifyError::EpsCs(_))));

        // A nonzero price on an unmatched row is a dual-feasibility bug.
        let empty = Matching::empty(2, 2);
        assert!(matches!(
            verify_eps_cs(&a, &empty, &[5.0, 20.0], 1.0 / 6.0),
            Err(VerifyError::EpsCs(_))
        ));
    }

    #[test]
    fn eps_cs_accepts_weight_sacrificing_cardinality() {
        use crate::weighted::auction_mwm;
        use mcm_sparse::WCsc;
        // MWM leaves c1 unmatched (10 beats 1 + 1); the certificate must
        // accept the deliberately unmatched column.
        let a = WCsc::from_weighted_triples(1, 2, vec![(0, 0, 10.0), (0, 1, 1.0)]);
        let r = auction_mwm(&a, 1.0 / 6.0);
        assert_eq!(r.matching.cardinality(), 1);
        assert_eq!(verify_eps_cs(&a, &r.matching, &r.prices, r.eps), Ok(()));
    }

    #[test]
    fn verify_returns_typed_errors() {
        let a = z_graph();
        let mut good = Matching::empty(2, 2);
        good.add(0, 1);
        good.add(1, 0);
        assert_eq!(verify(&a, &good), Ok(()));

        let mut suboptimal = Matching::empty(2, 2);
        suboptimal.add(0, 0);
        assert_eq!(verify(&a, &suboptimal), Err(VerifyError::NotMaximum { cardinality: 1 }));

        let mut broken = Matching::empty(2, 2);
        broken.mate_c.set(0, 1); // mate_r[1] left NIL: inconsistent
        let err = verify(&a, &broken).unwrap_err();
        assert!(matches!(err, VerifyError::Invalid(_)));
        assert!(err.to_string().starts_with("invalid matching:"));
    }
}
