//! Distributed greedy maximal matching.
//!
//! Round structure (ref [21]'s greedy, in this crate's primitives):
//! every still-unmatched column proposes to all of its rows at once via one
//! semiring SpMSpV; each unmatched row keeps the minimum-index proposer;
//! an INVERT resolves rows proposing back to the same column (first row
//! wins); winners are committed. Repeats until no unmatched column can reach
//! an unmatched row — which is exactly maximality.

use crate::matching::Matching;
use crate::primitives::{invert, select};
use mcm_bsp::collectives::per_rank_counts;
use mcm_bsp::{Communicator, DistMatrix, Kernel, ReduceOp, SpmvPlan};
use mcm_sparse::{SpVec, Vidx, NIL};

/// Greedy distributed maximal matching over the column side.
pub fn greedy<C: Communicator>(comm: &mut C, a: &DistMatrix) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    // Per-rank workspaces reused across every proposal round.
    let mut plan: SpmvPlan<Vidx, Vidx> = SpmvPlan::new();

    loop {
        // Frontier: all unmatched columns, proposing themselves.
        let f_c =
            SpVec::from_sorted_pairs(n2, m.unmatched_cols().into_iter().map(|c| (c, c)).collect());
        if f_c.is_empty() {
            break;
        }
        let total = comm.allreduce(Kernel::Init, &per_rank_counts(&f_c, comm.p()), ReduceOp::Sum);
        debug_assert_eq!(total as usize, f_c.nnz());

        // Each row receives its minimum proposing column.
        let cand_r = comm.spmspv(a, Kernel::Init, &mut plan, &f_c, |j, _| j, |acc, inc| inc < acc);
        // Only unmatched rows can accept.
        let cand_r = select(comm, Kernel::Init, &cand_r, &m.mate_r, |v| v == NIL);
        // Resolve column conflicts: each column keeps its first accepting row.
        let winners = invert(comm, Kernel::Init, &cand_r, n2);
        if winners.is_empty() {
            break; // no unmatched column reaches an unmatched row: maximal
        }
        for &(c, r) in winners.entries() {
            m.add(r, c);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximal;
    use mcm_bsp::{DistCtx, MachineConfig};
    use mcm_sparse::Triples;

    fn run(t: &Triples, dim: usize) -> Matching {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, t);
        let m = greedy(&mut ctx, &a);
        m.validate(&t.to_csc()).unwrap();
        m
    }

    #[test]
    fn produces_maximal_matching() {
        let t =
            Triples::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3), (1, 3)]);
        for dim in 1..=3 {
            let m = run(&t, dim);
            assert!(is_maximal(&t.to_csc(), &m), "grid {dim}");
        }
    }

    #[test]
    fn grid_independent_result() {
        // MinCombiner-based greedy is fully deterministic, so every grid
        // shape must produce the identical matching.
        let t = Triples::from_edges(
            5,
            5,
            vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 3), (4, 3), (4, 4), (0, 4)],
        );
        let base = run(&t, 1);
        for dim in 2..=4 {
            assert_eq!(run(&t, dim), base, "grid {dim}");
        }
    }

    #[test]
    fn empty_graph() {
        let t = Triples::new(3, 3);
        let m = run(&t, 2);
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn perfect_on_diagonal() {
        let t = Triples::from_edges(4, 4, (0..4).map(|i| (i, i)).collect());
        assert_eq!(run(&t, 2).cardinality(), 4);
    }
}
