//! Distributed maximal-matching initializers.
//!
//! §VI-A: *"The total runtime of an MCM algorithm often decreases when it is
//! initialized by a maximal matching with high approximation ratio. In our
//! prior work [21], we developed distributed-memory Karp-Sipser, dynamic
//! mindegree and greedy algorithms using a subset of the matrix-algebraic
//! primitives."*
//!
//! All three are built from the same SpMSpV/INVERT skeleton: unmatched
//! vertices on one side propose along edges (semiring SpMSpV picks one
//! proposal per receiver), an INVERT resolves the receiver→proposer
//! conflicts, and matched pairs are committed — they differ in *who proposes
//! first* and *how the proposal is chosen*:
//!
//! * [`greedy`]: every unmatched column, minimum-index row wins. Cheapest.
//! * [`dynamic_mindegree`]: rows carry their *current* degree and columns
//!   keep the minimum-degree proposer; degrees are updated each round with a
//!   counting SpMSpV.
//! * [`karp_sipser`]: degree-1 columns are matched first (always safe);
//!   rounds without degree-1 vertices fall back to a random proposal. The
//!   cascading degree updates need extra rounds and counting SpMSpVs — the
//!   reason it is "too expensive to maintain the dynamic order of vertices
//!   needed by Karp-Sipser on distributed memory" (§I).
//!
//! The initializers charge to [`Kernel::Init`](mcm_bsp::Kernel::Init) so
//! Fig. 3 can split init time from MCM time.

mod greedy;
mod karp_sipser;
mod mindegree;

pub use greedy::greedy;
pub use karp_sipser::karp_sipser;
pub use mindegree::dynamic_mindegree;

use crate::matching::Matching;
use mcm_bsp::{Communicator, DistMatrix};

/// Which maximal matching seeds MCM-DIST.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Initializer {
    /// Start from the empty matching.
    None,
    /// Distributed greedy.
    Greedy,
    /// Distributed Karp–Sipser.
    KarpSipser,
    /// Distributed dynamic mindegree — the paper's default (§VI-A: "in the
    /// rest of our experiments, we use only dynamic mindegree").
    #[default]
    DynamicMindegree,
}

impl Initializer {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Initializer::None => "none",
            Initializer::Greedy => "greedy",
            Initializer::KarpSipser => "karp-sipser",
            Initializer::DynamicMindegree => "dynamic-mindegree",
        }
    }

    /// Runs the initializer. `a` is the distributed matrix and `at` its
    /// transpose (needed by the row-proposing variants); pass the same
    /// backend so the cost lands in `Kernel::Init` and the proposal
    /// rounds execute on the caller's simulator or engine.
    pub fn run<C: Communicator>(
        &self,
        comm: &mut C,
        a: &DistMatrix,
        at: &DistMatrix,
        seed: u64,
    ) -> Matching {
        let _span = mcm_obs::kernel_span(self.name(), "Init");
        match self {
            Initializer::None => Matching::empty(a.nrows(), a.ncols()),
            Initializer::Greedy => greedy(comm, a),
            Initializer::KarpSipser => karp_sipser(comm, a, at, seed),
            Initializer::DynamicMindegree => dynamic_mindegree(comm, a, at),
        }
    }
}
