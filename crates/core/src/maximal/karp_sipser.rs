//! Distributed Karp–Sipser maximal matching.
//!
//! The degree-1 rule — match a degree-1 column to its unique unmatched row
//! *before* anything else — is provably safe (some maximum matching contains
//! that edge) and gives Karp–Sipser its high approximation ratio. On
//! distributed memory, however, the rule forces a *cascade*: every committed
//! match can create new degree-1 vertices, each cascade step is a full
//! bulk-synchronous round (SpMSpV + INVERT + counting SpMSpV for degree
//! updates), and rounds with few degree-1 vertices run almost empty. That
//! synchronization tax is exactly why §VI-A finds Karp–Sipser "much slower
//! than greedy and dynamic mindegree" at scale even though its matchings are
//! slightly larger.

use crate::matching::Matching;
use crate::primitives::{invert_by, select};
use mcm_bsp::collectives::per_rank_counts;
use mcm_bsp::{Communicator, DistMatrix, Kernel, ReduceOp, SpmvPlan};
use mcm_sparse::{SpVec, Vidx, NIL};

/// A strong 64-bit mix for the random-phase proposal order.
#[inline]
fn mix(seed: u64, v: Vidx) -> u64 {
    let mut z = seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

/// Distributed Karp–Sipser: degree-1 columns first, random fallback rounds.
pub fn karp_sipser<C: Communicator>(
    comm: &mut C,
    a: &DistMatrix,
    at: &DistMatrix,
    seed: u64,
) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    assert_eq!((at.nrows(), at.ncols()), (n2, n1), "at must be the transpose of a");
    let mut m = Matching::empty(n1, n2);
    // Per-rank workspaces reused across the cascade rounds.
    let mut count_plan: SpmvPlan<(), u32> = SpmvPlan::new();
    let mut cand_plan: SpmvPlan<Vidx, Vidx> = SpmvPlan::new();

    // deg_c[j] = # adjacent unmatched rows (dynamic). Initialized by a
    // counting SpMSpV over all rows.
    let all_rows = SpVec::from_sorted_pairs(n1, (0..n1 as Vidx).map(|r| (r, ())).collect());
    let deg0 = comm.spmspv_monoid(
        at,
        Kernel::Init,
        &mut count_plan,
        &all_rows,
        |_, _| 1u32,
        |acc, inc| *acc += inc,
    );
    let mut deg_c = vec![0u32; n2];
    for (j, &d) in deg0.iter() {
        deg_c[j as usize] = d;
    }

    let mut round: u64 = 0;
    loop {
        round += 1;
        // Unmatched rows propose; the proposal key is a per-round hash so
        // the random fallback differs between rounds (deterministic in seed).
        let f_r =
            SpVec::from_sorted_pairs(n1, m.unmatched_rows().into_iter().map(|r| (r, r)).collect());
        if f_r.is_empty() {
            break;
        }
        let total = comm.allreduce(Kernel::Init, &per_rank_counts(&f_r, comm.p()), ReduceOp::Sum);
        debug_assert_eq!(total as usize, f_r.nnz());

        // Each column keeps the min-hash unmatched row reaching it.
        let rs = seed ^ round.wrapping_mul(0xA24B_AED4_963E_E407);
        let cand_c = comm.spmspv(
            at,
            Kernel::Init,
            &mut cand_plan,
            &f_r,
            |_, &r| r,
            |acc, inc| (mix(rs, *inc), *inc) < (mix(rs, *acc), *acc),
        );
        let cand_c = select(comm, Kernel::Init, &cand_c, &m.mate_c, |v| v == NIL);
        if cand_c.is_empty() {
            break; // maximal: no unmatched column touches an unmatched row
        }

        // Degree-1 rule: if any unmatched column has dynamic degree 1,
        // restrict this round to those columns (the safe matches).
        let deg1 = cand_c.filter(|j, _| deg_c[j as usize] == 1);
        let chosen = if deg1.is_empty() { cand_c } else { deg1 };

        // Resolve row conflicts; commit.
        let winners = invert_by(comm, Kernel::Init, &chosen, n1, |&r| r, |c, _| c);
        let mut new_rows: Vec<(Vidx, ())> = Vec::with_capacity(winners.nnz());
        for &(r, c) in winners.entries() {
            m.add(r, c);
            new_rows.push((r, ()));
        }
        new_rows.sort_unstable_by_key(|&(r, _)| r);
        let new_rows = SpVec::from_sorted_pairs(n1, new_rows);

        // Degree update: columns adjacent to newly matched rows lose one
        // unmatched neighbour each (counting SpMSpV over the transpose).
        let dec = comm.spmspv_monoid(
            at,
            Kernel::Init,
            &mut count_plan,
            &new_rows,
            |_, _| 1u32,
            |acc, inc| *acc += inc,
        );
        for (j, &d) in dec.iter() {
            deg_c[j as usize] = deg_c[j as usize].saturating_sub(d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maximal::greedy;
    use crate::verify::is_maximal;
    use mcm_bsp::{DistCtx, MachineConfig};
    use mcm_sparse::Triples;

    fn run(t: &Triples, dim: usize, seed: u64) -> Matching {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, t);
        let at = DistMatrix::from_triples(&ctx, &t.transposed());
        let m = karp_sipser(&mut ctx, &a, &at, seed);
        m.validate(&t.to_csc()).unwrap();
        m
    }

    #[test]
    fn produces_maximal_matching_on_all_grids() {
        let t = Triples::from_edges(
            5,
            5,
            vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3), (1, 3), (4, 4), (0, 4)],
        );
        for dim in 1..=3 {
            let m = run(&t, dim, 7);
            assert!(is_maximal(&t.to_csc(), &m), "grid {dim}");
        }
    }

    #[test]
    fn grid_independent_result() {
        let t = Triples::from_edges(
            6,
            6,
            vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 3), (4, 3), (4, 4), (5, 5), (0, 5)],
        );
        let base = run(&t, 1, 3);
        for dim in 2..=3 {
            assert_eq!(run(&t, dim, 3), base, "grid {dim}");
        }
    }

    #[test]
    fn degree_one_rule_saves_the_pendant() {
        // Same trap as the mindegree test: c1's only hope is r0, but r1's
        // only hope is r... the degree-1 rule must match the pendants first.
        let t = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = run(&t, 1, 5);
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn at_least_as_good_as_greedy_in_aggregate() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(4242);
        let (mut ks_total, mut gr_total) = (0usize, 0usize);
        for _ in 0..15 {
            let n = 30;
            let mut t = Triples::new(n, n);
            for _ in 0..2 * n {
                t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
            }
            let mut ctx = DistCtx::serial();
            let a = DistMatrix::from_triples(&ctx, &t);
            let at = DistMatrix::from_triples(&ctx, &t.transposed());
            ks_total += karp_sipser(&mut ctx, &a, &at, 1).cardinality();
            gr_total += greedy(&mut ctx, &a).cardinality();
        }
        assert!(ks_total >= gr_total, "karp-sipser {ks_total} vs greedy {gr_total}");
    }

    #[test]
    fn uses_more_rounds_than_greedy() {
        // The synchronization-tax claim of §VI-A: KS charges more Init calls
        // (rounds × kernels) than greedy on a chain-heavy graph.
        let k = 40;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push((i as Vidx, i as Vidx));
            if i + 1 < k {
                edges.push((i as Vidx, (i + 1) as Vidx));
            }
        }
        let t = Triples::from_edges(k, k, edges);
        let mut ctx_ks = DistCtx::new(MachineConfig::hybrid(2, 1));
        let a = DistMatrix::from_triples(&ctx_ks, &t);
        let at = DistMatrix::from_triples(&ctx_ks, &t.transposed());
        let _ = karp_sipser(&mut ctx_ks, &a, &at, 1);
        let mut ctx_gr = DistCtx::new(MachineConfig::hybrid(2, 1));
        let _ = greedy(&mut ctx_gr, &a);
        assert!(
            ctx_ks.timers.calls(Kernel::Init) > ctx_gr.timers.calls(Kernel::Init),
            "KS {} calls vs greedy {}",
            ctx_ks.timers.calls(Kernel::Init),
            ctx_gr.timers.calls(Kernel::Init)
        );
    }
}
