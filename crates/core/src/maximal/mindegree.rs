//! Distributed dynamic-mindegree maximal matching.
//!
//! Like greedy, but proposals flow from *rows* and each column keeps the
//! proposer with the smallest **current** degree — the number of unmatched
//! columns still adjacent to the row. Preferring endangered (low-degree)
//! rows preserves options for the future and empirically beats greedy's
//! approximation ratio while staying one SpMSpV-pair per round (ref [21];
//! §VI-A picks this as the default initializer).

use crate::matching::Matching;
use crate::primitives::{invert_by, select};
use mcm_bsp::collectives::per_rank_counts;
use mcm_bsp::{Communicator, DistMatrix, Kernel, ReduceOp, SpmvPlan};
use mcm_sparse::{SpVec, Vidx, NIL};

/// Distributed dynamic-mindegree maximal matching.
///
/// `a` is the `n1 × n2` matrix, `at` its transpose (rows propose along
/// `at`: columns of `at` are the rows of `a`).
pub fn dynamic_mindegree<C: Communicator>(
    comm: &mut C,
    a: &DistMatrix,
    at: &DistMatrix,
) -> Matching {
    let (n1, n2) = (a.nrows(), a.ncols());
    assert_eq!((at.nrows(), at.ncols()), (n2, n1), "at must be the transpose of a");
    let mut m = Matching::empty(n1, n2);
    // Per-rank workspaces: one plan per (matrix, value-type) pair, reused
    // across every degree-count and proposal round.
    let mut deg_plan: SpmvPlan<(), u32> = SpmvPlan::new();
    let mut cand_plan: SpmvPlan<(Vidx, u32), (Vidx, u32)> = SpmvPlan::new();

    // Current degree of each row = # adjacent unmatched columns. The initial
    // value is the static row degree (one counting SpMSpV over all columns).
    let all_cols = SpVec::from_sorted_pairs(n2, (0..n2 as Vidx).map(|c| (c, ())).collect());
    let deg0 = comm.spmspv_monoid(
        a,
        Kernel::Init,
        &mut deg_plan,
        &all_cols,
        |_, _| 1u32,
        |acc, inc| *acc += inc,
    );
    let mut deg_r = vec![0u32; n1];
    for (i, &d) in deg0.iter() {
        deg_r[i as usize] = d;
    }

    loop {
        // Frontier: unmatched rows proposing with their current degree.
        let f_r = SpVec::from_sorted_pairs(
            n1,
            m.unmatched_rows().into_iter().map(|r| (r, (r, deg_r[r as usize]))).collect(),
        );
        if f_r.is_empty() {
            break;
        }
        let total = comm.allreduce(Kernel::Init, &per_rank_counts(&f_r, comm.p()), ReduceOp::Sum);
        debug_assert_eq!(total as usize, f_r.nnz());

        // Each column keeps the (degree, index)-minimal unmatched row.
        let cand_c = comm.spmspv_monoid(
            at,
            Kernel::Init,
            &mut cand_plan,
            &f_r,
            |_, &(r, d)| (r, d),
            |acc: &mut (Vidx, u32), inc| {
                if (inc.1, inc.0) < (acc.1, acc.0) {
                    *acc = inc;
                }
            },
        );
        // Only unmatched columns can accept.
        let cand_c = select(comm, Kernel::Init, &cand_c, &m.mate_c, |v| v == NIL);
        // Resolve row conflicts: each row keeps its first accepting column.
        let winners = invert_by(comm, Kernel::Init, &cand_c, n1, |&(r, _)| r, |c, _| c);
        if winners.is_empty() {
            break; // maximal
        }
        // Commit matches and decrement the degrees of rows that lost a
        // still-unmatched neighbour (one counting SpMSpV over new columns).
        let mut new_cols: Vec<(Vidx, ())> = Vec::with_capacity(winners.nnz());
        for &(r, c) in winners.entries() {
            m.add(r, c);
            new_cols.push((c, ()));
        }
        new_cols.sort_unstable_by_key(|&(c, _)| c);
        let new_cols = SpVec::from_sorted_pairs(n2, new_cols);
        let dec = comm.spmspv_monoid(
            a,
            Kernel::Init,
            &mut deg_plan,
            &new_cols,
            |_, _| 1u32,
            |acc, inc| *acc += inc,
        );
        for (i, &d) in dec.iter() {
            deg_r[i as usize] = deg_r[i as usize].saturating_sub(d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maximal::greedy;
    use crate::verify::is_maximal;
    use mcm_bsp::{DistCtx, MachineConfig};
    use mcm_sparse::Triples;

    fn run(t: &Triples, dim: usize) -> Matching {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, t);
        let at = DistMatrix::from_triples(&ctx, &t.transposed());
        let m = dynamic_mindegree(&mut ctx, &a, &at);
        m.validate(&t.to_csc()).unwrap();
        m
    }

    #[test]
    fn produces_maximal_matching_on_all_grids() {
        let t = Triples::from_edges(
            5,
            5,
            vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3), (1, 3), (4, 4), (0, 4)],
        );
        for dim in 1..=3 {
            let m = run(&t, dim);
            assert!(is_maximal(&t.to_csc(), &m), "grid {dim}");
        }
    }

    #[test]
    fn grid_independent_result() {
        let t = Triples::from_edges(
            6,
            6,
            vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 3), (4, 3), (4, 4), (5, 5), (0, 5)],
        );
        let base = run(&t, 1);
        for dim in 2..=3 {
            assert_eq!(run(&t, dim), base, "grid {dim}");
        }
    }

    #[test]
    fn mindegree_rescues_the_pendant_row() {
        // r0 has degree 2 (c0, c1); r1 has degree 1 (c0 only). A degree-
        // oblivious choice can give c0 to r0 and strand r1; mindegree must
        // match r1 first and reach cardinality 2.
        let t = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = run(&t, 1);
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn at_least_as_good_as_greedy_in_aggregate() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(99);
        let (mut md_total, mut gr_total) = (0usize, 0usize);
        for _ in 0..15 {
            let n = 30;
            let mut t = Triples::new(n, n);
            for _ in 0..2 * n {
                t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
            }
            let mut ctx = DistCtx::serial();
            let a = DistMatrix::from_triples(&ctx, &t);
            let at = DistMatrix::from_triples(&ctx, &t.transposed());
            md_total += dynamic_mindegree(&mut ctx, &a, &at).cardinality();
            gr_total += greedy(&mut ctx, &a).cardinality();
        }
        assert!(md_total >= gr_total, "mindegree {md_total} vs greedy {gr_total}");
    }
}
