//! Parallel Pothen–Fan: multi-source lookahead-DFS augmentation as a
//! first-class engine (DESIGN.md §15).
//!
//! The serial [`crate::serial::pothen_fan`] is the repo's strongest
//! augmenting-path oracle; this module promotes the same algorithm to a
//! thread-parallel competitor of MS-BFS (the DPHPC "PPF" design noted in
//! SNIPPETS.md #3). Each *phase* runs one lookahead-DFS from every
//! unmatched column; within a phase the matching is frozen, rows are
//! claimed exclusively through a generation-stamped atomic visited array
//! (the same stamp discipline as the SpMSpV workspace SPA — no O(n)
//! clears between phases), and the vertex-disjoint augmenting paths the
//! workers discover are committed at the phase barrier. Phases repeat
//! until one finds no path, which — because the merged search forests
//! cover exactly the set of vertices alternating-reachable from the free
//! columns — certifies maximality by Berge's theorem.
//!
//! **Why the claim discipline is safe.** A row is inspected only by the
//! worker that won its stamp CAS, so no row joins two paths. A column is
//! entered either as a DFS root (roots are distinct free columns) or
//! through its matched row (claimed exclusively), so no column joins two
//! paths either. The lookahead scan skips matched rows *without* claiming
//! them — matched rows stay available to other workers' descend scans,
//! which keeps the final, path-free phase a sound reachability
//! certificate. Skipping is permanent (the cursor is monotone for the
//! whole run, amortizing lookahead to O(deg) per column) and sound
//! because a matched row never becomes free again under augmentation.
//!
//! **Fairness.** With a fixed root order, roots late in the order
//! repeatedly lose contested rows to earlier short searches and their
//! (typically long) augmenting paths starve into extra phases. The
//! fairness mechanism rotates the root order by one position per phase so
//! every root is eventually served first; `seed` additionally applies a
//! deterministic per-phase shuffle (the simtest order perturbation —
//! `0` leaves the rotation order untouched).

use crate::matching::Matching;
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Csc, Vidx, NIL};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Tunables of the parallel Pothen–Fan engine.
#[derive(Clone, Copy, Debug)]
pub struct PpfOptions {
    /// Worker threads pulling DFS roots from the shared cursor. `1` runs
    /// inline and fully deterministically (the differential default).
    pub threads: usize,
    /// Rotate the root order by one position per phase so late roots do
    /// not starve behind early short searches.
    pub fairness: bool,
    /// Deterministic per-phase shuffle of the root order (the simtest
    /// schedule analogue); `0` keeps the natural (rotated) order.
    pub seed: u64,
}

impl Default for PpfOptions {
    fn default() -> Self {
        Self { threads: 1, fairness: true, seed: 0 }
    }
}

/// Counters describing one [`ppf`] run.
#[derive(Clone, Debug, Default)]
pub struct PpfStats {
    /// Phases executed (including the final, path-free one).
    pub phases: usize,
    /// Augmenting paths committed.
    pub paths: usize,
    /// Matched edges flipped across all paths (path half-lengths).
    pub path_edges: usize,
    /// Longest committed path in matched edges.
    pub max_path: usize,
    /// Paths whose free row was found by the lookahead scan (the prune
    /// that makes Pothen–Fan fast in practice).
    pub lookahead_hits: usize,
    /// Rows claimed by descend steps (the DFS work measure).
    pub dfs_rows: usize,
    /// Fairness rotations applied to the root order.
    pub rotations: usize,
}

/// The result of [`ppf`].
#[derive(Clone, Debug)]
pub struct PpfResult {
    /// A maximum cardinality matching.
    pub matching: Matching,
    /// Run counters.
    pub stats: PpfStats,
}

/// An augmenting path found by one DFS: the stack's columns root→tip plus
/// the free row reached. Committed at the phase barrier.
struct FoundPath {
    cols: Vec<Vidx>,
    end_row: Vidx,
    via_lookahead: bool,
    dfs_rows: usize,
}

/// Computes a maximum cardinality matching by phase-synchronous parallel
/// Pothen–Fan, optionally warm-started from `init`.
pub fn ppf(a: &Csc, init: Option<Matching>, opts: &PpfOptions) -> PpfResult {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = init.unwrap_or_else(|| Matching::empty(n1, n2));
    debug_assert!(m.validate(a).is_ok());
    let mut stats = PpfStats::default();

    // Generation-stamped workspaces: a row is claimed for phase `p` by
    // CAS-ing its stamp to `p`; lookahead cursors are monotone across the
    // whole run (each column's adjacency is lookahead-scanned once).
    let visited: Vec<AtomicU32> = (0..n1).map(|_| AtomicU32::new(0)).collect();
    let lookahead: Vec<AtomicUsize> = (0..n2).map(|_| AtomicUsize::new(0)).collect();

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        stats.phases += 1;
        let _span = mcm_obs::span("ppf_phase");
        mcm_obs::counter_add("mcm_ppf_phases_total", &[], 1);

        let mut roots: Vec<Vidx> = m.unmatched_cols();
        if roots.is_empty() {
            break;
        }
        if opts.fairness && !roots.is_empty() {
            // Rotate by the phase index: over the run every surviving root
            // is served first at least once every |roots| phases.
            let rot = (stats.phases - 1) % roots.len();
            roots.rotate_left(rot);
            stats.rotations += usize::from(rot > 0);
        }
        if opts.seed != 0 {
            // Per-phase deterministic perturbation, a pure function of
            // (seed, phase) so a failing run replays from the seed alone.
            let mut rng =
                SplitMix64::new(opts.seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for k in (1..roots.len()).rev() {
                let j = rng.below(k as u64 + 1) as usize;
                roots.swap(k, j);
            }
        }

        let found = run_phase(a, &m, &visited, &lookahead, &roots, phase, opts.threads);
        if found.is_empty() {
            break;
        }
        // Commit the vertex-disjoint paths in deterministic (root) order.
        let mut found = found;
        found.sort_unstable_by_key(|p| p.cols[0]);
        for path in &found {
            stats.paths += 1;
            stats.lookahead_hits += usize::from(path.via_lookahead);
            stats.dfs_rows += path.dfs_rows;
            stats.path_edges += path.cols.len() - 1;
            stats.max_path = stats.max_path.max(path.cols.len() - 1);
            let mut r = path.end_row;
            for &c in path.cols.iter().rev() {
                let prev = m.mate_c.get(c);
                m.mate_c.set(c, r);
                m.mate_r.set(r, c);
                r = prev;
            }
            debug_assert_eq!(r, NIL, "path must terminate at its free root");
        }
    }
    mcm_obs::counter_add("mcm_ppf_paths_total", &[], stats.paths as u64);
    PpfResult { matching: m, stats }
}

/// One phase: workers pull roots from a shared cursor and DFS against the
/// frozen matching; returns the disjoint paths found.
fn run_phase(
    a: &Csc,
    m: &Matching,
    visited: &[AtomicU32],
    lookahead: &[AtomicUsize],
    roots: &[Vidx],
    phase: u32,
    threads: usize,
) -> Vec<FoundPath> {
    let workers = threads.max(1).min(roots.len());
    if workers <= 1 {
        let mut stack = Vec::new();
        return roots
            .iter()
            .filter_map(|&c0| dfs_lookahead(a, m, visited, lookahead, &mut stack, c0, phase))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut stack = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= roots.len() {
                            break;
                        }
                        if let Some(p) =
                            dfs_lookahead(a, m, visited, lookahead, &mut stack, roots[k], phase)
                        {
                            got.push(p);
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("ppf worker panicked")).collect()
    })
}

/// Claims `slot` for `phase`; `false` when some worker (possibly this
/// one) already holds it this phase.
#[inline]
fn claim(slot: &AtomicU32, phase: u32) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if cur == phase {
            return false;
        }
        match slot.compare_exchange_weak(cur, phase, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Iterative lookahead-DFS from free column `c0` against the frozen
/// matching. Rows are inspected only after winning their stamp CAS, so
/// concurrent searches stay vertex-disjoint.
fn dfs_lookahead(
    a: &Csc,
    m: &Matching,
    visited: &[AtomicU32],
    lookahead: &[AtomicUsize],
    stack: &mut Vec<(Vidx, usize)>,
    c0: Vidx,
    phase: u32,
) -> Option<FoundPath> {
    stack.clear();
    stack.push((c0, 0));
    let mut dfs_rows = 0usize;

    while let Some(&mut (c, ref mut cursor)) = stack.last_mut() {
        let adj = a.col(c as usize);

        // --- Lookahead: claim a still-free neighbour if one remains. ----
        // Matched rows are skipped *without* claiming (they stay reachable
        // for descend); free rows are either claimed here (success) or
        // were claimed by another path (skip — they will be matched when
        // that path commits, so the monotone skip is sound).
        let la = &lookahead[c as usize];
        let mut end_row = NIL;
        loop {
            let pos = la.load(Ordering::Relaxed);
            if pos >= adj.len() {
                break;
            }
            // Only one worker can hold column c in a given phase, so the
            // cursor is single-writer here; phases are ordered by the
            // commit barrier.
            la.store(pos + 1, Ordering::Relaxed);
            let r = adj[pos];
            if m.row_matched(r) {
                continue;
            }
            if claim(&visited[r as usize], phase) {
                end_row = r;
                break;
            }
        }
        if end_row != NIL {
            let cols = stack.iter().map(|&(c, _)| c).collect();
            return Some(FoundPath { cols, end_row, via_lookahead: true, dfs_rows });
        }

        // --- Descend through a matched row. ------------------------------
        let mut advanced = false;
        while *cursor < adj.len() {
            let r = adj[*cursor];
            *cursor += 1;
            if !claim(&visited[r as usize], phase) {
                continue;
            }
            dfs_rows += 1;
            if !m.row_matched(r) {
                // Defensive: the exhausted lookahead cursor means every
                // free neighbour was claimed, so this cannot happen; but a
                // claimed free row is a valid path endpoint regardless.
                debug_assert!(false, "descend reached an unclaimed free row");
                let cols = stack.iter().map(|&(c, _)| c).collect();
                return Some(FoundPath { cols, end_row: r, via_lookahead: false, dfs_rows });
            }
            stack.push((m.mate_r.get(r), 0));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use crate::verify;
    use mcm_sparse::Triples;

    fn random_graph(rng: &mut SplitMix64, n1: usize, n2: usize, edges: usize) -> Triples {
        let mut t = Triples::new(n1, n2);
        for _ in 0..edges {
            t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
        }
        t
    }

    #[test]
    fn matches_hk_on_random_graphs_across_threads_and_fairness() {
        let mut rng = SplitMix64::new(0x9F);
        for trial in 0..25 {
            let n1 = 5 + (rng.next_u64() % 30) as usize;
            let n2 = 5 + (rng.next_u64() % 30) as usize;
            let t = random_graph(&mut rng, n1, n2, 3 * n1.max(n2));
            let a = t.to_csc();
            let want = hopcroft_karp(&a, None).cardinality();
            for threads in [1usize, 4] {
                for fairness in [false, true] {
                    let opts = PpfOptions { threads, fairness, seed: 0 };
                    let r = ppf(&a, None, &opts);
                    r.matching.validate(&a).unwrap();
                    verify::verify(&a, &r.matching).unwrap();
                    assert_eq!(
                        r.matching.cardinality(),
                        want,
                        "trial {trial} threads {threads} fairness {fairness}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_order_perturbations_agree_on_cardinality() {
        let mut rng = SplitMix64::new(0x51);
        let t = random_graph(&mut rng, 24, 24, 70);
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        for seed in [0u64, 1, 0xDEAD, 0x5EED5EED] {
            let r = ppf(&a, None, &PpfOptions { seed, ..PpfOptions::default() });
            verify::verify(&a, &r.matching).unwrap();
            assert_eq!(r.matching.cardinality(), want, "seed {seed:#x}");
        }
    }

    #[test]
    fn single_thread_is_deterministic() {
        let mut rng = SplitMix64::new(0x77);
        let t = random_graph(&mut rng, 30, 30, 90);
        let a = t.to_csc();
        let opts = PpfOptions::default();
        let r1 = ppf(&a, None, &opts);
        let r2 = ppf(&a, None, &opts);
        assert_eq!(r1.matching, r2.matching);
        assert_eq!(r1.stats.paths, r2.stats.paths);
    }

    #[test]
    fn warm_start_resumes() {
        let a = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).to_csc();
        let mut init = Matching::empty(2, 2);
        init.add(0, 0);
        let r = ppf(&a, Some(init), &PpfOptions::default());
        assert_eq!(r.matching.cardinality(), 2);
    }

    #[test]
    fn fairness_rotation_actually_rotates() {
        // Two contention gadgets: each pair of columns shares one row, so
        // phase one serves only the first of each pair and phase two
        // starts with two surviving roots — the rotation must engage.
        let a = Triples::from_edges(2, 4, vec![(0, 0), (0, 1), (1, 2), (1, 3)]).to_csc();
        let r = ppf(&a, None, &PpfOptions { fairness: true, ..PpfOptions::default() });
        assert_eq!(r.matching.cardinality(), 2);
        assert_eq!(r.stats.phases, 2);
        assert!(r.stats.rotations > 0, "fairness rotation never engaged");
    }

    #[test]
    fn lookahead_prunes_most_searches_on_first_phase() {
        // Cold start on a graph with plenty of free rows: almost every
        // first-phase path should come from the lookahead, not deep DFS.
        let mut rng = SplitMix64::new(3);
        let t = random_graph(&mut rng, 40, 40, 120);
        let a = t.to_csc();
        let r = ppf(&a, None, &PpfOptions::default());
        assert!(r.stats.lookahead_hits > 0, "lookahead never fired");
        assert!(r.stats.paths >= r.stats.lookahead_hits);
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        let a = Triples::new(3, 4).to_csc();
        let r = ppf(&a, None, &PpfOptions::default());
        assert_eq!(r.matching.cardinality(), 0);
        let a = Triples::new(0, 0).to_csc();
        assert_eq!(ppf(&a, None, &PpfOptions::default()).matching.cardinality(), 0);
    }
}
