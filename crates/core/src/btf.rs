//! Block triangular form (fine Dulmage–Mendelsohn decomposition).
//!
//! For a structurally nonsingular square matrix, sparse direct solvers go
//! one step beyond the zero-free diagonal the matching provides: permuting
//! rows *and* columns so the matrix is **block upper triangular** lets the
//! solver factorize only the diagonal blocks. The construction is the
//! classic one (Duff/Reid `MC13`, Pothen–Fan): with a perfect matching `M`,
//! build the directed graph on columns with an arc `c → c'` whenever row
//! `mate(c)` has a nonzero in column `c'`; the strongly connected
//! components of that digraph, in reverse topological order, are the
//! diagonal blocks.
//!
//! This is the "fine" decomposition of the square DM part; [`crate::dm`]
//! provides the coarse one.

use crate::matching::Matching;
use mcm_sparse::{Csc, Vidx};

/// A block-triangular permutation of a square, structurally nonsingular
/// matrix.
#[derive(Clone, Debug)]
pub struct Btf {
    /// Column order: `col_order[k]` is the original column at permuted
    /// position `k`. Rows follow their matched columns (`mate_c`), keeping
    /// the diagonal zero-free.
    pub col_order: Vec<Vidx>,
    /// Row order aligned with `col_order` through the matching.
    pub row_order: Vec<Vidx>,
    /// Block boundaries: block `b` spans permuted positions
    /// `block_ptr[b]..block_ptr[b + 1]`.
    pub block_ptr: Vec<usize>,
}

impl Btf {
    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Size of the largest diagonal block (the factorization bottleneck).
    pub fn max_block(&self) -> usize {
        (0..self.num_blocks()).map(|b| self.block_ptr[b + 1] - self.block_ptr[b]).max().unwrap_or(0)
    }
}

/// Computes the block triangular form of a square matrix from a **perfect**
/// matching.
///
/// # Panics
/// Panics when the matrix is not square or the matching is not perfect
/// (run [`crate::dm::dulmage_mendelsohn`] first for the general case).
///
/// # Example
///
/// ```
/// use mcm_core::btf::block_triangular_form;
/// use mcm_core::serial::hopcroft_karp;
/// use mcm_sparse::Triples;
///
/// // Diagonal + superdiagonal: already triangular, n singleton blocks.
/// let a = Triples::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]).to_csc();
/// let m = hopcroft_karp(&a, None);
/// let btf = block_triangular_form(&a, &m);
/// assert_eq!(btf.num_blocks(), 3);
/// assert_eq!(btf.max_block(), 1);
/// ```
pub fn block_triangular_form(a: &Csc, m: &Matching) -> Btf {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "BTF requires a square matrix");
    assert_eq!(m.cardinality(), n, "BTF requires a perfect matching");

    // Tarjan's SCC over the implicit column digraph: c → c' iff
    // A(mate_c(c), c') != 0 and c' != c. Iterative to survive deep chains.
    // SCCs pop in reverse topological order, which is exactly the diagonal
    // block order for an upper triangular arrangement.
    let at = a.transpose(); // row adjacency: at.col(r) = columns of row r
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<Vidx> = Vec::new();
    let mut next_index = 0u32;

    let mut col_order: Vec<Vidx> = Vec::with_capacity(n);
    let mut block_ptr = vec![0usize];

    // Explicit DFS frames: (column, adjacency cursor).
    let mut frames: Vec<(Vidx, usize)> = Vec::new();
    for start in 0..n as Vidx {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (c, ref mut cursor)) = frames.last_mut() {
            let r = m.mate_c.get(c); // pivot row of column c
            let adj = at.col(r as usize);
            if *cursor < adj.len() {
                let c2 = adj[*cursor];
                *cursor += 1;
                if c2 == c {
                    continue; // the diagonal (matched) entry
                }
                if index[c2 as usize] == UNSET {
                    index[c2 as usize] = next_index;
                    lowlink[c2 as usize] = next_index;
                    next_index += 1;
                    stack.push(c2);
                    on_stack[c2 as usize] = true;
                    frames.push((c2, 0));
                } else if on_stack[c2 as usize] {
                    lowlink[c as usize] = lowlink[c as usize].min(index[c2 as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[c as usize]);
                }
                if lowlink[c as usize] == index[c as usize] {
                    // c is an SCC root: pop the component.
                    loop {
                        let v = stack.pop().expect("SCC stack underflow");
                        on_stack[v as usize] = false;
                        col_order.push(v);
                        if v == c {
                            break;
                        }
                    }
                    block_ptr.push(col_order.len());
                }
            }
        }
    }

    // Tarjan emits components sinks-first (reverse topological order);
    // upper triangular wants sources first, so flip blocks and entries.
    col_order.reverse();
    let total = *block_ptr.last().unwrap();
    let sizes: Vec<usize> = block_ptr.windows(2).rev().map(|w| w[1] - w[0]).collect();
    let mut block_ptr = Vec::with_capacity(sizes.len() + 1);
    block_ptr.push(0);
    let mut acc = 0;
    for s in sizes {
        acc += s;
        block_ptr.push(acc);
    }
    debug_assert_eq!(acc, total);

    let row_order = col_order.iter().map(|&c| m.mate_c.get(c)).collect();
    Btf { col_order, row_order, block_ptr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use mcm_sparse::Triples;

    fn btf_of(t: &Triples) -> (Csc, Matching, Btf) {
        let a = t.to_csc();
        let m = hopcroft_karp(&a, None);
        let b = block_triangular_form(&a, &m);
        (a, m, b)
    }

    /// Asserts the permuted matrix is block upper triangular with a
    /// zero-free diagonal.
    fn assert_block_upper_triangular(a: &Csc, btf: &Btf) {
        let n = a.ncols();
        // position of each original row/col in the permuted order
        let mut row_pos = vec![0usize; n];
        let mut col_pos = vec![0usize; n];
        for (k, (&r, &c)) in btf.row_order.iter().zip(&btf.col_order).enumerate() {
            row_pos[r as usize] = k;
            col_pos[c as usize] = k;
        }
        // block id of each permuted position
        let mut block_of = vec![0usize; n];
        for b in 0..btf.num_blocks() {
            for k in btf.block_ptr[b]..btf.block_ptr[b + 1] {
                block_of[k] = b;
            }
        }
        // Diagonal is zero-free by construction.
        for k in 0..n {
            assert!(a.contains(btf.row_order[k], btf.col_order[k] as usize));
        }
        // Every entry lies on or above the block diagonal.
        for (r, c) in a.iter() {
            let (br, bc) = (block_of[row_pos[r as usize]], block_of[col_pos[c as usize]]);
            assert!(br <= bc, "entry ({r},{c}) falls below the block diagonal ({br} > {bc})");
        }
    }

    #[test]
    fn diagonal_matrix_gives_singleton_blocks() {
        let t = Triples::from_edges(3, 3, vec![(0, 0), (1, 1), (2, 2)]);
        let (a, _, btf) = btf_of(&t);
        assert_eq!(btf.num_blocks(), 3);
        assert_eq!(btf.max_block(), 1);
        assert_block_upper_triangular(&a, &btf);
    }

    #[test]
    fn cycle_is_one_block() {
        // Column digraph cycle: c0 → c1 → c2 → c0.
        let t = Triples::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let (a, _, btf) = btf_of(&t);
        assert_eq!(btf.num_blocks(), 1);
        assert_eq!(btf.max_block(), 3);
        assert_block_upper_triangular(&a, &btf);
    }

    #[test]
    fn chain_gives_triangular_singletons() {
        // Already upper triangular: diagonal + superdiagonal.
        let n = 10;
        let mut t = Triples::new(n, n);
        for i in 0..n as Vidx {
            t.push(i, i);
            if (i as usize) + 1 < n {
                t.push(i, i + 1);
            }
        }
        let (a, _, btf) = btf_of(&t);
        assert_eq!(btf.num_blocks(), n);
        assert_block_upper_triangular(&a, &btf);
    }

    #[test]
    fn kkt_matrix_btf_holds() {
        let t = mcm_gen_free_kkt();
        let (a, _, btf) = btf_of(&t);
        assert!(btf.num_blocks() >= 1);
        assert_block_upper_triangular(&a, &btf);
    }

    /// Small KKT-like structurally nonsingular matrix without depending on
    /// mcm-gen (dev-dependency direction).
    fn mcm_gen_free_kkt() -> Triples {
        let mut t = Triples::new(8, 8);
        for i in 0..6 as Vidx {
            t.push(i, i);
            if i + 1 < 6 {
                t.push(i, i + 1);
                t.push(i + 1, i);
            }
        }
        // two constraint rows/cols with zero diagonal, representative cols 0, 3
        t.push(6, 0);
        t.push(0, 6);
        t.push(7, 3);
        t.push(3, 7);
        t
    }

    #[test]
    fn random_nonsingular_matrices() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(909);
        for _ in 0..30 {
            let n = 4 + (rng.next_u64() % 30) as usize;
            let mut t = Triples::new(n, n);
            // Full diagonal guarantees a perfect matching...
            for i in 0..n as Vidx {
                t.push(i, i);
            }
            // ...plus random off-diagonal structure.
            for _ in 0..2 * n {
                t.push(rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
            }
            let (a, _, btf) = btf_of(&t);
            assert_block_upper_triangular(&a, &btf);
            // Block sizes partition n.
            assert_eq!(*btf.block_ptr.last().unwrap(), n);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_imperfect_matching() {
        let t = Triples::from_edges(2, 2, vec![(0, 0), (0, 1)]);
        let a = t.to_csc();
        let m = hopcroft_karp(&a, None); // cardinality 1 < 2
        let _ = block_triangular_form(&a, &m);
    }
}
