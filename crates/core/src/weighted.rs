//! Maximum weight bipartite matching by auction (ε-scaling).
//!
//! The paper's motivating application chain (§I, citation [2] = Duff &
//! Koster) continues past structural matching: direct solvers also want
//! *numerically large* diagonals, i.e. a matching maximizing the sum of
//! (log-)magnitudes — the MC64 step. This module provides that companion
//! with Bertsekas' auction algorithm: unmatched columns repeatedly *bid*
//! for their best-net-value row and prices rise by at least `ε` per bid.
//!
//! Termination/optimality: with final `ε`, the result is within `n·ε` of
//! the optimum; for integer weights and final `ε < 1/(n+1)` it is exactly
//! optimal (the classic auction guarantee). Columns whose best net value
//! goes negative stay unmatched — this computes a maximum *weight*
//! matching, not a forced perfect assignment.

use crate::matching::Matching;
use mcm_sparse::{Vidx, WCsc, NIL};
use std::collections::VecDeque;

/// Result of [`auction_mwm`].
#[derive(Clone, Debug)]
pub struct WeightedResult {
    /// The matching found.
    pub matching: Matching,
    /// Its total weight.
    pub weight: f64,
    /// Total bids processed (the work measure of auction algorithms).
    pub bids: u64,
}

/// Total weight of `m` under `a` (unmatched vertices contribute 0).
pub fn matching_weight(a: &WCsc, m: &Matching) -> f64 {
    (0..a.ncols())
        .filter_map(|c| {
            let r = m.mate_c.get(c as Vidx);
            (r != NIL).then(|| a.weight(r, c).expect("matched edge must exist"))
        })
        .sum()
}

/// Maximum weight bipartite matching by forward auction with ε-scaling.
///
/// `eps_final` controls optimality: the result is within `n·eps_final` of
/// the maximum total weight. For integer weights pass
/// `1.0 / (n as f64 + 1.0)` to get the exact optimum.
///
/// Only entries with positive weight can improve a matching's total, but
/// negative-weight edges are tolerated (they are simply never chosen).
pub fn auction_mwm(a: &WCsc, eps_final: f64) -> WeightedResult {
    assert!(eps_final > 0.0, "eps must be positive");
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let mut price = vec![0.0f64; n1];
    let mut bids = 0u64;
    let eps = eps_final;

    // Single-scale forward auction. (Scaled variants reset assignments
    // between scales while keeping prices, which requires Bertsekas'
    // λ-mechanism to remain correct for *non-perfect* matchings; the
    // unscaled form is unconditionally correct and plenty fast at the
    // sizes this library targets.)
    let mut queue: VecDeque<Vidx> =
        (0..n2 as Vidx).filter(|&c| a.pattern().col_nnz(c as usize) > 0).collect();

    while let Some(c) = queue.pop_front() {
        bids += 1;
        // Best and second-best net value among the neighbours.
        let mut best: Option<(f64, Vidx)> = None;
        let mut second = f64::NEG_INFINITY;
        for (r, w) in a.col_entries(c as usize) {
            let net = w - price[r as usize];
            match best {
                None => best = Some((net, r)),
                Some((bn, _)) if net > bn => {
                    second = bn;
                    best = Some((net, r));
                }
                Some(_) => second = second.max(net),
            }
        }
        let (best_net, r) = best.expect("empty columns are never enqueued");
        if best_net < 0.0 {
            continue; // no profitable row: stays unmatched (prices only rise)
        }
        // Double push / bid: claim r, evict its previous owner, and raise
        // the price so the margin over the runner-up is burned.
        let prev = m.mate_r.get(r);
        if prev != NIL {
            m.mate_c.set(prev, NIL);
            queue.push_back(prev);
        }
        m.mate_r.set(r, c);
        m.mate_c.set(c, r);
        // The runner-up includes the implicit "stay unmatched" option of
        // value 0: bidding past it would leave this column matched at a
        // negative net value, breaking dual feasibility (and optimality).
        let floor = second.max(0.0);
        price[r as usize] += (best_net - floor) + eps;
    }

    let weight = matching_weight(a, &m);
    WeightedResult { matching: m, weight, bids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    /// Exact maximum-weight matching by exhaustive search (tiny graphs).
    fn brute_force(a: &WCsc) -> f64 {
        fn go(a: &WCsc, c: usize, used: &mut Vec<bool>) -> f64 {
            if c == a.ncols() {
                return 0.0;
            }
            // Skip column c...
            let mut best = go(a, c + 1, used);
            // ...or match it to any free neighbour with positive gain.
            let entries: Vec<(Vidx, f64)> = a.col_entries(c).collect();
            for (r, w) in entries {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(w + go(a, c + 1, used));
                    used[r as usize] = false;
                }
            }
            best
        }
        go(a, 0, &mut vec![false; a.nrows()])
    }

    fn exact_eps(n: usize) -> f64 {
        // Integer weights are exactly optimal once the total slack n·ε
        // (plus the unmatched-option slack) stays below 1.
        1.0 / (2.0 * (n as f64 + 1.0))
    }

    #[test]
    fn picks_the_heavy_diagonal() {
        let a = WCsc::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
        );
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 20.0);
        assert_eq!(r.matching.cardinality(), 2);
    }

    #[test]
    fn sacrifices_cardinality_for_weight_when_profitable() {
        // Matching both columns forces total 1 + 1 = 2; matching only c0 to
        // r0 yields 10. MWM must prefer weight over cardinality.
        let a = WCsc::from_weighted_triples(1, 2, vec![(0, 0, 10.0), (0, 1, 1.0)]);
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 10.0);
        assert_eq!(r.matching.cardinality(), 1);
        assert_eq!(r.matching.mate_c.get(0), 0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(777);
        for trial in 0..150 {
            let n1 = 2 + (rng.next_u64() % 5) as usize;
            let n2 = 2 + (rng.next_u64() % 5) as usize;
            let mut entries = Vec::new();
            for _ in 0..2 * n1.max(n2) {
                entries.push((
                    rng.below(n1 as u64) as Vidx,
                    rng.below(n2 as u64) as Vidx,
                    rng.below(50) as f64, // integer weights → exact auction
                ));
            }
            let a = WCsc::from_weighted_triples(n1, n2, entries);
            let want = brute_force(&a);
            let got = auction_mwm(&a, exact_eps(n1.max(n2)));
            got.matching.validate(a.pattern()).unwrap();
            assert!(
                (got.weight - want).abs() < 1e-9,
                "trial {trial}: auction {} vs brute force {want}",
                got.weight
            );
        }
    }

    #[test]
    fn uniform_weights_reduce_to_maximum_cardinality() {
        use crate::serial::hopcroft_karp;
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(123);
        for _ in 0..20 {
            let n = 3 + (rng.next_u64() % 12) as usize;
            let mut t = Triples::new(n, n);
            let mut entries = Vec::new();
            for _ in 0..3 * n {
                let (i, j) = (rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
                t.push(i, j);
                entries.push((i, j, 1.0));
            }
            let a = WCsc::from_weighted_triples(n, n, entries);
            let mcm = hopcroft_karp(&t.to_csc(), None).cardinality();
            let mwm = auction_mwm(&a, exact_eps(n));
            assert_eq!(mwm.matching.cardinality(), mcm);
            assert!((mwm.weight - mcm as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_weights_are_never_chosen() {
        let a = WCsc::from_weighted_triples(2, 2, vec![(0, 0, -5.0), (1, 1, 3.0)]);
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 3.0);
        assert_eq!(r.matching.cardinality(), 1);
        assert!(!r.matching.col_matched(0));
    }

    #[test]
    fn empty_matrix() {
        let a = WCsc::from_weighted_triples(3, 3, vec![]);
        let r = auction_mwm(&a, 0.1);
        assert_eq!(r.weight, 0.0);
        assert_eq!(r.matching.cardinality(), 0);
    }
}
