//! Maximum weight bipartite matching by auction (ε-scaling).
//!
//! The paper's motivating application chain (§I, citation [2] = Duff &
//! Koster) continues past structural matching: direct solvers also want
//! *numerically large* diagonals, i.e. a matching maximizing the sum of
//! (log-)magnitudes — the MC64 step. This module provides that companion
//! with Bertsekas' auction algorithm: unmatched columns repeatedly *bid*
//! for their best-net-value row and prices rise by at least `ε` per bid.
//!
//! Termination/optimality: with final `ε`, the result is within `n·ε` of
//! the optimum; for integer weights and final `ε < 1/(n+1)` it is exactly
//! optimal (the classic auction guarantee). Columns whose best net value
//! goes negative stay unmatched — this computes a maximum *weight*
//! matching, not a forced perfect assignment.
//!
//! Two engines share these semantics:
//!
//! * [`auction_mwm`] — the single-scale serial oracle: a queue of bidders,
//!   unconditionally correct, the differential reference.
//! * [`auction_mwm_par`] — the production engine on the cardinality
//!   auction's bidding skeleton ([`crate::auction`], DESIGN.md §15/§17):
//!   Jacobi-synchronous parallel bid rounds against round-frozen prices,
//!   deterministic serial resolution (thread-count-invariant matchings by
//!   construction), and ε-scaling with edge-ε-CS repair at scale
//!   transitions, exactly as in the unit engine.
//!
//! Keep-the-matching scaling needs one weighted-only ingredient to stay
//! correct for *non-perfect* MWM without Bertsekas' λ-mechanism: besides
//! edge ε-CS, the optimality exchange argument over `M Δ M*` requires
//! every kept edge to sit within the **final** ε of the implicit
//! stay-unmatched option (`net ≥ −ε_final`). Enforcing that by repair at
//! each transition would unmatch every coarse-scale war winner (their
//! nets land near `−ε_coarse`) and forfeit the scaling gain, so the
//! engine enforces it at the source instead — a *regret cap* on bids:
//! no bidder ever pays past `w + ε_final`, hence `net ≥ −ε_final` holds
//! through every scale by construction. The cap cannot break edge ε-CS:
//! it only binds when the runner-up floor is below `ε − ε_final`, and
//! then the capped net `−ε_final` still exceeds `floor − ε`. Prices
//! still rise by at least `ε_final` per win, so termination is kept.
//!
//! Both return the final price vector so callers can check the
//! certificate independently ([`crate::verify::verify_eps_cs`]).

use crate::auction::{AuctionOptions, AuctionStats};
use crate::matching::Matching;
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Vidx, WCsc, NIL};
use std::collections::VecDeque;

/// Result of [`auction_mwm`] / [`auction_mwm_par`].
#[derive(Clone, Debug)]
pub struct WeightedResult {
    /// The matching found.
    pub matching: Matching,
    /// Its total weight.
    pub weight: f64,
    /// Total bids processed (the work measure of auction algorithms).
    pub bids: u64,
    /// Final row prices — the dual variables of the ε-CS certificate.
    pub prices: Vec<f64>,
    /// The ε the prices certify ([`crate::verify::verify_eps_cs`]).
    pub eps: f64,
    /// Run counters (the serial oracle fills a minimal single-scale view).
    pub stats: AuctionStats,
}

/// Total weight of `m` under `a` (unmatched vertices contribute 0).
pub fn matching_weight(a: &WCsc, m: &Matching) -> f64 {
    (0..a.ncols())
        .filter_map(|c| {
            let r = m.mate_c.get(c as Vidx);
            (r != NIL).then(|| a.weight(r, c).expect("matched edge must exist"))
        })
        .sum()
}

/// Maximum weight bipartite matching by forward auction with ε-scaling.
///
/// `eps_final` controls optimality: the result is within `n·eps_final` of
/// the maximum total weight. For integer weights pass
/// `1.0 / (n as f64 + 1.0)` to get the exact optimum.
///
/// Only entries with positive weight can improve a matching's total, but
/// negative-weight edges are tolerated (they are simply never chosen).
pub fn auction_mwm(a: &WCsc, eps_final: f64) -> WeightedResult {
    assert!(eps_final > 0.0, "eps must be positive");
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let mut price = vec![0.0f64; n1];
    let mut bids = 0u64;
    let eps = eps_final;

    // Single-scale forward auction. (Scaled variants reset assignments
    // between scales while keeping prices, which requires Bertsekas'
    // λ-mechanism to remain correct for *non-perfect* matchings; the
    // unscaled form is unconditionally correct and plenty fast at the
    // sizes this library targets.)
    let mut queue: VecDeque<Vidx> =
        (0..n2 as Vidx).filter(|&c| a.pattern().col_nnz(c as usize) > 0).collect();

    while let Some(c) = queue.pop_front() {
        bids += 1;
        // Best and second-best net value among the neighbours.
        let mut best: Option<(f64, Vidx)> = None;
        let mut second = f64::NEG_INFINITY;
        for (r, w) in a.col_entries(c as usize) {
            let net = w - price[r as usize];
            match best {
                None => best = Some((net, r)),
                Some((bn, _)) if net > bn => {
                    second = bn;
                    best = Some((net, r));
                }
                Some(_) => second = second.max(net),
            }
        }
        let (best_net, r) = best.expect("empty columns are never enqueued");
        if best_net < 0.0 {
            continue; // no profitable row: stays unmatched (prices only rise)
        }
        // Double push / bid: claim r, evict its previous owner, and raise
        // the price so the margin over the runner-up is burned.
        let prev = m.mate_r.get(r);
        if prev != NIL {
            m.mate_c.set(prev, NIL);
            queue.push_back(prev);
        }
        m.mate_r.set(r, c);
        m.mate_c.set(c, r);
        // The runner-up includes the implicit "stay unmatched" option of
        // value 0: bidding past it would leave this column matched at a
        // negative net value, breaking dual feasibility (and optimality).
        let floor = second.max(0.0);
        price[r as usize] += (best_net - floor) + eps;
    }

    let weight = matching_weight(a, &m);
    let stats = AuctionStats {
        scales: 1,
        rounds: bids as usize,
        bids: bids as usize,
        ..AuctionStats::default()
    };
    WeightedResult { matching: m, weight, bids, prices: price, eps, stats }
}

const TOL: f64 = 1e-12;

/// Maximum weight bipartite matching by parallel ε-scaled forward auction.
///
/// The weighted generalization of [`crate::auction::auction`]: columns bid
/// for their best net-value row (`w − price`) in Jacobi-synchronous rounds
/// — bids computed in parallel via `mcm-par` against the round-frozen
/// price vector, then resolved serially in a deterministic order — so the
/// matching is identical for every thread count. `opts.eps_start` is
/// interpreted relative to the value range (`· max(1, max|w|)`), which
/// reduces to the cardinality engine's start for unit weights;
/// `opts.eps_final = None` uses `1/(2·(nrows+1))`, strictly inside the
/// integer-weight exactness bound `1/(nrows+1)`.
pub fn auction_mwm_par(a: &WCsc, opts: &AuctionOptions) -> WeightedResult {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let mut stats = AuctionStats::default();
    let mut prices = vec![0.0f64; n1];
    // Columns dropped by the injected fault never re-enter the auction
    // (harness seam, same as the cardinality engine).
    let mut lost = vec![false; n2];

    let eps_final = opts.eps_final.unwrap_or_else(|| 1.0 / (2.0 * (n1 as f64 + 1.0)));
    assert!(eps_final > 0.0, "eps_final must be positive");
    assert!(opts.eps_scale > 1.0, "eps_scale must exceed 1");
    let value_range = a.max_abs_weight().max(1.0);
    let mut eps = (opts.eps_start * value_range).max(eps_final);

    let bidder = |c: Vidx| a.pattern().col_nnz(c as usize) > 0;
    let mut active: Vec<Vidx> = (0..n2 as Vidx).filter(|&c| bidder(c)).collect();

    // One persistent pool for the whole auction: the bid loop fans out once
    // per Jacobi round (thousands of times on big graphs), so per-phase
    // thread spawns dominated multi-threaded runs — the p4-slower-than-p1
    // anomaly in BENCH_mwm.json. Parked workers make each round's fan-out
    // two condvar round-trips instead.
    let pool = mcm_par::WorkerPool::new(opts.threads.max(1));

    loop {
        stats.scales += 1;
        let _span = mcm_obs::span("wauction_scale");
        run_weighted_scale(
            a,
            &mut m,
            &mut prices,
            &mut active,
            &mut lost,
            eps,
            eps_final,
            opts,
            &pool,
            &mut stats,
        );
        if eps <= eps_final * (1.0 + TOL) {
            break;
        }
        eps = (eps / opts.eps_scale).max(eps_final);

        // Repair edge ε-CS at the finer ε to a fixpoint. Unmatching a
        // violator resets its row's price, which can invalidate
        // neighbours' ε-CS — hence the loop; the matched set shrinks
        // every pass. The `max(0)` term guards the stay-unmatched option
        // too; the regret cap makes it unreachable (`net ≥ −ε_final`
        // always), so it is a pure safety net here.
        loop {
            let mut changed = false;
            for c in 0..n2 as Vidx {
                let r = m.mate_c.get(c);
                if r == NIL {
                    continue;
                }
                let best = a
                    .col_entries(c as usize)
                    .map(|(r2, w)| w - prices[r2 as usize])
                    .fold(f64::NEG_INFINITY, f64::max);
                let net =
                    a.weight(r, c as usize).expect("matched edge must exist") - prices[r as usize];
                if net + eps < best.max(0.0) - TOL {
                    m.mate_c.set(c, NIL);
                    m.mate_r.set(r, NIL);
                    prices[r as usize] = 0.0;
                    stats.rescaled += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Every unmatched bidder re-enters at the finer ε — including
        // previously retired ones, whose retirement certificate a price
        // reset may have invalidated.
        active = (0..n2 as Vidx)
            .filter(|&c| bidder(c) && !m.col_matched(c) && !lost[c as usize])
            .collect();
    }
    mcm_obs::counter_add("mcm_wauction_rounds_total", &[], stats.rounds as u64);
    debug_assert!(m.validate(a.pattern()).is_ok());
    let weight = matching_weight(a, &m);
    let bids = stats.bids as u64;
    WeightedResult { matching: m, weight, bids, prices, eps, stats }
}

/// Runs Jacobi rounds at a fixed ε until no active bidder remains — the
/// weighted twin of the cardinality engine's `run_scale`, with net value
/// `w(r, c) − price[r]` in place of `1 − price[r]`.
#[allow(clippy::too_many_arguments)]
fn run_weighted_scale(
    a: &WCsc,
    m: &mut Matching,
    prices: &mut [f64],
    active: &mut Vec<Vidx>,
    lost: &mut [bool],
    eps: f64,
    eps_final: f64,
    opts: &AuctionOptions,
    pool: &mcm_par::WorkerPool,
    stats: &mut AuctionStats,
) {
    let mut winner_bid = vec![f64::NEG_INFINITY; prices.len()];
    let mut winner_col = vec![NIL; prices.len()];
    let mut touched: Vec<Vidx> = Vec::new();
    let mut round_in_scale = 0u64;

    while !active.is_empty() {
        stats.rounds += 1;
        round_in_scale += 1;
        let _span = mcm_obs::span("wauction_round");

        // --- Parallel bid computation against frozen prices. ------------
        let prices_ro: &[f64] = prices;
        let active_ro: &[Vidx] = active;
        let bid_for = |k: usize| -> Option<(Vidx, f64)> {
            let c = active_ro[k];
            let mut best_r = NIL;
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            for (r, w) in a.col_entries(c as usize) {
                let net = w - prices_ro[r as usize];
                if net > best {
                    second = best;
                    best = net;
                    best_r = r;
                } else if net > second {
                    second = net;
                }
            }
            if best < 0.0 {
                return None; // retire: no profitable row at these prices
            }
            // Bertsekas bid with the regret cap: pay up to the
            // second-best net (floored at the retirement boundary)
            // plus ε, but never past `w + ε_final` — the winner's
            // net stays ≥ −ε_final at every scale.
            let floor = second.max(0.0);
            let increment = (eps - floor).min(eps_final);
            Some((best_r, prices_ro[best_r as usize] + best + increment))
        };
        // Most end-game rounds have a handful of active bidders; waking the
        // pool for those costs more than the bids. Fan out only when the
        // round is big enough to amortize the two condvar round-trips —
        // either way the bid vector is identical (pure function of k).
        const PAR_BID_MIN: usize = 256;
        let bids: Vec<Option<(Vidx, f64)>> = if active_ro.len() < PAR_BID_MIN {
            (0..active_ro.len()).map(bid_for).collect()
        } else {
            pool.map_range(active_ro.len(), bid_for)
        };
        stats.bids += bids.len();

        // --- Deterministic serial resolution. ---------------------------
        let mut order: Vec<usize> = (0..active.len()).collect();
        if opts.seed != 0 {
            let mut rng =
                SplitMix64::new(opts.seed ^ round_in_scale.wrapping_mul(0xD1B5_4A32_D192_ED03));
            for k in (1..order.len()).rev() {
                let j = rng.below(k as u64 + 1) as usize;
                order.swap(k, j);
            }
        }
        for &k in &order {
            if let Some((r, bid)) = bids[k] {
                if winner_col[r as usize] == NIL {
                    touched.push(r);
                }
                if bid > winner_bid[r as usize] {
                    winner_bid[r as usize] = bid;
                    winner_col[r as usize] = active[k];
                }
            }
        }

        let mut next_active: Vec<Vidx> = Vec::with_capacity(active.len());
        for &k in &order {
            match bids[k] {
                None => stats.retired += 1,
                Some((r, _)) if winner_col[r as usize] != active[k] => {
                    next_active.push(active[k]); // lost this round, bid again
                }
                Some(_) => {}
            }
        }
        for &r in &touched {
            let w = winner_col[r as usize];
            let prev = m.mate_r.get(r);
            if prev != NIL && prev != w {
                m.mate_c.set(prev, NIL);
                stats.evictions += 1;
                if opts.fault_lost_bidder {
                    lost[prev as usize] = true;
                } else {
                    next_active.push(prev);
                }
            }
            m.mate_r.set(r, w);
            m.mate_c.set(w, r);
            prices[r as usize] = winner_bid[r as usize];
            winner_bid[r as usize] = f64::NEG_INFINITY;
            winner_col[r as usize] = NIL;
        }
        touched.clear();
        *active = next_active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    /// Exact maximum-weight matching by exhaustive search (tiny graphs).
    fn brute_force(a: &WCsc) -> f64 {
        fn go(a: &WCsc, c: usize, used: &mut Vec<bool>) -> f64 {
            if c == a.ncols() {
                return 0.0;
            }
            // Skip column c...
            let mut best = go(a, c + 1, used);
            // ...or match it to any free neighbour with positive gain.
            let entries: Vec<(Vidx, f64)> = a.col_entries(c).collect();
            for (r, w) in entries {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(w + go(a, c + 1, used));
                    used[r as usize] = false;
                }
            }
            best
        }
        go(a, 0, &mut vec![false; a.nrows()])
    }

    fn exact_eps(n: usize) -> f64 {
        // Integer weights are exactly optimal once the total slack n·ε
        // (plus the unmatched-option slack) stays below 1.
        1.0 / (2.0 * (n as f64 + 1.0))
    }

    #[test]
    fn picks_the_heavy_diagonal() {
        let a = WCsc::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
        );
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 20.0);
        assert_eq!(r.matching.cardinality(), 2);
    }

    #[test]
    fn sacrifices_cardinality_for_weight_when_profitable() {
        // Matching both columns forces total 1 + 1 = 2; matching only c0 to
        // r0 yields 10. MWM must prefer weight over cardinality.
        let a = WCsc::from_weighted_triples(1, 2, vec![(0, 0, 10.0), (0, 1, 1.0)]);
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 10.0);
        assert_eq!(r.matching.cardinality(), 1);
        assert_eq!(r.matching.mate_c.get(0), 0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(777);
        for trial in 0..150 {
            let n1 = 2 + (rng.next_u64() % 5) as usize;
            let n2 = 2 + (rng.next_u64() % 5) as usize;
            let mut entries = Vec::new();
            for _ in 0..2 * n1.max(n2) {
                entries.push((
                    rng.below(n1 as u64) as Vidx,
                    rng.below(n2 as u64) as Vidx,
                    rng.below(50) as f64, // integer weights → exact auction
                ));
            }
            let a = WCsc::from_weighted_triples(n1, n2, entries);
            let want = brute_force(&a);
            let got = auction_mwm(&a, exact_eps(n1.max(n2)));
            got.matching.validate(a.pattern()).unwrap();
            assert!(
                (got.weight - want).abs() < 1e-9,
                "trial {trial}: auction {} vs brute force {want}",
                got.weight
            );
        }
    }

    #[test]
    fn uniform_weights_reduce_to_maximum_cardinality() {
        use crate::serial::hopcroft_karp;
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(123);
        for _ in 0..20 {
            let n = 3 + (rng.next_u64() % 12) as usize;
            let mut t = Triples::new(n, n);
            let mut entries = Vec::new();
            for _ in 0..3 * n {
                let (i, j) = (rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
                t.push(i, j);
                entries.push((i, j, 1.0));
            }
            let a = WCsc::from_weighted_triples(n, n, entries);
            let mcm = hopcroft_karp(&t.to_csc(), None).cardinality();
            let mwm = auction_mwm(&a, exact_eps(n));
            assert_eq!(mwm.matching.cardinality(), mcm);
            assert!((mwm.weight - mcm as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_weights_are_never_chosen() {
        let a = WCsc::from_weighted_triples(2, 2, vec![(0, 0, -5.0), (1, 1, 3.0)]);
        let r = auction_mwm(&a, exact_eps(2));
        assert_eq!(r.weight, 3.0);
        assert_eq!(r.matching.cardinality(), 1);
        assert!(!r.matching.col_matched(0));
    }

    #[test]
    fn empty_matrix() {
        let a = WCsc::from_weighted_triples(3, 3, vec![]);
        let r = auction_mwm(&a, 0.1);
        assert_eq!(r.weight, 0.0);
        assert_eq!(r.matching.cardinality(), 0);
    }

    #[test]
    fn serial_oracle_passes_its_own_certificate() {
        use crate::verify::verify_eps_cs;
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(0xCE27);
        for _ in 0..30 {
            let n1 = 2 + (rng.next_u64() % 10) as usize;
            let n2 = 2 + (rng.next_u64() % 10) as usize;
            let mut entries = Vec::new();
            for _ in 0..3 * n1.max(n2) {
                entries.push((
                    rng.below(n1 as u64) as Vidx,
                    rng.below(n2 as u64) as Vidx,
                    rng.below(50) as f64,
                ));
            }
            let a = WCsc::from_weighted_triples(n1, n2, entries);
            let r = auction_mwm(&a, exact_eps(n1.max(n2)));
            verify_eps_cs(&a, &r.matching, &r.prices, r.eps).unwrap();
        }
    }

    #[test]
    fn parallel_matches_serial_oracle_weight_on_random_instances() {
        use crate::verify::verify_eps_cs;
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(0x9A12);
        for trial in 0..40 {
            let n1 = 2 + (rng.next_u64() % 14) as usize;
            let n2 = 2 + (rng.next_u64() % 14) as usize;
            let mut entries = Vec::new();
            for _ in 0..3 * n1.max(n2) {
                entries.push((
                    rng.below(n1 as u64) as Vidx,
                    rng.below(n2 as u64) as Vidx,
                    (rng.below(50) + 1) as f64, // integer weights → exact
                ));
            }
            let a = WCsc::from_weighted_triples(n1, n2, entries);
            let want = auction_mwm(&a, exact_eps(n1)).weight;
            let got = auction_mwm_par(&a, &AuctionOptions::default());
            got.matching.validate(a.pattern()).unwrap();
            verify_eps_cs(&a, &got.matching, &got.prices, got.eps).unwrap();
            assert!(
                (got.weight - want).abs() < 1e-9,
                "trial {trial}: parallel {} vs oracle {want}",
                got.weight
            );
        }
    }

    #[test]
    fn parallel_thread_count_does_not_change_the_matching() {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(0x7A);
        let (n1, n2) = (24usize, 24usize);
        let mut entries = Vec::new();
        for _ in 0..90 {
            entries.push((
                rng.below(n1 as u64) as Vidx,
                rng.below(n2 as u64) as Vidx,
                (rng.below(100) + 1) as f64,
            ));
        }
        let a = WCsc::from_weighted_triples(n1, n2, entries);
        let r1 = auction_mwm_par(&a, &AuctionOptions { threads: 1, ..AuctionOptions::default() });
        let r4 = auction_mwm_par(&a, &AuctionOptions { threads: 4, ..AuctionOptions::default() });
        let r9 = auction_mwm_par(&a, &AuctionOptions { threads: 9, ..AuctionOptions::default() });
        assert_eq!(r1.matching, r4.matching);
        assert_eq!(r1.matching, r9.matching);
        assert_eq!(r1.stats.rounds, r4.stats.rounds);
        assert_eq!(r1.prices, r9.prices);
    }

    #[test]
    fn parallel_scaling_beats_fixed_fine_eps_on_heavy_crowd() {
        // K_{4,24} with a large uniform weight: a fixed fine ε price war
        // takes Θ(W/ε) rounds; scaling resolves it in coarse increments.
        let mut entries = Vec::new();
        for r in 0..4u32 {
            for c in 0..24u32 {
                entries.push((r, c, 64.0));
            }
        }
        let a = WCsc::from_weighted_triples(4, 24, entries);
        let fine = 1.0 / 10.0;
        let fixed = auction_mwm_par(
            &a,
            &AuctionOptions {
                eps_start: 0.0, // clamps to eps_final: single fixed scale
                eps_final: Some(fine),
                ..AuctionOptions::default()
            },
        );
        let scaled = auction_mwm_par(
            &a,
            &AuctionOptions { eps_final: Some(fine), ..AuctionOptions::default() },
        );
        assert_eq!(fixed.matching.cardinality(), 4);
        assert_eq!(scaled.matching.cardinality(), 4);
        assert_eq!(fixed.stats.scales, 1);
        assert!(scaled.stats.scales > 1);
        assert!(
            scaled.stats.rounds < fixed.stats.rounds,
            "scaling gained nothing: scaled {} rounds vs fixed {}",
            scaled.stats.rounds,
            fixed.stats.rounds
        );
    }

    #[test]
    fn parallel_uniform_weights_reduce_to_maximum_cardinality() {
        use crate::serial::hopcroft_karp;
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(0x11F0);
        for _ in 0..15 {
            let n = 4 + (rng.next_u64() % 16) as usize;
            let mut t = Triples::new(n, n);
            let mut entries = Vec::new();
            for _ in 0..3 * n {
                let (i, j) = (rng.below(n as u64) as Vidx, rng.below(n as u64) as Vidx);
                t.push(i, j);
                entries.push((i, j, 1.0));
            }
            let a = WCsc::from_weighted_triples(n, n, entries);
            let mcm = hopcroft_karp(&t.to_csc(), None).cardinality();
            let mwm = auction_mwm_par(&a, &AuctionOptions::default());
            assert_eq!(mwm.matching.cardinality(), mcm);
            assert!((mwm.weight - mcm as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_handles_degenerate_shapes() {
        let empty = WCsc::from_weighted_triples(0, 0, vec![]);
        let r = auction_mwm_par(&empty, &AuctionOptions::default());
        assert_eq!(r.matching.cardinality(), 0);
        let negative = WCsc::from_weighted_triples(2, 2, vec![(0, 0, -5.0), (1, 1, 3.0)]);
        let r = auction_mwm_par(&negative, &AuctionOptions::default());
        assert_eq!(r.weight, 3.0);
        assert!(!r.matching.col_matched(0));
    }
}
