//! ε-scaled auction matcher for maximum *cardinality* matching
//! (DESIGN.md §15).
//!
//! Unit-weight specialization of the forward auction already validated in
//! [`crate::weighted`] (PAPERS.md: Liu–Ke–Khuller's scalable auction
//! algorithms; Naparstek–Leshem's expected-time analysis on random
//! graphs). Columns are bidders, rows are objects, every edge has unit
//! value. Rounds are Jacobi-synchronous: every active (unmatched, not yet
//! retired) column computes its bid **in parallel** via `mcm-par`
//! chunking against the round-frozen price vector, then a serial,
//! deterministic resolution assigns each contested row to its best bid
//! and re-enqueues evicted owners. A bidder whose best net value
//! `1 − price` falls below zero retires for the rest of the scale.
//!
//! **Why the final matching is maximum.** Three invariants hold when the
//! final scale drains: (a) every matched column satisfies *edge*
//! ε-complementary-slackness, `price[mate] ≤ min_neighbour_price + ε`
//! (established by each win — the bid formula leaves the winner net
//! `floor − ε` — and preserved because other prices only rise within a
//! scale); (b) a column retires only when every neighbour is priced
//! above 1, which stays true for the rest of the scale; (c) unmatched
//! rows are priced 0 (rows only gain a price when won, stay matched
//! within a scale, and the scale-transition repair resets the price of
//! any row it frees). An augmenting path from a retired column would
//! telescope (a) along its matched pairs: the first row is priced > 1 by
//! (b), so the j-th row is priced > 1 − (j−1)ε, yet the free row at the
//! end is priced 0 by (c) — impossible once ε < 1/(nrows+1). The default
//! final ε is `1/(2·(nrows+1))`.
//!
//! **ε-scaling.** Price wars — many bidders contesting few rows with
//! equal-valued alternatives (stars with several hubs, crowded complete
//! blocks) — creep prices up by one ε per round, taking Θ(1/ε) rounds at
//! fixed ε. Scaling starts coarse so wars resolve in a few large
//! increments, then divides ε per scale. Each transition repairs edge
//! ε-CS at the finer ε to a fixpoint: a violating column is unmatched and
//! re-enqueued, its row's price reset to 0 (keeping invariant (c)), and
//! every unmatched bidder — including previously retired ones, whose
//! retirement certificate a price reset may invalidate — re-enters the
//! auction. On genuinely warred regions the coarse prices already sit
//! within the fine slack of each other, so the repair passes almost
//! nothing back and the coarse rounds are kept won; the convergence gain
//! is pinned by tests on the adversarial instances.
//!
//! `fault_lost_bidder` deliberately drops evicted owners instead of
//! re-enqueueing them — the simtest fault plan uses it to prove the
//! differential harness catches bid-update bugs in this engine
//! (`simtest::detect_injected_auction_fault`).

use crate::matching::Matching;
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Csc, Vidx, NIL};

/// Tunables of the auction engine.
#[derive(Clone, Copy, Debug)]
pub struct AuctionOptions {
    /// Worker threads for the per-bidder bid computation (`mcm-par`).
    /// Results are identical for every thread count by construction.
    pub threads: usize,
    /// First scale's ε. Clamped up to the final ε when smaller.
    pub eps_start: f64,
    /// Divisor applied to ε between scales (> 1).
    pub eps_scale: f64,
    /// Final ε; `None` uses `1 / (2·(nrows+1))`, strictly inside the
    /// exactness bound `1/(nrows+1)` for unit weights.
    pub eps_final: Option<f64>,
    /// Deterministic perturbation of the bid-resolution order (the
    /// simtest schedule analogue); `0` keeps the natural order.
    /// Cardinality is seed-invariant, pinned by the differential matrix.
    pub seed: u64,
    /// Harness-only bug injection: evicted owners are dropped instead of
    /// re-enqueued ("lost bidder"), leaving augmenting paths behind.
    pub fault_lost_bidder: bool,
}

impl Default for AuctionOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            eps_start: 0.25,
            eps_scale: 4.0,
            eps_final: None,
            seed: 0,
            fault_lost_bidder: false,
        }
    }
}

/// Counters describing one [`auction`] run.
#[derive(Clone, Debug, Default)]
pub struct AuctionStats {
    /// ε-scales executed.
    pub scales: usize,
    /// Jacobi rounds across all scales.
    pub rounds: usize,
    /// Bids computed (one per active bidder per round).
    pub bids: usize,
    /// Owners evicted by a higher bid.
    pub evictions: usize,
    /// Retirements (per scale; a bidder may retire once per scale).
    pub retired: usize,
    /// Columns un-matched by ε-CS repair at scale transitions.
    pub rescaled: usize,
}

/// The result of [`auction`].
#[derive(Clone, Debug)]
pub struct AuctionResult {
    /// A maximum cardinality matching.
    pub matching: Matching,
    /// Run counters.
    pub stats: AuctionStats,
}

const TOL: f64 = 1e-12;

/// Computes a maximum cardinality matching by ε-scaled forward auction.
pub fn auction(a: &Csc, opts: &AuctionOptions) -> AuctionResult {
    let (n1, n2) = (a.nrows(), a.ncols());
    let mut m = Matching::empty(n1, n2);
    let mut stats = AuctionStats::default();
    let mut prices = vec![0.0f64; n1];
    // Columns dropped by the injected fault never re-enter the auction —
    // that is the bug being modelled.
    let mut lost = vec![false; n2];

    let eps_final = opts.eps_final.unwrap_or_else(|| 1.0 / (2.0 * (n1 as f64 + 1.0)));
    assert!(eps_final > 0.0, "eps_final must be positive");
    assert!(opts.eps_scale > 1.0, "eps_scale must exceed 1");
    let mut eps = opts.eps_start.max(eps_final);

    let bidder = |c: Vidx| !a.col(c as usize).is_empty();
    let mut active: Vec<Vidx> = (0..n2 as Vidx).filter(|&c| bidder(c)).collect();

    loop {
        stats.scales += 1;
        let _span = mcm_obs::span("auction_scale");
        run_scale(a, &mut m, &mut prices, &mut active, &mut lost, eps, opts, &mut stats);
        if eps <= eps_final * (1.0 + TOL) {
            break;
        }
        eps = (eps / opts.eps_scale).max(eps_final);

        // Repair edge ε-CS at the finer ε to a fixpoint. Unmatching a
        // violator resets its row's price, which can invalidate the ε-CS
        // of neighbours of that row — hence the loop; the matched set
        // shrinks every pass, so it terminates.
        loop {
            let mut changed = false;
            for c in 0..n2 as Vidx {
                let r = m.mate_c.get(c);
                if r == NIL {
                    continue;
                }
                let best = a
                    .col(c as usize)
                    .iter()
                    .map(|&r2| 1.0 - prices[r2 as usize])
                    .fold(f64::NEG_INFINITY, f64::max);
                if (1.0 - prices[r as usize]) + eps < best - TOL {
                    m.mate_c.set(c, NIL);
                    m.mate_r.set(r, NIL);
                    prices[r as usize] = 0.0;
                    stats.rescaled += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Every unmatched bidder re-enters at the finer ε: repaired
        // columns bid again, and price resets may have invalidated a
        // previous retirement. Still-hopeless bidders re-retire in one
        // round.
        active = (0..n2 as Vidx)
            .filter(|&c| bidder(c) && !m.col_matched(c) && !lost[c as usize])
            .collect();
    }
    mcm_obs::counter_add("mcm_auction_rounds_total", &[], stats.rounds as u64);
    debug_assert!(m.validate(a).is_ok());
    AuctionResult { matching: m, stats }
}

/// Runs Jacobi rounds at a fixed ε until no active bidder remains.
#[allow(clippy::too_many_arguments)]
fn run_scale(
    a: &Csc,
    m: &mut Matching,
    prices: &mut [f64],
    active: &mut Vec<Vidx>,
    lost: &mut [bool],
    eps: f64,
    opts: &AuctionOptions,
    stats: &mut AuctionStats,
) {
    // Round-local scratch, reused across rounds: per-row best bid of the
    // current round plus the touched-row list, to avoid O(nrows) sweeps.
    let mut winner_bid = vec![f64::NEG_INFINITY; prices.len()];
    let mut winner_col = vec![NIL; prices.len()];
    let mut touched: Vec<Vidx> = Vec::new();
    let mut round_in_scale = 0u64;

    while !active.is_empty() {
        stats.rounds += 1;
        round_in_scale += 1;
        let _span = mcm_obs::span("auction_round");

        // --- Parallel bid computation against frozen prices. ------------
        // par_map_range returns results in index order regardless of the
        // thread interleaving, so bids are deterministic by construction.
        let prices_ro: &[f64] = prices;
        let active_ro: &[Vidx] = active;
        let bids: Vec<Option<(Vidx, f64)>> =
            mcm_par::par_map_range(active_ro.len(), opts.threads.max(1), |k| {
                let c = active_ro[k];
                let mut best_r = NIL;
                let mut best = f64::NEG_INFINITY;
                let mut second = f64::NEG_INFINITY;
                for &r in a.col(c as usize) {
                    let net = 1.0 - prices_ro[r as usize];
                    if net > best {
                        second = best;
                        best = net;
                        best_r = r;
                    } else if net > second {
                        second = net;
                    }
                }
                if best < 0.0 {
                    return None; // retire: every object is overpriced
                }
                // Bertsekas bid: pay up to the second-best net (floored
                // at the retirement boundary 0) plus the ε increment.
                let floor = second.max(0.0);
                Some((best_r, prices_ro[best_r as usize] + (best - floor) + eps))
            });
        stats.bids += bids.len();

        // --- Deterministic serial resolution. ---------------------------
        // Processing order is the natural active order, optionally
        // seed-permuted; ties (equal bids) go to the first processed.
        let mut order: Vec<usize> = (0..active.len()).collect();
        if opts.seed != 0 {
            let mut rng =
                SplitMix64::new(opts.seed ^ round_in_scale.wrapping_mul(0xD1B5_4A32_D192_ED03));
            for k in (1..order.len()).rev() {
                let j = rng.below(k as u64 + 1) as usize;
                order.swap(k, j);
            }
        }
        for &k in &order {
            if let Some((r, bid)) = bids[k] {
                if winner_col[r as usize] == NIL {
                    touched.push(r);
                }
                if bid > winner_bid[r as usize] {
                    winner_bid[r as usize] = bid;
                    winner_col[r as usize] = active[k];
                }
            }
        }

        let mut next_active: Vec<Vidx> = Vec::with_capacity(active.len());
        for &k in &order {
            match bids[k] {
                None => stats.retired += 1,
                Some((r, _)) if winner_col[r as usize] != active[k] => {
                    next_active.push(active[k]); // lost this round, bid again
                }
                Some(_) => {}
            }
        }
        for &r in &touched {
            let w = winner_col[r as usize];
            let prev = m.mate_r.get(r);
            if prev != NIL && prev != w {
                m.mate_c.set(prev, NIL);
                stats.evictions += 1;
                if opts.fault_lost_bidder {
                    lost[prev as usize] = true;
                } else {
                    next_active.push(prev);
                }
            }
            m.mate_r.set(r, w);
            m.mate_c.set(w, r);
            prices[r as usize] = winner_bid[r as usize];
            winner_bid[r as usize] = f64::NEG_INFINITY;
            winner_col[r as usize] = NIL;
        }
        touched.clear();
        *active = next_active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::hopcroft_karp;
    use crate::verify;
    use mcm_sparse::Triples;

    fn check(t: &Triples, opts: &AuctionOptions) -> AuctionResult {
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        let r = auction(&a, opts);
        r.matching.validate(&a).unwrap();
        verify::verify(&a, &r.matching).unwrap();
        assert_eq!(r.matching.cardinality(), want);
        r
    }

    fn random_graph(rng: &mut SplitMix64, n1: usize, n2: usize, edges: usize) -> Triples {
        let mut t = Triples::new(n1, n2);
        for _ in 0..edges {
            t.push(rng.below(n1 as u64) as Vidx, rng.below(n2 as u64) as Vidx);
        }
        t
    }

    #[test]
    fn matches_hk_on_random_graphs_across_threads_and_seeds() {
        let mut rng = SplitMix64::new(0xAC);
        for _ in 0..25 {
            let n1 = 4 + (rng.next_u64() % 28) as usize;
            let n2 = 4 + (rng.next_u64() % 28) as usize;
            let t = random_graph(&mut rng, n1, n2, 3 * n1.max(n2));
            for threads in [1usize, 4] {
                for seed in [0u64, 0xBEEF] {
                    check(&t, &AuctionOptions { threads, seed, ..AuctionOptions::default() });
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_matching() {
        let mut rng = SplitMix64::new(0xA1);
        let t = random_graph(&mut rng, 32, 32, 100);
        let a = t.to_csc();
        let r1 = auction(&a, &AuctionOptions { threads: 1, ..AuctionOptions::default() });
        let r4 = auction(&a, &AuctionOptions { threads: 4, ..AuctionOptions::default() });
        assert_eq!(r1.matching, r4.matching);
        assert_eq!(r1.stats.rounds, r4.stats.rounds);
    }

    #[test]
    fn single_scale_matches_scaled_cardinality() {
        let mut rng = SplitMix64::new(0x5C);
        for _ in 0..10 {
            let t = random_graph(&mut rng, 20, 24, 70);
            let a = t.to_csc();
            let fine = 1.0 / (2.0 * (a.nrows() as f64 + 1.0));
            let single =
                auction(&a, &AuctionOptions { eps_start: fine, ..AuctionOptions::default() });
            assert_eq!(single.stats.scales, 1);
            let scaled = auction(&a, &AuctionOptions::default());
            assert_eq!(single.matching.cardinality(), scaled.matching.cardinality());
        }
    }

    #[test]
    fn perfect_and_degenerate_cases() {
        let mut t = Triples::new(8, 8);
        for i in 0..8u32 {
            t.push(i, i);
        }
        let r = check(&t, &AuctionOptions::default());
        assert_eq!(r.matching.cardinality(), 8);
        check(&Triples::new(0, 0), &AuctionOptions::default());
        check(&Triples::new(5, 3), &AuctionOptions::default());
    }

    #[test]
    fn star_price_war_terminates_and_retires_losers() {
        // One hub row, many bidders: everyone wars over the one object.
        let mut t = Triples::new(1, 16);
        for c in 0..16u32 {
            t.push(0, c);
        }
        let r = check(&t, &AuctionOptions::default());
        assert_eq!(r.matching.cardinality(), 1);
        assert_eq!(r.stats.retired, 15);
    }

    #[test]
    fn lost_bidder_fault_loses_cardinality_on_alternating_chain() {
        // chain(k): col i adjacent to rows {i-1, i}. Round one leaves c1
        // beaten on r0; its recovery bid evicts c2 from r1 and a rematch
        // cascade walks the chain. Dropping any evicted owner strands the
        // tail row even though its augmenting path survives.
        let k = 8usize;
        let mut t = Triples::new(k, k);
        for c in 0..k as Vidx {
            t.push(c, c);
            if c > 0 {
                t.push(c - 1, c);
            }
        }
        let a = t.to_csc();
        let want = hopcroft_karp(&a, None).cardinality();
        assert_eq!(want, k);
        let good = auction(&a, &AuctionOptions::default());
        assert_eq!(good.matching.cardinality(), want);
        assert!(good.stats.evictions > 0, "instance must actually evict");
        let bad =
            auction(&a, &AuctionOptions { fault_lost_bidder: true, ..AuctionOptions::default() });
        assert!(
            bad.matching.cardinality() < want,
            "lost-bidder fault was not observable on this instance"
        );
    }

    #[test]
    fn eps_scaling_beats_fixed_fine_eps_on_crowded_star() {
        // Multi-hub star K_{4,32}: every alternative has equal value, so
        // fixed-ε bidding creeps prices by one ε per round — Θ(1/ε)
        // rounds — while scaling resolves the war in coarse increments
        // and keeps the result through the ε-CS repair.
        let mut t = Triples::new(4, 32);
        for r in 0..4u32 {
            for c in 0..32u32 {
                t.push(r, c);
            }
        }
        let a = t.to_csc();
        let fine = 1.0 / 128.0;
        let fixed = auction(
            &a,
            &AuctionOptions { eps_start: fine, eps_final: Some(fine), ..AuctionOptions::default() },
        );
        let scaled =
            auction(&a, &AuctionOptions { eps_final: Some(fine), ..AuctionOptions::default() });
        assert_eq!(fixed.matching.cardinality(), 4);
        assert_eq!(scaled.matching.cardinality(), 4);
        assert!(scaled.stats.scales > 1);
        assert!(
            scaled.stats.rounds < fixed.stats.rounds,
            "scaling gained nothing: scaled {} rounds vs fixed {}",
            scaled.stats.rounds,
            fixed.stats.rounds
        );
        // The war really is Θ(1/ε): halving ε increases fixed-ε rounds.
        let finer = auction(
            &a,
            &AuctionOptions {
                eps_start: fine / 2.0,
                eps_final: Some(fine / 2.0),
                ..AuctionOptions::default()
            },
        );
        assert!(finer.stats.rounds > fixed.stats.rounds);
    }
}
