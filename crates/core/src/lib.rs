//! # mcm-core — distributed maximum cardinality matching (the paper's contribution)
//!
//! Implements Azad & Buluç (IPDPS 2016): the matrix-algebraic MS-BFS
//! maximum-cardinality-matching algorithm (`MCM-DIST`, Algorithm 2), its
//! primitives (Table I), both augmentation kernels (Algorithms 3 and 4),
//! the maximal-matching initializers of their companion work [21], and the
//! serial baselines used for correctness and context (§VI-E).
//!
//! Quick start:
//!
//! ```
//! use mcm_bsp::{DistCtx, MachineConfig};
//! use mcm_sparse::Triples;
//! use mcm_core::{maximum_matching, McmOptions};
//!
//! // A tiny bipartite graph as an edge list (rows x columns).
//! let g = Triples::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 0), (2, 2)]);
//! let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 2)); // 2x2 grid, 2 threads
//! let result = maximum_matching(&mut ctx, &g, &McmOptions::default());
//! assert_eq!(result.matching.cardinality(), 3);
//! ```

// Index loops over parallel arrays are the clearest style in these kernels.
#![allow(clippy::needless_range_loop)]
pub mod auction;
pub mod augment;
pub mod btf;
pub mod cover;
pub mod dm;
pub mod gather;
pub mod matching;
pub mod maximal;
pub mod mcm;
pub mod portfolio;
pub mod ppf;
pub mod primitives;
pub mod semirings;
pub mod serial;
pub mod simtest;
pub mod verify;
pub mod vertex;
pub mod weighted;

pub use matching::Matching;
pub use mcm::{
    maximum_matching, maximum_matching_engine, maximum_matching_engine_view, maximum_matching_from,
    maximum_matching_from_pooled, maximum_matching_view, McmOptions, McmResult, McmStats,
    SolverPool,
};
pub use portfolio::{MatchingAlgo, PortfolioBackend, PortfolioOptions, SelectorStats};
pub use semirings::SemiringKind;
pub use vertex::Vertex;
pub use weighted::{auction_mwm, auction_mwm_par, matching_weight, WeightedResult};
