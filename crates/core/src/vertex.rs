//! The `(parent, root)` VERTEX record carried by BFS frontiers.
//!
//! §III-B: *"The MS-BFS algorithm keeps track of both parent and root of
//! each vertex in the current row and column frontiers. Hence, we represent
//! each vertex by a (parent, root) pair ... In the first iteration of a
//! phase, parent and root of a vertex are set to itself. While the parent of
//! a vertex is updated in every iteration, roots are simply passed from
//! parents to children."*

use mcm_sparse::Vidx;

/// A frontier vertex: the discovering parent and the root (the unmatched
/// column vertex whose alternating tree this vertex belongs to).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// Index of the parent on the *other* side of the bipartition.
    pub parent: Vidx,
    /// Index of the root column vertex of the alternating tree.
    pub root: Vidx,
}

impl Vertex {
    /// The paper's `VERTEX(p, r)` constructor.
    #[inline]
    pub fn new(parent: Vidx, root: Vidx) -> Self {
        Self { parent, root }
    }

    /// A tree seed: parent and root both point at the vertex itself
    /// (first iteration of a phase).
    #[inline]
    pub fn seed(v: Vidx) -> Self {
        Self { parent: v, root: v }
    }
}

/// The paper's `PARENT(x)`: projects parents out of a frontier.
pub fn parents(x: &mcm_sparse::SpVec<Vertex>) -> mcm_sparse::SpVec<Vidx> {
    x.map(|v| v.parent)
}

/// The paper's `ROOT(x)`: projects roots out of a frontier.
pub fn roots(x: &mcm_sparse::SpVec<Vertex>) -> mcm_sparse::SpVec<Vidx> {
    x.map(|v| v.root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::SpVec;

    #[test]
    fn seed_points_to_itself() {
        let v = Vertex::seed(5);
        assert_eq!(v.parent, 5);
        assert_eq!(v.root, 5);
    }

    #[test]
    fn projections() {
        let f = SpVec::from_pairs(4, vec![(0, Vertex::new(1, 2)), (3, Vertex::new(4, 5))]);
        assert_eq!(parents(&f).entries(), &[(0, 1), (3, 4)]);
        assert_eq!(roots(&f).entries(), &[(0, 2), (3, 5)]);
    }

    #[test]
    fn vertex_is_eight_bytes() {
        // Frontier memory traffic matters; keep the record compact.
        assert_eq!(std::mem::size_of::<Vertex>(), 8);
    }
}
