//! `store_smoke` — the CI acceptance check for the out-of-core chain
//! (DESIGN.md §18): stream-generate a scale-16 G500 RMAT graph into MCSB,
//! mmap it, assert the load stayed out-of-core (resident-set growth a
//! small fraction of the on-disk size), solve through the shared-memory
//! backend from the borrowed view, and Berge-certify the result.
//!
//! Exits non-zero on any failed step. `--scale n` overrides the size.

use mcm_core::verify::is_maximum_view;
use mcm_core::McmOptions;
use mcm_gen::RmatParams;
use mcm_store::{McsbFile, McsbStreamWriter};
use std::process::ExitCode;

fn vm_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse::<u64>().ok().map(|kb| kb * 1024)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: u32 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p = RmatParams { edge_factor: 16, ..RmatParams::g500(scale) };
    let path = std::env::temp_dir().join(format!("mcm_store_smoke_{}.mcsb", std::process::id()));

    // Stream-generate: the full edge list never materializes.
    let mut w = McsbStreamWriter::create(&path, p.n(), p.n(), false).expect("create writer");
    let mut push_err = None;
    mcm_gen::stream_edges(&p, 7, |chunk| {
        if push_err.is_none() {
            push_err = w.push_edges(chunk).err();
        }
    });
    if let Some(e) = push_err {
        eprintln!("store_smoke: stream write failed: {e}");
        return ExitCode::FAILURE;
    }
    let summary = w.finish(mcm_par::max_threads()).expect("finish");
    eprintln!(
        "store_smoke: wrote scale-{scale} MCSB: {} nnz, {} bytes",
        summary.nnz, summary.bytes
    );

    // Mmap-load and check the residency claim: opening + building the view
    // touches the header and colptr pages only, so RSS growth must stay a
    // small fraction of the on-disk size (budget: 1/4, generous vs. the
    // ~3% a scale-16 colptr section actually is).
    let rss_before = vm_rss_bytes();
    let file = McsbFile::open(&path).expect("mmap open");
    let v = file.view();
    if let (Some(before), Some(after)) = (rss_before, vm_rss_bytes()) {
        let delta = after.saturating_sub(before);
        let budget = summary.bytes / 4;
        if file.is_mapped() && delta > budget {
            eprintln!(
                "store_smoke: FAIL: mmap load grew RSS by {delta} bytes (> {budget} = file/4)"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "store_smoke: load rss delta {delta} bytes ({:.1}% of file, mapped={})",
            100.0 * delta as f64 / summary.bytes as f64,
            file.is_mapped()
        );
    } else {
        eprintln!("store_smoke: /proc/self/status unavailable; skipping RSS assertion");
    }

    // Solve from the borrowed view and certify maximality.
    let res = mcm_core::mcm::maximum_matching_shared_view(
        4,
        mcm_par::max_threads(),
        &v,
        &McmOptions::default(),
    );
    if !is_maximum_view(&v, &res.matching) {
        eprintln!("store_smoke: FAIL: Berge certificate rejected the matching");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "store_smoke: OK: cardinality {} of {} columns, Berge-certified",
        res.matching.cardinality(),
        v.ncols()
    );
    std::fs::remove_file(&path).ok();
    ExitCode::SUCCESS
}
