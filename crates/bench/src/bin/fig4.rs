//! Fig. 4: strong scaling of MCM-DIST on the 13 real matrices.
//!
//! Sweeps the paper's hybrid machine configurations from one node (24
//! cores) to ~2028 cores and reports the modeled MCM-DIST time and the
//! speedup relative to 24 cores for every Table II stand-in. The paper's
//! headline numbers: ~9× average speedup at 972 cores (40.5× more cores),
//! up to ~18× at ~2048 cores on the largest matrices, and larger matrices
//! scaling further than smaller ones.

use mcm_bench::{mcm_time, run_mcm_scaled, standin_scale, sweep, Report};
use mcm_core::McmOptions;
use mcm_gen::table2;

fn main() {
    let configs = sweep(2028);
    println!("Fig. 4 — strong scaling on real-matrix stand-ins (modeled time, ms)\n");

    let mut rep = Report::new("fig4", &["matrix", "cores", "modeled_ms", "speedup", "|M|"]);
    let mut at972: Vec<f64> = Vec::new();
    for s in table2() {
        let t = s.generate();
        let scale = standin_scale(&s, &t);
        let mut base: Option<f64> = None;
        for cfg in &configs {
            let out = run_mcm_scaled(*cfg, &t, &McmOptions::default(), scale);
            let secs = mcm_time(&out).max(1e-12);
            let speedup = *base.get_or_insert(secs) / secs;
            if cfg.cores() == 972 {
                at972.push(speedup);
            }
            rep.row(vec![
                s.name.to_string(),
                cfg.cores().to_string(),
                format!("{:.3}", secs * 1e3),
                format!("{speedup:.2}"),
                out.cardinality.to_string(),
            ]);
        }
    }
    rep.finish();

    if !at972.is_empty() {
        let mean = at972.iter().sum::<f64>() / at972.len() as f64;
        let min = at972.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = at972.iter().cloned().fold(0.0, f64::max);
        println!(
            "\nspeedup at 972 cores over 24 cores: mean {mean:.1}x, min {min:.1}x, max {max:.1}x"
        );
        println!(
            "paper reference at 972 cores: mean 9x, min 5x (amazon-2008), max 13x (delaunay_n24)"
        );
    }
}
