//! Regenerates every table and figure in sequence by invoking the sibling
//! binaries' entry logic via `cargo run` would be wasteful — instead this
//! binary simply tells the user the index. Each figure is intentionally its
//! own binary so a single slow sweep can be re-run in isolation.

fn main() {
    println!("Per-experiment harness index (DESIGN.md §4):\n");
    for (bin, what) in [
        ("table2", "Table II  — matrix inventory (paper vs stand-in sizes)"),
        ("fig3", "Fig. 3   — initializer impact (greedy / karp-sipser / mindegree)"),
        ("fig4", "Fig. 4   — strong scaling on 13 real-matrix stand-ins"),
        ("fig5", "Fig. 5   — runtime breakdown across kernels"),
        ("fig6", "Fig. 6   — strong scaling on ER / G500 / SSCA RMAT"),
        ("fig7", "Fig. 7   — hybrid (12 threads) vs flat MPI"),
        ("fig8", "Fig. 8   — pruning ablation"),
        ("fig9", "Fig. 9   — centralized gather/scatter baseline"),
    ] {
        println!("  cargo run --release -p mcm-bench --bin {bin:<7}  # {what}");
    }
    println!("\nCSV outputs land in target/figures/. EXPERIMENTS.md records the");
    println!("paper-vs-measured comparison for each.");
}
