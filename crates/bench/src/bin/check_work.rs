use mcm_bench::run_mcm;
use mcm_bsp::MachineConfig;
use mcm_core::McmOptions;
fn main() {
    for s in mcm_gen::table2() {
        let t = s.generate();
        let out = run_mcm(MachineConfig::hybrid(4, 2), &t, &McmOptions::default());
        println!(
            "{:<22} init |M| {:>6}  final {:>6}  augmentations {:>6}  phases {:>3}  iters {:>5}",
            s.name,
            out.stats.init_cardinality,
            out.cardinality,
            out.stats.augmentations,
            out.stats.phases,
            out.stats.iterations
        );
    }
}
