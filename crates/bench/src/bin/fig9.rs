//! Fig. 9: the cost of centralizing a distributed graph (§VI-E).
//!
//! Models the gather-to-rank-0 + scatter-mates-back pipeline that the
//! "collect and run a shared-memory matcher" state of the practice pays, on
//! 2048 simulated MPI ranks, across a sweep of edge counts. The paper's
//! punchline: for nlpkkt200 (~900M nonzeros) this communication alone costs
//! ~20 s — twice the *entire* distributed MCM-DIST runtime.

use mcm_bench::{run_mcm_scaled, standin_scale, Report};
use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::gather::centralized_cost;
use mcm_core::McmOptions;
use mcm_gen::realistic::by_name;

fn main() {
    // 2048 MPI processes as in the paper's toy experiment (flat layout).
    let p_dim = 45; // 45^2 = 2025 ≈ 2048 ranks
    println!(
        "Fig. 9 — gather+scatter time of the centralized pipeline on {} ranks\n",
        p_dim * p_dim
    );
    let mut rep = Report::new("fig9", &["edges", "gather_s", "scatter_s", "total_s"]);
    for exp in 20..=33u32 {
        let m = 1u64 << exp; // 1M .. 8.6B edges
        let n = m / 16; // a typical average degree of 16 on each side
        let mut ctx = DistCtx::new(MachineConfig::flat(p_dim));
        let c = centralized_cost(&mut ctx, m, n, n);
        rep.row(vec![
            m.to_string(),
            format!("{:.4}", c.gather_s),
            format!("{:.4}", c.scatter_s),
            format!("{:.4}", c.total()),
        ]);
    }
    rep.finish();

    // The nlpkkt200 comparison of §VI-E, at stand-in scale: centralization
    // cost vs the full distributed MCM time on the same simulated machine.
    let s = by_name("nlpkkt200").expect("nlpkkt200 stand-in");
    let t = s.generate();
    let scale = standin_scale(&s, &t);
    let mut ctx = DistCtx::new(MachineConfig::hybrid(13, 12)).with_work_scale(scale);
    let central = centralized_cost(&mut ctx, t.len() as u64, t.nrows() as u64, t.ncols() as u64);
    let dist = run_mcm_scaled(MachineConfig::hybrid(13, 12), &t, &McmOptions::default(), scale);
    println!(
        "\nnlpkkt200 stand-in ({} edges): centralization {:.4} s vs full MCM-DIST {:.4} s \
         (ratio {:.2})",
        t.len(),
        central.total(),
        dist.modeled_s,
        central.total() / dist.modeled_s.max(1e-12)
    );
    println!("paper shape to check: gather+scatter grows linearly with edges and");
    println!("rivals or exceeds the whole distributed matching time.");
}
