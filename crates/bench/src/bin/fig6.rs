//! Fig. 6: strong scaling on large synthetic RMAT matrices.
//!
//! ER, G500 and SSCA classes at two scales each, swept up to the 12,288-core
//! configuration (32×32 grid × 12 threads) the paper tops out at. The paper
//! runs scales 26 and 30 on Edison; the simulator runs the same generators
//! with the same seed parameters at laptop scales (see DESIGN.md §2), so
//! compare *shapes*: runtime falling ~√t when cores grow t-fold, the smaller
//! scale flattening earlier, the larger scale scaling to the full sweep.

use mcm_bench::{mcm_time, run_mcm_scaled, sweep, Report};
use mcm_core::McmOptions;
use mcm_gen::rmat::{rmat, RmatParams};

fn main() {
    // Stand-ins for the paper's scale-26 ("small") and scale-30 ("large").
    let small_scale = 13u32;
    let large_scale = 16u32;
    println!(
        "Fig. 6 — strong scaling on RMAT classes (scales {small_scale} and {large_scale} standing in for 26/30)\n"
    );

    type ParamsFor = fn(u32) -> RmatParams;
    let classes: [(&str, ParamsFor); 3] =
        [("ER", RmatParams::er), ("G500", RmatParams::g500), ("SSCA", RmatParams::ssca)];

    let mut rep = Report::new("fig6", &["class", "scale", "cores", "modeled_ms", "speedup", "|M|"]);
    for (name, params) in classes {
        for (scale, paper_scale) in [(small_scale, 26u32), (large_scale, 30u32)] {
            let t = rmat(params(scale), 20_160_000 + scale as u64);
            // Work scale: paper-scale edge count over the stand-in's.
            let p = params(paper_scale);
            let paper_edges = (p.edge_factor as f64) * (1u64 << paper_scale) as f64;
            let ws = (paper_edges / t.len() as f64).max(1.0);
            let mut base: Option<f64> = None;
            for cfg in sweep(12_288) {
                let out = run_mcm_scaled(cfg, &t, &McmOptions::default(), ws);
                let secs = mcm_time(&out).max(1e-12);
                let speedup = *base.get_or_insert(secs) / secs;
                rep.row(vec![
                    name.to_string(),
                    format!("{scale} (for {paper_scale})"),
                    cfg.cores().to_string(),
                    format!("{:.3}", secs * 1e3),
                    format!("{speedup:.2}"),
                    out.cardinality.to_string(),
                ]);
            }
        }
    }
    rep.finish();
    println!("\npaper shape to check: the smaller scale stops scaling well before the");
    println!("12288-core end of the sweep; the larger scale keeps improving.");
}
