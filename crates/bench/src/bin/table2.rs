//! Table II: the matrix inventory.
//!
//! Prints, for each of the paper's 13 matrices, the UF-collection sizes the
//! paper quotes next to the stand-in actually generated here (DESIGN.md §2),
//! plus the structural deficiency (unmatched columns under a maximum
//! matching) — the paper selected "matrices that have at least several
//! thousands of unmatched vertices after computing a maximal matching", so
//! the stand-ins must leave the MCM phase real work.

use mcm_bench::Report;
use mcm_core::serial::{greedy_serial, hopcroft_karp};
use mcm_gen::table2;
use mcm_sparse::stats::MatrixStats;

fn main() {
    let mut rep = Report::new(
        "table2",
        &[
            "matrix",
            "class",
            "paper n",
            "paper nnz",
            "ours n1",
            "ours n2",
            "ours nnz",
            "avg deg",
            "max |M|",
            "unmatched after maximal",
        ],
    );
    for s in table2() {
        let t = s.generate();
        let a = t.to_csc();
        let stats = MatrixStats::from_csc(&a);
        let maximal = greedy_serial(&a);
        let maximum = hopcroft_karp(&a, Some(maximal.clone()));
        rep.row(vec![
            s.name.to_string(),
            s.class.label().to_string(),
            s.paper_nrows.to_string(),
            s.paper_nnz.to_string(),
            stats.nrows.to_string(),
            stats.ncols.to_string(),
            stats.nnz.to_string(),
            format!("{:.1}", stats.avg_row_degree),
            maximum.cardinality().to_string(),
            (stats.ncols - maximal.cardinality()).to_string(),
        ]);
    }
    println!("Table II — matrix inventory (paper scale vs stand-in scale)\n");
    rep.finish();
}
