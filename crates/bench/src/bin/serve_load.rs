//! `serve_load` — loopback load harness for the `mcmd` socket daemon.
//!
//! Starts an in-process [`mcm_serve::Server`], drives it with the
//! closed- and open-loop generators from `mcm_serve::load`, cross-checks
//! the client-side response counts and percentiles against the daemon's
//! own `mcmd_request_seconds{verb}` Prometheus histograms (same process,
//! same registry), and writes `BENCH_serve.json`.
//!
//! ```text
//! serve_load [--conns n] [--secs s] [--rows n] [--cols n]
//!            [--rate r] [--weighted] [--out path]
//! ```
//!
//! With `--weighted` the daemon runs the weighted engine: inserts carry
//! integer weights and `query` responses are validated against the
//! `matching <n> weight <w>` shape.
//!
//! Exits non-zero if any response was corrupted, any read was dropped,
//! or the daemon's histogram disagrees with the client's ledger —
//! `BENCH_serve.json` is only written by a clean run.

use mcm_dyn::{DynMatching, DynOptions, WDynMatching, WDynOptions};
use mcm_serve::{run_load, Engine, LoadConfig, LoadMode, Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    opt(args, flag).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Server-side observation count + bucket-resolved percentiles for one
/// verb, from the shared in-process registry.
fn server_view(verb: &str) -> (u64, f64, f64) {
    let h = mcm_obs::registry().histogram("mcmd_request_seconds", &[("verb", verb)]);
    (h.count(), h.quantile_ns(0.50) as f64 / 1_000.0, h.quantile_ns(0.99) as f64 / 1_000.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let conns: usize = num(&args, "--conns", 256);
    let secs: f64 = num(&args, "--secs", 2.0);
    let rows: usize = num(&args, "--rows", 2048);
    let cols: usize = num(&args, "--cols", 2048);
    let rate: f64 = num(&args, "--rate", 25.0);
    let weighted = args.iter().any(|a| a == "--weighted");
    let default_out = if weighted { "BENCH_serve_weighted.json" } else { "BENCH_serve.json" };
    let out_path = opt(&args, "--out").unwrap_or_else(|| default_out.to_string());

    mcm_obs::enable_metrics(true);
    let started = if weighted {
        let wm = WDynMatching::new(rows, cols, WDynOptions::default());
        Server::start_weighted(wm, ServerConfig::default())
    } else {
        let dm = DynMatching::new(rows, cols, DynOptions::default());
        Server::start(dm, ServerConfig::default())
    };
    let server = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_load: failed to start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "serve_load: {} daemon at {addr}, {conns} connections, {secs}s per mode",
        if weighted { "weighted" } else { "cardinality" }
    );

    let mut blocks = Vec::new();
    let mut failed = false;
    for mode in [LoadMode::Closed, LoadMode::Open] {
        let before: Vec<(u64, f64, f64)> =
            ["insert", "delete", "query"].iter().map(|v| server_view(v)).collect();
        let cfg = LoadConfig {
            addr,
            connections: conns,
            duration: Duration::from_secs_f64(secs),
            mode,
            rate_per_conn: rate,
            rows,
            cols,
            query_every: 8,
            weighted,
            seed: 0x5EED,
        };
        let report = match run_load(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve_load: {} run failed: {e}", mode.name());
                failed = true;
                continue;
            }
        };
        // Cross-check against the daemon's histograms: the server must
        // have observed at least every response the clients received
        // (it also observes requests whose response was never read).
        let mut extra = String::new();
        extra.push_str("      \"server\": [\n");
        for (i, verb) in ["insert", "delete", "query"].iter().enumerate() {
            let (count, p50, p99) = server_view(verb);
            let delta = count - before[i].0;
            let client = report.verbs.iter().find(|v| v.verb == *verb).map_or(0, |v| v.count);
            if delta < client {
                eprintln!(
                    "serve_load: CROSS-CHECK FAILED: {} mode, verb {verb}: daemon observed \
                     {delta} requests but clients hold {client} responses",
                    mode.name()
                );
                failed = true;
            }
            extra.push_str(&format!(
                "        {{\"verb\": \"{verb}\", \"count\": {delta}, \
                 \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}}{}\n",
                if i < 2 { "," } else { "" }
            ));
        }
        extra.push_str("      ]");
        if report.corrupted > 0 {
            eprintln!("serve_load: {} mode: {} corrupted responses", mode.name(), report.corrupted);
            failed = true;
        }
        eprintln!(
            "serve_load: {:>6} loop: {:.0} updates/sec, {} responses, {} busy, \
             {} corrupted, {} unanswered",
            report.mode,
            report.updates_per_sec,
            report.verbs.iter().map(|v| v.count).sum::<u64>(),
            report.verbs.iter().map(|v| v.busy).sum::<u64>(),
            report.corrupted,
            report.unanswered,
        );
        for v in &report.verbs {
            eprintln!(
                "serve_load:   {:>6}: n {:>7}  p50 {:>8.1}us  p99 {:>8.1}us  p999 {:>8.1}us",
                v.verb, v.count, v.p50_us, v.p99_us, v.p999_us
            );
        }
        blocks.push(mcm_serve::load::report_to_json(&report, &extra));
    }

    let (cardinality, nnz, batches, weight) = match server.shutdown() {
        Engine::Card(dm) => (dm.cardinality(), dm.graph().nnz(), dm.stats().batches as u64, None),
        Engine::Weighted(wm) => {
            if let Err(e) = wm.verify_full() {
                eprintln!("serve_load: FINAL CERTIFICATE FAILED: {e}");
                failed = true;
            }
            (wm.cardinality(), wm.nnz(), wm.stats().batches, Some(wm.weight()))
        }
    };
    eprintln!(
        "serve_load: daemon drained: cardinality {cardinality} nnz {nnz} batches {batches}{}",
        weight.map(|w| format!(" weight {w}")).unwrap_or_default()
    );
    if failed {
        eprintln!("serve_load: FAILED — not writing {out_path}");
        return ExitCode::FAILURE;
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serve\",\n");
    json.push_str(&format!(
        "  \"engine\": \"{}\",\n",
        if weighted { "weighted" } else { "cardinality" }
    ));
    json.push_str(&format!(
        "  \"rows\": {rows},\n  \"cols\": {cols},\n  \"connections\": {conns},\n"
    ));
    json.push_str(&format!(
        "  \"final_cardinality\": {cardinality},\n  \"final_nnz\": {nnz},\n  \
         \"batches\": {batches},\n"
    ));
    if let Some(w) = weight {
        json.push_str(&format!("  \"final_weight\": {w},\n"));
    }
    json.push_str("  \"results\": [\n");
    json.push_str(&blocks.join(",\n"));
    json.push_str("\n  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("serve_load: {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("serve_load: wrote {out_path}");
    ExitCode::SUCCESS
}
