//! Fig. 7: impact of intra-node multithreading (hybrid vs flat MPI).
//!
//! For two representative matrices, compares the hybrid layout (12 threads
//! per process, small process grid) against flat MPI (1 thread per process,
//! large grid) at matched core counts. The paper's findings: hybrid is at
//! least ~2× faster everywhere because the smaller communicators shrink
//! latency and synchronization costs, and flat MPI stops scaling much
//! earlier — most dramatically on small matrices like amazon-2008.

use mcm_bench::{mcm_time, run_mcm_scaled, standin_scale, Report};
use mcm_bsp::MachineConfig;
use mcm_core::McmOptions;
use mcm_gen::realistic::by_name;

fn main() {
    println!("Fig. 7 — hybrid (t=12) vs flat MPI (t=1) at matched core counts\n");
    let mut rep = Report::new(
        "fig7",
        &["matrix", "cores(hybrid)", "hybrid_ms", "cores(flat)", "flat_ms", "flat/hybrid"],
    );
    for name in ["amazon-2008", "road_usa"] {
        let s = by_name(name).expect("matrix in table2");
        let t = s.generate();
        let scale = standin_scale(&s, &t);
        for dim in [2usize, 3, 4, 6, 9, 13] {
            let hybrid = MachineConfig::hybrid(dim, 12);
            // Flat grid with (approximately) the same number of cores:
            // dim_flat² ≈ 12·dim².
            let dim_flat = ((12.0f64).sqrt() * dim as f64).round() as usize;
            let flat = MachineConfig::flat(dim_flat);
            let oh = run_mcm_scaled(hybrid, &t, &McmOptions::default(), scale);
            let of = run_mcm_scaled(flat, &t, &McmOptions::default(), scale);
            assert_eq!(oh.cardinality, of.cardinality);
            rep.row(vec![
                s.name.to_string(),
                hybrid.cores().to_string(),
                format!("{:.3}", mcm_time(&oh) * 1e3),
                flat.cores().to_string(),
                format!("{:.3}", mcm_time(&of) * 1e3),
                format!("{:.2}", mcm_time(&of) / mcm_time(&oh).max(1e-12)),
            ]);
        }
    }
    rep.finish();
    println!("\npaper shape to check: flat/hybrid ratio ≥ ~2 and growing with cores;");
    println!("flat MPI on amazon-2008 stops improving beyond a few hundred cores.");
}
