//! Fig. 3: impact of the maximal-matching initializer on MCM runtime.
//!
//! For four representative matrices and each of {greedy, Karp–Sipser,
//! dynamic mindegree}, reports the modeled initialization time, the modeled
//! MCM time on top of it, and the cardinality the initializer delivered.
//! The paper's finding: Karp–Sipser is always the slowest initializer in
//! distributed memory, and dynamic mindegree gives the best (or nearly
//! best) total time — which is why it is the default everywhere else.

use mcm_bench::{run_mcm_scaled, standin_scale, Report};
use mcm_bsp::{Kernel, MachineConfig};
use mcm_core::maximal::Initializer;
use mcm_core::McmOptions;
use mcm_gen::representative4;

fn main() {
    // The paper reports Fig. 3 at high concurrency; 972 cores = 9x9 x 12.
    let cfg = MachineConfig::hybrid(9, 12);
    println!(
        "Fig. 3 — initializer impact at {} cores ({}x{} grid, {} threads/process)\n",
        cfg.cores(),
        cfg.grid.pr,
        cfg.grid.pc,
        cfg.threads_per_process
    );

    let mut rep = Report::new(
        "fig3",
        &["matrix", "initializer", "init |M|", "final |M|", "init(ms)", "mcm(ms)", "total(ms)"],
    );
    for s in representative4() {
        let t = s.generate();
        let scale = standin_scale(&s, &t);
        for init in [Initializer::Greedy, Initializer::KarpSipser, Initializer::DynamicMindegree] {
            let opts = McmOptions { init, ..Default::default() };
            let out = run_mcm_scaled(cfg, &t, &opts, scale);
            let init_ms = out.timers.seconds(Kernel::Init) * 1e3;
            let total_ms = out.modeled_s * 1e3;
            rep.row(vec![
                s.name.to_string(),
                init.name().to_string(),
                out.stats.init_cardinality.to_string(),
                out.cardinality.to_string(),
                format!("{init_ms:.3}"),
                format!("{:.3}", total_ms - init_ms),
                format!("{total_ms:.3}"),
            ]);
        }
    }
    rep.finish();
    println!("\npaper shape to check: karp-sipser has the largest init time on every");
    println!("matrix; its higher init |M| sometimes (wikipedia-like inputs) wins on");
    println!("total time, but dynamic mindegree is close everywhere.");
}
