use mcm_bench::{run_mcm_scaled, share, standin_scale};
use mcm_bsp::{Kernel, MachineConfig};
use mcm_core::McmOptions;
fn main() {
    for name in ["wikipedia-20070206", "road_usa", "amazon-2008"] {
        let s = mcm_gen::realistic::by_name(name).unwrap();
        let t = s.generate();
        let ws = standin_scale(&s, &t);
        for cfg in [
            MachineConfig::hybrid(2, 6),
            MachineConfig::hybrid(9, 12),
            MachineConfig::hybrid(13, 12),
        ] {
            let out = run_mcm_scaled(cfg, &t, &McmOptions::default(), ws);
            println!(
                "{:<20} ws {:>6.0} cores {:>5}: total {:>9.3} ms | SpMV {:>4.1}% Inv {:>4.1}% Prune {:>4.1}% Sel {:>4.1}% Aug {:>4.1}% Init {:>4.1}% Oth {:>4.1}% | iters {}",
                s.name, ws, cfg.cores(), out.modeled_s * 1e3,
                share(&out.timers, Kernel::SpMV), share(&out.timers, Kernel::Invert),
                share(&out.timers, Kernel::Prune), share(&out.timers, Kernel::Select),
                share(&out.timers, Kernel::Augment), share(&out.timers, Kernel::Init),
                share(&out.timers, Kernel::Other), out.stats.iterations
            );
        }
    }
}
