//! Fig. 8: impact of pruning (Step 6 of Algorithm 2).
//!
//! For every Table II stand-in at ~1024 cores, the percentage of modeled
//! MCM runtime saved by pruning vertices from alternating trees that have
//! already yielded an augmenting path. The paper reports 10–65% savings for
//! all but two matrices.

use mcm_bench::{mcm_time, run_mcm_scaled, standin_scale, Report};
use mcm_bsp::MachineConfig;
use mcm_core::McmOptions;
use mcm_gen::table2;

fn main() {
    // 1024 cores in the paper; closest hybrid square layout: 9x9x12 = 972.
    let cfg = MachineConfig::hybrid(9, 12);
    println!("Fig. 8 — runtime reduction from pruning at {} cores\n", cfg.cores());
    let mut rep = Report::new(
        "fig8",
        &["matrix", "with_prune_ms", "no_prune_ms", "reduction_%", "iters_with", "iters_without"],
    );
    for s in table2() {
        let t = s.generate();
        let scale = standin_scale(&s, &t);
        let on = run_mcm_scaled(cfg, &t, &McmOptions { prune: true, ..Default::default() }, scale);
        let off =
            run_mcm_scaled(cfg, &t, &McmOptions { prune: false, ..Default::default() }, scale);
        assert_eq!(on.cardinality, off.cardinality, "{}: pruning must not change |M|", s.name);
        let (on_s, off_s) = (mcm_time(&on), mcm_time(&off));
        let red = 100.0 * (off_s - on_s) / off_s.max(1e-12);
        rep.row(vec![
            s.name.to_string(),
            format!("{:.3}", on_s * 1e3),
            format!("{:.3}", off_s * 1e3),
            format!("{red:.1}"),
            on.stats.iterations.to_string(),
            off.stats.iterations.to_string(),
        ]);
    }
    rep.finish();
    println!("\npaper shape to check: positive reductions (10-65%) on most matrices,");
    println!("near zero on a couple; pruning never changes the cardinality.");
}
