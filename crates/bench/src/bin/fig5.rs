//! Fig. 5: runtime breakdown of MCM-DIST across kernels.
//!
//! For four representative matrices over the strong-scaling sweep, the
//! percentage of modeled time spent in SpMV, INVERT, PRUNE, SELECT,
//! AUGMENT and initialization. The paper's shape: SpMV dominates at low
//! concurrency (~80% on road_usa at 48 cores), and the synchronization-
//! heavy INVERT grows with the core count — fastest on small matrices like
//! amazon-2008 where shrinking local work cannot hide latency.

use mcm_bench::{mcm_time, run_mcm_scaled, share_mcm, standin_scale, sweep, Report};
use mcm_bsp::Kernel;
use mcm_core::McmOptions;
use mcm_gen::representative4;

fn main() {
    println!("Fig. 5 — modeled runtime breakdown (% of total)\n");
    let mut rep = Report::new(
        "fig5",
        &[
            "matrix", "cores", "SpMV%", "Invert%", "Prune%", "Select%", "Augment%", "Other%",
            "mcm_ms",
        ],
    );
    for s in representative4() {
        let t = s.generate();
        let scale = standin_scale(&s, &t);
        for cfg in sweep(2028) {
            let out = run_mcm_scaled(cfg, &t, &McmOptions::default(), scale);
            rep.row(vec![
                s.name.to_string(),
                cfg.cores().to_string(),
                format!("{:.1}", share_mcm(&out.timers, Kernel::SpMV)),
                format!("{:.1}", share_mcm(&out.timers, Kernel::Invert)),
                format!("{:.1}", share_mcm(&out.timers, Kernel::Prune)),
                format!("{:.1}", share_mcm(&out.timers, Kernel::Select)),
                format!("{:.1}", share_mcm(&out.timers, Kernel::Augment)),
                format!("{:.1}", share_mcm(&out.timers, Kernel::Other)),
                format!("{:.3}", mcm_time(&out) * 1e3),
            ]);
        }
    }
    rep.finish();
    println!("\npaper shape to check: SpMV share falls and Invert share rises with");
    println!("core count; the crossover comes earliest on the smallest matrix.");
}
