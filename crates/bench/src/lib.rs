//! # mcm-bench — harness utilities for regenerating the paper's evaluation
//!
//! Each table/figure of Azad & Buluç (IPDPS 2016) has a binary in
//! `src/bin/` (see DESIGN.md §4 for the index); Criterion micro-benches for
//! the kernels and ablations live in `benches/`. This library holds the
//! shared plumbing: running MCM-DIST on a simulated machine and collecting
//! modeled times, aligned-table/CSV emission, and synthetic augmenting-path
//! builders for the augmentation ablation.

use mcm_bsp::{DistCtx, Kernel, MachineConfig, Timers};
use mcm_core::{maximum_matching, Matching, McmOptions, McmStats};
use mcm_sparse::{DenseVec, Triples, Vidx};
use std::io::Write;
use std::path::PathBuf;

/// Outcome of one simulated MCM-DIST run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Modeled elapsed seconds (sum over kernel charges; bulk-synchronous
    /// max-rank accounting happens inside each charge).
    pub modeled_s: f64,
    /// Per-kernel modeled timers.
    pub timers: Timers,
    /// Run counters.
    pub stats: McmStats,
    /// Cardinality of the maximum matching found.
    pub cardinality: usize,
}

/// Runs MCM-DIST on `t` over the machine `cfg` and returns modeled times.
pub fn run_mcm(cfg: MachineConfig, t: &Triples, opts: &McmOptions) -> RunOutcome {
    run_mcm_scaled(cfg, t, opts, 1.0)
}

/// Like [`run_mcm`] with an explicit paper-scale work multiplier: the
/// stand-in is charged as if each edge/vertex represented `work_scale`
/// paper-scale ones (see `DistCtx::work_scale`). Figure harnesses pass
/// `paper_nnz / standin_nnz`.
pub fn run_mcm_scaled(
    cfg: MachineConfig,
    t: &Triples,
    opts: &McmOptions,
    work_scale: f64,
) -> RunOutcome {
    let mut ctx = DistCtx::new(cfg).with_work_scale(work_scale);
    let result = maximum_matching(&mut ctx, t, opts);
    RunOutcome {
        modeled_s: ctx.timers.total(),
        timers: ctx.timers.clone(),
        stats: result.stats,
        cardinality: result.matching.cardinality(),
    }
}

/// The per-matrix paper-scale multiplier for a Table II stand-in.
pub fn standin_scale(s: &mcm_gen::StandIn, t: &Triples) -> f64 {
    (s.paper_nnz as f64 / t.len().max(1) as f64).max(1.0)
}

/// A simple aligned-text + CSV table emitter. Every figure binary prints the
/// series it regenerates and drops a CSV under `target/figures/`.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with the given figure name and column header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Writes `target/figures/<name>.csv`; returns the path.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }

    /// Prints the table and persists the CSV, reporting where it went.
    pub fn finish(&self) {
        self.print();
        match self.write_csv() {
            Ok(p) => println!("\n[csv] {}", p.display()),
            Err(e) => eprintln!("\n[csv] write failed: {e}"),
        }
    }
}

/// Builds `k` vertex-disjoint synthetic augmenting paths, each with
/// `half_len` (row, column) pairs to flip, in the exact representation
/// Algorithms 3/4 consume: `path_c[root] = end_row`, parent pointers in
/// `parent_r`, and the partial matching of the interior path edges.
///
/// Path `q` uses columns `q*half_len .. (q+1)*half_len` and the same row
/// range; column `q*half_len` is the root. Returns
/// `(path_c, parent_r, matching)` for an `n × n` instance with
/// `n = k * half_len`.
pub fn synthetic_paths(k: usize, half_len: usize) -> (DenseVec, DenseVec, Matching) {
    assert!(k > 0 && half_len > 0);
    let n = k * half_len;
    let mut path_c = DenseVec::nil(n);
    let mut parent_r = DenseVec::nil(n);
    let mut m = Matching::empty(n, n);
    for q in 0..k {
        let base = (q * half_len) as Vidx;
        // Alternating path: c_base - r_base = c_{base+1} - r_{base+1} = ...
        // ... - r_{base+half_len-1} (unmatched end row).
        for s in 0..half_len as Vidx {
            parent_r.set(base + s, base + s); // r_{base+s} discovered by c_{base+s}
            if s + 1 < half_len as Vidx {
                m.add(base + s, base + s + 1); // matched interior edge
            }
        }
        path_c.set(base, base + half_len as Vidx - 1);
    }
    (path_c, parent_r, m)
}

/// The paper's strong-scaling machine sweep capped at `max_cores`.
pub fn sweep(max_cores: usize) -> Vec<MachineConfig> {
    MachineConfig::paper_sweep(max_cores)
}

/// Percentage share of `kernel` in the total modeled time.
pub fn share(timers: &Timers, kernel: Kernel) -> f64 {
    let total = timers.total();
    if total <= 0.0 {
        0.0
    } else {
        100.0 * timers.seconds(kernel) / total
    }
}

/// Modeled MCM-phase seconds of a run: total minus initialization. The
/// paper's Figs. 4–8 report the MCM algorithm itself (the initializer
/// trade-off is Fig. 3's subject), so the scaling harnesses use this.
pub fn mcm_time(out: &RunOutcome) -> f64 {
    (out.modeled_s - out.timers.seconds(Kernel::Init)).max(0.0)
}

/// Percentage share of `kernel` within the MCM phase (init excluded).
pub fn share_mcm(timers: &Timers, kernel: Kernel) -> f64 {
    let total = timers.total() - timers.seconds(Kernel::Init);
    if total <= 0.0 {
        0.0
    } else {
        100.0 * timers.seconds(kernel) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::augment::{augment, AugmentMode};
    use mcm_core::verify::is_maximum;

    #[test]
    fn synthetic_paths_augment_cleanly() {
        let (path_c, parent_r, mut m) = synthetic_paths(3, 4);
        let before = m.cardinality();
        let mut ctx = DistCtx::serial();
        let rep = augment(&mut ctx, AugmentMode::LevelParallel, &path_c, &parent_r, &mut m);
        assert_eq!(rep.paths, 3);
        assert_eq!(rep.levels, 4);
        assert_eq!(m.cardinality(), before + 3);
        // Every vertex of every path is now matched.
        for i in 0..m.n1() as Vidx {
            assert!(m.row_matched(i));
            assert!(m.col_matched(i));
        }
    }

    #[test]
    fn run_mcm_produces_verified_maximum() {
        let t = mcm_gen::mesh::triangulated_grid(12, 12, 3);
        let out = run_mcm(MachineConfig::hybrid(2, 2), &t, &McmOptions::default());
        let a = t.to_csc();
        let serial = mcm_core::serial::hopcroft_karp(&a, None);
        assert_eq!(out.cardinality, serial.cardinality());
        assert!(is_maximum(&a, &serial));
        assert!(out.modeled_s > 0.0);
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("test_report", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let path = r.write_csv().unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }
}
