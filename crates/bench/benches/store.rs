//! `store` — the out-of-core scaling curve behind BENCH_store.json
//! (DESIGN.md §18, EXPERIMENTS.md "Scaling past RAM-resident inputs").
//!
//! For each scale the harness stream-generates a G500 RMAT graph straight
//! into an MCSB file (bounded memory — the edge list never materializes),
//! then measures the read side of the zero-copy chain:
//!
//! * `load` — `McsbFile::open` (mmap + header/colptr validation only);
//! * `rss_delta` — resident-set growth across open + full view
//!   construction, the number the format exists to keep small;
//! * `solve` — `maximum_matching_shared_view` end-to-end on the borrowed
//!   view, Berge-certified at the smallest scale.
//!
//! Custom harness (not the criterion stand-in): the record carries RSS and
//! file-size fields that the shared `BenchRecord` schema has no slots for.
//! Writes to `$MCM_BENCH_JSON` or `BENCH_store.json`. Scales default to
//! `15,18,20`; override with `MCM_STORE_SCALES=s1,s2,...` (CI uses a
//! smaller list — see .github/workflows/ci.yml).

use mcm_core::verify::is_maximum_view;
use mcm_core::McmOptions;
use mcm_gen::RmatParams;
use mcm_store::{McsbFile, McsbStreamWriter};
use std::time::Instant;

/// Reads a `VmRSS`/`VmHWM`-style field from `/proc/self/status`, in bytes.
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse::<u64>().ok().map(|kb| kb * 1024)
}

struct ScaleRecord {
    scale: u32,
    nnz: u64,
    file_bytes: u64,
    gen_secs: f64,
    load_secs: f64,
    rss_delta_bytes: Option<u64>,
    solve_secs: f64,
    cardinality: usize,
}

fn run_scale(scale: u32, dir: &std::path::Path) -> ScaleRecord {
    // Edge factor 16 keeps scale 20 around 16M edges — ~10× the largest
    // in-RAM instance the other benches touch, still CI-feasible.
    let p = RmatParams { edge_factor: 16, ..RmatParams::g500(scale) };
    let path = dir.join(format!("g500_s{scale}.mcsb"));

    let t0 = Instant::now();
    let mut w = McsbStreamWriter::create(&path, p.n(), p.n(), false).expect("create stream writer");
    let mut push_err = None;
    mcm_gen::stream_edges(&p, 42, |chunk| {
        if push_err.is_none() {
            push_err = w.push_edges(chunk).err();
        }
    });
    if let Some(e) = push_err {
        panic!("stream write failed: {e}");
    }
    let summary = w.finish(mcm_par::max_threads()).expect("finish stream");
    let gen_secs = t0.elapsed().as_secs_f64();

    let rss_before = proc_status_kb("VmRSS:");
    let t1 = Instant::now();
    let file = McsbFile::open(&path).expect("mmap open");
    let v = file.view();
    let load_secs = t1.elapsed().as_secs_f64();
    let rss_delta_bytes = match (rss_before, proc_status_kb("VmRSS:")) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };

    let opts = McmOptions::default();
    let t2 = Instant::now();
    let res = mcm_core::mcm::maximum_matching_shared_view(4, mcm_par::max_threads(), &v, &opts);
    let solve_secs = t2.elapsed().as_secs_f64();

    std::fs::remove_file(&path).ok();
    ScaleRecord {
        scale,
        nnz: summary.nnz,
        file_bytes: summary.bytes,
        gen_secs,
        load_secs,
        rss_delta_bytes,
        solve_secs,
        cardinality: res.matching.cardinality(),
    }
}

fn main() {
    let scales: Vec<u32> = std::env::var("MCM_STORE_SCALES")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![15, 18, 20]);
    let dir = std::env::temp_dir().join(format!("mcm_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    // Berge-certify the chain once, at the smallest scale, so the curve is
    // anchored to a verified result without re-verifying at every size.
    {
        let smallest = *scales.iter().min().expect("at least one scale");
        let p = RmatParams { edge_factor: 16, ..RmatParams::g500(smallest.min(12)) };
        let path = dir.join("certify.mcsb");
        let mut w = McsbStreamWriter::create(&path, p.n(), p.n(), false).unwrap();
        mcm_gen::stream_edges(&p, 42, |chunk| w.push_edges(chunk).unwrap());
        w.finish(mcm_par::max_threads()).unwrap();
        let f = McsbFile::open(&path).unwrap();
        let v = f.view();
        let res = mcm_core::mcm::maximum_matching_shared_view(4, 2, &v, &McmOptions::default());
        assert!(is_maximum_view(&v, &res.matching), "Berge certificate failed");
        std::fs::remove_file(&path).ok();
        eprintln!("certified: scale {} matching is maximum (Berge)", smallest.min(12));
    }

    let mut records = Vec::new();
    for &scale in &scales {
        let r = run_scale(scale, &dir);
        eprintln!(
            "store/g500_s{}: nnz {} file {:.1} MiB gen {:.2}s load {:.6}s rss_delta {} solve {:.3}s card {}",
            r.scale,
            r.nnz,
            r.file_bytes as f64 / (1024.0 * 1024.0),
            r.gen_secs,
            r.load_secs,
            r.rss_delta_bytes.map_or("n/a".into(), |b| format!("{:.1} MiB", b as f64 / 1048576.0)),
            r.solve_secs,
            r.cardinality
        );
        records.push(r);
    }
    std::fs::remove_dir_all(&dir).ok();

    let out = std::env::var("MCM_BENCH_JSON").unwrap_or_else(|_| "BENCH_store.json".to_string());
    let mut json =
        String::from("{\n  \"bench\": \"store\",\n  \"edge_factor\": 16,\n  \"scales\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": {}, \"nnz\": {}, \"file_bytes\": {}, \"gen_secs\": {:.6}, \
             \"load_secs\": {:.6}, \"rss_delta_bytes\": {}, \"solve_secs\": {:.6}, \
             \"cardinality\": {}}}{}\n",
            r.scale,
            r.nnz,
            r.file_bytes,
            r.gen_secs,
            r.load_secs,
            r.rss_delta_bytes.map_or("null".to_string(), |b| b.to_string()),
            r.solve_secs,
            r.cardinality,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_store.json");
    eprintln!("wrote {out}");
}
