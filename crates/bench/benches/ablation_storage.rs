//! Ablation: DCSC vs CSC for 2D-partitioned local submatrices (§IV-A).
//!
//! On large process grids each block is *hypersparse* (nnz < ncols) and
//! CSC's O(ncols) column-pointer scan/storage is the waste DCSC removes.
//! This bench slices one RMAT matrix into grid blocks of increasing count
//! and times the local SpMSpV under both formats; stderr reports the memory
//! ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::{Csc, Dcsc, SpVec, Vidx};
use std::hint::black_box;

fn bench_storage(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(13), 5);
    let mut group = c.benchmark_group("storage");
    for &grid in &[4usize, 16, 64] {
        // Take a middle block of the grid decomposition.
        let blocks = t.split_blocks(grid, grid);
        let block = &blocks[(grid / 2) * grid + grid / 2];
        let dcsc = Dcsc::from_triples(block);
        let csc: Csc = dcsc.to_csc();
        let frontier: SpVec<Vidx> = SpVec::from_sorted_pairs(
            block.ncols(),
            (0..block.ncols()).step_by(8).map(|j| (j as Vidx, j as Vidx)).collect(),
        );
        let csc_bytes = std::mem::size_of_val(csc.colptr()) + std::mem::size_of_val(csc.rowind());
        eprintln!(
            "[ablation_storage] {grid}x{grid} grid block: {} nnz over {} cols \
             (hypersparse: {}), DCSC {} B vs CSC {} B",
            dcsc.nnz(),
            dcsc.ncols(),
            dcsc.is_hypersparse(),
            dcsc.memory_bytes(),
            csc_bytes
        );

        group.bench_with_input(BenchmarkId::new("dcsc", grid * grid), &frontier, |b, x| {
            b.iter(|| {
                black_box(mcm_sparse::spmspv(&dcsc, x, |j, _| j, |acc: &Vidx, inc| inc < acc))
            });
        });
        group.bench_with_input(BenchmarkId::new("csc", grid * grid), &frontier, |b, x| {
            b.iter(|| {
                black_box(mcm_sparse::spmspv_csc(&csc, x, |j, _| j, |acc: &Vidx, inc| inc < acc))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
