//! Algorithm portfolio sweep (DESIGN.md §15): MS-BFS vs parallel
//! Pothen–Fan vs the ε-scaled auction on shapes spanning the selector's
//! decision regions, plus the cost of the measured selection itself
//! (`MCM_BENCH_JSON=BENCH_algo.json` records the numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_core::portfolio::{solve, MatchingAlgo, PortfolioOptions, SelectorStats};
use mcm_gen::hard::{chain, crown, star};
use mcm_gen::mesh::road_grid;
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

fn bench_portfolio(c: &mut Criterion) {
    // One instance per selector region: RMAT (skewed, auto → ppf), road
    // (balanced sparse, auto → msbfs), crown (dense, auto → auction),
    // chain (the augmenting-path / eviction-cascade adversary).
    let inputs = vec![
        ("g500_s12", rmat(RmatParams::g500(12), 9)),
        ("road_96", road_grid(96, 96, 0.1, 9)),
        ("crown_256", crown(256)),
        ("chain_2048", chain(2048)),
    ];

    let mut group = c.benchmark_group("algo_portfolio");
    group.sample_size(10);
    for (name, t) in &inputs {
        group.throughput(Throughput::Elements(t.len() as u64));
        for algo in MatchingAlgo::CONCRETE {
            let opts = PortfolioOptions { algo, threads: 4, ..PortfolioOptions::default() };
            group.bench_with_input(BenchmarkId::new(algo.name(), name), t, |b, t| {
                b.iter(|| black_box(solve(t, &opts)));
            });
        }
        // The auto path: measurement + dispatch, the end-to-end cost a
        // caller actually pays for not choosing.
        let opts = PortfolioOptions { threads: 4, ..PortfolioOptions::default() };
        group.bench_with_input(BenchmarkId::new("auto", name), t, |b, t| {
            b.iter(|| black_box(solve(t, &opts)));
        });
    }
    group.finish();

    // Selector overhead alone: one O(nnz) pass; must stay negligible
    // against any engine above for `auto` to be a sane default.
    let mut group = c.benchmark_group("algo_selector");
    for (name, t) in &inputs {
        group.throughput(Throughput::Elements(t.len() as u64));
        group.bench_with_input(BenchmarkId::new("measure", name), t, |b, t| {
            b.iter(|| black_box(SelectorStats::measure(t).choose()));
        });
    }
    group.finish();

    // The price-war adversary head-to-head: scaled ε vs a fixed fine ε
    // on the crowded star (the Θ(1/ε) regime the scaling exists for).
    let mut group = c.benchmark_group("auction_eps");
    group.sample_size(10);
    let a = star(8, 512).to_csc();
    use mcm_core::auction::{auction, AuctionOptions};
    group.bench_function("scaled/star_8x512", |b| {
        b.iter(|| black_box(auction(&a, &AuctionOptions::default())));
    });
    let fine = 1.0 / (2.0 * (a.nrows() as f64 + 1.0));
    let fixed = AuctionOptions { eps_start: fine, eps_final: Some(fine), ..Default::default() };
    group.bench_function("fixed_fine/star_8x512", |b| {
        b.iter(|| black_box(auction(&a, &fixed)));
    });
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
