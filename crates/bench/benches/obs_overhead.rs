//! Observability overhead on the `engine_e2e` sweep (DESIGN.md §13).
//!
//! Three questions, answered in `BENCH_obs.json`:
//!
//! 1. `disabled/<cores>` vs `enabled/<cores>` — what the *enabled*
//!    recorder (tracing + metrics + trace collection) costs on a full
//!    MCM-DIST engine run. This is the price of `--breakdown`.
//! 2. `site/*` — the per-call-site cost of the *disabled* path: one
//!    `Relaxed` load for a span open, one for a counter helper. The <2%
//!    disabled-overhead gate in `tests/obs.rs` multiplies this by the
//!    instrumentation-site count of a real run (taken from an enabled
//!    run's event count) and divides by the run's wall time — the
//!    compiled-in-but-off overhead cannot be measured differentially
//!    because the baseline without instrumentation no longer exists.
//! 3. `events/collected` — events one enabled engine run records
//!    (iterations encode the count), so the JSON documents the
//!    site-count side of the gate arithmetic too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_core::{maximum_matching_engine, McmOptions};
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

/// Same total-core sweep as `engine_e2e`: (cores, ranks, threads/rank).
const CORES: [(usize, usize, usize); 4] = [(1, 1, 1), (2, 1, 2), (4, 4, 1), (8, 4, 2)];

fn bench_obs_overhead(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(12), 7);
    let opts = McmOptions::default();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(t.len() as u64));

    mcm_obs::enable_all(false);
    for &(cores, p, threads) in &CORES {
        group.bench_function(BenchmarkId::new("disabled", cores), |b| {
            b.iter(|| {
                black_box(maximum_matching_engine(p, threads, &t, &opts).matching.cardinality())
            })
        });
    }

    for &(cores, p, threads) in &CORES {
        group.bench_function(BenchmarkId::new("enabled", cores), |b| {
            b.iter(|| {
                mcm_obs::enable_all(true);
                let card = maximum_matching_engine(p, threads, &t, &opts).matching.cardinality();
                mcm_obs::enable_all(false);
                // Collection is part of the enabled price.
                black_box(mcm_obs::take_trace().events.len());
                black_box(card)
            })
        });
    }
    group.finish();

    // Disabled-path per-site cost: the whole point of the design is that
    // these are one Relaxed atomic load each.
    let mut sites = c.benchmark_group("site");
    mcm_obs::enable_all(false);
    sites.bench_function("disabled_span", |b| {
        b.iter(|| black_box(mcm_obs::span(black_box("bench_site"))))
    });
    sites.bench_function("disabled_counter", |b| {
        b.iter(|| mcm_obs::counter_add(black_box("bench_site_total"), &[], 1))
    });
    sites.finish();

    // Event volume of one enabled run, recorded as iteration throughput so
    // the JSON carries the site count the overhead gate reasons from.
    mcm_obs::enable_all(true);
    drop(mcm_obs::take_trace());
    let (_, p, threads) = CORES[3];
    maximum_matching_engine(p, threads, &t, &opts);
    let events = mcm_obs::take_trace().events.len() as u64;
    mcm_obs::enable_all(false);
    let mut vol = c.benchmark_group("events");
    vol.throughput(Throughput::Elements(events));
    vol.bench_function("collected", |b| b.iter(|| black_box(events)));
    vol.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
