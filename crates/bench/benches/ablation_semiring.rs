//! Ablation: the `(select2nd, ⊕)` semiring choice (§III-B).
//!
//! minParent is deterministic but can pile frontier vertices onto the trees
//! rooted at low-index columns; randRoot spreads vertices across trees
//! ("ensuring better balance of tree sizes"). This bench measures wall time
//! per semiring and — once per input, printed to stderr — the modeled
//! distributed time and iteration counts, where the balancing actually
//! shows up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::{maximum_matching, McmOptions, SemiringKind};
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

fn bench_semirings(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(12), 11);
    let semirings = [
        ("minParent", SemiringKind::MinParent),
        ("randParent", SemiringKind::RandParent(13)),
        ("randRoot", SemiringKind::RandRoot(13)),
    ];

    // One-shot modeled-time comparison (the quantity the paper's argument
    // is about), reported outside the criterion measurement loop.
    for (name, semiring) in semirings {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(8, 12));
        let opts = McmOptions { semiring, ..Default::default() };
        let r = maximum_matching(&mut ctx, &t, &opts);
        eprintln!(
            "[ablation_semiring] {name:>10}: modeled {:.3} ms, {} phases, {} iterations, |M| {}",
            ctx.timers.total() * 1e3,
            r.stats.phases,
            r.stats.iterations,
            r.matching.cardinality()
        );
    }

    let mut group = c.benchmark_group("semiring");
    group.sample_size(10);
    for (name, semiring) in semirings {
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            b.iter(|| {
                let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
                let opts = McmOptions { semiring, ..Default::default() };
                black_box(maximum_matching(&mut ctx, t, &opts))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_semirings);
criterion_main!(benches);
