//! Criterion micro-benches for the Table I primitives: SELECT, SET, INVERT,
//! PRUNE at several frontier sizes — verifying the O(nnz) serial
//! complexities the table claims — plus a seed-kernel vs workspace vs
//! parallel SpMSpV comparison on an R-MAT scale-12 frontier sweep
//! (`MCM_BENCH_JSON=BENCH_spmv.json` records the numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::primitives::{invert, prune, select, set_dense};
use mcm_core::vertex::Vertex;
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::workspace::SpmvWorkspace;
use mcm_sparse::{spmspv, Dcsc, DenseVec, SpVec, Vidx, NIL};
use std::hint::black_box;

fn make_sparse(n: usize, nnz: usize, seed: u64) -> SpVec<Vidx> {
    let mut rng = SplitMix64::new(seed);
    let mut picked: Vec<Vidx> = (0..n as Vidx).collect();
    // partial Fisher-Yates: first nnz entries are a random sample
    for k in 0..nnz.min(n) {
        let j = k + rng.below((n - k) as u64) as usize;
        picked.swap(k, j);
    }
    let mut pairs: Vec<(Vidx, Vidx)> =
        picked[..nnz.min(n)].iter().map(|&i| (i, rng.below(n as u64) as Vidx)).collect();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    SpVec::from_sorted_pairs(n, pairs)
}

fn bench_primitives(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("primitives");
    for &nnz in &[1usize << 10, 1 << 14, 1 << 18] {
        let x = make_sparse(n, nnz, 42);
        let mut dense = DenseVec::nil(n);
        for i in (0..n).step_by(2) {
            dense.set(i as Vidx, 1);
        }
        group.throughput(Throughput::Elements(nnz as u64));

        group.bench_with_input(BenchmarkId::new("select", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(select(&mut ctx, Kernel::Select, x, &dense, |v| v == NIL)));
        });
        group.bench_with_input(BenchmarkId::new("set_dense", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            let mut y = DenseVec::nil(n);
            b.iter(|| {
                set_dense(&mut ctx, Kernel::Select, &mut y, x, |&v| v);
                black_box(&y);
            });
        });
        group.bench_with_input(BenchmarkId::new("invert", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(invert(&mut ctx, Kernel::Invert, x, n)));
        });
        let roots: Vec<Vidx> = (0..(nnz / 8).max(1)).map(|k| (k * 7) as Vidx).collect();
        group.bench_with_input(BenchmarkId::new("prune", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(prune(&mut ctx, Kernel::Prune, x, &roots, |&v| v)));
        });
    }
    group.finish();
}

/// Seed SpMSpV (allocates output + SPA per call) against the workspace
/// kernel (`spmspv_into`, generation-stamped SPA, caller-owned buffers) and
/// the intra-block parallel path, across a frontier-density sweep on an
/// R-MAT scale-12 block — the shape of the MS-BFS hot path.
fn bench_spmv_workspace(c: &mut Criterion) {
    let a = Dcsc::from_triples(&rmat(RmatParams::g500(12), 42));
    let threads = mcm_par::max_threads();
    let mut group = c.benchmark_group("spmv_workspace");

    for &every in &[1usize, 4, 16, 64] {
        let mut rng = SplitMix64::new(0xBE7C ^ every as u64);
        let pairs: Vec<(Vidx, Vertex)> = (0..a.ncols() as Vidx)
            .filter(|_| rng.below(every as u64) == 0)
            .map(|j| (j, Vertex::seed(j)))
            .collect();
        let x: SpVec<Vertex> = SpVec::from_sorted_pairs(a.ncols(), pairs);
        let flops = spmspv(
            &a,
            &x,
            |j, v: &Vertex| Vertex::new(j, v.root),
            |acc, inc| inc.parent < acc.parent,
        )
        .flops;
        group.throughput(Throughput::Elements(flops));

        group.bench_with_input(BenchmarkId::new("seed", every), &x, |b, x| {
            b.iter(|| {
                black_box(spmspv(
                    &a,
                    x,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| inc.parent < acc.parent,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("workspace", every), &x, |b, x| {
            let mut ws: SpmvWorkspace<Vertex> = SpmvWorkspace::new();
            let mut y = SpVec::new(0);
            b.iter(|| {
                let f = ws.spmspv_into(
                    &a,
                    x,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| inc.parent < acc.parent,
                    &mut y,
                );
                black_box((f, y.nnz()));
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", every), &x, |b, x| {
            let mut ws: SpmvWorkspace<Vertex> = SpmvWorkspace::new();
            let mut y = SpVec::new(0);
            b.iter(|| {
                let f = ws.spmspv_parallel_into(
                    &a,
                    x,
                    threads,
                    |j, v: &Vertex| Vertex::new(j, v.root),
                    |acc, inc| inc.parent < acc.parent,
                    &mut y,
                );
                black_box((f, y.nnz()));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_spmv_workspace);
criterion_main!(benches);
