//! Criterion micro-benches for the Table I primitives: SELECT, SET, INVERT,
//! PRUNE at several frontier sizes — verifying the O(nnz) serial
//! complexities the table claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::primitives::{invert, prune, select, set_dense};
use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{DenseVec, SpVec, Vidx, NIL};
use std::hint::black_box;

fn make_sparse(n: usize, nnz: usize, seed: u64) -> SpVec<Vidx> {
    let mut rng = SplitMix64::new(seed);
    let mut picked: Vec<Vidx> = (0..n as Vidx).collect();
    // partial Fisher-Yates: first nnz entries are a random sample
    for k in 0..nnz.min(n) {
        let j = k + rng.below((n - k) as u64) as usize;
        picked.swap(k, j);
    }
    let mut pairs: Vec<(Vidx, Vidx)> = picked[..nnz.min(n)]
        .iter()
        .map(|&i| (i, rng.below(n as u64) as Vidx))
        .collect();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    SpVec::from_sorted_pairs(n, pairs)
}

fn bench_primitives(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("primitives");
    for &nnz in &[1usize << 10, 1 << 14, 1 << 18] {
        let x = make_sparse(n, nnz, 42);
        let mut dense = DenseVec::nil(n);
        for i in (0..n).step_by(2) {
            dense.set(i as Vidx, 1);
        }
        group.throughput(Throughput::Elements(nnz as u64));

        group.bench_with_input(BenchmarkId::new("select", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(select(&mut ctx, Kernel::Select, x, &dense, |v| v == NIL)));
        });
        group.bench_with_input(BenchmarkId::new("set_dense", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            let mut y = DenseVec::nil(n);
            b.iter(|| {
                set_dense(&mut ctx, Kernel::Select, &mut y, x, |&v| v);
                black_box(&y);
            });
        });
        group.bench_with_input(BenchmarkId::new("invert", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(invert(&mut ctx, Kernel::Invert, x, n)));
        });
        let roots: Vec<Vidx> = (0..(nnz / 8).max(1)).map(|k| (k * 7) as Vidx).collect();
        group.bench_with_input(BenchmarkId::new("prune", nnz), &x, |b, x| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 1));
            b.iter(|| black_box(prune(&mut ctx, Kernel::Prune, x, &roots, |&v| v)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
