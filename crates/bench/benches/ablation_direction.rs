//! Ablation: direction-optimizing (bottom-up) BFS — the paper's §VII
//! future work, implemented here on the simulated machine.
//!
//! The interesting finding (printed to stderr): with the paper's default
//! dynamic-mindegree initialization, frontiers rarely cover a majority of
//! the columns, so the bottom-up path almost never triggers — the good
//! initializer and the direction optimization fight over the same savings.
//! Without an initializer the first phases have near-universal frontiers
//! and bottom-up cuts the modeled SpMV time substantially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::maximal::Initializer;
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

fn bench_direction(c: &mut Criterion) {
    let t = rmat(RmatParams::er(12), 8);

    for init in [Initializer::None, Initializer::DynamicMindegree] {
        for diropt in [false, true] {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(4, 12));
            let opts = McmOptions { init, direction_optimizing: diropt, ..Default::default() };
            let r = maximum_matching(&mut ctx, &t, &opts);
            eprintln!(
                "[ablation_direction] init={:<18} bottom_up={}: SpMV {:.3} ms \
                 ({} of {} iterations pulled), |M| {}",
                init.name(),
                diropt,
                ctx.timers.seconds(Kernel::SpMV) * 1e3,
                r.stats.bottom_up_iterations,
                r.stats.iterations,
                r.matching.cardinality()
            );
        }
    }

    let mut group = c.benchmark_group("direction");
    group.sample_size(10);
    for diropt in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("no_init", if diropt { "pull" } else { "push" }),
            &t,
            |b, t| {
                b.iter(|| {
                    let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
                    let opts = McmOptions {
                        init: Initializer::None,
                        direction_optimizing: diropt,
                        ..Default::default()
                    };
                    black_box(maximum_matching(&mut ctx, t, &opts))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_direction);
criterion_main!(benches);
