//! Serial baselines: Hopcroft–Karp vs Pothen–Fan vs serial MS-BFS, and the
//! maximal initializers (greedy, Karp–Sipser) — §II-A's algorithmic menu.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_core::serial::{
    greedy_serial, hopcroft_karp, karp_sipser_serial, ms_bfs_graft, ms_bfs_serial, pothen_fan,
    push_relabel,
};
use mcm_gen::mesh::road_grid;
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

fn bench_serial(c: &mut Criterion) {
    let inputs = vec![
        ("g500_s13", rmat(RmatParams::g500(13), 9).to_csc()),
        ("road_96", road_grid(96, 96, 0.1, 9).to_csc()),
    ];
    let mut group = c.benchmark_group("serial_mcm");
    group.sample_size(10);
    for (name, a) in &inputs {
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", name), a, |b, a| {
            b.iter(|| black_box(hopcroft_karp(a, None)));
        });
        group.bench_with_input(BenchmarkId::new("pothen_fan", name), a, |b, a| {
            b.iter(|| black_box(pothen_fan(a, None)));
        });
        group.bench_with_input(BenchmarkId::new("ms_bfs", name), a, |b, a| {
            b.iter(|| black_box(ms_bfs_serial(a, None)));
        });
        group.bench_with_input(BenchmarkId::new("ms_bfs_graft", name), a, |b, a| {
            b.iter(|| black_box(ms_bfs_graft(a, None)));
        });
        group.bench_with_input(BenchmarkId::new("push_relabel", name), a, |b, a| {
            b.iter(|| black_box(push_relabel(a)));
        });
        // Warm-started variants: the §VI-A claim that initialization pays.
        group.bench_with_input(BenchmarkId::new("hk_warm_greedy", name), a, |b, a| {
            b.iter(|| {
                let init = greedy_serial(a);
                black_box(hopcroft_karp(a, Some(init)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("serial_maximal");
    for (name, a) in &inputs {
        group.bench_with_input(BenchmarkId::new("greedy", name), a, |b, a| {
            b.iter(|| black_box(greedy_serial(a)));
        });
        group.bench_with_input(BenchmarkId::new("karp_sipser", name), a, |b, a| {
            b.iter(|| black_box(karp_sipser_serial(a, 3)));
        });
    }
    group.finish();

    // The weighted companion (MC64-style auction) on synthetic magnitudes.
    let mut group = c.benchmark_group("weighted_auction");
    group.sample_size(10);
    for (name, a) in &inputs {
        use mcm_sparse::permute::SplitMix64;
        let mut rng = SplitMix64::new(4);
        let entries: Vec<(mcm_sparse::Vidx, mcm_sparse::Vidx, f64)> =
            a.iter().map(|(i, j)| (i, j, 1.0 + rng.below(1000) as f64)).collect();
        let w = mcm_sparse::WCsc::from_weighted_triples(a.nrows(), a.ncols(), entries);
        let eps = 0.5 / (a.nrows().max(a.ncols()) as f64 + 1.0);
        group.bench_with_input(BenchmarkId::new("auction_mwm", name), &w, |b, w| {
            b.iter(|| black_box(mcm_core::weighted::auction_mwm(w, eps)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial);
criterion_main!(benches);
