//! End-to-end wall-clock benchmarks: MCM-DIST on representative stand-ins
//! across grid sizes, against the serial oracles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::{maximum_matching, McmOptions};
use mcm_gen::mesh::triangulated_grid;
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

fn bench_mcm_dist(c: &mut Criterion) {
    let inputs = vec![
        ("g500_s12", rmat(RmatParams::g500(12), 3)),
        ("mesh_64", triangulated_grid(64, 64, 3)),
    ];
    let mut group = c.benchmark_group("mcm_dist");
    group.sample_size(10);
    for (name, t) in &inputs {
        for &dim in &[1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("p{}", dim * dim)),
                t,
                |b, t| {
                    b.iter(|| {
                        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
                        black_box(maximum_matching(&mut ctx, t, &McmOptions::default()))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mcm_dist);
criterion_main!(benches);
