//! End-to-end wall-clock of the execution backends: full MCM-DIST on the
//! real thread-per-rank `EngineComm` mesh and on the fused shared-memory
//! `SharedComm` arena across a core sweep (1/2/4/8), against the serial
//! cost-model simulator and serial Hopcroft–Karp on the same graph. The
//! modeled-time story lives in the figure binaries; this bench answers
//! the sharded-serving question — what a warm recompute actually costs
//! on real cores (`mcmd --backend engine|shared`, DESIGN.md §12, §14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_bsp::{DistCtx, MachineConfig};
use mcm_core::mcm::maximum_matching_shared;
use mcm_core::serial::hopcroft_karp;
use mcm_core::{maximum_matching, maximum_matching_engine, McmOptions};
use mcm_gen::rmat::{rmat, RmatParams};
use std::hint::black_box;

/// Total-core sweep → (ranks, threads-per-rank): square rank counts only,
/// threads soak up the non-square factors.
const CORES: [(usize, usize, usize); 4] = [(1, 1, 1), (2, 1, 2), (4, 4, 1), (8, 4, 2)];

fn bench_engine_e2e(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(12), 7);
    let opts = McmOptions::default();
    let mut group = c.benchmark_group("engine_e2e");
    group.throughput(Throughput::Elements(t.len() as u64));

    let csc = t.to_csc();
    group.bench_function(BenchmarkId::new("serial_hk", "g500_s12"), |b| {
        b.iter(|| black_box(hopcroft_karp(&csc, None).cardinality()))
    });

    group.bench_function(BenchmarkId::new("simulator", "g500_s12"), |b| {
        b.iter(|| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
            black_box(maximum_matching(&mut ctx, &t, &opts).matching.cardinality())
        })
    });

    for &(cores, p, threads) in &CORES {
        group.bench_function(BenchmarkId::new("engine", cores), |b| {
            b.iter(|| {
                black_box(maximum_matching_engine(p, threads, &t, &opts).matching.cardinality())
            })
        });
    }

    // SharedComm executes fused in one address space; the relabeling
    // permutation only hurts locality there, so the shared rows run the
    // same configuration `mcmd --backend shared` uses for recomputes.
    let shared_opts = McmOptions { permute_seed: None, ..McmOptions::default() };
    for &(cores, p, threads) in &CORES {
        group.bench_function(BenchmarkId::new("shared", cores), |b| {
            b.iter(|| {
                black_box(
                    maximum_matching_shared(p, threads, &t, &shared_opts).matching.cardinality(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_e2e);
criterion_main!(benches);
