//! Dynamic-engine benchmark: incremental repair vs full recompute as a
//! function of the dirty fraction (DESIGN.md §11, `BENCH_dynamic.json`).
//!
//! One churn batch dirties a chosen fraction of the `n1 + n2` vertices:
//! matched-edge deletions (each frees both endpoints) stitched back
//! together by inserts among the freed vertices. Three arms per fraction:
//!
//! * `incremental` — `DynMatching::apply_batch` with the fallback
//!   disabled (pure single-source path repair);
//! * `warm_msbfs`  — the same batch with `fallback_threshold = 0`, so
//!   every batch runs the warm-started MS-BFS driver;
//! * `recompute`   — what a static pipeline would do: apply the updates
//!   to the graph and solve from scratch (Hopcroft–Karp).
//!
//! Throughput is annotated in updates per iteration, so `ns_median /
//! throughput_per_iter` is the cost per update. The expected shape (and
//! what EXPERIMENTS.md checks): incremental wins clearly below ~10%
//! dirty, and the gap closes as the batch approaches a full rebuild —
//! the dynamic analogue of the paper's `k < 2p²` crossover.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use mcm_core::serial::hopcroft_karp;
use mcm_dyn::{DynMatching, DynOptions, Update};
use mcm_gen::er::gnm_bipartite;
use mcm_sparse::{Vidx, NIL};
use std::hint::black_box;

/// Instance scale: 2000 + 2000 vertices, average degree 8.
const N: usize = 2000;
const EDGES: usize = 16_000;
const SEED: u64 = 0xD11A_BE7C;

/// The dirty-fraction axis (of `n1 + n2`); 2% and 8% are below the
/// acceptance bar, 25% is past where recompute should be competitive.
const DIRTY_FRACS: [(f64, &str); 3] = [(0.02, "2pct"), (0.08, "8pct"), (0.25, "25pct")];

fn solved_base(threshold: f64) -> DynMatching {
    let t = gnm_bipartite(N, N, EDGES, SEED);
    DynMatching::from_triples(
        &t,
        DynOptions { fallback_threshold: threshold, ..DynOptions::default() },
    )
}

/// A churn batch dirtying ~`frac · (n1 + n2)` vertices: `k` matched-edge
/// deletions spread across the matching, then `k` inserts pairing each
/// freed row with the next deletion's freed column (so repairs stay in
/// the dirty region — no interior inserts, which have their own arm in
/// the oracle tests).
fn churn_batch(dm: &DynMatching, frac: f64) -> Vec<Update> {
    let matched: Vec<(Vidx, Vidx)> = (0..dm.graph().n1() as Vidx)
        .filter_map(|r| {
            let c = dm.matching().mate_r.get(r);
            (c != NIL).then_some((r, c))
        })
        .collect();
    let k = ((frac * (2 * N) as f64) / 2.0).round().max(1.0) as usize;
    let stride = (matched.len() / k).max(1);
    let picked: Vec<(Vidx, Vidx)> = matched.iter().copied().step_by(stride).take(k).collect();
    let mut ops: Vec<Update> = picked.iter().map(|&(r, c)| Update::Delete(r, c)).collect();
    for i in 0..picked.len() {
        // Leave every fourth freed pair unstitched: those vertices stay
        // dirty and force genuine augmenting-path searches instead of
        // resolving as immediate matches.
        if i % 4 == 3 {
            continue;
        }
        let (r, _) = picked[i];
        let (_, c) = picked[(i + 1) % picked.len()];
        ops.push(Update::Insert(r, c));
    }
    ops
}

fn bench_dynamic(c: &mut Criterion) {
    let base = solved_base(1e9);
    let base_always_fallback = solved_base(0.0);
    eprintln!(
        "[dynamic] base instance: {}x{} nnz {} matching {}",
        N,
        N,
        base.graph().nnz(),
        base.cardinality()
    );

    let mut group = c.benchmark_group("dynamic");
    for (frac, tag) in DIRTY_FRACS {
        let ops = churn_batch(&base, frac);
        group.throughput(Throughput::Elements(ops.len() as u64));

        group.bench_with_input(BenchmarkId::new("incremental", tag), &ops, |b, ops| {
            b.iter_batched(
                || base.clone(),
                |mut dm| black_box(dm.apply_batch(ops).cardinality),
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("warm_msbfs", tag), &ops, |b, ops| {
            b.iter_batched(
                || base_always_fallback.clone(),
                |mut dm| black_box(dm.apply_batch(ops).cardinality),
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("recompute", tag), &ops, |b, ops| {
            b.iter_batched(
                || base.graph().clone(),
                |mut g| {
                    for &op in ops {
                        match op {
                            Update::Insert(r, c) => {
                                g.insert(r, c);
                            }
                            Update::Delete(r, c) => {
                                g.delete(r, c);
                            }
                        }
                    }
                    black_box(hopcroft_karp(&g.to_csc(), None).cardinality())
                },
                BatchSize::LargeInput,
            );
        });

        // Sanity + stderr speedup line: both strategies agree, and the
        // wall-clock ratio is visible without parsing the JSON.
        let mut inc = base.clone();
        let t0 = std::time::Instant::now();
        let rep = inc.apply_batch(&ops);
        let t_inc = t0.elapsed();
        let mut g = base.graph().clone();
        let t0 = std::time::Instant::now();
        for &op in &ops {
            match op {
                Update::Insert(r, c) => {
                    g.insert(r, c);
                }
                Update::Delete(r, c) => {
                    g.delete(r, c);
                }
            }
        }
        let full = hopcroft_karp(&g.to_csc(), None).cardinality();
        let t_full = t0.elapsed();
        assert_eq!(rep.cardinality, full, "incremental diverged from recompute at {tag}");
        eprintln!(
            "[dynamic] {tag}: {} updates, dirty {} → incremental {:?} vs recompute {:?} ({:.1}x)",
            ops.len(),
            rep.dirty,
            t_inc,
            t_full,
            t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-9),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
