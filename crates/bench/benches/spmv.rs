//! Criterion benches for the SpMSpV kernels: serial DCSC kernel across
//! frontier densities, and the distributed expand–multiply–fold product
//! across grid sizes (wall-clock; the modeled times are what the figure
//! binaries report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_sparse::{Dcsc, SpVec, Vidx};
use std::hint::black_box;

fn frontier(n: usize, every: usize) -> SpVec<(Vidx, Vidx)> {
    SpVec::from_sorted_pairs(
        n,
        (0..n).step_by(every).map(|j| (j as Vidx, (j as Vidx, j as Vidx))).collect(),
    )
}

fn bench_serial_spmspv(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(14), 7);
    let a = Dcsc::from_triples(&t);
    let n = a.ncols();
    let mut group = c.benchmark_group("spmspv_serial");
    for &every in &[1usize, 16, 256] {
        let x = frontier(n, every);
        group.throughput(Throughput::Elements(x.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("g500_s14", x.nnz()), &x, |b, x| {
            b.iter(|| {
                black_box(mcm_sparse::spmspv(
                    &a,
                    x,
                    |j, &(_, r)| (j, r),
                    |acc: &(Vidx, Vidx), inc| inc.0 < acc.0,
                ))
            });
        });
    }
    group.finish();
}

fn bench_distributed_spmspv(c: &mut Criterion) {
    let t = rmat(RmatParams::g500(14), 7);
    let n = t.ncols();
    let x = frontier(n, 4);
    let mut group = c.benchmark_group("spmspv_distributed");
    for &dim in &[1usize, 4, 8, 16] {
        let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        group.bench_with_input(BenchmarkId::new("grid", dim * dim), &x, |b, x| {
            b.iter(|| {
                black_box(a.spmspv(
                    &mut ctx,
                    Kernel::SpMV,
                    x,
                    |j, &(_, r)| (j, r),
                    |acc: &(Vidx, Vidx), inc| inc.0 < acc.0,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial_spmspv, bench_distributed_spmspv);
criterion_main!(benches);
