//! Ablation: level-parallel vs path-parallel augmentation and the `k < 2p²`
//! switch (§IV-B).
//!
//! Synthetic sets of `k` disjoint augmenting paths are flipped by both
//! kernels; wall time is measured by criterion, and the *modeled*
//! distributed costs — where the analytic crossover lives — are printed to
//! stderr with the threshold prediction so the switch criterion can be
//! eyeballed against the model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcm_bench::synthetic_paths;
use mcm_bsp::{DistCtx, Kernel, MachineConfig};
use mcm_core::augment::{augment, AugmentMode};
use std::hint::black_box;

fn modeled_cost(dim: usize, k: usize, half_len: usize, mode: AugmentMode) -> f64 {
    let (path_c, parent_r, mut m) = synthetic_paths(k, half_len);
    let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 12));
    let _ = augment(&mut ctx, mode, &path_c, &parent_r, &mut m);
    ctx.timers.seconds(Kernel::Augment)
}

fn bench_augment(c: &mut Criterion) {
    // Modeled crossover sweep at p = 64 (threshold 2p² = 8192 paths).
    let dim = 8;
    let p = dim * dim;
    eprintln!("[ablation_augment] p = {p}, analytic switch at k = 2p^2 = {}", 2 * p * p);
    for k in [64usize, 512, 4096, 8192, 16384, 32768] {
        let lvl = modeled_cost(dim, k, 4, AugmentMode::LevelParallel);
        let pth = modeled_cost(dim, k, 4, AugmentMode::PathParallel);
        let auto = if k < 2 * p * p { "path" } else { "level" };
        let winner = if pth < lvl { "path" } else { "level" };
        eprintln!(
            "[ablation_augment] k={k:>6}: level {:.3} ms, path {:.3} ms → winner {winner} (auto picks {auto})",
            lvl * 1e3,
            pth * 1e3
        );
    }

    let mut group = c.benchmark_group("augment");
    for &k in &[256usize, 4096] {
        for (name, mode) in
            [("level", AugmentMode::LevelParallel), ("path", AugmentMode::PathParallel)]
        {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter_batched(
                    || synthetic_paths(k, 4),
                    |(path_c, parent_r, mut m)| {
                        let mut ctx = DistCtx::new(MachineConfig::hybrid(8, 1));
                        black_box(augment(&mut ctx, mode, &path_c, &parent_r, &mut m))
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_augment);
criterion_main!(benches);
