//! Weighted auction sweep (DESIGN.md §17): the parallel ε-scaled auction
//! vs a fixed fine ε on weight-perturbed portfolio shapes — the scaling
//! headroom the weighted path exists for — plus thread scaling and the
//! incremental engine's batch repair vs recompute-from-scratch
//! (`MCM_BENCH_JSON=BENCH_mwm.json` records the numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcm_core::auction::AuctionOptions;
use mcm_core::weighted::auction_mwm_par;
use mcm_dyn::{WDynMatching, WDynOptions, WUpdate};
use mcm_gen::hard::{crown, star};
use mcm_gen::rmat::{rmat, RmatParams};
use mcm_gen::{assign_weights, weighted_update_trace, WTraceOp, WTraceParams};
use mcm_sparse::WCsc;
use std::hint::black_box;

fn weighted(t: &mcm_sparse::Triples, seed: u64) -> WCsc {
    WCsc::from_weighted_triples(t.nrows(), t.ncols(), assign_weights(t.entries(), seed, 50))
}

fn bench_weighted(c: &mut Criterion) {
    // Shapes spanning the auction's regimes: skewed RMAT (cheap), the
    // crown (every alternative equally good once weights are close), and
    // the crowded star (the Θ(1/ε) price-war regime).
    let inputs = vec![
        ("g500_s10", weighted(&rmat(RmatParams::g500(10), 9), 0xA1)),
        ("crown_128", weighted(&crown(128), 0xA2)),
        ("star_8x512", weighted(&star(8, 512), 0xA3)),
    ];

    // Scaled ε (coarse-to-fine with the regret cap) vs a fixed fine ε:
    // both land on the same exact optimum for these integer weights, so
    // the delta is pure convergence speed.
    let mut group = c.benchmark_group("mwm_eps");
    group.sample_size(10);
    for (name, a) in &inputs {
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("scaled", name), a, |b, a| {
            b.iter(|| black_box(auction_mwm_par(a, &AuctionOptions::default())));
        });
        let fine = 1.0 / (2.0 * (a.nrows() as f64 + 1.0));
        let fixed =
            AuctionOptions { eps_start: fine, eps_final: Some(fine), ..AuctionOptions::default() };
        group.bench_with_input(BenchmarkId::new("fixed_fine", name), a, |b, a| {
            b.iter(|| black_box(auction_mwm_par(a, &fixed)));
        });
    }
    group.finish();

    // Thread scaling of the parallel bid phase on the largest instance.
    let mut group = c.benchmark_group("mwm_threads");
    group.sample_size(10);
    let (name, a) = &inputs[0];
    for threads in [1usize, 2, 4] {
        let opts = AuctionOptions { threads, ..AuctionOptions::default() };
        group.bench_with_input(BenchmarkId::new(format!("p{threads}"), name), a, |b, a| {
            b.iter(|| black_box(auction_mwm_par(a, &opts)));
        });
    }
    group.finish();

    // Incremental weighted repair vs cold re-solve per checkpoint batch.
    let mut group = c.benchmark_group("mwm_dynamic");
    group.sample_size(10);
    // Serving-regime batches: a few updates per checkpoint on a graph two
    // orders larger, where repairing the handful of dirty bidders beats
    // re-auctioning everyone.
    let mut p =
        WTraceParams { max_weight: 50, reweight_frac: 0.3, ..WTraceParams::churn(96, 96, 9) };
    p.base.ops_per_batch = 6;
    p.base.batches = 24;
    let ops = weighted_update_trace(&p);
    let batches: Vec<Vec<WUpdate>> = {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        for op in &ops {
            match *op {
                WTraceOp::Insert(r, c, w) => cur.push(WUpdate::Insert(r, c, w)),
                WTraceOp::Delete(r, c) => cur.push(WUpdate::Delete(r, c)),
                WTraceOp::Query => out.push(std::mem::take(&mut cur)),
            }
        }
        out
    };
    group.bench_function("incremental/churn_96", |b| {
        b.iter(|| {
            let mut wm = WDynMatching::new(p.base.n1, p.base.n2, WDynOptions::default());
            for batch in &batches {
                wm.apply_batch(batch);
            }
            black_box(wm.weight())
        });
    });
    group.bench_function("cold_per_batch/churn_96", |b| {
        b.iter(|| {
            // The alternative the repair path replaces: rebuild and
            // re-solve from scratch at every checkpoint.
            let mut live: Vec<(mcm_sparse::Vidx, mcm_sparse::Vidx, f64)> = Vec::new();
            let mut w = 0.0;
            for batch in &batches {
                for u in batch {
                    match *u {
                        WUpdate::Insert(r, c, wt) => {
                            live.retain(|&(lr, lc, _)| (lr, lc) != (r, c));
                            live.push((r, c, wt));
                        }
                        WUpdate::Delete(r, c) => live.retain(|&(lr, lc, _)| (lr, lc) != (r, c)),
                    }
                }
                let a = WCsc::from_weighted_triples(p.base.n1, p.base.n2, live.clone());
                w = auction_mwm_par(&a, &AuctionOptions::default()).weight;
            }
            black_box(w)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_weighted);
criterion_main!(benches);
