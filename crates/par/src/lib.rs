//! # mcm-par — minimal deterministic data parallelism
//!
//! A tiny replacement for the slice of rayon this workspace actually uses:
//! parallel maps over index ranges and mutable slices, built on
//! `std::thread::scope` so it needs no external crates, no global pool, and
//! no `'static` bounds. Results always come back in input order, so callers
//! stay deterministic regardless of the worker count.
//!
//! The intended altitude is coarse tasks (one DCSC block, one generator
//! chunk): spawning an OS thread costs microseconds, so callers should hand
//! over work that dwarfs that, and fall back to the inline path (`threads <=
//! 1`) for tiny inputs.

/// Number of hardware threads available to this process (≥ 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every index in `0..n` on up to `threads` OS threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so unevenly sized
/// tasks balance across workers. `threads <= 1` or `n <= 1` runs inline
/// with no thread spawn.
///
/// # Example
///
/// ```
/// let squares = mcm_par::par_map_range(8, mcm_par::max_threads(), |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<(usize, R)> = Vec::with_capacity(n);
        for h in handles {
            all.extend(h.join().expect("mcm-par worker panicked"));
        }
        all.sort_unstable_by_key(|&(i, _)| i);
        all.into_iter().map(|(_, r)| r).collect()
    })
}

/// Runs `f(index, &mut item)` for every item of `items` in parallel on up to
/// `threads` OS threads, returning the per-item results in item order.
///
/// Items are split into contiguous runs, one per worker, so each item is
/// touched by exactly one thread (this is what lets callers keep one
/// *mutable* workspace per item). Inline when `threads <= 1` or there are
/// fewer than two items.
pub fn par_for_each_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let run = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(run)
            .enumerate()
            .map(|(w, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk.iter_mut().enumerate().map(|(k, t)| f(w * run + k, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("mcm-par worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_preserves_order() {
        for threads in [1, 2, 7] {
            let got = par_map_range(100, threads, |i| 3 * i);
            assert_eq!(got, (0..100).map(|i| 3 * i).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn map_range_handles_edges() {
        assert!(par_map_range(0, 4, |i| i).is_empty());
        assert_eq!(par_map_range(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 3, 16] {
            let mut items: Vec<u32> = vec![0; 37];
            let idx = par_for_each_mut(&mut items, threads, |i, slot| {
                *slot += 1;
                i
            });
            assert!(items.iter().all(|&v| v == 1), "threads {threads}");
            assert_eq!(idx, (0..37).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Dynamic scheduling: a single huge task must not serialize the rest.
        let got = par_map_range(16, 4, |i| {
            let spin = if i == 0 { 200_000 } else { 10 };
            (0..spin).fold(i as u64, |a, b| a.wrapping_add(b))
        });
        assert_eq!(got.len(), 16);
    }
}
