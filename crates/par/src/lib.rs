//! # mcm-par — minimal deterministic data parallelism
//!
//! A tiny replacement for the slice of rayon this workspace actually uses:
//! parallel maps over index ranges and mutable slices, built on
//! `std::thread::scope` so it needs no external crates, no global pool, and
//! no `'static` bounds. Results always come back in input order, so callers
//! stay deterministic regardless of the worker count.
//!
//! The intended altitude is coarse tasks (one DCSC block, one generator
//! chunk): spawning an OS thread costs microseconds, so callers should hand
//! over work that dwarfs that, and fall back to the inline path (`threads <=
//! 1`) for tiny inputs.

/// Number of hardware threads available to this process (≥ 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every index in `0..n` on up to `threads` OS threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so unevenly sized
/// tasks balance across workers. `threads <= 1` or `n <= 1` runs inline
/// with no thread spawn.
///
/// # Example
///
/// ```
/// let squares = mcm_par::par_map_range(8, mcm_par::max_threads(), |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<(usize, R)> = Vec::with_capacity(n);
        for h in handles {
            all.extend(h.join().expect("mcm-par worker panicked"));
        }
        all.sort_unstable_by_key(|&(i, _)| i);
        all.into_iter().map(|(_, r)| r).collect()
    })
}

/// Runs `f(index, &mut item)` for every item of `items` in parallel on up to
/// `threads` OS threads, returning the per-item results in item order.
///
/// Items are split into contiguous runs, one per worker, so each item is
/// touched by exactly one thread (this is what lets callers keep one
/// *mutable* workspace per item). Inline when `threads <= 1` or there are
/// fewer than two items.
pub fn par_for_each_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let run = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(run)
            .enumerate()
            .map(|(w, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk.iter_mut().enumerate().map(|(k, t)| f(w * run + k, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("mcm-par worker panicked"));
        }
        out
    })
}

/// A type-erased borrowed task published to the pool workers.
///
/// The pointee lives on the stack frame of [`WorkerPool::map_range`], which
/// never returns (or unwinds) before every worker has finished the epoch —
/// that wait is what makes smuggling the non-`'static` borrow across
/// threads sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared `&` access from many threads is
// fine) and outlives every access — `map_range` blocks until `pending == 0`
// before its frame dies, on the normal path and on unwind (`WaitGuard`).
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per published job; workers run each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not finished the current epoch yet.
    pending: usize,
    /// Set when a worker's task panicked (re-raised by the caller).
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: std::sync::Mutex<PoolState>,
    /// Workers wait here for the next epoch (or shutdown).
    work_cv: std::sync::Condvar,
    /// The caller waits here for `pending` to reach zero.
    done_cv: std::sync::Condvar,
}

/// A persistent worker pool: spawn once, run many parallel maps.
///
/// [`par_map_range`] spawns and joins OS threads on every call, which is
/// fine for one-shot fan-outs but dominates the runtime of phase loops that
/// fan out thousands of times over small batches (the auction engine's bid
/// loop). `WorkerPool::map_range` has the same contract as `par_map_range`
/// — results in index order, dynamic scheduling, identical output for any
/// thread count — but reuses `threads - 1` parked workers (the caller is
/// the last worker), so a fan-out costs two condvar round-trips instead of
/// thread spawns.
///
/// # Example
///
/// ```
/// let pool = mcm_par::WorkerPool::new(4);
/// for _ in 0..3 {
///     let squares = pool.map_range(8, |i| i * i);
///     assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// }
/// ```
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Blocks until every worker has finished the current epoch. Runs on the
/// normal path *and* on unwind, so a panicking task can never leave a
/// worker holding a dangling `Job` borrow into a dead stack frame.
struct WaitGuard<'a>(&'a PoolShared);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap();
        while st.pending > 0 {
            st = self.0.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }
}

impl WorkerPool {
    /// A pool delivering `threads` total workers: `threads - 1` spawned
    /// OS threads plus the calling thread, mirroring `par_map_range`'s
    /// accounting.
    pub fn new(threads: usize) -> Self {
        let shared = std::sync::Arc::new(PoolShared {
            state: std::sync::Mutex::new(PoolState {
                epoch: 0,
                job: None,
                pending: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: std::sync::Condvar::new(),
            done_cv: std::sync::Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared))
            })
            .collect();
        Self { shared, handles }
    }

    fn worker(shared: &PoolShared) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                while st.epoch == seen && !st.shutdown {
                    st = shared.work_cv.wait(st).unwrap();
                }
                if st.shutdown {
                    return;
                }
                seen = st.epoch;
                st.job.expect("epoch bumped without a job")
            };
            // SAFETY: the publisher waits (WaitGuard) for this worker's
            // `pending` decrement before the pointee's frame can die.
            let f = unsafe { &*job.0 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let mut st = shared.state.lock().unwrap();
            if result.is_err() {
                st.panicked = true;
            }
            st.pending -= 1;
            if st.pending == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Applies `f` to every index in `0..n` across the pool and returns the
    /// results in index order — the persistent-pool counterpart of
    /// [`par_map_range`], with the same dynamic scheduling and the same
    /// output for every pool size. Inline when the pool has no spawned
    /// workers or `n <= 1`.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.handles.is_empty() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let results: std::sync::Mutex<Vec<(usize, R)>> =
            std::sync::Mutex::new(Vec::with_capacity(n));
        let task = || {
            let mut got: Vec<(usize, R)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                got.push((i, f(i)));
            }
            results.lock().unwrap().extend(got);
        };
        let task_ref: &(dyn Fn() + Sync) = &task;
        // SAFETY: erasing the borrow's lifetime; WaitGuard below keeps this
        // frame alive until every worker is done with the pointer.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync)>(task_ref)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.pending = self.handles.len();
            st.panicked = false;
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        let guard = WaitGuard(&self.shared);
        task(); // the caller is the last worker
        drop(guard); // blocks until the spawned workers finish too
        if std::mem::replace(&mut self.shared.state.lock().unwrap().panicked, false) {
            panic!("mcm-par worker panicked");
        }
        let mut all = results.into_inner().unwrap();
        all.sort_unstable_by_key(|&(i, _)| i);
        all.into_iter().map(|(_, r)| r).collect()
    }

    /// Total workers this pool delivers (spawned threads + the caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join().expect("mcm-par pool worker panicked during shutdown");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_preserves_order() {
        for threads in [1, 2, 7] {
            let got = par_map_range(100, threads, |i| 3 * i);
            assert_eq!(got, (0..100).map(|i| 3 * i).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn map_range_handles_edges() {
        assert!(par_map_range(0, 4, |i| i).is_empty());
        assert_eq!(par_map_range(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1, 3, 16] {
            let mut items: Vec<u32> = vec![0; 37];
            let idx = par_for_each_mut(&mut items, threads, |i, slot| {
                *slot += 1;
                i
            });
            assert!(items.iter().all(|&v| v == 1), "threads {threads}");
            assert_eq!(idx, (0..37).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn pool_matches_par_map_range_for_any_size() {
        for threads in [1, 2, 4, 9] {
            let pool = WorkerPool::new(threads);
            for n in [0, 1, 5, 100] {
                let got = pool.map_range(n, |i| 7 * i + 1);
                assert_eq!(got, (0..n).map(|i| 7 * i + 1).collect::<Vec<_>>(), "t{threads} n{n}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_epochs() {
        let pool = WorkerPool::new(4);
        for round in 0..200 {
            let got = pool.map_range(17, move |i| i + round);
            assert_eq!(got, (0..17).map(|i| i + round).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = WorkerPool::new(4);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_range(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(boom.is_err(), "panic must propagate to the caller");
        // The workers must still be alive and the state clean.
        let got = pool.map_range(8, |i| i * 2);
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn uneven_work_balances() {
        // Dynamic scheduling: a single huge task must not serialize the rest.
        let got = par_map_range(16, 4, |i| {
            let spin = if i == 0 { 200_000 } else { 10 };
            (0..spin).fold(i as u64, |a, b| a.wrapping_add(b))
        });
        assert_eq!(got.len(), 16);
    }
}
