//! [`SwapCell`]: a wait-free-read publication cell for `Arc<T>`.
//!
//! The daemon's readers used to grab the published snapshot by cloning
//! an `Arc` under a mutex. The critical section was two refcount bumps —
//! but under hundreds of reader threads the *lock itself* is the
//! contention point, and one descheduled lock holder convoys everyone.
//! This cell removes the lock from the read path entirely:
//!
//! * [`SwapCell::load`] is two atomic RMWs and an `Arc::clone` — no
//!   locks, no spinning, no allocation. Readers never wait on the writer
//!   or on each other.
//! * [`SwapCell::store`] (the single writer in `mcm-serve`, though any
//!   number of writers is safe) swaps the head pointer and reclaims old
//!   values once their registered readers have drained. Writers serialize
//!   on a mutex readers never touch.
//!
//! ## How reclamation works (external counting)
//!
//! The naive lock-free design — `AtomicPtr` + "load pointer, then bump
//! its refcount" — has a classic use-after-free window between the load
//! and the bump. The standard fix is to count readers *outside* the
//! object: the head word packs `{slot index, reader registrations}`, so
//! a reader's single `fetch_add` atomically both picks the current slot
//! and registers itself on it. When the writer swaps the head it learns
//! exactly how many readers ever registered on the outgoing slot; the
//! slot's value is dropped only after that many readers have bumped the
//! slot's `done` counter (which each does *after* cloning the `Arc`).
//! Nothing is freed while any reader is mid-`load`.
//!
//! 48 bits of registration count per published value and 16 bits of slot
//! index bound the design: a value would need 2^48 concurrent-era reads
//! before its counter could overflow, and the writer recycles among
//! [`SLOTS`] slots (it spins only in the pathological case where every
//! slot is still pinned by an in-flight reader).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const IDX_SHIFT: u32 = 48;
const COUNT_MASK: u64 = (1u64 << IDX_SHIFT) - 1;
/// Slots the writer cycles through; readers pin a slot only for the
/// nanoseconds a clone takes, so this never runs dry in practice.
const SLOTS: usize = 64;
/// `expected` sentinel: the slot is live (or free) — not yet retired.
const LIVE: u64 = u64::MAX;

struct Slot<T> {
    val: UnsafeCell<Option<Arc<T>>>,
    /// Readers that have finished cloning out of this slot.
    done: AtomicU64,
    /// Total readers that ever registered on this slot; written once at
    /// retirement ([`LIVE`] until then).
    expected: AtomicU64,
    free: AtomicBool,
}

/// Lock-free snapshot cell: wait-free `Arc` reads, mutex-serialized
/// writes, deferred reclamation via external reader counting.
pub struct SwapCell<T> {
    /// `{slot index : 16 | reader registrations on that slot : 48}`.
    head: AtomicU64,
    slots: Box<[Slot<T>]>,
    /// Retired slot indices awaiting reclamation. Writer-side only — the
    /// read path never touches this mutex.
    retired: Mutex<Vec<usize>>,
}

// SAFETY: the external-counting protocol (see module docs) guarantees a
// slot's value is only dropped/overwritten when no reader can reach it;
// readers only ever clone `Arc<T>`, so `T: Send + Sync` suffices.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell initially publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        let slots: Box<[Slot<T>]> = (0..SLOTS)
            .map(|i| Slot {
                val: UnsafeCell::new(if i == 0 { Some(value.clone()) } else { None }),
                done: AtomicU64::new(0),
                expected: AtomicU64::new(LIVE),
                free: AtomicBool::new(i != 0),
            })
            .collect();
        SwapCell { head: AtomicU64::new(0), slots, retired: Mutex::new(Vec::new()) }
    }

    /// The currently published value. Wait-free: two atomic RMWs and an
    /// `Arc::clone`, regardless of writer activity or reader count.
    pub fn load(&self) -> Arc<T> {
        // One fetch_add atomically picks the current slot AND registers
        // this reader on it: any subsequent store() observes our
        // registration in the count it swaps out, so the slot cannot be
        // reclaimed until our matching `done` bump below.
        let prev = self.head.fetch_add(1, Ordering::Acquire);
        let idx = (prev >> IDX_SHIFT) as usize;
        let slot = &self.slots[idx];
        // SAFETY: the registration above pins the slot (reclamation
        // requires done == expected, and expected includes us); the
        // Acquire read of head sees the store()'s value write.
        let arc = unsafe { (*slot.val.get()).as_ref().expect("published slot is live").clone() };
        slot.done.fetch_add(1, Ordering::Release);
        arc
    }

    /// Publishes `value`; the previous value is dropped once the readers
    /// registered on it have drained. Writers serialize on an internal
    /// mutex; readers are never blocked by a store.
    pub fn store(&self, value: Arc<T>) {
        let mut retired = self.retired.lock().unwrap();
        let idx = loop {
            self.reclaim(&mut retired);
            if let Some(i) = self.slots.iter().position(|s| s.free.load(Ordering::Relaxed)) {
                break i;
            }
            // Every slot pinned by an in-flight reader: yield and retry.
            std::thread::yield_now();
        };
        let slot = &self.slots[idx];
        slot.free.store(false, Ordering::Relaxed);
        slot.done.store(0, Ordering::Relaxed);
        slot.expected.store(LIVE, Ordering::Relaxed);
        // SAFETY: the slot was free — no reader can hold its index (all
        // registered readers drained before it was freed) and head does
        // not point at it, so this write is unobservable until the swap.
        unsafe { *slot.val.get() = Some(value) };
        let old = self.head.swap((idx as u64) << IDX_SHIFT, Ordering::AcqRel);
        let old_idx = (old >> IDX_SHIFT) as usize;
        // The swap closed registration on the old slot: exactly this many
        // readers ever saw it, and no more can.
        self.slots[old_idx].expected.store(old & COUNT_MASK, Ordering::Release);
        retired.push(old_idx);
        self.reclaim(&mut retired);
    }

    /// Drops retired values whose registered readers have all finished.
    fn reclaim(&self, retired: &mut Vec<usize>) {
        retired.retain(|&idx| {
            let slot = &self.slots[idx];
            let expected = slot.expected.load(Ordering::Acquire);
            if expected == LIVE || slot.done.load(Ordering::Acquire) != expected {
                return true; // still pinned
            }
            // SAFETY: every reader that ever registered has bumped
            // `done` (Release) after its clone; our Acquire loads order
            // those clones before this drop. No new reader can register:
            // head moved away at retirement.
            unsafe { *slot.val.get() = None };
            slot.done.store(0, Ordering::Relaxed);
            slot.free.store(true, Ordering::Release);
            false
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_what_was_stored() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn old_values_are_reclaimed_not_leaked() {
        let cell = SwapCell::new(Arc::new(String::from("a")));
        let weak_a = Arc::downgrade(&cell.load());
        cell.store(Arc::new(String::from("b"))); // retires a's slot
        cell.store(Arc::new(String::from("c"))); // reclaim pass drops a
        assert!(weak_a.upgrade().is_none(), "value a must be dropped once unpinned");
        assert_eq!(*cell.load(), "c");
    }

    #[test]
    fn slot_churn_far_beyond_capacity() {
        let cell = SwapCell::new(Arc::new(0usize));
        for i in 1..=10 * SLOTS {
            cell.store(Arc::new(i));
            assert_eq!(*cell.load(), i);
        }
    }

    #[test]
    fn held_guards_pin_their_value_across_many_stores() {
        let cell = SwapCell::new(Arc::new(0usize));
        let pinned = cell.load();
        for i in 1..=3 * SLOTS {
            cell.store(Arc::new(i));
        }
        assert_eq!(*pinned, 0, "a held Arc survives unbounded later publishes");
        assert_eq!(*cell.load(), 3 * SLOTS);
    }

    #[test]
    fn hammer_concurrent_readers_see_monotonic_sequence() {
        // One writer publishes 0..N in order; readers assert they never
        // observe the sequence going backwards and never touch freed
        // memory (the payload validates itself).
        const N: usize = 4000;
        struct Payload {
            seq: usize,
            check: usize,
        }
        let cell = Arc::new(SwapCell::new(Arc::new(Payload { seq: 0, check: !0 })));
        let stop = Arc::new(AtomicBool::new(false));
        let reads = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                let reads = reads.clone();
                std::thread::spawn(move || {
                    let mut last = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let p = cell.load();
                        assert_eq!(p.seq ^ p.check, !0, "torn or freed payload");
                        assert!(p.seq >= last, "sequence went backwards: {} < {last}", p.seq);
                        last = p.seq;
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for i in 1..=N {
            cell.store(Arc::new(Payload { seq: i, check: i ^ !0 }));
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(cell.load().seq, N);
        assert!(reads.load(Ordering::Relaxed) > 0, "readers must have run");
    }
}
