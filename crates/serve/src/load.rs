//! Load harness: closed- and open-loop generators driving N concurrent
//! loopback connections against a running daemon.
//!
//! * **Closed loop** — each connection sends one request, waits for its
//!   response, then sends the next: measures per-request service latency
//!   at whatever rate the daemon sustains (the classic saturation
//!   number).
//! * **Open loop** — each connection sends on a fixed schedule
//!   regardless of whether earlier responses have arrived, and latency
//!   is measured from the *scheduled* send time: the
//!   coordinated-omission-resistant view a real client population sees.
//!   Responses are matched FIFO per connection (the daemon answers
//!   pipelined requests in order).
//!
//! Every response is validated against the shape its verb promises
//! (`ok`/`busy` for updates, `matching <n>` for query, …); anything else
//! counts as corrupted. The report carries exact client-side
//! percentiles; `serve_load` cross-checks counts and p50/p99 against the
//! daemon's own `mcmd_request_seconds` histograms.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Send-pacing discipline (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    Closed,
    Open,
}

impl LoadMode {
    pub fn name(self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }
}

/// One load run's shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    pub addr: SocketAddr,
    pub connections: usize,
    pub duration: Duration,
    pub mode: LoadMode,
    /// Open loop only: requests per second *per connection*.
    pub rate_per_conn: f64,
    /// Row/column space updates are drawn from (must fit the daemon's).
    pub rows: usize,
    pub cols: usize,
    /// Issue a `query` every this many requests (0 = updates only).
    pub query_every: usize,
    /// Emit weighted inserts (`insert r c w`, integer weights 1..=50)
    /// for a daemon running the weighted engine.
    pub weighted: bool,
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            connections: 256,
            duration: Duration::from_secs(2),
            mode: LoadMode::Closed,
            rate_per_conn: 50.0,
            rows: 1024,
            cols: 1024,
            query_every: 8,
            weighted: false,
            seed: 0x5EED,
        }
    }
}

const VERBS: [&str; 3] = ["insert", "delete", "query"];

/// Per-verb client-side outcome of a run.
#[derive(Clone, Debug, Default)]
pub struct VerbReport {
    pub verb: &'static str,
    /// Responses received (ok + busy + error — each request got exactly
    /// one line back).
    pub count: u64,
    pub busy: u64,
    pub errors: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
}

/// The whole run's outcome.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    pub mode: &'static str,
    pub connections: usize,
    pub elapsed_secs: f64,
    /// Responses whose shape did not match their verb's contract.
    pub corrupted: u64,
    /// Requests sent but never answered before the drain grace expired.
    pub unanswered: u64,
    /// Accepted (non-busy) updates per second over the run.
    pub updates_per_sec: f64,
    pub verbs: Vec<VerbReport>,
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A (verb index, request line) drawn from the workload mix.
fn next_request(rng: &mut SplitMix64, i: u64, cfg: &LoadConfig) -> (usize, String) {
    if cfg.query_every > 0 && i % cfg.query_every as u64 == cfg.query_every as u64 - 1 {
        return (2, "query\n".to_string());
    }
    let r = rng.below(cfg.rows as u64);
    let c = rng.below(cfg.cols as u64);
    // 3:1 insert:delete keeps the graph growing while exercising both.
    if rng.below(4) < 3 {
        if cfg.weighted {
            let w = rng.below(50) + 1;
            (0, format!("insert {r} {c} {w}\n"))
        } else {
            (0, format!("insert {r} {c}\n"))
        }
    } else {
        (1, format!("delete {r} {c}\n"))
    }
}

/// ok / busy / error / corrupted classification per the verb's contract.
fn classify(verb_idx: usize, resp: &str) -> Result<Class, ()> {
    let resp = resp.trim_end();
    match verb_idx {
        0 | 1 => match resp {
            "ok" => Ok(Class::Ok),
            "busy" => Ok(Class::Busy),
            _ if resp.starts_with("error ") => Ok(Class::Error),
            _ => Err(()),
        },
        _ => {
            // `matching <n>` (cardinality daemon) or
            // `matching <n> weight <w>` (weighted daemon).
            let is_matching = resp.strip_prefix("matching ").is_some_and(|rest| {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                match toks.as_slice() {
                    [n] => n.parse::<u64>().is_ok(),
                    [n, "weight", w] => n.parse::<u64>().is_ok() && w.parse::<f64>().is_ok(),
                    _ => false,
                }
            });
            if is_matching {
                Ok(Class::Ok)
            } else if resp.starts_with("error ") {
                Ok(Class::Error)
            } else {
                Err(())
            }
        }
    }
}

enum Class {
    Ok,
    Busy,
    Error,
}

#[derive(Default)]
struct ConnOutcome {
    /// Latency samples in ns, one vec per verb in `VERBS` order.
    samples: [Vec<u64>; 3],
    busy: [u64; 3],
    errors: [u64; 3],
    ok_updates: u64,
    corrupted: u64,
    unanswered: u64,
}

/// Runs the configured load against a daemon already listening at
/// `cfg.addr`. Connections are real loopback TCP sockets, one OS thread
/// each.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let started = Instant::now();
    let outcomes: Vec<std::io::Result<ConnOutcome>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.connections);
        for conn_id in 0..cfg.connections {
            let cfg = cfg.clone();
            handles.push(s.spawn(move || match cfg.mode {
                LoadMode::Closed => closed_loop_conn(&cfg, conn_id as u64),
                LoadMode::Open => open_loop_conn(&cfg, conn_id as u64),
            }));
        }
        handles.into_iter().map(|h| h.join().expect("load connection panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut merged = ConnOutcome::default();
    for o in outcomes {
        let o = o?;
        for v in 0..VERBS.len() {
            merged.samples[v].extend_from_slice(&o.samples[v]);
            merged.busy[v] += o.busy[v];
            merged.errors[v] += o.errors[v];
        }
        merged.ok_updates += o.ok_updates;
        merged.corrupted += o.corrupted;
        merged.unanswered += o.unanswered;
    }

    let mut verbs = Vec::new();
    for (v, name) in VERBS.iter().enumerate() {
        let samples = &mut merged.samples[v];
        if samples.is_empty() {
            continue;
        }
        samples.sort_unstable();
        let pct = |q: f64| -> f64 {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1] as f64 / 1_000.0
        };
        verbs.push(VerbReport {
            verb: name,
            count: samples.len() as u64,
            busy: merged.busy[v],
            errors: merged.errors[v],
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
        });
    }
    Ok(LoadReport {
        mode: cfg.mode.name(),
        connections: cfg.connections,
        elapsed_secs: elapsed,
        corrupted: merged.corrupted,
        unanswered: merged.unanswered,
        updates_per_sec: merged.ok_updates as f64 / elapsed.max(1e-9),
        verbs,
    })
}

fn record(out: &mut ConnOutcome, verb_idx: usize, ns: u64, resp: &str) {
    match classify(verb_idx, resp) {
        Ok(class) => {
            out.samples[verb_idx].push(ns);
            match class {
                Class::Ok if verb_idx < 2 => out.ok_updates += 1,
                Class::Ok => {}
                Class::Busy => out.busy[verb_idx] += 1,
                Class::Error => out.errors[verb_idx] += 1,
            }
        }
        Err(()) => out.corrupted += 1,
    }
}

fn closed_loop_conn(cfg: &LoadConfig, conn_id: u64) -> std::io::Result<ConnOutcome> {
    let mut stream = TcpStream::connect(cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut rng = SplitMix64::new(cfg.seed ^ conn_id.wrapping_mul(0xA5A5A5A5));
    let mut out = ConnOutcome::default();
    let deadline = Instant::now() + cfg.duration;
    let mut i = 0u64;
    while Instant::now() < deadline {
        let (verb_idx, line) = next_request(&mut rng, i, cfg);
        i += 1;
        let t0 = Instant::now();
        stream.write_all(line.as_bytes())?;
        let mut resp = String::new();
        std::io::BufRead::read_line(&mut reader, &mut resp)?;
        if resp.is_empty() {
            out.unanswered += 1;
            break; // daemon closed on us
        }
        record(&mut out, verb_idx, t0.elapsed().as_nanos() as u64, &resp);
    }
    stream.write_all(b"quit\n").ok();
    Ok(out)
}

fn open_loop_conn(cfg: &LoadConfig, conn_id: u64) -> std::io::Result<ConnOutcome> {
    let mut stream = TcpStream::connect(cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    let mut rng = SplitMix64::new(cfg.seed ^ conn_id.wrapping_mul(0xC3C3C3C3));
    let mut out = ConnOutcome::default();
    let mut framer = crate::proto::LineFramer::new();
    // FIFO of (verb, scheduled send instant) awaiting responses; latency
    // is measured from the schedule, not the actual send — the
    // coordinated-omission-resistant convention.
    let mut pending: VecDeque<(usize, Instant)> = VecDeque::new();
    let interval = Duration::from_secs_f64(1.0 / cfg.rate_per_conn.max(0.001));
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let mut next_send = start;
    let mut buf = [0u8; 4096];
    let mut i = 0u64;
    while Instant::now() < deadline {
        let now = Instant::now();
        if now >= next_send {
            let (verb_idx, line) = next_request(&mut rng, i, cfg);
            i += 1;
            stream.write_all(line.as_bytes())?;
            pending.push_back((verb_idx, next_send));
            next_send += interval;
        }
        drain_available(&mut stream, &mut framer, &mut pending, &mut out, &mut buf)?;
        let wake = next_send.min(deadline);
        if let Some(sleep) = wake.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep.min(Duration::from_millis(1)));
        }
    }
    // Grace drain: collect stragglers for up to 5s, then count the rest
    // as unanswered (they would be the dropped-response signal).
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let grace = Instant::now() + Duration::from_secs(5);
    while !pending.is_empty() && Instant::now() < grace {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                for line in framer.push(&buf[..n]) {
                    pop_pending(&mut pending, &mut out, &line);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    out.unanswered += pending.len() as u64;
    stream.write_all(b"quit\n").ok();
    Ok(out)
}

fn drain_available(
    stream: &mut TcpStream,
    framer: &mut crate::proto::LineFramer,
    pending: &mut VecDeque<(usize, Instant)>,
    out: &mut ConnOutcome,
    buf: &mut [u8],
) -> std::io::Result<()> {
    loop {
        match stream.read(buf) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                for line in framer.push(&buf[..n]) {
                    pop_pending(pending, out, &line);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

fn pop_pending(pending: &mut VecDeque<(usize, Instant)>, out: &mut ConnOutcome, line: &str) {
    match pending.pop_front() {
        Some((verb_idx, scheduled)) => {
            let ns = scheduled.elapsed().as_nanos() as u64;
            record(out, verb_idx, ns, line);
        }
        // A response with no matching request would be corruption.
        None => out.corrupted += 1,
    }
}

/// Serializes a report as one JSON object (hand-rolled: the workspace is
/// std-only). `extra` lets the caller append cross-check fields.
pub fn report_to_json(r: &LoadReport, extra: &str) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"mode\": \"{}\",\n", r.mode));
    s.push_str(&format!("      \"connections\": {},\n", r.connections));
    s.push_str(&format!("      \"elapsed_secs\": {:.3},\n", r.elapsed_secs));
    s.push_str(&format!("      \"corrupted\": {},\n", r.corrupted));
    s.push_str(&format!("      \"unanswered\": {},\n", r.unanswered));
    s.push_str(&format!("      \"updates_per_sec\": {:.1},\n", r.updates_per_sec));
    s.push_str("      \"verbs\": [\n");
    for (i, v) in r.verbs.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"verb\": \"{}\", \"count\": {}, \"busy\": {}, \"errors\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}{}\n",
            v.verb,
            v.count,
            v.busy,
            v.errors,
            v.p50_us,
            v.p99_us,
            v.p999_us,
            if i + 1 < r.verbs.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]");
    if !extra.is_empty() {
        s.push_str(",\n");
        s.push_str(extra);
        s.push('\n');
    } else {
        s.push('\n');
    }
    s.push_str("    }");
    s
}
