//! The `mcmd` wire protocol: one command per line, shared by the stdin
//! loop and the socket daemon.
//!
//! Two spellings are accepted and can be mixed freely on one stream:
//!
//! * plain text — `insert 3 5`, `delete 3 5`, `query`, `state`, `sync`,
//!   `stats`, `metrics`, `snapshot out.mtx`, `quit`, `shutdown`; blank
//!   lines and `#` comments ignored;
//! * JSONL — `{"op": "insert", "u": 3, "v": 5}` and friends. The parser
//!   is deliberately a tokenizer, not a JSON library (the workspace has
//!   no serde and the grammar is a handful of fixed shapes): structural
//!   punctuation is stripped and `u`/`v`/`w`/`path` keys are honoured,
//!   so key order does not matter.
//!
//! `insert` optionally carries an edge weight — `insert 3 5 2.5` or
//! `{"op": "insert", "u": 3, "v": 5, "w": 2.5}` — for daemons running
//! the weighted engine (`mcmd --weighted`). A missing weight means 1.0
//! there, so unweighted clients interoperate unchanged; re-inserting a
//! live edge with a new weight re-weights it.
//!
//! Row/column indices are 0-based, matching the rest of the workspace
//! (`mcm-sparse` converts at the Matrix Market boundary only).
//!
//! [`LineFramer`] is the byte-to-line layer both paths read through: it
//! tolerates partial lines (a read boundary mid-line), pipelined bursts
//! (many lines per read), and `\r\n`, and its [`LineFramer::finish`]
//! reports an unterminated tail at EOF as a structured
//! [`FrameError::TruncatedTail`] instead of silently dropping (or worse,
//! executing) a half-received command.

use mcm_sparse::Vidx;

/// One parsed `mcmd` command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Stage edge (row, col) for insertion, optionally weighted.
    /// `None` means "not spelled out" — 1.0 to a weighted engine.
    Insert(Vidx, Vidx, Option<f64>),
    /// Stage edge (row, col) for deletion.
    Delete(Vidx, Vidx),
    /// Report the matching cardinality (socket mode: from the published
    /// snapshot, never blocking behind a repair).
    Query,
    /// Report the writer sequence number, overlay epoch, cardinality and
    /// live edge count of the published snapshot.
    State,
    /// Barrier: ack once every update admitted before it has been
    /// applied and published.
    Sync,
    /// Report cumulative engine statistics.
    Stats,
    /// Dump the metrics registry in Prometheus text exposition,
    /// terminated by a `# EOF` line.
    Metrics,
    /// Write the (published) graph as Matrix Market to the path.
    Snapshot(String),
    /// Close this session (stdin: flush and exit; socket: this
    /// connection only — the daemon keeps serving).
    Quit,
    /// Gracefully stop the whole daemon: drain admitted updates, publish,
    /// then exit. In stdin mode equivalent to `quit`.
    Shutdown,
}

/// Parses one input line. `Ok(None)` for blank lines and `#` comments;
/// `Err` carries a message suitable for an `error <msg>` response line.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    // Strip JSON structure; what remains is whitespace-separated tokens
    // in both spellings.
    let norm: String =
        trimmed
            .chars()
            .map(|ch| {
                if matches!(ch, '{' | '}' | '[' | ']' | '"' | '\'' | ',' | ':') {
                    ' '
                } else {
                    ch
                }
            })
            .collect();
    let toks: Vec<&str> = norm.split_whitespace().collect();
    let verb_pos = toks
        .iter()
        .position(|t| {
            matches!(
                t.to_ascii_lowercase().as_str(),
                "insert"
                    | "delete"
                    | "query"
                    | "state"
                    | "sync"
                    | "stats"
                    | "metrics"
                    | "snapshot"
                    | "quit"
                    | "exit"
                    | "shutdown"
            )
        })
        .ok_or_else(|| format!("unrecognized command: {trimmed}"))?;
    let verb = toks[verb_pos].to_ascii_lowercase();
    match verb.as_str() {
        "query" => Ok(Some(Command::Query)),
        "state" => Ok(Some(Command::State)),
        "sync" => Ok(Some(Command::Sync)),
        "stats" => Ok(Some(Command::Stats)),
        "metrics" => Ok(Some(Command::Metrics)),
        "quit" | "exit" => Ok(Some(Command::Quit)),
        "shutdown" => Ok(Some(Command::Shutdown)),
        "snapshot" => {
            let path = value_after_key(&toks, "path")
                .or_else(|| toks.get(verb_pos + 1).copied())
                .filter(|p| !p.eq_ignore_ascii_case("path"))
                .ok_or_else(|| "snapshot needs a path".to_string())?;
            Ok(Some(Command::Snapshot(path.to_string())))
        }
        verb @ ("insert" | "delete") => {
            let (u, v) = match (keyed_index(&toks, "u"), keyed_index(&toks, "v")) {
                (Some(u), Some(v)) => (u, v),
                _ => positional_pair(&toks, verb_pos)
                    .ok_or_else(|| format!("{verb} needs two vertex indices: {trimmed}"))?,
            };
            if verb == "insert" {
                let w = match value_after_key(&toks, "w") {
                    Some(t) => {
                        Some(t.parse::<f64>().map_err(|_| format!("bad insert weight: {t}"))?)
                    }
                    None => positional_weight(&toks, verb_pos),
                };
                if w.is_some_and(|w| !w.is_finite()) {
                    return Err(format!("insert weight must be finite: {trimmed}"));
                }
                Ok(Some(Command::Insert(u, v, w)))
            } else {
                Ok(Some(Command::Delete(u, v)))
            }
        }
        _ => unreachable!("position() only matches the verbs above"),
    }
}

/// The metrics label for a command (one latency histogram per verb).
pub fn verb_of(cmd: &Command) -> &'static str {
    match cmd {
        Command::Insert(..) => "insert",
        Command::Delete(..) => "delete",
        Command::Query => "query",
        Command::State => "state",
        Command::Sync => "sync",
        Command::Stats => "stats",
        Command::Metrics => "metrics",
        Command::Snapshot(..) => "snapshot",
        Command::Quit => "quit",
        Command::Shutdown => "shutdown",
    }
}

/// The token following key `k` (for JSONL `"u": 3` / `"path": "x"` pairs).
fn value_after_key<'a>(toks: &[&'a str], k: &str) -> Option<&'a str> {
    toks.iter().position(|t| t.eq_ignore_ascii_case(k)).and_then(|i| toks.get(i + 1)).copied()
}

fn keyed_index(toks: &[&str], k: &str) -> Option<Vidx> {
    value_after_key(toks, k).and_then(|t| t.parse::<Vidx>().ok())
}

/// The first two integer tokens after the verb (plain-text spelling).
fn positional_pair(toks: &[&str], verb_pos: usize) -> Option<(Vidx, Vidx)> {
    let mut ints = toks[verb_pos + 1..].iter().filter_map(|t| t.parse::<Vidx>().ok());
    Some((ints.next()?, ints.next()?))
}

/// The third numeric token after the verb, if any — the plain-text
/// spelling of an insert weight (`insert 3 5 2.5`). Keys like `u`/`v`
/// don't parse as numbers, so JSONL lines without a `w` key yield none.
fn positional_weight(toks: &[&str], verb_pos: usize) -> Option<f64> {
    toks[verb_pos + 1..].iter().filter_map(|t| t.parse::<f64>().ok()).nth(2)
}

/// Framing failure surfaced by [`LineFramer::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended mid-line; the unterminated bytes are carried so
    /// the caller can report (never execute) them.
    TruncatedTail(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedTail(tail) => {
                write!(f, "truncated line at EOF (missing newline): {tail:?}")
            }
        }
    }
}

/// Incremental byte-stream-to-line decoder for one connection (or stdin).
///
/// Feed whatever each read returned via [`push`](LineFramer::push); it
/// yields every newline-terminated line seen so far and buffers the rest.
/// Call [`finish`](LineFramer::finish) at EOF to learn whether the
/// stream ended cleanly.
#[derive(Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    lines_seen: u64,
}

impl LineFramer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines completed so far (1-based numbering for error reporting).
    pub fn lines_seen(&self) -> u64 {
        self.lines_seen
    }

    /// Feeds freshly read bytes; returns each completed line with its
    /// terminator (and any trailing `\r`) stripped. Invalid UTF-8 is
    /// replaced rather than rejected — the tokenizer will surface it as
    /// an unrecognized command.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        let mut start = 0usize;
        while let Some(rel) = self.buf[start..].iter().position(|&b| b == b'\n') {
            let end = start + rel;
            let line = &self.buf[start..end];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            out.push(String::from_utf8_lossy(line).into_owned());
            self.lines_seen += 1;
            start = end + 1;
        }
        self.buf.drain(..start);
        out
    }

    /// EOF check: `Ok` for a cleanly terminated stream, otherwise the
    /// unterminated tail as a structured error. Resets the buffer either
    /// way, so a framer can be reused after reporting.
    pub fn finish(&mut self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let tail = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        Err(FrameError::TruncatedTail(tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_commands_parse() {
        assert_eq!(parse_command("insert 3 5").unwrap(), Some(Command::Insert(3, 5, None)));
        assert_eq!(parse_command("  delete 0 12 ").unwrap(), Some(Command::Delete(0, 12)));
        assert_eq!(parse_command("query").unwrap(), Some(Command::Query));
        assert_eq!(parse_command("state").unwrap(), Some(Command::State));
        assert_eq!(parse_command("sync").unwrap(), Some(Command::Sync));
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(
            parse_command("snapshot /tmp/x.mtx").unwrap(),
            Some(Command::Snapshot("/tmp/x.mtx".into()))
        );
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("exit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
    }

    #[test]
    fn weighted_inserts_parse_in_both_spellings() {
        assert_eq!(
            parse_command("insert 3 5 2.5").unwrap(),
            Some(Command::Insert(3, 5, Some(2.5)))
        );
        assert_eq!(
            parse_command("insert 3 5 -4").unwrap(),
            Some(Command::Insert(3, 5, Some(-4.0)))
        );
        assert_eq!(
            parse_command(r#"{"op": "insert", "u": 3, "v": 5, "w": 2.5}"#).unwrap(),
            Some(Command::Insert(3, 5, Some(2.5)))
        );
        // Key order does not matter, including `w` before the verb.
        assert_eq!(
            parse_command(r#"{"w": 7, "v": 5, "u": 3, "op": "insert"}"#).unwrap(),
            Some(Command::Insert(3, 5, Some(7.0)))
        );
        assert!(parse_command("insert 3 5 nan").is_err(), "non-finite weights are rejected");
        assert!(parse_command(r#"{"op":"insert","u":3,"v":5,"w":"x"}"#).is_err());
    }

    #[test]
    fn jsonl_commands_parse_in_any_key_order() {
        assert_eq!(
            parse_command(r#"{"op": "insert", "u": 3, "v": 5}"#).unwrap(),
            Some(Command::Insert(3, 5, None))
        );
        assert_eq!(
            parse_command(r#"{"v": 5, "u": 3, "op": "delete"}"#).unwrap(),
            Some(Command::Delete(3, 5))
        );
        assert_eq!(parse_command(r#"{"op": "query"}"#).unwrap(), Some(Command::Query));
        assert_eq!(parse_command(r#"{"op": "metrics"}"#).unwrap(), Some(Command::Metrics));
        assert_eq!(parse_command(r#"{"op": "sync"}"#).unwrap(), Some(Command::Sync));
        assert_eq!(
            parse_command(r#"{"op": "snapshot", "path": "out.mtx"}"#).unwrap(),
            Some(Command::Snapshot("out.mtx".into()))
        );
    }

    #[test]
    fn blanks_and_comments_are_skipped() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("# warmup done").unwrap(), None);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_command("frobnicate 1 2").is_err());
        assert!(parse_command("insert 1").is_err());
        assert!(parse_command("insert x y").is_err());
        assert!(parse_command("snapshot").is_err());
    }

    #[test]
    fn framer_reassembles_partial_lines_and_splits_pipelined_bursts() {
        let mut f = LineFramer::new();
        assert_eq!(f.push(b"ins"), Vec::<String>::new());
        assert_eq!(f.push(b"ert 1 2\nquery\ndel"), vec!["insert 1 2", "query"]);
        assert_eq!(f.push(b"ete 1 2\r\n"), vec!["delete 1 2"]);
        assert_eq!(f.lines_seen(), 3);
        assert_eq!(f.finish(), Ok(()));
    }

    #[test]
    fn framer_reports_a_truncated_tail_instead_of_dropping_it() {
        let mut f = LineFramer::new();
        assert_eq!(f.push(b"insert 1 2\ninsert 3"), vec!["insert 1 2"]);
        match f.finish() {
            Err(FrameError::TruncatedTail(tail)) => assert_eq!(tail, "insert 3"),
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
        // The framer is reusable after reporting.
        assert_eq!(f.finish(), Ok(()));
        assert_eq!(f.push(b"query\n"), vec!["query"]);
    }
}
