//! # mcm-serve — the concurrent matching service
//!
//! Turns the `mcm-dyn` incremental engine into a daemon thousands of
//! clients can hit at once, std-only:
//!
//! * [`proto`] — the `mcmd` line protocol (plain text or JSONL), shared
//!   by the stdin loop and the socket path, plus [`proto::LineFramer`],
//!   the partial-line/pipelining-tolerant byte-to-line layer whose EOF
//!   check reports a truncated tail as a structured error;
//! * [`server`] — `mcmd --listen`: a non-blocking acceptor, a worker
//!   thread per connection, a single writer thread applying admitted
//!   updates in bounded batches (size + latency watermarks, `busy`
//!   backpressure), and **lock-free-published snapshots** so
//!   `query`/`state`/`stats`/`snapshot` never block behind a repair (or
//!   each other). Serves either engine: maximum cardinality or, with
//!   `mcmd --weighted`, maximum weight (`insert u v [w]`, weight-carrying
//!   `query`/`stats`);
//! * [`swap`] — [`SwapCell`], the wait-free-read `Arc` publication cell
//!   behind the snapshot path (external reader counting, no read-side
//!   locks);
//! * [`load`] — the closed-/open-loop load harness behind `serve_load`
//!   and the CI smoke job (p50/p99/p999 per verb, sustained updates/sec,
//!   zero-corruption accounting).
//!
//! DESIGN.md §16 describes the serving architecture and its contracts.

pub mod load;
pub mod proto;
pub mod server;
pub mod swap;

pub use load::{run_load, LoadConfig, LoadMode, LoadReport, VerbReport};
pub use proto::{parse_command, verb_of, Command, FrameError, LineFramer};
pub use server::{
    format_stats_line, format_wstats_line, ApplyHook, Engine, Published, Server, ServerConfig, Snap,
};
pub use swap::SwapCell;
